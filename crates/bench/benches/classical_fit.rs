//! Classical-head training cost: logistic, softmax, MLP at experiment
//! scale.

use criterion::{criterion_group, criterion_main, Criterion};
use linalg::Mat;
use ml::{LogisticConfig, LogisticRegression, Mlp, MlpConfig, SoftmaxConfig, SoftmaxRegression};
use std::hint::black_box;

fn features(d: usize, f: usize) -> (Mat, Vec<f64>, Vec<usize>) {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let x = Mat::from_vec(d, f, (0..d * f).map(|_| next()).collect());
    let y: Vec<f64> = (0..d).map(|i| (i % 2) as f64).collect();
    let labels: Vec<usize> = (0..d).map(|i| i % 10).collect();
    (x, y, labels)
}

fn bench_heads(c: &mut Criterion) {
    let mut group = c.benchmark_group("classical_heads_400x67");
    group.sample_size(10);
    let (x, y, labels) = features(400, 67);
    let fast_logistic = LogisticConfig {
        epochs: 200,
        ..Default::default()
    };
    group.bench_function("logistic_200ep", |b| {
        b.iter(|| black_box(LogisticRegression::fit(&x, &y, fast_logistic)))
    });
    let fast_softmax = SoftmaxConfig {
        epochs: 100,
        ..Default::default()
    };
    group.bench_function("softmax10_100ep", |b| {
        b.iter(|| black_box(SoftmaxRegression::fit(&x, &labels, 10, fast_softmax)))
    });
    let mlp_cfg = MlpConfig {
        hidden: 16,
        epochs: 100,
        lr: 0.02,
        seed: 1,
    };
    group.bench_function("mlp16_100ep", |b| {
        b.iter(|| {
            let mut mlp = Mlp::new(67, 1, &mlp_cfg);
            let ylab: Vec<usize> = y.iter().map(|&v| v as usize).collect();
            mlp.fit(&x, &ylab, &mlp_cfg);
            black_box(mlp)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_heads);
criterion_main!(benches);

//! Deque contention under fine-grained task splitting — the workload the
//! Chase-Lev rewrite targets.
//!
//! Two angles:
//!
//! * `deque_steal_storm` — the raw queue protocols head to head: the
//!   lock-free Chase-Lev `crossbeam::deque::Worker`/`Stealer` with
//!   batched steals versus the `Mutex<VecDeque>` deque it replaced
//!   (reconstructed here as `MutexDeque`), one producing owner against
//!   several draining thieves. The mutex pays one lock round-trip per
//!   task; Chase-Lev pays one CAS per task and one steal *operation* per
//!   ~half queue.
//! * `tiny_scoped_tasks` — the executor end to end: many small
//!   `rayon::scope` tasks (the shape `par_iter` produces just above
//!   `PARALLEL_THRESHOLD`) at 1/2/4/8 threads. On a multicore host the
//!   ≥2-thread rows must beat the old mutex-deque executor; on a 1-core
//!   container they measure scheduling overhead only.

use criterion::{criterion_group, criterion_main, Criterion};
use crossbeam::deque::{Steal, Worker};
use std::collections::VecDeque;
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The mutex-backed deque the pre-Chase-Lev executor used, kept here as
/// the bench baseline: every operation — owner or thief — takes the lock.
struct MutexDeque<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> MutexDeque<T> {
    fn new() -> Self {
        MutexDeque {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    fn push(&self, task: T) {
        self.queue.lock().unwrap().push_back(task);
    }

    fn pop(&self) -> Option<T> {
        self.queue.lock().unwrap().pop_back()
    }

    fn steal(&self) -> Option<T> {
        self.queue.lock().unwrap().pop_front()
    }
}

const TASKS: usize = 20_000;
const THIEVES: usize = 3;

/// Owner pushes `TASKS` items in bursts and pops some back; thieves drain
/// the rest. Returns only when every task is accounted for.
fn storm_mutex() -> usize {
    let q: MutexDeque<usize> = MutexDeque::new();
    let drained = AtomicUsize::new(0);
    let produced = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..THIEVES {
            let (q, drained, produced) = (&q, &drained, &produced);
            scope.spawn(move || loop {
                match q.steal() {
                    Some(v) => {
                        black_box(v);
                        drained.fetch_add(1, Ordering::SeqCst);
                    }
                    None => {
                        if produced.load(Ordering::SeqCst) == TASKS
                            && drained.load(Ordering::SeqCst) == TASKS
                        {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
            });
        }
        for burst in 0..(TASKS / 100) {
            for i in 0..100 {
                q.push(burst * 100 + i);
            }
            produced.fetch_add(100, Ordering::SeqCst);
            for _ in 0..20 {
                if let Some(v) = q.pop() {
                    black_box(v);
                    drained.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        while drained.load(Ordering::SeqCst) < TASKS {
            if let Some(v) = q.pop() {
                black_box(v);
                drained.fetch_add(1, Ordering::SeqCst);
            } else {
                std::hint::spin_loop();
            }
        }
    });
    drained.load(Ordering::SeqCst)
}

/// Same storm over the lock-free Chase-Lev deque, thieves using batched
/// steals into their own local deques.
fn storm_chase_lev() -> usize {
    let w: Worker<usize> = Worker::new_lifo();
    let drained = AtomicUsize::new(0);
    let produced = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..THIEVES {
            let s = w.stealer();
            let (drained, produced) = (&drained, &produced);
            scope.spawn(move || {
                let mine: Worker<usize> = Worker::new_lifo();
                loop {
                    match s.steal_batch_and_pop(&mine) {
                        Steal::Success(v) => {
                            black_box(v);
                            drained.fetch_add(1, Ordering::SeqCst);
                            while let Some(v) = mine.pop() {
                                black_box(v);
                                drained.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                        Steal::Empty => {
                            if produced.load(Ordering::SeqCst) == TASKS
                                && drained.load(Ordering::SeqCst) == TASKS
                            {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                        Steal::Retry => std::hint::spin_loop(),
                    }
                }
            });
        }
        for burst in 0..(TASKS / 100) {
            for i in 0..100 {
                w.push(burst * 100 + i);
            }
            produced.fetch_add(100, Ordering::SeqCst);
            for _ in 0..20 {
                if let Some(v) = w.pop() {
                    black_box(v);
                    drained.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        while drained.load(Ordering::SeqCst) < TASKS {
            if let Some(v) = w.pop() {
                black_box(v);
                drained.fetch_add(1, Ordering::SeqCst);
            } else {
                std::hint::spin_loop();
            }
        }
    });
    drained.load(Ordering::SeqCst)
}

fn bench_deque_storm(c: &mut Criterion) {
    let mut group = c.benchmark_group("deque_steal_storm");
    group.sample_size(10);
    group.bench_function("mutex_deque", |b| b.iter(storm_mutex));
    group.bench_function("chase_lev_batched", |b| b.iter(storm_chase_lev));
    group.finish();
}

/// Many tiny scoped tasks — each just bumps a counter — so virtually all
/// the time is queue traffic and scheduling, none of it kernel work.
fn tiny_task_round(scopes: usize, tasks_per_scope: usize) -> usize {
    let hits = AtomicUsize::new(0);
    for _ in 0..scopes {
        rayon::scope(|s| {
            for _ in 0..tasks_per_scope {
                let hits = &hits;
                s.spawn(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    }
    hits.load(Ordering::Relaxed)
}

fn bench_tiny_scoped_tasks(c: &mut Criterion) {
    let mut group = c.benchmark_group("tiny_scoped_tasks");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_function(format!("{threads}_threads"), |b| {
            b.iter(|| rayon::with_num_threads(threads, || black_box(tiny_task_round(50, 64))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_deque_storm, bench_tiny_scoped_tasks);
criterion_main!(benches);

//! Pauli-expectation kernel cost by locality and register width — the
//! inner loop of Algorithm 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pauli::{local_paulis, PauliString};
use qsim::{Circuit, Gate, StateVector};
use std::hint::black_box;

fn prepared_state(n: usize) -> StateVector {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(Gate::Ry(q, 0.2 + 0.1 * q as f64));
    }
    for q in 0..n - 1 {
        c.push(Gate::Cnot {
            control: q,
            target: q + 1,
        });
    }
    StateVector::from_circuit(&c)
}

fn bench_single_expectation(c: &mut Criterion) {
    let mut group = c.benchmark_group("pauli_expectation");
    group.sample_size(30);
    for n in [4usize, 10, 16] {
        let state = prepared_state(n);
        let mut p = PauliString::identity(n);
        p.set(0, pauli::Pauli::Z);
        p.set(n - 1, pauli::Pauli::X);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(state.expectation(&p)))
        });
    }
    group.finish();
}

fn bench_expectation_many(c: &mut Criterion) {
    // The fused multi-observable kernel vs the per-term loop, on the
    // acceptance workload: a 16-qubit state and all 49 one-local Paulis.
    let mut group = c.benchmark_group("expectation_many_16q_49obs");
    group.sample_size(20);
    let state = prepared_state(16);
    let fam = local_paulis(16, 1);
    group.bench_function("per_term", |b| {
        b.iter(|| {
            let s: f64 = fam.iter().map(|p| state.expectation(p)).sum();
            black_box(s)
        })
    });
    group.bench_function("fused", |b| {
        b.iter(|| black_box(state.expectation_many(&fam)))
    });
    group.finish();
}

fn bench_local_family(c: &mut Criterion) {
    // All ≤L-local observables on 4 qubits: the per-state cost of the
    // observable-construction strategy.
    let mut group = c.benchmark_group("local_family_4q");
    group.sample_size(30);
    let state = prepared_state(4);
    for l in [1usize, 2, 3] {
        let fam = local_paulis(4, l);
        group.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, _| {
            b.iter(|| {
                let s: f64 = fam.iter().map(|p| state.expectation(p)).sum();
                black_box(s)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_expectation,
    bench_expectation_many,
    bench_local_family
);
criterion_main!(benches);

//! End-to-end Algorithm-1 feature generation per strategy — the quantum
//! stage the HPC-QC system parallelises.

use criterion::{criterion_group, criterion_main, Criterion};
use pvqnn::ansatz::fig8_ansatz;
use pvqnn::features::{FeatureBackend, FeatureGenerator};
use pvqnn::strategy::Strategy;
use std::hint::black_box;

fn toy_data(d: usize) -> Vec<Vec<f64>> {
    (0..d)
        .map(|i| {
            (0..16)
                .map(|j| 0.3 + 0.17 * ((i * 16 + j) % 23) as f64)
                .collect()
        })
        .collect()
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("feature_generation_d32");
    group.sample_size(10);
    let data = toy_data(32);
    let cases: Vec<(&str, Strategy)> = vec![
        (
            "ansatz_1order",
            Strategy::ansatz_expansion(fig8_ansatz(4), 1, Strategy::default_observable(4)),
        ),
        ("observable_2local", Strategy::observable_construction(4, 2)),
        ("hybrid_1o_1l", Strategy::hybrid(fig8_ansatz(4), 1, 1)),
    ];
    for (name, strategy) in cases {
        let generator = FeatureGenerator::new(strategy, FeatureBackend::Exact);
        group.bench_function(name, |b| b.iter(|| black_box(generator.generate(&data))));
    }
    group.finish();
}

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("feature_backends_d8_1local");
    group.sample_size(10);
    let data = toy_data(8);
    let strategy = Strategy::observable_construction(4, 1);
    let backends = [
        ("exact", FeatureBackend::Exact),
        (
            "shots_1024",
            FeatureBackend::Shots {
                shots: 1024,
                seed: 1,
            },
        ),
        (
            "shadows_2048",
            FeatureBackend::Shadows {
                snapshots: 2048,
                groups: 8,
                seed: 1,
            },
        ),
    ];
    for (name, backend) in backends {
        let generator = FeatureGenerator::new(strategy.clone(), backend);
        group.bench_function(name, |b| b.iter(|| black_box(generator.generate(&data))));
    }
    group.finish();
}

criterion_group!(benches, bench_strategies, bench_backends);
criterion_main!(benches);

//! End-to-end Algorithm-1 feature generation per strategy — the quantum
//! stage the HPC-QC system parallelises.

use criterion::{criterion_group, criterion_main, Criterion};
use pvqnn::ansatz::fig8_ansatz;
use pvqnn::features::{FeatureBackend, FeatureGenerator};
use pvqnn::strategy::Strategy;
use std::hint::black_box;

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("feature_generation_d32");
    group.sample_size(10);
    let data = bench::feature_data(32);
    let cases: Vec<(&str, Strategy)> = vec![
        (
            "ansatz_1order",
            Strategy::ansatz_expansion(fig8_ansatz(4), 1, Strategy::default_observable(4)),
        ),
        ("observable_2local", Strategy::observable_construction(4, 2)),
        ("hybrid_1o_1l", Strategy::hybrid(fig8_ansatz(4), 1, 1)),
    ];
    for (name, strategy) in cases {
        let generator = FeatureGenerator::new(strategy, FeatureBackend::Exact);
        group.bench_function(name, |b| b.iter(|| black_box(generator.generate(&data))));
    }
    group.finish();
}

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("feature_backends_d8_1local");
    group.sample_size(10);
    let data = bench::feature_data(8);
    let strategy = Strategy::observable_construction(4, 1);
    let backends = [
        ("exact", FeatureBackend::Exact),
        (
            "shots_1024",
            FeatureBackend::Shots {
                shots: 1024,
                seed: 1,
            },
        ),
        (
            "shadows_2048",
            FeatureBackend::Shadows {
                snapshots: 2048,
                groups: 8,
                seed: 1,
            },
        ),
    ];
    for (name, backend) in backends {
        let generator = FeatureGenerator::new(strategy.clone(), backend);
        group.bench_function(name, |b| b.iter(|| black_box(generator.generate(&data))));
    }
    group.finish();
}

fn bench_row_throughput(c: &mut Criterion) {
    // Feature-row throughput of the hybrid strategy, and the same workload
    // computed the pre-reuse way (full circuit from |0…0⟩ per shift, one
    // state pass per observable) — the gap is the encoding-state-reuse +
    // fused-expectation win.
    let mut group = c.benchmark_group("feature_rows_hybrid_1o_1l");
    group.sample_size(10);
    let data = bench::feature_data(16);
    let generator = FeatureGenerator::new(
        Strategy::hybrid(fig8_ansatz(4), 1, 1),
        FeatureBackend::Exact,
    );
    group.bench_function("reuse_encoding_state", |b| {
        b.iter(|| black_box(generator.generate(&data)))
    });
    group.bench_function("naive_resimulate", |b| {
        b.iter(|| black_box(bench::naive_feature_sweep(&generator, &data)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_strategies,
    bench_backends,
    bench_row_throughput
);
criterion_main!(benches);

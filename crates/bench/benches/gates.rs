//! Gate-kernel microbenchmarks: validates the serial/parallel threshold
//! choice in `qsim::state` (perf-book: measure, don't guess).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsim::{Circuit, Gate, StateVector};
use std::hint::black_box;

fn layer_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(Gate::H(q));
    }
    for q in 0..n {
        c.push(Gate::Ry(q, 0.3));
    }
    for q in 0..n {
        c.push(Gate::Rz(q, 0.7));
    }
    for q in 0..n - 1 {
        c.push(Gate::Cnot {
            control: q,
            target: q + 1,
        });
    }
    c
}

fn bench_gate_layers(c: &mut Criterion) {
    let mut group = c.benchmark_group("gate_layers");
    group.sample_size(20);
    for n in [4usize, 10, 14, 18] {
        let circuit = layer_circuit(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(StateVector::from_circuit(&circuit)))
        });
    }
    group.finish();
}

fn bench_single_gate_kinds(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_gate_16q");
    group.sample_size(30);
    let n = 16;
    let base = StateVector::from_circuit(&layer_circuit(n));
    for (name, gate) in [
        ("dense_ry", Gate::Ry(7, 0.4)),
        ("diagonal_rz", Gate::Rz(7, 0.4)),
        (
            "cnot",
            Gate::Cnot {
                control: 3,
                target: 11,
            },
        ),
        ("cz", Gate::Cz(3, 11)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut s = base.clone();
                s.apply_gate(black_box(&gate));
                black_box(s)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gate_layers, bench_single_gate_kinds);
criterion_main!(benches);

//! Gate-kernel microbenchmarks: validates the serial/parallel threshold
//! choice in `qsim::state` (perf-book: measure, don't guess).

use bench::layer_circuit;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsim::{Gate, StateVector};
use std::hint::black_box;

fn bench_gate_layers(c: &mut Criterion) {
    let mut group = c.benchmark_group("gate_layers");
    group.sample_size(20);
    for n in [4usize, 10, 14, 18] {
        let circuit = layer_circuit(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(StateVector::from_circuit(&circuit)))
        });
    }
    group.finish();
}

fn bench_single_gate_kinds(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_gate_16q");
    group.sample_size(30);
    let n = 16;
    let base = StateVector::from_circuit(&layer_circuit(n));
    for (name, gate) in [
        ("dense_ry", Gate::Ry(7, 0.4)),
        ("diagonal_rz", Gate::Rz(7, 0.4)),
        (
            "cnot",
            Gate::Cnot {
                control: 3,
                target: 11,
            },
        ),
        ("cz", Gate::Cz(3, 11)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut s = base.clone();
                s.apply_gate(black_box(&gate));
                black_box(s)
            })
        });
    }
    group.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    // The real thread pool on a 2^20-amplitude dense kernel: 1 thread vs
    // every power of two up to the hardware count. Validates both the
    // PARALLEL_THRESHOLD choice and the pool's scaling.
    let mut group = c.benchmark_group("thread_scaling_20q_dense");
    group.sample_size(10);
    let n = 20;
    let base = StateVector::from_circuit(&layer_circuit(n));
    let hw = rayon::current_num_threads();
    let mut counts = vec![1usize];
    let mut t = 2;
    while t <= hw {
        counts.push(t);
        t *= 2;
    }
    if *counts.last().unwrap() != hw {
        counts.push(hw);
    }
    for threads in counts {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    rayon::with_num_threads(threads, || {
                        let mut s = base.clone();
                        s.apply_gate(black_box(&Gate::Ry(10, 0.4)));
                        black_box(s)
                    })
                })
            },
        );
    }
    group.finish();
}

fn bench_threshold_sweep(c: &mut Criterion) {
    // Serial vs pooled execution on dense kernels straddling
    // PARALLEL_THRESHOLD (2^13 amplitudes): with the persistent executor
    // the parallel path should stop losing right around the threshold —
    // this group is the measurement behind the constant's value.
    let mut group = c.benchmark_group("threshold_sweep_dense");
    group.sample_size(20);
    for n in [12usize, 13, 14, 15] {
        let base = StateVector::from_circuit(&layer_circuit(n));
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, _| {
            b.iter(|| {
                rayon::with_num_threads(1, || {
                    let mut s = base.clone();
                    s.apply_gate(black_box(&Gate::Ry(n / 2, 0.4)));
                    black_box(s)
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("pooled", n), &n, |b, _| {
            b.iter(|| {
                let mut s = base.clone();
                s.apply_gate(black_box(&Gate::Ry(n / 2, 0.4)));
                black_box(s)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gate_layers,
    bench_single_gate_kinds,
    bench_thread_scaling,
    bench_threshold_sweep
);
criterion_main!(benches);

//! Linear-algebra kernels backing the convex head: SVD/pinv at the
//! feature-matrix shapes the experiments produce.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linalg::{lstsq, pinv, Mat};
use std::hint::black_box;

fn random_mat(r: usize, c: usize) -> Mat {
    // Deterministic pseudo-random fill (no rand dep in benches needed).
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    Mat::from_vec(
        r,
        c,
        (0..r * c)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect(),
    )
}

fn bench_pinv(c: &mut Criterion) {
    let mut group = c.benchmark_group("pinv");
    group.sample_size(10);
    for (d, m) in [(100usize, 13usize), (400, 67), (400, 175)] {
        let a = random_mat(d, m);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{d}x{m}")),
            &a,
            |b, a| b.iter(|| black_box(pinv(a, None))),
        );
    }
    group.finish();
}

fn bench_lstsq(c: &mut Criterion) {
    let mut group = c.benchmark_group("lstsq_alpha_eq_qpinv_y");
    group.sample_size(10);
    for (d, m) in [(400usize, 67usize), (400, 221)] {
        let a = random_mat(d, m);
        let y: Vec<f64> = (0..d).map(|i| (i as f64 * 0.37).sin()).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{d}x{m}")),
            &(a, y),
            |b, (a, y)| b.iter(|| black_box(lstsq(a, y))),
        );
    }
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_square");
    group.sample_size(10);
    for n in [64usize, 256] {
        let a = random_mat(n, n);
        let b2 = random_mat(n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| black_box(a.matmul(&b2)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pinv, bench_lstsq, bench_matmul);
criterion_main!(benches);

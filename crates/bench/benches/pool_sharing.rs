//! Device pool + kernel executor sharing: the `hpcq` pool running its
//! device tasks on the shared rayon executor (with fair-share inner-thread
//! hints) versus the oversubscribed baseline it replaced — one private OS
//! thread per device with uncapped kernel fan-out, which competes with
//! itself once jobs cross `qsim`'s parallel threshold. Uses the same
//! `bench::setup` workload builders as the `pool_shared_speedup` metric in
//! `BENCH_scaling.json`, just sized down for the Criterion loop.

use bench::{mixed_pool_jobs, oversubscribed_batch};
use criterion::{criterion_group, criterion_main, Criterion};
use hpcq::{QpuConfig, QpuPool, SchedulePolicy};
use std::hint::black_box;

fn bench_pool_sharing(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_executor_sharing");
    group.sample_size(10);
    // 16-qubit big jobs (2^16 amps, still 8× the kernel threshold) keep
    // one Criterion iteration in the low milliseconds.
    let jobs = mixed_pool_jobs(16, 9, 2, 3, 6);
    let n_dev = 4;

    group.bench_function("shared_executor", |b| {
        b.iter(|| {
            let mut pool =
                QpuPool::homogeneous(n_dev, QpuConfig::default(), SchedulePolicy::WorkStealing);
            black_box(pool.execute_batch(black_box(jobs.clone())))
        })
    });

    group.bench_function("oversubscribed_baseline", |b| {
        b.iter(|| oversubscribed_batch(black_box(&jobs), n_dev))
    });

    group.finish();
}

criterion_group!(benches, bench_pool_sharing);
criterion_main!(benches);

//! QPU-pool scheduling overhead and scaling (wall-clock microbenchmarks;
//! the full strong-scaling table comes from `exp_scaling`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpcq::{CircuitJob, QpuConfig, QpuPool, SchedulePolicy};
use pauli::PauliString;
use qsim::{Circuit, Gate};
use std::hint::black_box;

fn jobs(count: usize, n: usize) -> Vec<CircuitJob> {
    (0..count as u64)
        .map(|id| {
            let mut c = Circuit::new(n);
            for layer in 0..4 {
                for q in 0..n {
                    c.push(Gate::Ry(q, 0.1 * (id + layer) as f64 + 0.05 * q as f64));
                }
                for q in 0..n - 1 {
                    c.push(Gate::Cnot {
                        control: q,
                        target: q + 1,
                    });
                }
            }
            CircuitJob::new(
                id,
                c,
                vec![PauliString::single(n, 0, pauli::Pauli::Z)],
                None,
            )
        })
        .collect()
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_policies_64jobs_10q");
    group.sample_size(10);
    let batch = jobs(64, 10);
    for policy in [
        SchedulePolicy::RoundRobin,
        SchedulePolicy::LeastLoaded,
        SchedulePolicy::WorkStealing,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &p| {
                b.iter(|| {
                    let mut pool = QpuPool::homogeneous(4, QpuConfig::default(), p);
                    black_box(pool.execute_batch(batch.clone()))
                })
            },
        );
    }
    group.finish();
}

fn bench_device_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_width_12q");
    group.sample_size(10);
    let batch = jobs(32, 12);
    for devices in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(devices), &devices, |b, &n| {
            b.iter(|| {
                let mut pool =
                    QpuPool::homogeneous(n, QpuConfig::default(), SchedulePolicy::WorkStealing);
                black_box(pool.execute_batch(batch.clone()))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies, bench_device_counts);
criterion_main!(benches);

//! Classical-shadows acquisition and estimation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pauli::local_paulis;
use qsim::{Circuit, Gate, StateVector};
use shadows::{ShadowEstimator, ShadowProtocol};
use std::hint::black_box;

fn state4() -> StateVector {
    let mut c = Circuit::new(4);
    for q in 0..4 {
        c.push(Gate::Ry(q, 0.3 * (q + 1) as f64));
    }
    c.push(Gate::Cnot {
        control: 0,
        target: 1,
    });
    c.push(Gate::Cnot {
        control: 2,
        target: 3,
    });
    StateVector::from_circuit(&c)
}

fn bench_acquisition(c: &mut Criterion) {
    let mut group = c.benchmark_group("shadow_acquisition");
    group.sample_size(10);
    let s = state4();
    for snaps in [512usize, 2048, 8192] {
        group.bench_with_input(BenchmarkId::from_parameter(snaps), &snaps, |b, &t| {
            b.iter(|| black_box(ShadowProtocol::new(t, 7).acquire(&s)))
        });
    }
    group.finish();
}

fn bench_estimation(c: &mut Criterion) {
    let mut group = c.benchmark_group("shadow_estimation_2local");
    group.sample_size(10);
    let s = state4();
    let snapshots = ShadowProtocol::new(8192, 7).acquire(&s);
    let est = ShadowEstimator::new(snapshots, 10);
    let fam = local_paulis(4, 2);
    group.bench_function("estimate_67_observables", |b| {
        b.iter(|| black_box(est.estimate_many(&fam)))
    });
    group.finish();
}

criterion_group!(benches, bench_acquisition, bench_estimation);
criterion_main!(benches);

//! Ablations over the design choices DESIGN.md calls out:
//!
//! 1. **Measurement backend** — exact vs finite shots vs classical shadows
//!    feeding the same Table-III model: how much accuracy does estimation
//!    noise cost at realistic budgets?
//! 2. **Pruning threshold** (§IV.A/IV.C) — ensemble size vs accuracy as
//!    the gradient-pruning threshold sweeps.
//! 3. **Split-ansatz hybrid** (§IV.C literal construction) vs the full
//!    hybrid: cheaper ensembles from expanding only the shallow half.
//! 4. **Device noise** — PV accuracy under exact-channel depolarizing
//!    noise of growing strength (density-matrix features).
//!
//! Run: `cargo run -p bench --bin exp_ablation --release`

use bench::{binary_task, TablePrinter};
use ml::LogisticConfig;
use pvqnn::ansatz::fig8_ansatz;
use pvqnn::encoding::column_encoding;
use pvqnn::features::{FeatureBackend, FeatureGenerator};
use pvqnn::model::PostVarClassifier;
use pvqnn::pruning::prune_by_gradient;
use pvqnn::strategy::Strategy;

fn fit_eval(
    strategy: Strategy,
    backend: FeatureBackend,
    task: &bench::BinaryTask,
) -> (usize, f64, f64) {
    let m = strategy.num_neurons();
    let generator = FeatureGenerator::new(strategy, backend);
    let model = PostVarClassifier::fit(
        generator,
        &task.train_x,
        &task.train_y,
        LogisticConfig::default(),
    );
    let (_, tr) = model.evaluate(&task.train_x, &task.train_y);
    let (_, te) = model.evaluate(&task.test_x, &task.test_y);
    (m, tr, te)
}

fn main() {
    println!("== Ablations ==\n");
    let task = binary_task(60, 20, 21);

    // --- 1. Backend ablation on the 2-local observable strategy.
    println!("-- backend ablation (observable 2-local, 120 train / 40 test) --");
    let mut table = TablePrinter::new(&["backend", "train acc", "test acc"]);
    for (name, backend) in [
        ("exact", FeatureBackend::Exact),
        (
            "shots 256",
            FeatureBackend::Shots {
                shots: 256,
                seed: 3,
            },
        ),
        (
            "shots 4096",
            FeatureBackend::Shots {
                shots: 4096,
                seed: 3,
            },
        ),
        (
            "shadows 4096",
            FeatureBackend::Shadows {
                snapshots: 4096,
                groups: 8,
                seed: 3,
            },
        ),
    ] {
        let (_, tr, te) = fit_eval(Strategy::observable_construction(4, 2), backend, &task);
        table.row(&[
            name.into(),
            format!("{:.1}%", tr * 100.0),
            format!("{:.1}%", te * 100.0),
        ]);
    }
    table.print();

    // --- 2. Pruning-threshold sweep on the order-2 ansatz expansion.
    println!("\n-- gradient-pruning threshold vs ensemble size and accuracy --");
    let base = Strategy::ansatz_expansion(fig8_ansatz(4), 2, Strategy::default_observable(4));
    let mut table = TablePrinter::new(&["threshold", "m after pruning", "train acc", "test acc"]);
    for thr in [0.0, 1e-6, 1e-3, 1e-2] {
        let report = prune_by_gradient(&base, &task.train_x, &Strategy::default_observable(4), thr);
        let pruned = base.clone().with_shifts(report.kept_shifts.clone());
        let (m, tr, te) = fit_eval(pruned, FeatureBackend::Exact, &task);
        table.row(&[
            format!("{thr:.0e}"),
            m.to_string(),
            format!("{:.1}%", tr * 100.0),
            format!("{:.1}%", te * 100.0),
        ]);
    }
    table.print();

    // --- 3. Split hybrid vs full hybrid.
    println!("\n-- §IV.C split construction vs full hybrid (1-order + 1-local) --");
    let mut table = TablePrinter::new(&["strategy", "m", "train acc", "test acc"]);
    let (m, tr, te) = fit_eval(
        Strategy::hybrid(fig8_ansatz(4), 1, 1),
        FeatureBackend::Exact,
        &task,
    );
    table.row(&[
        "full hybrid".into(),
        m.to_string(),
        format!("{:.1}%", tr * 100.0),
        format!("{:.1}%", te * 100.0),
    ]);
    let (m, tr, te) = fit_eval(
        Strategy::hybrid_split(fig8_ansatz(4), 8, 1, 1),
        FeatureBackend::Exact,
        &task,
    );
    table.row(&[
        "split (U_A only)".into(),
        m.to_string(),
        format!("{:.1}%", tr * 100.0),
        format!("{:.1}%", te * 100.0),
    ]);
    table.print();

    // --- 4. Exact depolarizing noise on the feature layer.
    println!("\n-- exact-channel depolarizing noise vs accuracy (1-local features) --");
    let strategy = Strategy::observable_construction(4, 1);
    let observables = strategy.observables().to_vec();
    let mut table = TablePrinter::new(&["depol p per gate", "train acc"]);
    for p_noise in [0.0, 0.02, 0.08, 0.2] {
        // Build features through the density-matrix simulator with an
        // exact depolarizing kick after every encoding gate.
        let rows: Vec<Vec<f64>> = task
            .train_x
            .iter()
            .map(|x| {
                let circuit = column_encoding(x, 4);
                let mut dm = qsim::DensityMatrix::zero_state(4);
                for g in circuit.gates() {
                    dm.apply_gate(g);
                    if p_noise > 0.0 {
                        for q in g.qubits() {
                            dm.depolarize(q, p_noise);
                        }
                    }
                }
                observables.iter().map(|o| dm.expectation(o)).collect()
            })
            .collect();
        let mat = linalg::Mat::from_rows(&rows);
        let head = ml::LogisticRegression::fit(&mat, &task.train_y, LogisticConfig::default());
        let acc = ml::accuracy(&task.train_y, &head.predict_proba(&mat));
        table.row(&[format!("{p_noise:.2}"), format!("{:.1}%", acc * 100.0)]);
    }
    table.print();
    println!("\nshape: accuracy degrades smoothly with noise — the convex head cannot");
    println!("amplify errors (Theorem 4), unlike gradient loops on a noisy landscape.");
}

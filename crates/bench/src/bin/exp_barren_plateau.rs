//! The motivating figure: barren plateaus in variational training
//! (paper §I/§III.C) vs the post-variational alternative.
//!
//! Produces the gradient-variance-vs-width curve for global and local
//! observables on random circuits — the exponential decay that makes
//! gradient-based training of `U(θ)` hopeless at scale — and contrasts it
//! with the conditioning of the post-variational feature matrix on the
//! same widths, which is what the convex head actually depends on.
//!
//! Run: `cargo run -p bench --bin exp_barren_plateau --release`

use bench::TablePrinter;
use linalg::svd::Svd;
use pvqnn::barren::barren_sweep;
use pvqnn::encoding::column_encoding;
use pvqnn::features::{FeatureBackend, FeatureGenerator};
use pvqnn::strategy::Strategy;

fn main() {
    println!("== Barren plateaus: Var[∂⟨O⟩/∂θ] vs circuit width ==\n");
    let widths = [2usize, 3, 4, 5, 6, 7, 8];
    let sweep = barren_sweep(&widths, 200, 17);
    let mut table = TablePrinter::new(&["qubits", "Var[grad] global Z⊗…⊗Z", "Var[grad] local Z₀"]);
    for p in &sweep {
        table.row(&[
            p.n.to_string(),
            format!("{:.3e}", p.var_global),
            format!("{:.3e}", p.var_local),
        ]);
    }
    table.print();

    // Exponential-decay fit for the global observable: log₂ slope.
    let first = &sweep[0];
    let last = &sweep[sweep.len() - 1];
    let slope = ((last.var_global / first.var_global).log2()) / (last.n as f64 - first.n as f64);
    println!("\nglobal-observable decay rate: {slope:.2} bits/qubit (≈ −1 ⇒ Var ~ 2^−n)");

    // Post-variational contrast: the quantity that matters for the convex
    // head is the conditioning of Q, which stays benign as n grows.
    println!("\n-- conditioning of the post-variational feature matrix (L=1 observables) --");
    let mut table = TablePrinter::new(&["qubits", "m", "κ(Q)", "σ_min(Q)"]);
    for &n in &[2usize, 4, 6, 8] {
        let data: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                (0..4 * n)
                    .map(|j| 0.3 + 0.4 * ((i * 13 + j * 7) % 29) as f64 / 29.0 * 5.0)
                    .collect()
            })
            .collect();
        let generator = FeatureGenerator::new(
            Strategy::observable_construction(n, 1),
            FeatureBackend::Exact,
        );
        let q = generator.generate(&data);
        let svd = Svd::compute(&q);
        table.row(&[
            n.to_string(),
            q.cols().to_string(),
            format!("{:.1}", svd.cond()),
            format!("{:.3e}", svd.sigma_min_nonzero()),
        ]);
        // Silence unused warning for encoding helper used implicitly.
        let _ = column_encoding(&data[0], n);
    }
    table.print();
    println!("\npaper reference: [14, 15] — global-cost gradients vanish exponentially in n;");
    println!("the post-variational convex program replaces them with a well-conditioned LS fit.");
}

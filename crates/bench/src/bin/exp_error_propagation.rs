//! Empirical verification of **Theorems 3 and 4** on a real post-
//! variational feature matrix: perturb `Q` entry-wise by ε_H, refit, and
//! compare the excess loss `ΔL_RMSE` against the guarantees.
//!
//! Run: `cargo run -p bench --bin exp_error_propagation --release`

use bench::{binary_task, TablePrinter};
use pvqnn::errorprop::{
    delta_rmse_closed_form, delta_rmse_constrained, perturb_uniform, theorem3_threshold,
    theorem4_threshold,
};
use pvqnn::features::{FeatureBackend, FeatureGenerator};
use pvqnn::strategy::Strategy;

fn main() {
    println!("== Theorems 3–4: error propagation through the linear head ==\n");
    // A real Q: observable-construction L=2 on 60 coat/shirt samples.
    let task = binary_task(30, 0, 5);
    let generator = FeatureGenerator::new(
        Strategy::observable_construction(4, 2),
        FeatureBackend::Exact,
    );
    let q = generator.generate(&task.train_x);
    let y: Vec<f64> = task.train_y.iter().map(|&l| 2.0 * l - 1.0).collect();
    let (d, m) = q.shape();
    println!("feature matrix: d = {d} samples × m = {m} neurons\n");

    // --- Sweep ε_H for the unconstrained (pinv) head.
    println!("-- unconstrained closed form (Theorem 3 regime) --");
    let mut table = TablePrinter::new(&["ε_H", "mean ΔL", "max ΔL over 10 seeds"]);
    for &eps_h in &[1e-4, 1e-3, 1e-2, 5e-2, 1e-1] {
        let (mut sum, mut max) = (0.0f64, 0.0f64);
        for seed in 0..10 {
            let dl = delta_rmse_closed_form(&q, &perturb_uniform(&q, eps_h, seed), &y);
            sum += dl;
            max = max.max(dl);
        }
        table.row(&[
            format!("{eps_h:.0e}"),
            format!("{:.5}", sum / 10.0),
            format!("{max:.5}"),
        ]);
    }
    table.print();

    // --- Theorem 3 bound check.
    let eps = 0.05;
    let probe = perturb_uniform(&q, 1e-9, 0);
    let thr3 = theorem3_threshold(&q, &probe, &y, eps);
    println!("\nTheorem 3: for ε = {eps}, admissible ‖Q̂−Q‖_max < {thr3:.3e}");
    let mut worst = 0.0f64;
    for seed in 0..20 {
        let q_hat = perturb_uniform(&q, thr3 * 0.99, seed);
        worst = worst.max(delta_rmse_closed_form(&q, &q_hat, &y));
    }
    println!(
        "  measured worst ΔL over 20 perturbations at the threshold: {worst:.3e}  (bound: {eps})"
    );
    assert!(worst < eps, "Theorem 3 violated!");
    println!("  ✓ bound holds");

    // --- Theorem 4 (constrained) check.
    let thr4 = theorem4_threshold(eps, m);
    println!("\nTheorem 4: constrained ‖α‖₂ ≤ 1 admits the larger ε_H = ε/(2√m) = {thr4:.3e}");
    let mut worst = 0.0f64;
    for seed in 0..5 {
        let q_hat = perturb_uniform(&q, thr4 * 0.99, seed);
        worst = worst.max(delta_rmse_constrained(&q, &q_hat, &y, 1.0));
    }
    println!("  measured worst constrained ΔL over 5 perturbations: {worst:.3e}  (bound: {eps})");
    println!(
        "  ratio theorem4/theorem3 admissible noise: {:.1}×",
        thr4 / thr3
    );
    println!("\npaper reference: the constraint buys O(m)→O(√m)-free measurement budgets");
    println!("(Eq. (38) vs Eq. (36)), i.e. far larger tolerable per-entry noise.");
}

//! The fault-injection experiment: deterministic chaos schedules
//! replayed against the simulated QPU pool, measuring availability and
//! tail latency while devices die, flap, and straggle.
//!
//! Run:        `cargo run -p bench --bin exp_faults --release`
//! Smoke (CI): `cargo run -p bench --bin exp_faults --release -- --smoke`
//! Gate (CI):  `-- --smoke --baseline <committed BENCH_scaling.json>`
//!
//! Every schedule is a [`hpcq::FaultSchedule`] pinned to simulated time,
//! so the chaos — outage windows, degraded phases, flapping — replays
//! bit-for-bit on any host. Four scenarios:
//!
//! 1. **single-device outage** — one device of four goes dark mid-batch;
//!    retries + failover must keep availability ≥ 99% (gated metric).
//! 2. **rolling outages** — each device takes its turn being down.
//! 3. **straggler storm** — half the pool runs 5× slow; hedged dispatch
//!    races replicas on the healthy half.
//! 4. **flapping device** — short on/off outage bursts; the circuit
//!    breaker quarantines the flapper and probes it back in.
//!
//! Two headline metrics are merged into `BENCH_scaling.json` under the
//! 25% regression gate: `faults_availability` (higher is better) and
//! `faults_p99_during_outage_ms` (lower is better — completion latency
//! of jobs finishing inside the outage window, i.e. how well the pool
//! routes around the dead device while it is dead).

use bench::{baseline_gate_failures, read_numbers, ScalingReport, TablePrinter};
use hpcq::{
    outcome_id, CircuitJob, FaultSchedule, JobOutcome, PoolReport, QpuConfig, QpuPool,
    SchedulePolicy,
};
use pauli::{local_paulis, PauliString};
use qsim::{Circuit, Gate};
use std::path::Path;

/// Gate tolerance, matching exp_scaling's.
const REGRESSION_TOLERANCE: f64 = 0.25;

/// `(key, higher_is_better)` for the baseline gate.
const GATED_METRICS: [(&str, bool); 2] = [
    ("faults_availability", true),
    ("faults_p99_during_outage_ms", false),
];

/// Pool size for every scenario.
const DEVICES: usize = 4;

/// Single-device outage window (simulated ns): device 0 is dark from
/// 100 µs to 600 µs — long enough that its queued jobs must fail over.
const OUTAGE_START_NS: u64 = 100_000;
const OUTAGE_END_NS: u64 = 600_000;

/// One 8-qubit circuit job per id — heavy enough that the latency model
/// dominates scheduling noise, light enough for the CI smoke budget.
fn chaos_jobs(n: usize) -> Vec<CircuitJob> {
    let obs = local_paulis(8, 1);
    (0..n as u64)
        .map(|id| {
            let mut c = Circuit::new(8);
            for layer in 0..4 {
                for q in 0..8 {
                    c.push(Gate::Ry(q, 0.07 * (id as f64 + layer as f64 + q as f64)));
                }
                for q in 0..7 {
                    c.push(Gate::Cnot {
                        control: q,
                        target: q + 1,
                    });
                }
            }
            let obs: Vec<PauliString> = obs.clone();
            CircuitJob::new(id, c, obs, None)
        })
        .collect()
}

/// A pool where device `d` carries `schedules[d]`.
fn chaos_pool(schedules: Vec<FaultSchedule>, policy: SchedulePolicy) -> QpuPool {
    let configs: Vec<QpuConfig> = schedules
        .into_iter()
        .map(|faults| QpuConfig {
            faults,
            ..Default::default()
        })
        .collect();
    QpuPool::heterogeneous(configs, policy)
}

/// Per-scenario outcome summary.
struct ScenarioResult {
    completed: usize,
    total: usize,
    report: PoolReport,
    outcomes: Vec<JobOutcome>,
}

impl ScenarioResult {
    fn availability(&self) -> f64 {
        self.completed as f64 / self.total as f64
    }
}

fn run_scenario(
    schedules: Vec<FaultSchedule>,
    policy: SchedulePolicy,
    n_jobs: usize,
) -> ScenarioResult {
    let mut pool = chaos_pool(schedules, policy);
    let jobs = chaos_jobs(n_jobs);
    let total = jobs.len();
    let (outcomes, report) = pool.execute_batch(jobs);
    assert_eq!(outcomes.len(), total, "no lost or duplicated jobs");
    let completed = outcomes.iter().filter(|o| o.is_ok()).count();
    ScenarioResult {
        completed,
        total,
        report,
        outcomes,
    }
}

/// p99 of completion latency (ms) over jobs finishing inside
/// `[window_start, window_end)`; falls back to the overall p99 when no
/// job completes inside the window.
fn p99_completion_ms(r: &ScenarioResult, window_start: u64, window_end: u64) -> f64 {
    let mut inside: Vec<u64> = r
        .outcomes
        .iter()
        .filter_map(|o| o.as_ref().ok())
        .map(|res| res.sim_completed_ns)
        .filter(|&t| t >= window_start && t < window_end)
        .collect();
    if inside.is_empty() {
        inside = r
            .outcomes
            .iter()
            .filter_map(|o| o.as_ref().ok())
            .map(|res| res.sim_completed_ns)
            .collect();
    }
    inside.sort_unstable();
    let idx = ((inside.len() as f64 * 0.99).ceil() as usize).saturating_sub(1);
    inside[idx.min(inside.len() - 1)] as f64 / 1e6
}

/// Scenario 1: device 0 dark for `[OUTAGE_START_NS, OUTAGE_END_NS)`.
fn single_outage_schedules() -> Vec<FaultSchedule> {
    let mut s = vec![FaultSchedule::none(); DEVICES];
    s[0] = FaultSchedule::none().with_outage(OUTAGE_START_NS, OUTAGE_END_NS);
    s
}

/// Scenario 2: each device takes a 250 µs turn being down.
fn rolling_schedules() -> Vec<FaultSchedule> {
    (0..DEVICES as u64)
        .map(|d| FaultSchedule::none().with_outage(d * 250_000, (d + 1) * 250_000))
        .collect()
}

/// Scenario 3: half the pool runs 5× slow for the first 2 ms.
fn straggler_schedules() -> Vec<FaultSchedule> {
    (0..DEVICES)
        .map(|d| {
            if d < DEVICES / 2 {
                FaultSchedule::none().with_degraded(0, 2_000_000, 5.0)
            } else {
                FaultSchedule::none()
            }
        })
        .collect()
}

/// Scenario 4: device 0 flaps — 120 µs down out of every 160 µs. Each
/// down-phase is long enough (6 failed 20 µs submissions) to cross the
/// breaker's consecutive-failure threshold and trip quarantine.
fn flapping_schedules() -> Vec<FaultSchedule> {
    let mut flapper = FaultSchedule::none();
    for k in 0..8u64 {
        flapper = flapper.with_outage(k * 160_000, k * 160_000 + 120_000);
    }
    let mut s = vec![FaultSchedule::none(); DEVICES];
    s[0] = flapper;
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let n_jobs = if smoke { 120 } else { 400 };
    let mut failures: Vec<String> = Vec::new();

    println!("-- chaos replay: {DEVICES} devices, {n_jobs} jobs, deterministic fault schedules --");

    // Reference: the same batch on a fault-free pool. Exact jobs never
    // touch a device rng, so every completed chaos result must be
    // bit-for-bit identical to this.
    let clean = run_scenario(
        vec![FaultSchedule::none(); DEVICES],
        SchedulePolicy::WorkStealing,
        n_jobs,
    );
    assert_eq!(
        clean.completed, clean.total,
        "fault-free pool completes all"
    );

    let mut table = TablePrinter::new(&[
        "scenario",
        "availability",
        "p99 in-window ms",
        "retries",
        "failovers",
        "hedges",
        "trips",
        "probes",
    ]);

    let scenarios: [(&str, Vec<FaultSchedule>, u64, u64); 4] = [
        (
            "single-device outage",
            single_outage_schedules(),
            OUTAGE_START_NS,
            OUTAGE_END_NS,
        ),
        ("rolling outages", rolling_schedules(), 0, 1_000_000),
        ("straggler storm", straggler_schedules(), 0, 2_000_000),
        ("flapping device", flapping_schedules(), 0, 1_280_000),
    ];

    let mut headline_availability = 1.0f64;
    let mut headline_p99_ms = 0.0f64;
    for (name, schedules, w0, w1) in scenarios {
        let r = run_scenario(schedules, SchedulePolicy::WorkStealing, n_jobs);
        let p99 = p99_completion_ms(&r, w0, w1);
        table.row(&[
            name.to_string(),
            format!("{:.2}%", r.availability() * 100.0),
            format!("{p99:.3}"),
            r.report.faults.retries.to_string(),
            r.report.faults.failovers.to_string(),
            format!(
                "{}/{}",
                r.report.faults.hedges_won, r.report.faults.hedges_launched
            ),
            r.report.faults.breaker_trips.to_string(),
            r.report.faults.probes.to_string(),
        ]);

        // Bit-for-bit: every job the chaos pool completed must carry the
        // values the fault-free pool computed for the same id.
        for (o, c) in r.outcomes.iter().zip(clean.outcomes.iter()) {
            assert_eq!(outcome_id(o), outcome_id(c), "id alignment");
            if let (Ok(chaos), Ok(clean)) = (o, c) {
                if chaos.values != clean.values {
                    failures.push(format!(
                        "{name}: job {} diverged from the fault-free pool",
                        chaos.id
                    ));
                    break;
                }
            }
        }

        if name == "single-device outage" {
            headline_availability = r.availability();
            headline_p99_ms = p99;
            if r.availability() < 0.99 {
                failures.push(format!(
                    "single-device outage availability {:.2}% below 99%",
                    r.availability() * 100.0
                ));
            }
            if r.report.faults.retries == 0 {
                failures.push("outage scenario exercised zero retries".to_string());
            }
        }
        if name == "straggler storm" && r.report.faults.hedges_launched == 0 {
            failures.push("straggler storm launched zero hedges".to_string());
        }
        if name == "flapping device" && r.report.faults.breaker_trips == 0 {
            failures.push("flapping device tripped zero breakers".to_string());
        }
    }
    table.print();

    // Cross-policy determinism: the chaos replay is scheduler-dependent
    // but seed-stable — the same (schedule, policy) pair reproduces the
    // same availability and fault counters.
    for policy in [
        SchedulePolicy::RoundRobin,
        SchedulePolicy::LeastLoaded,
        SchedulePolicy::WorkStealing,
    ] {
        let a = run_scenario(single_outage_schedules(), policy, n_jobs);
        let b = run_scenario(single_outage_schedules(), policy, n_jobs);
        if a.completed != b.completed || a.report.faults != b.report.faults {
            failures.push(format!("{policy:?} chaos replay was not deterministic"));
        }
        if a.availability() < 0.99 {
            failures.push(format!(
                "{policy:?} availability {:.2}% below 99% under single-device outage",
                a.availability() * 100.0
            ));
        }
    }
    println!("cross-policy: single-device outage replayed deterministically under all 3 policies");

    // Merge the fault metrics into BENCH_scaling.json (preserving what
    // exp_scaling / exp_serving already wrote there).
    let path = Path::new("BENCH_scaling.json");
    let mut report = ScalingReport::new();
    report.put_str("schema", "postvar.bench_scaling.v1");
    if let Ok(existing) = read_numbers(path) {
        for (key, value) in existing {
            if !key.starts_with("faults_") {
                report.put(&key, value);
            }
        }
    }
    report.put("faults_availability", headline_availability);
    report.put("faults_p99_during_outage_ms", headline_p99_ms);
    match report.write_to(path) {
        Ok(()) => println!("merged fault metrics into {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }

    if let Some(pos) = args.iter().position(|a| a == "--baseline") {
        let baseline_path = args
            .get(pos + 1)
            .expect("--baseline needs a path to the committed BENCH_scaling.json");
        failures.extend(baseline_gate_failures(
            &report,
            Path::new(baseline_path),
            &GATED_METRICS,
            REGRESSION_TOLERANCE,
        ));
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("faults check FAILED: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "fault checks passed (availability {:.2}% ≥ 99%, chaos results bit-identical to fault-free)",
        headline_availability * 100.0
    );
}

//! The SC-system experiment: strong scaling of the quantum feature stage
//! over the simulated QPU pool, scheduler comparison, and the hybrid
//! pipeline's stage breakdown — plus the single-node kernel metrics that
//! are written to `BENCH_scaling.json` so CI can track the performance
//! trajectory across PRs.
//!
//! Run: `cargo run -p bench --bin exp_scaling --release`
//! Smoke mode (kernel metrics + JSON only, used by CI):
//!      `cargo run -p bench --bin exp_scaling --release -- --smoke`
//! Regression gate (CI): `-- --smoke --baseline <committed BENCH_scaling.json>`
//!      exits nonzero when a tracked metric regresses by more than 25%.

use bench::{
    baseline_gate_failures, binary_task, feature_data, layer_circuit, mixed_pool_jobs,
    naive_feature_sweep, oversubscribed_batch, time_secs, ScalingReport, TablePrinter,
};
use hpcq::{strong_scaling, CircuitJob, HybridPipeline, QpuConfig, QpuPool, SchedulePolicy};
use pauli::local_paulis;
use pvqnn::ansatz::fig8_ansatz;
use pvqnn::features::{FeatureBackend, FeatureGenerator};
use pvqnn::strategy::Strategy;
use pvqnn::EncodingPlan;
use qsim::StateVector;
use std::path::Path;

/// Tracked metrics for the CI regression gate: `(key, higher_is_better)`.
/// A >25% move in the losing direction fails the smoke job.
const GATED_METRICS: [(&str, bool); 5] = [
    ("gate_apply_ns_per_amp", false),
    ("gate_fused_ns_per_amp", false),
    ("expectation_many_speedup", true),
    ("features_rows_per_s", true),
    ("encode_batched_rows_per_s", true),
];

/// Allowed relative regression before the gate trips.
const REGRESSION_TOLERANCE: f64 = 0.25;

/// Host cores needed before the absolute multicore gates apply: below
/// this the speedup factors read ~1.0× by construction (a 1-core
/// container cannot scale), so the gate would only measure the runner.
const MULTICORE_GATE_MIN_THREADS: usize = 4;

/// Builds the full Algorithm-1 job batch for the hybrid 1-order+1-local
/// strategy: one job per (data point, shift), all 13 observables shared.
fn feature_jobs(data: &[Vec<f64>], shots: Option<usize>) -> (Vec<CircuitJob>, usize) {
    let strategy = Strategy::hybrid(fig8_ansatz(4), 1, 1);
    let generator = FeatureGenerator::new(strategy, FeatureBackend::Exact);
    let p = generator.strategy().num_ansatze();
    let observables = generator.strategy().observables().to_vec();
    let mut jobs = Vec::with_capacity(data.len() * p);
    let mut id = 0u64;
    for (i, x) in data.iter().enumerate() {
        for a in 0..p {
            jobs.push(CircuitJob::new(
                id,
                generator.circuit_for(x, a),
                observables.clone(),
                shots,
            ));
            id += 1;
        }
        let _ = i;
    }
    (jobs, p)
}

/// A heavier device-scale workload for the strong-scaling sweep: 13-qubit
/// encoded states (8 k amplitudes — deliberately *below* qsim's internal
/// rayon threshold so per-job kernels stay serial and parallelism comes
/// only from the device pool) with a 1-local observable family. Each job
/// costs milliseconds, the regime an actual QPU pool operates in.
fn heavy_jobs(count: usize) -> Vec<CircuitJob> {
    let n = 13;
    let observables: Vec<pauli::PauliString> = pauli::local_paulis(n, 1);
    (0..count as u64)
        .map(|id| {
            let x: Vec<f64> = (0..4 * n)
                .map(|j| 0.2 + 0.31 * ((id as usize * 7 + j * 3) % 17) as f64)
                .collect();
            let mut c = pvqnn::encoding::column_encoding(&x, n);
            for q in 0..n {
                c.push(qsim::Gate::Cnot {
                    control: q,
                    target: (q + 1) % n,
                });
            }
            CircuitJob::new(id, c, observables.clone(), None)
        })
        .collect()
}

/// Measures the single-node kernel metrics and writes `BENCH_scaling.json`.
///
/// Metrics: gate-apply ns/amplitude (raw and gate-fused), batched-SoA
/// vs point-by-point encoding throughput, feature rows/s (exact and
/// batched finite-shot backends), shadow estimates/s, the
/// fused-vs-per-term expectation speedup, the encoding-state-reuse
/// speedup of `FeatureGenerator::generate` (both single-thread), the
/// thread-pool scaling factor on a large gate kernel, and the
/// shared-executor vs oversubscribed device-pool comparison on mixed
/// job sizes.
fn kernel_metrics() -> ScalingReport {
    println!("-- single-node kernel metrics (written to BENCH_scaling.json) --");
    let threads = rayon::current_num_threads();
    let host_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut report = ScalingReport::new();
    report.put_str("schema", "postvar.bench_scaling.v1");
    report.put("threads", threads as f64);
    // The physical core count decides whether the absolute multicore
    // gates (thread_pool_speedup, pool_shared_speedup) are meaningful on
    // this runner.
    report.put("host_threads", host_threads as f64);

    // Gate application cost per amplitude: one dense layer on 2^18 amps.
    let n = 18;
    let circuit = layer_circuit(n);
    let amps = (1usize << n) as f64;
    let secs = time_secs(3, || StateVector::from_circuit(&circuit));
    let gate_ns_per_amp = secs * 1e9 / (amps * circuit.len() as f64);
    println!(
        "gate apply:          {gate_ns_per_amp:>9.3} ns/amp ({} gates, 2^{n} amps)",
        circuit.len()
    );
    report.put("gate_apply_ns_per_amp", gate_ns_per_amp);

    // The same circuit through the one-time compiler: single-qubit runs
    // collapse to one 2×2 per wire, entanglers pass through to their
    // specialized kernels. Normalized by *source* gates (the sweeps the
    // uncompiled path performs) so the number is directly comparable to
    // `gate_apply_ns_per_amp` above.
    let compiled = qsim::compile(&circuit);
    let fused_secs = time_secs(3, || StateVector::from_compiled(&compiled));
    let fused_ns_per_amp = fused_secs * 1e9 / (amps * compiled.source_gates() as f64);
    let fusion_ratio = compiled.source_gates() as f64 / compiled.num_ops() as f64;
    println!(
        "gate apply (fused):  {fused_ns_per_amp:>9.3} ns/amp ({} ops from {} gates, {fusion_ratio:.2}x fusion)",
        compiled.num_ops(),
        compiled.source_gates()
    );
    assert!(
        fused_ns_per_amp < gate_ns_per_amp,
        "fused apply ({fused_ns_per_amp:.3} ns/amp) must beat the unfused path \
         ({gate_ns_per_amp:.3} ns/amp)"
    );
    report.put("gate_fused_ns_per_amp", fused_ns_per_amp);
    report.put("gate_fusion_ratio", fusion_ratio);

    // Thread-pool scaling on the same workload (1 thread vs all).
    let t1 = rayon::with_num_threads(1, || time_secs(3, || StateVector::from_circuit(&circuit)));
    let tn = time_secs(3, || StateVector::from_circuit(&circuit));
    let pool_speedup = t1 / tn.max(1e-12);
    println!("thread pool:         {pool_speedup:>9.2}x speedup at {threads} thread(s)");
    report.put("thread_pool_speedup", pool_speedup);

    // Fused multi-observable expectation vs the per-term loop: 16-qubit
    // state, all 49 one-local Paulis (the acceptance workload).
    let state = StateVector::from_circuit(&layer_circuit(16));
    let fam = local_paulis(16, 1);
    let t_per_term = time_secs(3, || fam.iter().map(|p| state.expectation(p)).sum::<f64>());
    let t_fused = time_secs(3, || state.expectation_many(&fam).iter().sum::<f64>());
    let fused_speedup = t_per_term / t_fused.max(1e-12);
    println!(
        "expectation_many:    {fused_speedup:>9.2}x vs per-term ({} observables, 16 qubits)",
        fam.len()
    );
    report.put("expectation_many_speedup", fused_speedup);
    report.put("expectation_many_observables", fam.len() as f64);

    // Feature generation throughput (hybrid 1-order + 1-local, exact), and
    // the encoding-state-reuse win over re-simulating S(x) per shift —
    // both pinned to one thread so the ratio isolates the reuse.
    let data = feature_data(16);
    let generator = FeatureGenerator::new(
        Strategy::hybrid(fig8_ansatz(4), 1, 1),
        FeatureBackend::Exact,
    );
    let t_reuse = rayon::with_num_threads(1, || time_secs(3, || generator.generate(&data)));
    let rows_per_s = data.len() as f64 / time_secs(3, || generator.generate(&data));
    let t_naive = rayon::with_num_threads(1, || {
        time_secs(3, || naive_feature_sweep(&generator, &data))
    });
    let reuse_speedup = t_naive / t_reuse.max(1e-12);
    println!("feature rows:        {rows_per_s:>9.1} rows/s (hybrid 1o+1l, exact)");
    println!("encoding reuse:      {reuse_speedup:>9.2}x vs re-simulating per shift (1 thread)");
    report.put("features_rows_per_s", rows_per_s);
    report.put("feature_reuse_speedup", reuse_speedup);

    // Batched finite-shot feature throughput: the Shots backend samples
    // all shifts of a row in one pass (one RNG per row, one rotation +
    // CDF sampler per commuting observable group).
    let shot_generator = FeatureGenerator::new(
        Strategy::hybrid(fig8_ansatz(4), 1, 1),
        FeatureBackend::Shots {
            shots: 128,
            seed: 7,
        },
    );
    let shot_rows_per_s = data.len() as f64 / time_secs(3, || shot_generator.generate(&data));
    println!("feature rows (shots): {shot_rows_per_s:>8.1} rows/s (128 shots, batched sampling)");
    report.put("features_shots_rows_per_s", shot_rows_per_s);

    // Batched SoA encoding vs point-by-point: the serving shape (16
    // features on 4 qubits, the fig. 7 column encoding) over 256 points,
    // pinned to one thread so the ratio isolates the amplitude-major
    // layout rather than rayon fan-out.
    let enc_points = feature_data(256);
    let enc_refs: Vec<&[f64]> = enc_points.iter().map(Vec::as_slice).collect();
    let plan = EncodingPlan::new(16, 4);
    let t_point = rayon::with_num_threads(1, || {
        time_secs(3, || {
            enc_refs
                .iter()
                .map(|x| plan.encode_one(x))
                .collect::<Vec<_>>()
        })
    });
    let t_batch = rayon::with_num_threads(1, || time_secs(3, || plan.encode_batch(&enc_refs)));
    let encode_point_rows_per_s = enc_refs.len() as f64 / t_point.max(1e-12);
    let encode_batched_rows_per_s = enc_refs.len() as f64 / t_batch.max(1e-12);
    println!(
        "encode (pointwise):  {encode_point_rows_per_s:>9.0} states/s (16 features, 4 qubits, 1 thread)"
    );
    println!(
        "encode (batched):    {encode_batched_rows_per_s:>9.0} states/s ({:.2}x, amplitude-major SoA)",
        encode_batched_rows_per_s / encode_point_rows_per_s.max(1e-12)
    );
    assert!(
        encode_batched_rows_per_s > encode_point_rows_per_s,
        "batched SoA encode ({encode_batched_rows_per_s:.0} states/s) must beat the \
         point-by-point path ({encode_point_rows_per_s:.0} states/s)"
    );
    report.put("encode_pointwise_rows_per_s", encode_point_rows_per_s);
    report.put("encode_batched_rows_per_s", encode_batched_rows_per_s);

    // Devices + kernels sharing one executor vs the oversubscribed
    // baseline (private device threads, uncapped kernel fan-out) on a
    // mixed-size batch.
    let mixed = mixed_pool_jobs(17, 10, 4, 6, 8);
    let n_dev = 4;
    let t_shared = time_secs(2, || {
        let mut pool =
            QpuPool::homogeneous(n_dev, QpuConfig::default(), SchedulePolicy::WorkStealing);
        pool.execute_batch(mixed.clone())
    });
    let t_oversub = time_secs(2, || oversubscribed_batch(&mixed, n_dev));
    let pool_shared_speedup = t_oversub / t_shared.max(1e-12);
    println!(
        "pool executor share:  {pool_shared_speedup:>8.2}x vs oversubscribed ({n_dev} devices, mixed 17q/10q jobs)"
    );
    report.put("pool_shared_speedup", pool_shared_speedup);

    // Executor contention: many tiny scoped tasks, where virtually all
    // the time is queue traffic — the workload the lock-free Chase-Lev
    // deques and batched steals target. The steal-counter diff makes the
    // batching visible: tasks moved per successful steal operation.
    let tiny_tasks = 50 * 64;
    let tiny_round = || {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        for _ in 0..50 {
            rayon::scope(|s| {
                for _ in 0..64 {
                    let hits = &hits;
                    s.spawn(move || {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), tiny_tasks);
    };
    let (ops_before, moved_before) = rayon::executor_steal_stats();
    let t_tiny = time_secs(3, tiny_round);
    let (ops_after, moved_after) = rayon::executor_steal_stats();
    let tiny_per_s = tiny_tasks as f64 / t_tiny.max(1e-12);
    let steal_ops = ops_after.saturating_sub(ops_before);
    let tasks_per_op = if steal_ops > 0 {
        moved_after.saturating_sub(moved_before) as f64 / steal_ops as f64
    } else {
        // No steals at all (e.g. a 1-thread pool running everything
        // inline on the owner) — report the neutral ratio.
        1.0
    };
    println!("executor tiny tasks: {tiny_per_s:>9.0} tasks/s (64-task scopes, no kernel work)");
    println!(
        "steal batching:      {tasks_per_op:>9.2} tasks moved per steal op ({steal_ops} steals)"
    );
    report.put("executor_tiny_tasks_per_s", tiny_per_s);
    report.put("executor_steal_tasks_per_op", tasks_per_op);

    // Shadow estimation throughput: estimates/s over a shared snapshot set.
    let shadow_state = StateVector::from_circuit(&layer_circuit(4));
    let snapshots = shadows::ShadowProtocol::new(20_000, 7).acquire(&shadow_state);
    let est = shadows::ShadowEstimator::new(snapshots, 10);
    let shadow_fam = local_paulis(4, 2);
    let t_shadow = time_secs(3, || est.estimate_many(&shadow_fam));
    let est_per_s = shadow_fam.len() as f64 / t_shadow.max(1e-12);
    println!(
        "shadow estimates:    {est_per_s:>9.1} est/s ({} observables, 20k snapshots)\n",
        shadow_fam.len()
    );
    report.put("shadows_est_per_s", est_per_s);

    let path = Path::new("BENCH_scaling.json");
    match report.write_to(path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
    report
}

/// Diffs the fresh metrics against a committed baseline report and
/// returns the human-readable failures (direction-aware, >25% moves in
/// the losing direction only — improvements never fail the gate).
fn baseline_regressions(fresh: &ScalingReport, baseline_path: &Path) -> Vec<String> {
    baseline_gate_failures(fresh, baseline_path, &GATED_METRICS, REGRESSION_TOLERANCE)
}

/// Absolute multicore scaling gates — only meaningful when the runner
/// actually has cores to scale over. On a ≥4-core host the shared
/// executor must deliver `thread_pool_speedup ≥ 2×` on the big gate
/// kernel and `pool_shared_speedup > 1×` against the oversubscribed
/// device-pool baseline; below that the check is skipped with a notice
/// (the factors read ~1.0× by construction in a 1-core container).
fn multicore_gate_failures(fresh: &ScalingReport) -> Vec<String> {
    let host_threads = fresh.get("host_threads").unwrap_or(1.0) as usize;
    if host_threads < MULTICORE_GATE_MIN_THREADS {
        println!(
            "multicore gate: skipped — runner has {host_threads} core(s), \
             needs ≥{MULTICORE_GATE_MIN_THREADS} for the speedup targets to apply"
        );
        return Vec::new();
    }
    let mut failures = Vec::new();
    match fresh.get("thread_pool_speedup") {
        Some(v) if v >= 2.0 => {}
        Some(v) => failures.push(format!(
            "thread_pool_speedup {v:.2} < 2.0 on a {host_threads}-core runner"
        )),
        None => failures.push("thread_pool_speedup missing from fresh report".to_string()),
    }
    match fresh.get("pool_shared_speedup") {
        Some(v) if v > 1.0 => {}
        Some(v) => failures.push(format!(
            "pool_shared_speedup {v:.2} ≤ 1.0 on a {host_threads}-core runner"
        )),
        None => failures.push("pool_shared_speedup missing from fresh report".to_string()),
    }
    if failures.is_empty() {
        println!("multicore gate: passed on {host_threads} cores (pool ≥2x, sharing >1x)");
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let report = kernel_metrics();
    if let Some(pos) = args.iter().position(|a| a == "--baseline") {
        let path = args
            .get(pos + 1)
            .expect("--baseline needs a path to the committed BENCH_scaling.json");
        let mut failures = baseline_regressions(&report, Path::new(path));
        failures.extend(multicore_gate_failures(&report));
        if failures.is_empty() {
            println!(
                "baseline check: all gated metrics within {:.0}%",
                REGRESSION_TOLERANCE * 100.0
            );
        } else {
            for f in &failures {
                eprintln!("baseline check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
    if args.iter().any(|a| a == "--smoke") {
        return;
    }
    println!("\n== HPC-QC system: strong scaling of the quantum feature stage ==\n");
    let task = binary_task(50, 0, 3);
    let (jobs, p) = feature_jobs(&task.train_x, Some(256));
    println!(
        "pipeline workload: {} jobs ({} samples × {p} shifted circuits), 13 observables, 256 shots each",
        jobs.len(),
        task.train_x.len()
    );

    // --- Strong scaling with the work-stealing scheduler on the heavy
    //     (14-qubit) workload.
    let heavy = heavy_jobs(256);
    println!(
        "scaling workload: {} jobs, 13-qubit states, {} observables each\n",
        heavy.len(),
        heavy[0].observables.len()
    );
    println!("-- strong scaling (work stealing, 13-qubit jobs) --");
    println!(
        "   host has {} cores: wall-clock speedup caps there; the QPU-side metric",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    );
    println!("   is the simulated pool makespan (devices are the parallel resource)\n");
    let counts = [1usize, 2, 4, 8];
    let points = strong_scaling(
        &heavy,
        &counts,
        QpuConfig::default(),
        SchedulePolicy::WorkStealing,
    );
    let base_makespan = points[0].sim_makespan_secs;
    let mut table = TablePrinter::new(&[
        "devices",
        "wall s",
        "wall speedup",
        "QPU makespan s",
        "QPU speedup",
        "QPU efficiency",
    ]);
    for pt in &points {
        let qpu_speedup = base_makespan / pt.sim_makespan_secs.max(1e-12);
        table.row(&[
            pt.devices.to_string(),
            format!("{:.3}", pt.wall_secs),
            format!("{:.2}×", pt.speedup),
            format!("{:.4}", pt.sim_makespan_secs),
            format!("{qpu_speedup:.2}×"),
            format!("{:.0}%", qpu_speedup / pt.devices as f64 * 100.0),
        ]);
    }
    table.print();

    // --- Scheduler comparison at 4 devices.
    println!("\n-- scheduler comparison (4 devices) --");
    let mut table = TablePrinter::new(&[
        "policy",
        "wall s",
        "sim makespan s",
        "utilization",
        "jobs/device (min..max)",
    ]);
    for policy in [
        SchedulePolicy::RoundRobin,
        SchedulePolicy::LeastLoaded,
        SchedulePolicy::WorkStealing,
    ] {
        let mut pool = QpuPool::homogeneous(4, QpuConfig::default(), policy);
        let (_, report) = pool.execute_batch(jobs.clone());
        let min = report.jobs_per_device.iter().min().unwrap();
        let max = report.jobs_per_device.iter().max().unwrap();
        table.row(&[
            format!("{policy:?}"),
            format!("{:.3}", report.wall_secs),
            format!("{:.3}", report.sim_makespan_secs),
            format!("{:.0}%", report.utilization * 100.0),
            format!("{min}..{max}"),
        ]);
    }
    table.print();

    // --- Hybrid pipeline stage breakdown.
    println!("\n-- hybrid pipeline: quantum stage vs classical convex stage --");
    let pool = QpuPool::homogeneous(4, QpuConfig::default(), SchedulePolicy::WorkStealing);
    let mut pipeline = HybridPipeline::new(pool);
    let labels = task.train_y.clone();
    let samples = task.train_x.len();
    let ((), report) = pipeline
        .run(jobs, |results| {
            // Classical stage: assemble Q (samples × p·q) and fit the head.
            let q_per_job = results[0].values.len();
            let rows: Vec<Vec<f64>> = (0..samples)
                .map(|i| {
                    let mut row = Vec::with_capacity(p * q_per_job);
                    for a in 0..p {
                        row.extend_from_slice(&results[i * p + a].values);
                    }
                    row
                })
                .collect();
            let mat = linalg::Mat::from_rows(&rows);
            let _model = ml::LogisticRegression::fit(&mat, &labels, ml::LogisticConfig::default());
        })
        .expect("healthy pool completes every job");
    println!(
        "quantum stage: {:.3}s ({:.0}% of total) | classical stage: {:.3}s | device util {:.0}%",
        report.quantum_secs,
        report.quantum_fraction() * 100.0,
        report.classical_secs,
        report.pool.utilization * 100.0
    );
    println!("\nSC framing: one non-interactive quantum batch (Table I) scales across the pool;");
    println!("the classical convex fit is a single host-side solve — no hybrid feedback loop.");
}

//! The SC-system experiment: strong scaling of the quantum feature stage
//! over the simulated QPU pool, scheduler comparison, and the hybrid
//! pipeline's stage breakdown.
//!
//! Run: `cargo run -p bench --bin exp_scaling --release`

use bench::{binary_task, TablePrinter};
use hpcq::{strong_scaling, CircuitJob, HybridPipeline, QpuConfig, QpuPool, SchedulePolicy};
use pvqnn::ansatz::fig8_ansatz;
use pvqnn::features::{FeatureBackend, FeatureGenerator};
use pvqnn::strategy::Strategy;

/// Builds the full Algorithm-1 job batch for the hybrid 1-order+1-local
/// strategy: one job per (data point, shift), all 13 observables shared.
fn feature_jobs(data: &[Vec<f64>], shots: Option<usize>) -> (Vec<CircuitJob>, usize) {
    let strategy = Strategy::hybrid(fig8_ansatz(4), 1, 1);
    let generator = FeatureGenerator::new(strategy, FeatureBackend::Exact);
    let p = generator.strategy().num_ansatze();
    let observables = generator.strategy().observables().to_vec();
    let mut jobs = Vec::with_capacity(data.len() * p);
    let mut id = 0u64;
    for (i, x) in data.iter().enumerate() {
        for a in 0..p {
            jobs.push(CircuitJob::new(
                id,
                generator.circuit_for(x, a),
                observables.clone(),
                shots,
            ));
            id += 1;
        }
        let _ = i;
    }
    (jobs, p)
}

/// A heavier device-scale workload for the strong-scaling sweep: 13-qubit
/// encoded states (8 k amplitudes — deliberately *below* qsim's internal
/// rayon threshold so per-job kernels stay serial and parallelism comes
/// only from the device pool) with a 1-local observable family. Each job
/// costs milliseconds, the regime an actual QPU pool operates in.
fn heavy_jobs(count: usize) -> Vec<CircuitJob> {
    let n = 13;
    let observables: Vec<pauli::PauliString> = pauli::local_paulis(n, 1);
    (0..count as u64)
        .map(|id| {
            let x: Vec<f64> = (0..4 * n)
                .map(|j| 0.2 + 0.31 * ((id as usize * 7 + j * 3) % 17) as f64)
                .collect();
            let mut c = pvqnn::encoding::column_encoding(&x, n);
            for q in 0..n {
                c.push(qsim::Gate::Cnot {
                    control: q,
                    target: (q + 1) % n,
                });
            }
            CircuitJob::new(id, c, observables.clone(), None)
        })
        .collect()
}

fn main() {
    println!("== HPC-QC system: strong scaling of the quantum feature stage ==\n");
    let task = binary_task(50, 0, 3);
    let (jobs, p) = feature_jobs(&task.train_x, Some(256));
    println!(
        "pipeline workload: {} jobs ({} samples × {p} shifted circuits), 13 observables, 256 shots each",
        jobs.len(),
        task.train_x.len()
    );

    // --- Strong scaling with the work-stealing scheduler on the heavy
    //     (14-qubit) workload.
    let heavy = heavy_jobs(256);
    println!(
        "scaling workload: {} jobs, 13-qubit states, {} observables each\n",
        heavy.len(),
        heavy[0].observables.len()
    );
    println!("-- strong scaling (work stealing, 13-qubit jobs) --");
    println!(
        "   host has {} cores: wall-clock speedup caps there; the QPU-side metric",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    );
    println!("   is the simulated pool makespan (devices are the parallel resource)\n");
    let counts = [1usize, 2, 4, 8];
    let points = strong_scaling(
        &heavy,
        &counts,
        QpuConfig::default(),
        SchedulePolicy::WorkStealing,
    );
    let base_makespan = points[0].sim_makespan_secs;
    let mut table = TablePrinter::new(&[
        "devices",
        "wall s",
        "wall speedup",
        "QPU makespan s",
        "QPU speedup",
        "QPU efficiency",
    ]);
    for pt in &points {
        let qpu_speedup = base_makespan / pt.sim_makespan_secs.max(1e-12);
        table.row(&[
            pt.devices.to_string(),
            format!("{:.3}", pt.wall_secs),
            format!("{:.2}×", pt.speedup),
            format!("{:.4}", pt.sim_makespan_secs),
            format!("{qpu_speedup:.2}×"),
            format!("{:.0}%", qpu_speedup / pt.devices as f64 * 100.0),
        ]);
    }
    table.print();

    // --- Scheduler comparison at 4 devices.
    println!("\n-- scheduler comparison (4 devices) --");
    let mut table = TablePrinter::new(&[
        "policy",
        "wall s",
        "sim makespan s",
        "utilization",
        "jobs/device (min..max)",
    ]);
    for policy in [
        SchedulePolicy::RoundRobin,
        SchedulePolicy::LeastLoaded,
        SchedulePolicy::WorkStealing,
    ] {
        let mut pool = QpuPool::homogeneous(4, QpuConfig::default(), policy);
        let (_, report) = pool.execute_batch(jobs.clone());
        let min = report.jobs_per_device.iter().min().unwrap();
        let max = report.jobs_per_device.iter().max().unwrap();
        table.row(&[
            format!("{policy:?}"),
            format!("{:.3}", report.wall_secs),
            format!("{:.3}", report.sim_makespan_secs),
            format!("{:.0}%", report.utilization * 100.0),
            format!("{min}..{max}"),
        ]);
    }
    table.print();

    // --- Hybrid pipeline stage breakdown.
    println!("\n-- hybrid pipeline: quantum stage vs classical convex stage --");
    let pool = QpuPool::homogeneous(4, QpuConfig::default(), SchedulePolicy::WorkStealing);
    let mut pipeline = HybridPipeline::new(pool);
    let labels = task.train_y.clone();
    let samples = task.train_x.len();
    let ((), report) = pipeline.run(jobs, |results| {
        // Classical stage: assemble Q (samples × p·q) and fit the head.
        let q_per_job = results[0].values.len();
        let rows: Vec<Vec<f64>> = (0..samples)
            .map(|i| {
                let mut row = Vec::with_capacity(p * q_per_job);
                for a in 0..p {
                    row.extend_from_slice(&results[i * p + a].values);
                }
                row
            })
            .collect();
        let mat = linalg::Mat::from_rows(&rows);
        let _model = ml::LogisticRegression::fit(&mat, &labels, ml::LogisticConfig::default());
    });
    println!(
        "quantum stage: {:.3}s ({:.0}% of total) | classical stage: {:.3}s | device util {:.0}%",
        report.quantum_secs,
        report.quantum_fraction() * 100.0,
        report.classical_secs,
        report.pool.utilization * 100.0
    );
    println!("\nSC framing: one non-interactive quantum batch (Table I) scales across the pool;");
    println!("the classical convex fit is a single host-side solve — no hybrid feedback loop.");
}

//! The serving experiment: deterministic load generation over the
//! micro-batching inference server — a closed-loop throughput/latency
//! comparison against the unbatched single-request baseline, plus the
//! multi-tenant overload phases: a flood-isolation measurement (one
//! tenant at ~10× its fair share must not move a well-behaved tenant's
//! tail), a scale-out phase (millions of simulated users through a
//! consistent-hash shard fleet, swept over shard counts to find where
//! coordination dominates), and trace-replay scenarios with windowed
//! time-series output.
//!
//! Run:        `cargo run -p bench --bin exp_serving --release`
//! Smoke (CI): `cargo run -p bench --bin exp_serving --release -- --smoke`
//! Gate (CI):  `-- --smoke --baseline <committed BENCH_scaling.json>`
//! Scenarios:  `-- --smoke --scenario burst|diurnal|flash|overload+outage`
//!
//! The serving metrics are **merged into** `BENCH_scaling.json`
//! (written beforehand by `exp_scaling --smoke` in CI), so one artifact
//! tracks the whole performance trajectory. Everything here runs on the
//! server's simulated clock with seeded workloads, so the metrics are
//! bit-for-bit reproducible across hosts — the smoke assertions
//! (micro-batching beats the single-request baseline; the Zipf stream
//! hits the cache; flooded tenants stay isolated) and the >25% baseline
//! gate can never flake. Scenario mode replays one named workload and
//! asserts its robustness properties without touching the report.

use bench::{baseline_gate_failures, read_numbers, ScalingReport, TablePrinter};
use pvqnn::features::FeatureBackend;
use pvqnn::model::RegressorMode;
use pvqnn::{FeatureGenerator, PostVarRegressor, Strategy};
use serve::{
    demo_catalogue, replay_trace, run_closed_loop, synthesize_trace, BrownoutLevel, FeatureEngine,
    LoadGenConfig, LoadReport, MonitorSample, Prediction, RateProfile, Rejected, Router,
    RouterConfig, Server, ServerConfig, ServerStats, TenantId, TenantLoad,
};
use std::path::Path;

/// Gate tolerance, matching exp_scaling's.
const REGRESSION_TOLERANCE: f64 = 0.25;

/// `(key, higher_is_better)` for the baseline gate.
const GATED_METRICS: [(&str, bool); 6] = [
    ("serving_rows_per_s", true),
    ("serving_p99_ms", false),
    ("serving_tenant_isolation", false),
    ("serving_overload_goodput_rows_per_s", true),
    ("serving_sharded_rows_per_s", true),
    ("serving_shard_imbalance", false),
];

/// Distinct data points the request stream draws from.
const CATALOGUE: usize = 64;

fn catalogue() -> Vec<Vec<f64>> {
    demo_catalogue(CATALOGUE)
}

fn model() -> PostVarRegressor {
    let data = catalogue();
    let y: Vec<f64> = (0..CATALOGUE).map(|i| (i as f64 * 0.31).sin()).collect();
    let generator = FeatureGenerator::new(
        Strategy::observable_construction(4, 1),
        FeatureBackend::Exact,
    );
    PostVarRegressor::fit(generator, &data, &y, RegressorMode::Ridge(1e-6))
}

/// Reference predictions per catalogue index, from standalone `predict`
/// calls — the bit-for-bit target every served response is checked
/// against.
fn expected_predictions(m: &PostVarRegressor, points: &[Vec<f64>]) -> Vec<Prediction> {
    points
        .iter()
        .map(|p| Prediction::Value(m.predict(std::slice::from_ref(p))[0]))
        .collect()
}

/// One closed-loop run over a fresh server.
fn run(config: ServerConfig, gen_cfg: &LoadGenConfig, points: &[Vec<f64>]) -> LoadReport {
    let server = Server::new(config);
    server.deploy(model());
    run_closed_loop(&server, points, gen_cfg)
}

/// The Zipf-skewed workload both measured phases share.
fn workload() -> LoadGenConfig {
    LoadGenConfig {
        clients: 8,
        total_requests: 2000,
        zipf_s: 1.1,
        seed: 42,
    }
}

/// Prints the windowed monitoring series of a replay.
fn print_series(samples: &[MonitorSample]) {
    let mut table = TablePrinter::new(&[
        "t (ms)",
        "depth",
        "level",
        "done",
        "shed",
        "hit rate",
        "per-tenant p99 (ms)",
    ]);
    for s in samples {
        let p99s = s
            .tenant_p99_ms
            .iter()
            .map(|(t, p)| format!("{t} {p:.2}"))
            .collect::<Vec<_>>()
            .join("  ");
        table.row(&[
            format!("{:.0}", s.t_ns as f64 / 1e6),
            s.queue_depth.to_string(),
            s.level.to_string(),
            s.completed.to_string(),
            s.shed.to_string(),
            format!("{:.0}%", s.cache_hit_rate * 100.0),
            p99s,
        ]);
    }
    table.print();
}

/// Prints the per-tenant accounting table of a finished run.
fn print_tenants(stats: &ServerStats) {
    let mut table = TablePrinter::new(&[
        "tenant",
        "offered",
        "served",
        "shed",
        "dropped",
        "avail",
        "p50 ms",
        "p99 ms",
        "cache hits",
    ]);
    for t in &stats.per_tenant {
        table.row(&[
            t.tenant.to_string(),
            t.submitted.to_string(),
            t.completed.to_string(),
            t.shed.to_string(),
            t.dropped.to_string(),
            format!("{:.1}%", t.availability() * 100.0),
            format!("{:.2}", t.p50_ms),
            format!("{:.2}", t.p99_ms),
            t.cache_hits.to_string(),
        ]);
    }
    table.print();
}

/// Serves every catalogue point once so a replay measures steady-state
/// overload, not the cold-cache transient (which would otherwise make
/// the first few batches ~13× slower and dominate a short horizon).
fn warm_cache(server: &Server, points: &[Vec<f64>]) {
    // Chunked so the warmup itself stays under even a small high-water
    // mark instead of tripping the ladder it exists to measure.
    for chunk in points.chunks(8) {
        let warmup: Vec<_> = chunk
            .iter()
            .map(|p| server.submit(p.clone()).expect("warmup admitted"))
            .collect();
        server.drain();
        for h in warmup {
            h.wait().expect("warmup served");
        }
    }
}

/// What the flood-isolation phase measured.
struct IsolationOutcome {
    /// Well-behaved tenant's p99 under attack ÷ its solo-run p99 —
    /// the `serving_tenant_isolation` gate metric (1.0 = unmoved).
    isolation: f64,
    /// Total goodput under the flood (rows/simulated s) — the
    /// `serving_overload_goodput_rows_per_s` gate metric.
    goodput: f64,
    /// Well-behaved tenant's availability under attack.
    availability: f64,
    /// Bitwise prediction divergences across both runs.
    mismatches: u64,
}

/// The flood-isolation measurement behind the acceptance criterion: a
/// well-behaved tenant is replayed solo to get its baseline tail, then
/// replayed again while a flooding tenant offers ~10× its fair share.
/// Weighted-fair admission + WRR batch slots must keep the victim's
/// availability and p99 flat, and every served prediction bit-for-bit.
fn flood_isolation(smoke: bool) -> IsolationOutcome {
    let horizon_ns: u64 = if smoke { 60_000_000 } else { 240_000_000 };
    let window_ns: u64 = horizon_ns / 12;
    let m = model();
    let points = catalogue();
    let expected = expected_predictions(&m, &points);
    let good = TenantLoad {
        tenant: TenantId(1),
        profile: RateProfile::Constant {
            rate_per_s: 20_000.0,
        },
        zipf_s: 1.1,
        deadline_ns: Some(20_000_000),
    };
    // ~10× the fair half-share of a service that sustains ~75k rows/s.
    let flood = TenantLoad {
        tenant: TenantId(2),
        profile: RateProfile::Constant {
            rate_per_s: 400_000.0,
        },
        zipf_s: 1.1,
        deadline_ns: Some(50_000_000),
    };
    // Per-tenant trace streams are independently seeded, so the good
    // tenant's arrivals are identical with and without the flood.
    let solo_trace = synthesize_trace(&[good], horizon_ns, points.len(), 2025);
    let attack_trace = synthesize_trace(&[good, flood], horizon_ns, points.len(), 2025);
    let run = |trace| {
        let server = Server::new(ServerConfig {
            queue_capacity: 256,
            high_water: 128,
            ..Default::default()
        });
        server.deploy(m.clone());
        server.set_tenant_weight(TenantId(1), 1);
        server.set_tenant_weight(TenantId(2), 1);
        warm_cache(&server, &points);
        replay_trace(&server, &points, trace, window_ns, Some(&expected))
    };
    let solo = run(&solo_trace);
    let attack = run(&attack_trace);
    let solo_t = solo.stats.tenant(TenantId(1)).expect("solo tenant row");
    let attack_t = attack.stats.tenant(TenantId(1)).expect("victim row");
    let flood_t = attack.stats.tenant(TenantId(2)).expect("flooder row");
    println!(
        "\n-- flood isolation: tenant 1 (20k/s, deadline 20ms) vs tenant 2 flooding 400k/s --"
    );
    println!(
        "solo:                p99 {:>7.2} ms | {:>6} served | availability {:.2}%",
        solo_t.p99_ms,
        solo_t.completed,
        solo_t.availability() * 100.0
    );
    println!(
        "under attack:        p99 {:>7.2} ms | {:>6} served | availability {:.2}% | flooder shed {} of {}",
        attack_t.p99_ms,
        attack_t.completed,
        attack_t.availability() * 100.0,
        flood_t.shed,
        flood_t.submitted,
    );
    println!(
        "\nattack-run monitor (window {} ms):",
        window_ns / 1_000_000
    );
    print_series(&attack.samples);
    print_tenants(&attack.stats);
    IsolationOutcome {
        isolation: attack_t.p99_ms / solo_t.p99_ms.max(1e-9),
        goodput: attack.goodput_rows_per_s,
        availability: attack_t.availability(),
        mismatches: solo.mismatches + attack.mismatches,
    }
}

/// What the sharded phase measured.
struct ShardedOutcome {
    /// Warm throughput of the 4-shard fleet (rows/simulated s) — the
    /// `serving_sharded_rows_per_s` gate metric.
    sharded_rows_per_s: f64,
    /// Warm throughput of one unsharded server on the same stream.
    single_rows_per_s: f64,
    /// Max-over-mean routed share across shards — the
    /// `serving_shard_imbalance` gate metric (1.0 = perfectly even).
    imbalance: f64,
    /// Bitwise divergences between sharded responses and standalone
    /// `predict` (must be zero: sharding is invisible in outputs).
    mismatches: u64,
    /// `(shards, rows_per_s)` from the shard-count sweep.
    sweep: Vec<(usize, f64)>,
    /// Shard count with peak swept throughput — past it, per-round
    /// coordination cost grows faster than the added service capacity.
    peak_shards: usize,
}

/// A catalogue wide enough that shard placement matters. Coordinates
/// are distinct across points (inner LCG mod a prime), stay well inside
/// `MAX_COORDINATE`, and are deterministic — so the ring placement, the
/// routed counts, and every simulated-time metric reproduce bit-for-bit.
fn sharded_catalogue(n: usize) -> Vec<Vec<f64>> {
    assert!(
        n <= 997,
        "point distinctness argument holds below the prime"
    );
    (0..n)
        .map(|i| {
            (0..16)
                .map(|j| 0.15 + 0.001 * ((i * 31 + j * 7) % 997) as f64)
                .collect()
        })
        .collect()
}

/// Drives `users` single-request users through a fleet of `shards`
/// servers behind the consistent-hash router, measuring warm
/// steady-state throughput on the shared simulated clock. Returns
/// `(rows_per_s, imbalance, mismatches)`.
fn drive_sharded(
    shards: usize,
    users: usize,
    points: &[Vec<f64>],
    m: &PostVarRegressor,
    expected: &[Prediction],
) -> (f64, f64, u64) {
    let router = Router::new(RouterConfig {
        shards,
        shard: ServerConfig {
            default_deadline_ns: 0,
            ..Default::default()
        },
        ..Default::default()
    });
    router.deploy(m.clone());
    // Warm every shard's cache so the measured window sees steady state,
    // not the one-time simulation cost of first contact with each point.
    for chunk in points.chunks(32 * shards) {
        let warmup: Vec<_> = chunk
            .iter()
            .map(|p| router.submit(p.clone()).expect("warmup admitted"))
            .collect();
        router.drain();
        for h in warmup {
            h.wait().expect("warmup served");
        }
    }
    let t0 = router.clock().now_ns();
    let c0 = router.stats().completed;
    // Waves sized for two full batches per shard per drain: each user
    // issues one request for their (hash-assigned) habitual data point.
    let wave = 32 * shards;
    let mut mismatches = 0u64;
    let mut u = 0usize;
    let mut inflight: Vec<(serve::ResponseHandle, usize)> = Vec::with_capacity(wave);
    while u < users {
        inflight.clear();
        for _ in 0..wave.min(users - u) {
            let pid = u.wrapping_mul(2654435761) % points.len();
            let tenant = TenantId((u % 32) as u32);
            let h = router
                .submit_for(tenant, points[pid].clone())
                .expect("steady stream admitted");
            inflight.push((h, pid));
            u += 1;
        }
        router.drain();
        for (h, pid) in inflight.drain(..) {
            let r = h.wait().expect("steady stream served");
            if r.prediction != expected[pid] {
                mismatches += 1;
            }
        }
    }
    let stats = router.stats();
    let elapsed_s = (router.clock().now_ns() - t0) as f64 / 1e9;
    let rows_per_s = (stats.completed - c0) as f64 / elapsed_s.max(1e-12);
    (rows_per_s, stats.shard_imbalance(), mismatches)
}

/// The scale-out phase: the same warm point stream through one
/// unsharded server and through consistent-hash fleets of growing size.
/// Every simulated user is one request; full mode pushes millions of
/// users through the measured 4-shard fleet. The sweep locates the
/// crossover where per-round coordination (2 network hops, plus
/// admission aggregation that polls every shard per dispatched row)
/// outgrows the added parallel service capacity.
fn sharded_phase(smoke: bool) -> ShardedOutcome {
    let users: usize = if smoke { 40_000 } else { 2_000_000 };
    let sweep_users: usize = if smoke { 12_000 } else { 200_000 };
    let points = sharded_catalogue(if smoke { 256 } else { 512 });
    let m = model();
    let expected = expected_predictions(&m, &points);

    println!("\n-- sharded serving: consistent-hash router over N shard servers --");
    // The unsharded reference on the identical stream: same server
    // config, same users, no router in front.
    let (single_rows_per_s, _, single_mismatches) = {
        let server = Server::new(ServerConfig {
            default_deadline_ns: 0,
            ..Default::default()
        });
        server.deploy(m.clone());
        warm_cache(&server, &points);
        let t0 = server.clock().now_ns();
        let c0 = server.stats().completed;
        let mut mismatches = 0u64;
        let mut u = 0usize;
        let mut inflight: Vec<(serve::ResponseHandle, usize)> = Vec::with_capacity(128);
        while u < users {
            inflight.clear();
            for _ in 0..128.min(users - u) {
                let pid = u.wrapping_mul(2654435761) % points.len();
                let tenant = TenantId((u % 32) as u32);
                let h = server
                    .submit_for(tenant, points[pid].clone())
                    .expect("single stream admitted");
                inflight.push((h, pid));
                u += 1;
            }
            server.drain();
            for (h, pid) in inflight.drain(..) {
                let r = h.wait().expect("single stream served");
                if r.prediction != expected[pid] {
                    mismatches += 1;
                }
            }
        }
        let elapsed_s = (server.clock().now_ns() - t0) as f64 / 1e9;
        let completed = server.stats().completed - c0;
        (completed as f64 / elapsed_s.max(1e-12), 1.0, mismatches)
    };

    // The gated configuration: 4 shards, full user population.
    let (sharded_rows_per_s, imbalance, sharded_mismatches) =
        drive_sharded(4, users, &points, &m, &expected);
    println!("unsharded server:    {single_rows_per_s:>9.0} rows/s on {users} simulated users");
    println!(
        "4-shard fleet:       {sharded_rows_per_s:>9.0} rows/s | {:.2}x | shard imbalance {imbalance:.3}",
        sharded_rows_per_s / single_rows_per_s.max(1e-12)
    );

    // Shard-count sweep: where does coordination start to dominate?
    let mut sweep: Vec<(usize, f64)> = Vec::new();
    for shards in [1usize, 2, 4, 8, 12, 16] {
        let (rows_per_s, _, _) = drive_sharded(shards, sweep_users, &points, &m, &expected);
        sweep.push((shards, rows_per_s));
    }
    let peak_shards = sweep
        .iter()
        .cloned()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(n, _)| n)
        .unwrap_or(1);
    let mut table = TablePrinter::new(&["shards", "rows/s", "vs single", "note"]);
    for &(n, r) in &sweep {
        let note = if n == peak_shards {
            "peak — coordination dominates past here"
        } else {
            ""
        };
        table.row(&[
            n.to_string(),
            format!("{r:.0}"),
            format!("{:.2}x", r / sweep[0].1.max(1e-12)),
            note.to_string(),
        ]);
    }
    table.print();
    println!(
        "per-round overhead grows ~N² with fleet admission polling; throughput peaks at {peak_shards} shards"
    );

    ShardedOutcome {
        sharded_rows_per_s,
        single_rows_per_s,
        imbalance,
        mismatches: single_mismatches + sharded_mismatches,
        sweep,
        peak_shards,
    }
}

/// Replays one named scenario and asserts its robustness properties.
/// Scenario mode never touches `BENCH_scaling.json` — it is a chaos /
/// inspection harness, not a metric source.
fn run_scenario(name: &str, smoke: bool) {
    let horizon_ns: u64 = if smoke { 60_000_000 } else { 240_000_000 };
    let window_ns: u64 = horizon_ns / 12;
    let m = model();
    let points = catalogue();
    let expected = expected_predictions(&m, &points);
    let steady = TenantLoad {
        tenant: TenantId(1),
        profile: RateProfile::Constant {
            rate_per_s: 15_000.0,
        },
        zipf_s: 1.1,
        deadline_ns: Some(20_000_000),
    };
    println!(
        "-- scenario {name}: trace replay over {} ms of simulated time --",
        horizon_ns / 1_000_000
    );
    let mut failures: Vec<String> = Vec::new();
    let report;
    let final_level;
    match name {
        "burst" | "flash" => {
            let attacker = if name == "burst" {
                TenantLoad {
                    tenant: TenantId(2),
                    profile: RateProfile::Burst {
                        base_per_s: 5_000.0,
                        burst_per_s: 400_000.0,
                        period_ns: 20_000_000,
                        burst_len_ns: 6_000_000,
                    },
                    zipf_s: 1.1,
                    deadline_ns: Some(50_000_000),
                }
            } else {
                TenantLoad {
                    tenant: TenantId(2),
                    profile: RateProfile::FlashCrowd {
                        base_per_s: 2_000.0,
                        peak_per_s: 500_000.0,
                        at_ns: horizon_ns / 4,
                        decay_ns: horizon_ns / 8,
                    },
                    zipf_s: 1.1,
                    deadline_ns: Some(50_000_000),
                }
            };
            let trace = synthesize_trace(&[steady, attacker], horizon_ns, points.len(), 7);
            let server = Server::new(ServerConfig {
                queue_capacity: 256,
                high_water: 128,
                ..Default::default()
            });
            server.deploy(m.clone());
            server.set_tenant_weight(TenantId(1), 1);
            server.set_tenant_weight(TenantId(2), 1);
            warm_cache(&server, &points);
            report = replay_trace(&server, &points, &trace, window_ns, Some(&expected));
            final_level = server.brownout_level();
            if report.stats.rejected_over_share == 0 {
                failures.push("the overload never tripped the brownout ladder".into());
            }
            if report.mismatches > 0 {
                failures.push(format!("{} bitwise mismatches", report.mismatches));
            }
            let victim = report.stats.tenant(TenantId(1)).expect("victim row");
            if victim.availability() < 0.99 {
                failures.push(format!(
                    "steady tenant availability {:.4} < 0.99 under {name}",
                    victim.availability()
                ));
            }
        }
        "diurnal" => {
            // Many small day/night tenants plus slack (deadline-free)
            // background traffic: the crest pushes the queue deep enough
            // to walk the defer rung, the trough lets it all drain.
            let mut loads: Vec<TenantLoad> = (1..=48)
                .map(|t| TenantLoad {
                    tenant: TenantId(t),
                    profile: RateProfile::Diurnal {
                        mean_per_s: 4_000.0,
                        swing: 1.0,
                        period_ns: horizon_ns / 2,
                    },
                    zipf_s: 1.1,
                    deadline_ns: Some(20_000_000),
                })
                .collect();
            loads.extend((49..=56).map(|t| TenantLoad {
                tenant: TenantId(t),
                profile: RateProfile::Diurnal {
                    mean_per_s: 2_000.0,
                    swing: 1.0,
                    period_ns: horizon_ns / 2,
                },
                zipf_s: 1.1,
                deadline_ns: None,
            }));
            let trace = synthesize_trace(&loads, horizon_ns, points.len(), 7);
            let server = Server::new(ServerConfig {
                queue_capacity: 64,
                high_water: 16,
                ..Default::default()
            });
            server.deploy(m.clone());
            warm_cache(&server, &points);
            report = replay_trace(&server, &points, &trace, window_ns, Some(&expected));
            final_level = server.brownout_level();
            if report.stats.rejected_over_share == 0 {
                failures.push("the crest never tripped the brownout ladder".into());
            }
            if report.stats.rejected_deferred == 0 {
                failures.push("slack traffic was never deferred at the crest".into());
            }
            if report.mismatches > 0 {
                failures.push(format!("{} bitwise mismatches", report.mismatches));
            }
        }
        "overload+outage" => {
            // The composed chaos scenario: a flooding tenant drives the
            // fairness ladder while QPU device 0 is down for the whole
            // run — the fault layer (retry/failover/degraded fallback)
            // and the brownout ladder must compose without a panic, with
            // typed sheds only.
            use hpcq::{
                FaultPolicy, FaultSchedule, QpuConfig, QpuPool, RetryPolicy, SchedulePolicy,
            };
            use std::sync::Mutex;
            let flood = TenantLoad {
                tenant: TenantId(2),
                profile: RateProfile::Burst {
                    base_per_s: 20_000.0,
                    burst_per_s: 400_000.0,
                    period_ns: 20_000_000,
                    burst_len_ns: 8_000_000,
                },
                zipf_s: 1.1,
                deadline_ns: Some(50_000_000),
            };
            let trace = synthesize_trace(&[steady, flood], horizon_ns, points.len(), 7);
            let mut configs = vec![QpuConfig::default(); 4];
            configs[0].faults = FaultSchedule::none().with_outage(1, u64::MAX);
            let pool = QpuPool::heterogeneous(configs, SchedulePolicy::WorkStealing)
                .with_fault_policy(FaultPolicy {
                    retry: RetryPolicy {
                        max_attempts_total: 4,
                        ..Default::default()
                    },
                    ..Default::default()
                });
            let server = Server::with_engine(
                ServerConfig {
                    queue_capacity: 256,
                    high_water: 128,
                    degraded_local_fallback: true,
                    ..Default::default()
                },
                FeatureEngine::Pool(Mutex::new(pool)),
            );
            server.deploy(m.clone());
            server.set_tenant_weight(TenantId(1), 1);
            server.set_tenant_weight(TenantId(2), 1);
            warm_cache(&server, &points);
            // No bitwise reference here: pool-computed rows match the
            // local path to rounding, not to the bit.
            report = replay_trace(&server, &points, &trace, window_ns, None);
            final_level = server.brownout_level();
            let s = &report.stats;
            if !s.any_fault_activity() && s.pool_retries + s.pool_failovers == 0 {
                failures.push("device outage never activated the fault machinery".into());
            }
            if s.rejected_over_share == 0 {
                failures.push("the flood never tripped the brownout ladder".into());
            }
            if s.rejected_backend > 0 {
                failures.push(format!(
                    "{} requests shed BackendUnavailable despite local fallback",
                    s.rejected_backend
                ));
            }
            let victim = s.tenant(TenantId(1)).expect("victim row");
            if victim.availability() < 0.99 {
                failures.push(format!(
                    "steady tenant availability {:.4} < 0.99 under overload+outage",
                    victim.availability()
                ));
            }
            println!(
                "fault taxonomy:      {} retries | {} failovers | {}/{} hedges | {} trips | {} degraded",
                s.pool_retries, s.pool_failovers, s.hedges_won, s.hedges_launched,
                s.breaker_trips, s.degraded_batches,
            );
        }
        other => {
            eprintln!("unknown scenario {other:?}; use burst|diurnal|flash|overload+outage");
            std::process::exit(2);
        }
    }
    println!(
        "offered {} -> served {}, shed {}, dropped {} | goodput {:.0} rows/s",
        report.offered, report.completed, report.shed, report.dropped, report.goodput_rows_per_s
    );
    println!("\nmonitor (window {} ms):", window_ns / 1_000_000);
    print_series(&report.samples);
    print_tenants(&report.stats);
    // Structural invariants every scenario must satisfy.
    if report.offered != report.completed + report.shed + report.dropped {
        failures.push(format!(
            "arrival accounting broken: {} offered vs {} + {} + {}",
            report.offered, report.completed, report.shed, report.dropped
        ));
    }
    if report.completed == 0 {
        failures.push("scenario served nothing".into());
    }
    if report.samples.is_empty() {
        failures.push("monitor produced no samples".into());
    }
    if final_level != BrownoutLevel::Normal {
        failures.push(format!(
            "server did not recover to normal after the replay drained (level {final_level})"
        ));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("scenario {name} FAILED: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "scenario {name} passed: typed sheds only, ladder tripped and released, victim isolated"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    if let Some(pos) = args.iter().position(|a| a == "--scenario") {
        let name = args
            .get(pos + 1)
            .expect("--scenario needs one of burst|diurnal|flash|overload+outage");
        run_scenario(name, smoke);
        return;
    }
    let points = catalogue();

    println!("-- serving: micro-batched vs single-request (simulated time) --");

    // Baseline: one client, one row per dispatch, no cache — what
    // serving a request stream without this subsystem would cost.
    let single = run(
        ServerConfig {
            max_batch: 1,
            cache_capacity: 0,
            default_deadline_ns: 0,
            ..Default::default()
        },
        &LoadGenConfig {
            clients: 1,
            ..workload()
        },
        &points,
    );

    // The serving pipeline: micro-batches + feature cache on the same
    // Zipf stream.
    let batched = run(
        ServerConfig {
            default_deadline_ns: 0,
            ..Default::default()
        },
        &workload(),
        &points,
    );

    println!(
        "single-request:      {:>9.0} rows/s | p50 {:>7.2} ms | p99 {:>7.2} ms",
        single.rows_per_s, single.stats.p50_ms, single.stats.p99_ms
    );
    println!(
        "micro-batched:       {:>9.0} rows/s | p50 {:>7.2} ms | p99 {:>7.2} ms | {:.0}% cache hits | mean batch {:.1}",
        batched.rows_per_s,
        batched.stats.p50_ms,
        batched.stats.p99_ms,
        batched.cache_hit_rate * 100.0,
        batched.stats.mean_batch_size()
    );
    println!(
        "speedup:             {:>9.2}x rows/s, {} unique simulations for {} rows",
        batched.rows_per_s / single.rows_per_s.max(1e-12),
        batched.stats.unique_simulations,
        batched.completed
    );
    println!(
        "fault taxonomy:      {} retries | {} failovers | {}/{} hedges | {} trips | {} degraded | {} shed",
        batched.stats.pool_retries,
        batched.stats.pool_failovers,
        batched.stats.hedges_won,
        batched.stats.hedges_launched,
        batched.stats.breaker_trips,
        batched.stats.degraded_batches,
        batched.stats.rejected_backend,
    );

    // Overload behaviour: a burst beyond the high-water mark is shed
    // with typed rejections, then the queue drains and admission reopens.
    let server = Server::new(ServerConfig {
        queue_capacity: 64,
        high_water: 32,
        default_deadline_ns: 0,
        ..Default::default()
    });
    server.deploy(model());
    let mut admitted = Vec::new();
    let mut shed = 0usize;
    for i in 0..64 {
        match server.submit(points[i % CATALOGUE].clone()) {
            Ok(h) => admitted.push(h),
            Err(Rejected::TenantOverShare { .. }) => shed += 1,
            Err(other) => panic!("unexpected rejection {other}"),
        }
    }
    server.drain();
    let served = admitted
        .into_iter()
        .filter(|h| matches!(h.try_take(), Some(Ok(_))))
        .count();
    println!(
        "overload burst:      64 submitted -> {served} served, {shed} shed at high-water 32, \
         admission reopen: {}",
        server.submit(points[0].clone()).is_ok()
    );
    let _ = server.drain();

    // The multi-tenant isolation measurement (and its two gate metrics).
    let isolation = flood_isolation(smoke);
    println!(
        "\nisolation ratio:     {:.3} (attack p99 / solo p99) | overload goodput {:.0} rows/s",
        isolation.isolation, isolation.goodput
    );

    // The scale-out measurement (and its two gate metrics).
    let sharded = sharded_phase(smoke);

    // Merge the serving metrics into BENCH_scaling.json (preserving
    // whatever exp_scaling already wrote there).
    let path = Path::new("BENCH_scaling.json");
    let mut report = ScalingReport::new();
    report.put_str("schema", "postvar.bench_scaling.v1");
    if let Ok(existing) = read_numbers(path) {
        for (key, value) in existing {
            if !key.starts_with("serving_") {
                report.put(&key, value);
            }
        }
    }
    report.put("serving_rows_per_s", batched.rows_per_s);
    report.put("serving_p99_ms", batched.stats.p99_ms);
    report.put("serving_single_rows_per_s", single.rows_per_s);
    report.put("serving_cache_hit_rate", batched.cache_hit_rate);
    report.put("serving_tenant_isolation", isolation.isolation);
    report.put("serving_overload_goodput_rows_per_s", isolation.goodput);
    report.put("serving_sharded_rows_per_s", sharded.sharded_rows_per_s);
    report.put("serving_shard_imbalance", sharded.imbalance);
    report.put("serving_sharded_speedup", {
        sharded.sharded_rows_per_s / sharded.single_rows_per_s.max(1e-12)
    });
    report.put("serving_shard_crossover", sharded.peak_shards as f64);
    match report.write_to(path) {
        Ok(()) => println!("merged serving metrics into {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }

    // Acceptance assertions — always on, so CI cannot silently lose the
    // serving win.
    let mut failures: Vec<String> = Vec::new();
    if batched.rows_per_s < single.rows_per_s {
        failures.push(format!(
            "micro-batched throughput {:.0} rows/s below single-request baseline {:.0}",
            batched.rows_per_s, single.rows_per_s
        ));
    }
    if batched.cache_hit_rate <= 0.0 {
        failures.push("Zipf stream produced zero cache hits".to_string());
    }
    if batched.completed != workload().total_requests as u64 {
        failures.push(format!(
            "closed loop lost requests: {} of {}",
            batched.completed,
            workload().total_requests
        ));
    }
    // The healthy local-engine path must never touch the fault
    // machinery: zero retries, failovers, hedges, breaker trips,
    // degraded batches, and backend sheds.
    if batched.stats.any_fault_activity() || single.stats.any_fault_activity() {
        failures.push(format!(
            "healthy serving path activated fault recovery: {} retries, {} failovers, \
             {} hedges, {} trips, {} degraded batches, {} backend sheds",
            batched.stats.pool_retries,
            batched.stats.pool_failovers,
            batched.stats.hedges_launched,
            batched.stats.breaker_trips,
            batched.stats.degraded_batches,
            batched.stats.rejected_backend,
        ));
    }
    // The multi-tenant acceptance criteria, hard-asserted: a flooded
    // well-behaved tenant keeps ≥99% availability, its p99 stays within
    // 2× of its solo baseline, and batching stays invisible in outputs.
    if isolation.availability < 0.99 {
        failures.push(format!(
            "well-behaved tenant availability {:.4} < 0.99 under flood",
            isolation.availability
        ));
    }
    if isolation.isolation > 2.0 {
        failures.push(format!(
            "tenant isolation {:.3} > 2.0 (attack p99 / solo p99)",
            isolation.isolation
        ));
    }
    if isolation.mismatches > 0 {
        failures.push(format!(
            "{} served predictions diverged bitwise from standalone predict",
            isolation.mismatches
        ));
    }
    // The scale-out acceptance criteria, hard-asserted: the 4-shard
    // fleet must beat one server on the same stream, placement must stay
    // near-even, and sharding must be invisible in outputs.
    if sharded.sharded_rows_per_s <= sharded.single_rows_per_s {
        failures.push(format!(
            "4-shard fleet {:.0} rows/s does not beat the unsharded server {:.0}",
            sharded.sharded_rows_per_s, sharded.single_rows_per_s
        ));
    }
    if sharded.imbalance > 1.5 {
        failures.push(format!(
            "shard imbalance {:.3} > 1.5 (max routed / mean routed)",
            sharded.imbalance
        ));
    }
    if sharded.mismatches > 0 {
        failures.push(format!(
            "{} sharded predictions diverged bitwise from standalone predict",
            sharded.mismatches
        ));
    }
    if sharded.peak_shards <= 1 || sharded.peak_shards >= sharded.sweep.last().map_or(0, |s| s.0) {
        failures.push(format!(
            "shard sweep found no interior coordination crossover (peak at {} shards)",
            sharded.peak_shards
        ));
    }

    if let Some(pos) = args.iter().position(|a| a == "--baseline") {
        let baseline_path = args
            .get(pos + 1)
            .expect("--baseline needs a path to the committed BENCH_scaling.json");
        failures.extend(baseline_gate_failures(
            &report,
            Path::new(baseline_path),
            &GATED_METRICS,
            REGRESSION_TOLERANCE,
        ));
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("serving check FAILED: {f}");
        }
        std::process::exit(1);
    }
    println!("serving checks passed (batched ≥ single, cache hits > 0, flooded tenant isolated)");

    if smoke {
        return;
    }

    // Full mode: batch-size sweep on the fixed workload.
    println!("\n-- micro-batch size sweep (8 clients, Zipf 1.1, 64-point catalogue) --");
    let mut table = TablePrinter::new(&[
        "max_batch",
        "rows/s",
        "p50 ms",
        "p99 ms",
        "cache hits",
        "mean batch",
    ]);
    for max_batch in [1usize, 2, 4, 8, 16, 32] {
        let r = run(
            ServerConfig {
                max_batch,
                default_deadline_ns: 0,
                ..Default::default()
            },
            &workload(),
            &points,
        );
        table.row(&[
            max_batch.to_string(),
            format!("{:.0}", r.rows_per_s),
            format!("{:.2}", r.stats.p50_ms),
            format!("{:.2}", r.stats.p99_ms),
            format!("{:.0}%", r.cache_hit_rate * 100.0),
            format!("{:.1}", r.stats.mean_batch_size()),
        ]);
    }
    table.print();
    println!("\nbatching amortizes the dispatch overhead; the cache removes repeat simulations —");
    println!("together they turn the per-request quantum stage into an O(unique inputs) cost.");
}

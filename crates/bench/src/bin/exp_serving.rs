//! The serving experiment: a deterministic closed-loop load generator
//! over the micro-batching inference server, measuring simulated-time
//! throughput and tail latency against the unbatched, uncached
//! single-request baseline.
//!
//! Run:        `cargo run -p bench --bin exp_serving --release`
//! Smoke (CI): `cargo run -p bench --bin exp_serving --release -- --smoke`
//! Gate (CI):  `-- --smoke --baseline <committed BENCH_scaling.json>`
//!
//! The two serving metrics are **merged into** `BENCH_scaling.json`
//! (written beforehand by `exp_scaling --smoke` in CI), so one artifact
//! tracks the whole performance trajectory. Everything here runs on the
//! server's simulated clock with a seeded Zipf stream, so the metrics
//! are bit-for-bit reproducible across hosts — the smoke assertions
//! (micro-batching beats the single-request baseline; the Zipf stream
//! hits the cache) and the >25% baseline gate can never flake.

use bench::{baseline_gate_failures, read_numbers, ScalingReport, TablePrinter};
use pvqnn::features::FeatureBackend;
use pvqnn::model::RegressorMode;
use pvqnn::{FeatureGenerator, PostVarRegressor, Strategy};
use serve::{
    demo_catalogue, run_closed_loop, LoadGenConfig, LoadReport, Rejected, Server, ServerConfig,
};
use std::path::Path;

/// Gate tolerance, matching exp_scaling's.
const REGRESSION_TOLERANCE: f64 = 0.25;

/// `(key, higher_is_better)` for the baseline gate.
const GATED_METRICS: [(&str, bool); 2] = [("serving_rows_per_s", true), ("serving_p99_ms", false)];

/// Distinct data points the request stream draws from.
const CATALOGUE: usize = 64;

fn catalogue() -> Vec<Vec<f64>> {
    demo_catalogue(CATALOGUE)
}

fn model() -> PostVarRegressor {
    let data = catalogue();
    let y: Vec<f64> = (0..CATALOGUE).map(|i| (i as f64 * 0.31).sin()).collect();
    let generator = FeatureGenerator::new(
        Strategy::observable_construction(4, 1),
        FeatureBackend::Exact,
    );
    PostVarRegressor::fit(generator, &data, &y, RegressorMode::Ridge(1e-6))
}

/// One closed-loop run over a fresh server.
fn run(config: ServerConfig, gen_cfg: &LoadGenConfig, points: &[Vec<f64>]) -> LoadReport {
    let server = Server::new(config);
    server.deploy(model());
    run_closed_loop(&server, points, gen_cfg)
}

/// The Zipf-skewed workload both measured phases share.
fn workload() -> LoadGenConfig {
    LoadGenConfig {
        clients: 8,
        total_requests: 2000,
        zipf_s: 1.1,
        seed: 42,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let points = catalogue();

    println!("-- serving: micro-batched vs single-request (simulated time) --");

    // Baseline: one client, one row per dispatch, no cache — what
    // serving a request stream without this subsystem would cost.
    let single = run(
        ServerConfig {
            max_batch: 1,
            cache_capacity: 0,
            default_deadline_ns: 0,
            ..Default::default()
        },
        &LoadGenConfig {
            clients: 1,
            ..workload()
        },
        &points,
    );

    // The serving pipeline: micro-batches + feature cache on the same
    // Zipf stream.
    let batched = run(
        ServerConfig {
            default_deadline_ns: 0,
            ..Default::default()
        },
        &workload(),
        &points,
    );

    println!(
        "single-request:      {:>9.0} rows/s | p50 {:>7.2} ms | p99 {:>7.2} ms",
        single.rows_per_s, single.stats.p50_ms, single.stats.p99_ms
    );
    println!(
        "micro-batched:       {:>9.0} rows/s | p50 {:>7.2} ms | p99 {:>7.2} ms | {:.0}% cache hits | mean batch {:.1}",
        batched.rows_per_s,
        batched.stats.p50_ms,
        batched.stats.p99_ms,
        batched.cache_hit_rate * 100.0,
        batched.stats.mean_batch_size()
    );
    println!(
        "speedup:             {:>9.2}x rows/s, {} unique simulations for {} rows",
        batched.rows_per_s / single.rows_per_s.max(1e-12),
        batched.stats.unique_simulations,
        batched.completed
    );
    println!(
        "fault taxonomy:      {} retries | {} failovers | {}/{} hedges | {} trips | {} degraded | {} shed",
        batched.stats.pool_retries,
        batched.stats.pool_failovers,
        batched.stats.hedges_won,
        batched.stats.hedges_launched,
        batched.stats.breaker_trips,
        batched.stats.degraded_batches,
        batched.stats.rejected_backend,
    );

    // Overload behaviour: a burst beyond the high-water mark is shed
    // with typed rejections, then the queue drains and admission reopens.
    let server = Server::new(ServerConfig {
        queue_capacity: 64,
        high_water: 32,
        default_deadline_ns: 0,
        ..Default::default()
    });
    server.deploy(model());
    let mut admitted = Vec::new();
    let mut shed = 0usize;
    for i in 0..64 {
        match server.submit(points[i % CATALOGUE].clone()) {
            Ok(h) => admitted.push(h),
            Err(Rejected::Overloaded { .. }) => shed += 1,
            Err(other) => panic!("unexpected rejection {other}"),
        }
    }
    server.drain();
    let served = admitted
        .into_iter()
        .filter(|h| matches!(h.try_take(), Some(Ok(_))))
        .count();
    println!(
        "overload burst:      64 submitted -> {served} served, {shed} shed at high-water 32, \
         admission reopen: {}",
        server.submit(points[0].clone()).is_ok()
    );
    let _ = server.drain();

    // Merge the serving metrics into BENCH_scaling.json (preserving
    // whatever exp_scaling already wrote there).
    let path = Path::new("BENCH_scaling.json");
    let mut report = ScalingReport::new();
    report.put_str("schema", "postvar.bench_scaling.v1");
    if let Ok(existing) = read_numbers(path) {
        for (key, value) in existing {
            if !key.starts_with("serving_") {
                report.put(&key, value);
            }
        }
    }
    report.put("serving_rows_per_s", batched.rows_per_s);
    report.put("serving_p99_ms", batched.stats.p99_ms);
    report.put("serving_single_rows_per_s", single.rows_per_s);
    report.put("serving_cache_hit_rate", batched.cache_hit_rate);
    match report.write_to(path) {
        Ok(()) => println!("merged serving metrics into {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }

    // Acceptance assertions — always on, so CI cannot silently lose the
    // serving win.
    let mut failures: Vec<String> = Vec::new();
    if batched.rows_per_s < single.rows_per_s {
        failures.push(format!(
            "micro-batched throughput {:.0} rows/s below single-request baseline {:.0}",
            batched.rows_per_s, single.rows_per_s
        ));
    }
    if batched.cache_hit_rate <= 0.0 {
        failures.push("Zipf stream produced zero cache hits".to_string());
    }
    if batched.completed != workload().total_requests as u64 {
        failures.push(format!(
            "closed loop lost requests: {} of {}",
            batched.completed,
            workload().total_requests
        ));
    }
    // The healthy local-engine path must never touch the fault
    // machinery: zero retries, failovers, hedges, breaker trips,
    // degraded batches, and backend sheds.
    if batched.stats.any_fault_activity() || single.stats.any_fault_activity() {
        failures.push(format!(
            "healthy serving path activated fault recovery: {} retries, {} failovers, \
             {} hedges, {} trips, {} degraded batches, {} backend sheds",
            batched.stats.pool_retries,
            batched.stats.pool_failovers,
            batched.stats.hedges_launched,
            batched.stats.breaker_trips,
            batched.stats.degraded_batches,
            batched.stats.rejected_backend,
        ));
    }

    if let Some(pos) = args.iter().position(|a| a == "--baseline") {
        let baseline_path = args
            .get(pos + 1)
            .expect("--baseline needs a path to the committed BENCH_scaling.json");
        failures.extend(baseline_gate_failures(
            &report,
            Path::new(baseline_path),
            &GATED_METRICS,
            REGRESSION_TOLERANCE,
        ));
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("serving check FAILED: {f}");
        }
        std::process::exit(1);
    }
    println!("serving checks passed (batched ≥ single, cache hits > 0)");

    if smoke {
        return;
    }

    // Full mode: batch-size sweep on the fixed workload.
    println!("\n-- micro-batch size sweep (8 clients, Zipf 1.1, 64-point catalogue) --");
    let mut table = TablePrinter::new(&[
        "max_batch",
        "rows/s",
        "p50 ms",
        "p99 ms",
        "cache hits",
        "mean batch",
    ]);
    for max_batch in [1usize, 2, 4, 8, 16, 32] {
        let r = run(
            ServerConfig {
                max_batch,
                default_deadline_ns: 0,
                ..Default::default()
            },
            &workload(),
            &points,
        );
        table.row(&[
            max_batch.to_string(),
            format!("{:.0}", r.rows_per_s),
            format!("{:.2}", r.stats.p50_ms),
            format!("{:.2}", r.stats.p99_ms),
            format!("{:.0}%", r.cache_hit_rate * 100.0),
            format!("{:.1}", r.stats.mean_batch_size()),
        ]);
    }
    table.print();
    println!("\nbatching amortizes the dispatch overhead; the cache removes repeat simulations —");
    println!("together they turn the per-request quantum stage into an O(unique inputs) cost.");
}

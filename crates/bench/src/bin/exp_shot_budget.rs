//! Empirical validation of **Propositions 1 and 2**: measured estimation
//! error vs shot/snapshot budget, against the theoretical 1/√t envelope,
//! and the direct-vs-shadows crossover as observable count grows.
//!
//! Run: `cargo run -p bench --bin exp_shot_budget --release`

use bench::TablePrinter;
use pauli::local_paulis;
use pvqnn::encoding::fig7_encoding;
use qsim::{estimate_pauli_with_shots, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use shadows::{ShadowEstimator, ShadowProtocol};

fn test_state() -> StateVector {
    let x: Vec<f64> = (0..16).map(|i| 0.4 + 0.37 * i as f64).collect();
    StateVector::from_circuit(&fig7_encoding(&x))
}

fn main() {
    println!("== Propositions 1–2: estimation error vs measurement budget ==\n");
    let state = test_state();
    let paulis = local_paulis(4, 2); // 67 observables
    let exact: Vec<f64> = paulis.iter().map(|p| state.expectation(p)).collect();

    // --- Proposition 1: direct per-neuron estimation.
    println!("-- direct estimation: max error over 67 observables (Hoeffding ~ √(ln/t)) --");
    let mut table =
        TablePrinter::new(&["shots/neuron", "max |err|", "mean |err|", "√(2·ln(2m)/t)"]);
    for &shots in &[64usize, 256, 1024, 4096, 16384] {
        let mut rng = StdRng::seed_from_u64(11);
        let mut max_err = 0.0f64;
        let mut sum_err = 0.0f64;
        for (p, &e) in paulis.iter().zip(exact.iter()) {
            let est = estimate_pauli_with_shots(&state, p, shots, &mut rng);
            let err = (est - e).abs();
            max_err = max_err.max(err);
            sum_err += err;
        }
        let bound = (2.0 * (2.0 * paulis.len() as f64).ln() / shots as f64).sqrt();
        table.row(&[
            shots.to_string(),
            format!("{max_err:.4}"),
            format!("{:.4}", sum_err / paulis.len() as f64),
            format!("{bound:.4}"),
        ]);
    }
    table.print();

    // --- Proposition 2: classical shadows shared across observables.
    println!("\n-- shadow estimation: same 67 observables from one snapshot pool --");
    let mut table = TablePrinter::new(&["snapshots", "max |err|", "mean |err|"]);
    for &snaps in &[1_000usize, 4_000, 16_000, 64_000] {
        let protocol = ShadowProtocol::new(snaps, 23);
        let est = ShadowEstimator::new(protocol.acquire(&state), 10);
        let values = est.estimate_many(&paulis);
        let mut max_err = 0.0f64;
        let mut sum_err = 0.0f64;
        for (v, &e) in values.iter().zip(exact.iter()) {
            let err = (v - e).abs();
            max_err = max_err.max(err);
            sum_err += err;
        }
        table.row(&[
            snaps.to_string(),
            format!("{max_err:.4}"),
            format!("{:.4}", sum_err / paulis.len() as f64),
        ]);
    }
    table.print();

    // --- Crossover: total quantum measurements to reach a fixed target
    // error, direct (scales with q) vs shadows (scales with 3^L·log q).
    println!("\n-- budget to reach max-error ≤ 0.1 on all ≤2-local observables --");
    let mut table = TablePrinter::new(&[
        "q (observables)",
        "direct total",
        "shadows total",
        "cheaper",
    ]);
    for &l in &[1usize, 2] {
        let obs = local_paulis(4, l);
        let exact: Vec<f64> = obs.iter().map(|p| state.expectation(p)).collect();
        // Direct: find smallest power-of-4 shot count whose max err ≤ 0.1.
        let mut direct_total = 0usize;
        for &shots in &[64usize, 256, 1024, 4096, 16384] {
            let mut rng = StdRng::seed_from_u64(31);
            let worst = obs
                .iter()
                .zip(exact.iter())
                .map(|(p, &e)| (estimate_pauli_with_shots(&state, p, shots, &mut rng) - e).abs())
                .fold(0.0f64, f64::max);
            if worst <= 0.1 {
                direct_total = shots * obs.len();
                break;
            }
        }
        // Shadows: smallest snapshot pool with max err ≤ 0.1.
        let mut shadow_total = 0usize;
        for &snaps in &[500usize, 1_000, 2_000, 4_000, 8_000, 16_000, 32_000, 64_000] {
            let protocol = ShadowProtocol::new(snaps, 37);
            let est = ShadowEstimator::new(protocol.acquire(&state), 10);
            let worst = est
                .estimate_many(&obs)
                .iter()
                .zip(exact.iter())
                .map(|(v, &e)| (v - e).abs())
                .fold(0.0f64, f64::max);
            if worst <= 0.1 {
                shadow_total = snaps;
                break;
            }
        }
        let cheaper = if shadow_total > 0 && (direct_total == 0 || shadow_total < direct_total) {
            "shadows"
        } else {
            "direct"
        };
        table.row(&[
            obs.len().to_string(),
            if direct_total > 0 {
                direct_total.to_string()
            } else {
                ">budget".into()
            },
            if shadow_total > 0 {
                shadow_total.to_string()
            } else {
                ">budget".into()
            },
            cheaper.into(),
        ]);
    }
    table.print();
    println!("\npaper reference: shadows pay off once many local observables share a state");
    println!("(Prop 2's p·d·‖O‖_S²·log(md) vs Prop 1's m·d·log(md) scaling).");
}

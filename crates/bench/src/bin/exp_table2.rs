//! Reproduces **Table II**: measurement-count upper bounds per design
//! principle, direct measurement vs classical shadows, with the paper's
//! bolding rule (the cheaper estimator wins).
//!
//! Evaluated for the paper's concrete experiment scale (Fig. 8 ansatz,
//! k = 8 parameters → p = 17 first-order ansätze; n = 4 and larger; d =
//! 400 data points; ε = 0.1, δ = 0.05) plus a width sweep showing where
//! the shadows crossover happens.
//!
//! Run: `cargo run -p bench --bin exp_table2 --release`

use bench::TablePrinter;
use pvqnn::budget::{table2_rows, theorem4_eps_h};

fn print_for(p: usize, n: usize, locality: usize, d: usize, eps: f64, delta: f64) {
    println!(
        "\n-- p = {p} ansätze, n = {n} qubits, L = {locality}, d = {d}, ε = {eps}, δ = {delta} --"
    );
    let rows = table2_rows(p, n, locality, 1, d, eps, delta);
    let mut table = TablePrinter::new(&["strategy", "p", "q", "m", "direct", "shadows", "cheaper"]);
    for r in rows {
        table.row(&[
            r.strategy.into(),
            r.p.to_string(),
            r.q.to_string(),
            r.m.to_string(),
            format!("{:.3e}", r.direct as f64),
            format!("{:.3e}", r.shadows as f64),
            r.winner.into(),
        ]);
    }
    table.print();
}

fn main() {
    println!("== Table II: measurement upper bounds (direct vs classical shadows) ==");
    println!("   ε_H from Theorem 4: ε/(2√m); Hoeffding and median-of-means constants included");

    // The paper's own experimental scale.
    print_for(17, 4, 2, 400, 0.1, 0.05);
    // Wider registers: the shadows advantage appears as q = O(3^L n^L)
    // outgrows the 34·3^L/2 constant ratio.
    print_for(17, 8, 2, 400, 0.1, 0.05);
    print_for(17, 12, 2, 400, 0.1, 0.05);
    print_for(17, 16, 2, 400, 0.1, 0.05);

    println!("\nTheorem 4 per-neuron accuracy targets (ε = 0.1):");
    let mut table = TablePrinter::new(&["m", "ε_H = ε/(2√m)"]);
    for m in [13usize, 67, 175, 221, 1677] {
        table.row(&[m.to_string(), format!("{:.5}", theorem4_eps_h(0.1, m))]);
    }
    table.print();

    println!("\npaper reference: asymptotics of Table II —");
    println!("  Ansatz expansion: direct O(p²d/ε²·log(pd/δ)) bold (shadows add ‖O‖_S²)");
    println!("  Observable construction: shadows O(qd·3^L/ε²·log(qd/δ)) bold for local O");
    println!("  Hybrid: shadows O(mpd·3^L/ε²·log(md/δ)) bold for local O");
}

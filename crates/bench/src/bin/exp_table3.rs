//! Reproduces **Table III**: effectiveness of the post-variational design
//! principles on binary coat-vs-shirt classification.
//!
//! Paper protocol (§VII.B): 200 train + 50 test per class; rows are the
//! classical logistic baseline, the two-layer MLP, the variational QNN,
//! ansatz expansion at order 1/2, observable construction at locality
//! 1/2/3, and the three hybrid combinations. Columns: train loss, train
//! accuracy, test loss, test accuracy (BCE loss; the variational row
//! reports its own objective, as in the paper the loss is omitted).
//!
//! Run: `cargo run -p bench --bin exp_table3 --release`

use bench::{binary_task, TablePrinter};
use linalg::Mat;
use ml::{accuracy, LogisticConfig, LogisticRegression, Mlp, MlpConfig};
use pvqnn::ansatz::fig8_ansatz;
use pvqnn::features::{FeatureBackend, FeatureGenerator};
use pvqnn::model::PostVarClassifier;
use pvqnn::strategy::Strategy;
use pvqnn::variational::{VariationalClassifier, VariationalConfig};
use std::time::Instant;

fn fmt_row(name: &str, tr_loss: f64, tr_acc: f64, te_loss: f64, te_acc: f64) -> Vec<String> {
    vec![
        name.to_string(),
        format!("{tr_loss:.4}"),
        format!("{:.2}%", tr_acc * 100.0),
        format!("{te_loss:.4}"),
        format!("{:.2}%", te_acc * 100.0),
    ]
}

fn pv_row(name: &str, strategy: Strategy, task: &bench::BinaryTask, table: &mut TablePrinter) {
    let t0 = Instant::now();
    let m = strategy.num_neurons();
    let generator = FeatureGenerator::new(strategy, FeatureBackend::Exact);
    let model = PostVarClassifier::fit(
        generator,
        &task.train_x,
        &task.train_y,
        LogisticConfig::default(),
    );
    let (tr_loss, tr_acc) = model.evaluate(&task.train_x, &task.train_y);
    let (te_loss, te_acc) = model.evaluate(&task.test_x, &task.test_y);
    table.row(&fmt_row(name, tr_loss, tr_acc, te_loss, te_acc));
    eprintln!(
        "  {name}: m = {m} features, {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}

fn main() {
    println!("== Table III: binary coat-vs-shirt (synthetic Fashion-MNIST substitute) ==");
    println!("   200 train + 50 test per class; 4 qubits; exact-expectation backend\n");
    let task = binary_task(200, 50, 42);
    let train_mat = Mat::from_rows(&task.train_x);
    let test_mat = Mat::from_rows(&task.test_x);
    let mut table =
        TablePrinter::new(&["model", "train loss", "train acc", "test loss", "test acc"]);

    // --- Classical logistic regression on the 16 raw pooled features.
    let logistic = LogisticRegression::fit(&train_mat, &task.train_y, LogisticConfig::default());
    let tr_p = logistic.predict_proba(&train_mat);
    let te_p = logistic.predict_proba(&test_mat);
    table.row(&fmt_row(
        "Classical Logistic",
        ml::bce_loss(&task.train_y, &tr_p),
        accuracy(&task.train_y, &tr_p),
        ml::bce_loss(&task.test_y, &te_p),
        accuracy(&task.test_y, &te_p),
    ));

    // --- Two-layer MLP baseline.
    let mlp_labels: Vec<usize> = task.train_y.iter().map(|&y| y as usize).collect();
    let mlp_test_labels: Vec<usize> = task.test_y.iter().map(|&y| y as usize).collect();
    let mlp_cfg = MlpConfig::default();
    let mut mlp = Mlp::new(16, 1, &mlp_cfg);
    mlp.fit(&train_mat, &mlp_labels, &mlp_cfg);
    let tr_p = mlp.predict_proba_binary(&train_mat);
    let te_p = mlp.predict_proba_binary(&test_mat);
    table.row(&fmt_row(
        "Classical MLP",
        mlp.loss(&train_mat, &mlp_labels),
        accuracy(&task.train_y, &tr_p),
        mlp.loss(&test_mat, &mlp_test_labels),
        accuracy(&task.test_y, &te_p),
    ));

    // --- Variational baseline (paper reports accuracy only).
    let t0 = Instant::now();
    let vqc = VariationalClassifier::fit_binary(
        fig8_ansatz(4),
        Strategy::default_observable(4),
        &task.train_x,
        &task.train_y,
        &VariationalConfig::default(),
    );
    let (_, tr_acc) = vqc.evaluate_binary(&task.train_x, &task.train_y);
    let (_, te_acc) = vqc.evaluate_binary(&task.test_x, &task.test_y);
    table.row(&[
        "Variational".to_string(),
        "-".to_string(),
        format!("{:.2}%", tr_acc * 100.0),
        "-".to_string(),
        format!("{:.2}%", te_acc * 100.0),
    ]);
    eprintln!("  Variational: {:.1}s", t0.elapsed().as_secs_f64());

    // --- Post-variational rows.
    let obs = Strategy::default_observable(4);
    pv_row(
        "Ansatz 1-order",
        Strategy::ansatz_expansion(fig8_ansatz(4), 1, obs),
        &task,
        &mut table,
    );
    pv_row(
        "Ansatz 2-order",
        Strategy::ansatz_expansion(fig8_ansatz(4), 2, obs),
        &task,
        &mut table,
    );
    for l in 1..=3 {
        pv_row(
            &format!("Observable {l}-local"),
            Strategy::observable_construction(4, l),
            &task,
            &mut table,
        );
    }
    pv_row(
        "Hybrid 1-order + 1-local",
        Strategy::hybrid(fig8_ansatz(4), 1, 1),
        &task,
        &mut table,
    );
    pv_row(
        "Hybrid 2-order + 1-local",
        Strategy::hybrid(fig8_ansatz(4), 2, 1),
        &task,
        &mut table,
    );
    pv_row(
        "Hybrid 1-order + 2-local",
        Strategy::hybrid(fig8_ansatz(4), 1, 2),
        &task,
        &mut table,
    );

    println!();
    table.print();
    println!("\npaper reference (Table III, real Fashion-MNIST):");
    println!("  Logistic 69.25/65.33, MLP 77.92/67.67, Variational 55.83/50.67,");
    println!("  Ansatz 56.08→57.75, Observable 65.42→78.67, Hybrid up to 78.00 (train acc %)");
}

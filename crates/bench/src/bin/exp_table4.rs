//! Reproduces **Table IV**: multiclass (10-class) training results.
//!
//! Paper protocol (§VII.B): "training 400 evenly sampled classes for
//! multiclass classification" — 40 per class — comparing Logistic, MLP,
//! Variational, and the 1-order + 2-local post-variational model.
//!
//! Run: `cargo run -p bench --bin exp_table4 --release`

use bench::{multiclass_task, TablePrinter};
use linalg::Mat;
use ml::{accuracy_multiclass, Mlp, MlpConfig, SoftmaxConfig, SoftmaxRegression};
use pvqnn::ansatz::fig8_ansatz;
use pvqnn::features::{FeatureBackend, FeatureGenerator};
use pvqnn::model::PostVarMulticlass;
use pvqnn::strategy::Strategy;
use pvqnn::variational::{VariationalClassifier, VariationalConfig};
use std::time::Instant;

fn main() {
    println!("== Table IV: 10-class training results (synthetic Fashion-MNIST substitute) ==");
    println!("   40 train + 10 test per class; 4 qubits; exact-expectation backend\n");
    let task = multiclass_task(40, 10, 7);
    let train_mat = Mat::from_rows(&task.train_x);
    let mut table = TablePrinter::new(&["model", "train loss", "train acc"]);

    // --- Logistic (softmax) on raw pooled features.
    let soft = SoftmaxRegression::fit(&train_mat, &task.train_y, 10, SoftmaxConfig::default());
    table.row(&[
        "Classical Logistic".into(),
        format!("{:.4}", soft.loss(&train_mat, &task.train_y)),
        format!(
            "{:.4}",
            accuracy_multiclass(&task.train_y, &soft.predict(&train_mat))
        ),
    ]);

    // --- MLP.
    let mlp_cfg = MlpConfig {
        hidden: 32,
        epochs: 900,
        lr: 0.02,
        seed: 3,
    };
    let mut mlp = Mlp::new(16, 10, &mlp_cfg);
    mlp.fit(&train_mat, &task.train_y, &mlp_cfg);
    table.row(&[
        "Classical MLP".into(),
        format!("{:.4}", mlp.loss(&train_mat, &task.train_y)),
        format!(
            "{:.4}",
            accuracy_multiclass(&task.train_y, &mlp.predict(&train_mat))
        ),
    ]);

    // --- Variational with bitstring-partition readout.
    let t0 = Instant::now();
    let vqc = VariationalClassifier::fit_multiclass(
        fig8_ansatz(4),
        &task.train_x,
        &task.train_y,
        10,
        &VariationalConfig::default(),
    );
    let (_, tr_acc) = vqc.evaluate_multiclass(&task.train_x, &task.train_y);
    table.row(&["Variational".into(), "-".into(), format!("{tr_acc:.4}")]);
    eprintln!("  Variational: {:.1}s", t0.elapsed().as_secs_f64());

    // --- Post-variational 1-order + 2-local.
    let t0 = Instant::now();
    let generator = FeatureGenerator::new(
        Strategy::hybrid(fig8_ansatz(4), 1, 2),
        FeatureBackend::Exact,
    );
    // With m = 1139 quantum features on 400 samples the default L2 is far
    // too strong; match the paper's lightly-regularised convex fit.
    let pv_head = SoftmaxConfig {
        l2: 1e-4,
        epochs: 2500,
        lr: 0.05,
        weight_ball: None,
    };
    let pv = PostVarMulticlass::fit(generator, &task.train_x, &task.train_y, 10, pv_head);
    let (loss, acc) = pv.evaluate(&task.train_x, &task.train_y);
    table.row(&[
        "1-order + 2-local PV".into(),
        format!("{loss:.4}"),
        format!("{acc:.4}"),
    ]);
    eprintln!("  PV: {:.1}s", t0.elapsed().as_secs_f64());

    println!();
    table.print();

    // Test-set generalisation (not in the paper's Table IV; reported for
    // completeness).
    let (te_loss, te_acc) = pv.evaluate(&task.test_x, &task.test_y);
    println!("\nPV test: loss {te_loss:.4}, acc {te_acc:.4}");
    println!("\npaper reference (Table IV, real Fashion-MNIST):");
    println!("  Logistic 0.8246/0.6725, MLP 0.4865/0.815, Variational -/0.1675, PV 0.6786/0.825");
}

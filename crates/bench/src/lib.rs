//! # bench — experiment harness
//!
//! Shared setup for the `exp_*` binaries that regenerate every table and
//! figure of the paper (see DESIGN.md's experiment index), plus pretty
//! table printing. Criterion microbenchmarks live in `benches/`.

pub mod setup;
pub mod table;

pub use setup::{binary_task, multiclass_task, BinaryTask, MulticlassTask};
pub use table::TablePrinter;

//! # bench — experiment harness
//!
//! Shared setup for the `exp_*` binaries that regenerate every table and
//! figure of the paper (see DESIGN.md's experiment index), plus pretty
//! table printing. Criterion microbenchmarks live in `benches/`.

pub mod report;
pub mod setup;
pub mod table;

pub use report::{baseline_gate_failures, read_numbers, time_secs, ScalingReport};
pub use setup::{
    binary_task, feature_data, layer_circuit, mixed_pool_jobs, multiclass_task,
    naive_feature_sweep, oversubscribed_batch, BinaryTask, MulticlassTask,
};
pub use table::TablePrinter;

//! Machine-readable benchmark reports.
//!
//! The CI perf job runs the smoke benches and uploads the resulting
//! `BENCH_scaling.json` as an artifact, so the performance trajectory is
//! tracked across PRs instead of asserted in prose. JSON is hand-rolled
//! (no `serde_json` in the offline vendor set): flat string/number fields
//! only, which is all the schema needs.
//!
//! # `BENCH_scaling.json` metric glossary
//!
//! One flat object (`schema: postvar.bench_scaling.v1`), written by
//! `exp_scaling` and then merged into (never truncated) by
//! `exp_serving` and `exp_faults`. All latency/throughput figures from
//! the serving and fault experiments are **simulated time** (exact
//! reproduction across hosts); the kernel figures are host wall-clock
//! (minimum over repetitions). Gated metrics fail CI when they move
//! >25% in the losing direction against the committed baseline.
//!
//! Kernel metrics (`exp_scaling`):
//!
//! | key | meaning |
//! |---|---|
//! | `threads` / `host_threads` | executor threads used / available on the runner |
//! | `gate_apply_ns_per_amp` | unfused gate application, ns per amplitude per source gate (gated ↓) |
//! | `gate_fused_ns_per_amp` | same circuit through the `qsim::compile` fusion pass (gated ↓) |
//! | `gate_fusion_ratio` | source gates ÷ fused ops for the bench circuit |
//! | `thread_pool_speedup` | multi-thread ÷ single-thread kernel throughput (floor-asserted on ≥4-core runners) |
//! | `expectation_many_speedup` | fused multi-observable sweep ÷ per-term loop (gated ↑) |
//! | `expectation_many_observables` | observable count in that comparison |
//! | `features_rows_per_s` | exact-backend feature rows per second (gated ↑) |
//! | `feature_reuse_speedup` | encoding-state reuse ÷ naive re-simulation per shift |
//! | `features_shots_rows_per_s` | finite-shot backend feature rows per second |
//! | `encode_pointwise_rows_per_s` | one-point-at-a-time encoding throughput |
//! | `encode_batched_rows_per_s` | 32-lane SoA batched encoding throughput (gated ↑) |
//! | `pool_shared_speedup` | QPU pool sharing the executor ÷ sequential devices (floor-asserted on ≥4-core runners) |
//! | `executor_tiny_tasks_per_s` | tiny-task submission throughput of the work-stealing executor |
//! | `executor_steal_tasks_per_op` | mean tasks moved per steal operation (batched steals) |
//! | `shadows_est_per_s` | classical-shadow observable estimates per second |
//!
//! Fault metrics (`exp_faults`, simulated time):
//!
//! | key | meaning |
//! |---|---|
//! | `faults_availability` | completed ÷ offered across the four chaos replays (gated ↑, hard floor 0.99) |
//! | `faults_p99_during_outage_ms` | p99 latency measured inside the outage window (gated ↓) |
//!
//! Serving metrics (`exp_serving`, simulated time):
//!
//! | key | meaning |
//! |---|---|
//! | `serving_rows_per_s` | micro-batched closed-loop throughput (gated ↑) |
//! | `serving_p99_ms` | p99 latency of that run (gated ↓) |
//! | `serving_single_rows_per_s` | unbatched/uncached single-request baseline |
//! | `serving_cache_hit_rate` | feature-cache hit rate on the Zipf stream |
//! | `serving_tenant_isolation` | victim p99 under flood ÷ solo p99 (gated ↓, hard ceiling 2.0) |
//! | `serving_overload_goodput_rows_per_s` | total goodput during the flood (gated ↑) |
//! | `serving_sharded_rows_per_s` | warm 4-shard consistent-hash fleet throughput (gated ↑, hard floor: > unsharded) |
//! | `serving_shard_imbalance` | max routed ÷ mean routed across shards (gated ↓, hard ceiling 1.5) |
//! | `serving_sharded_speedup` | 4-shard fleet ÷ unsharded server on the same stream |
//! | `serving_shard_crossover` | shard count with peak swept throughput — coordination dominates past it |

use std::io::Write;
use std::path::Path;

/// A flat metrics report serialised as a single JSON object.
#[derive(Clone, Debug, Default)]
pub struct ScalingReport {
    strings: Vec<(String, String)>,
    numbers: Vec<(String, f64)>,
}

impl ScalingReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a string field.
    pub fn put_str(&mut self, key: &str, value: &str) {
        self.strings.push((key.to_string(), value.to_string()));
    }

    /// Adds a numeric metric (non-finite values are recorded as `null`).
    pub fn put(&mut self, key: &str, value: f64) {
        self.numbers.push((key.to_string(), value));
    }

    /// The report as a JSON object string.
    pub fn to_json(&self) -> String {
        let mut fields: Vec<String> = Vec::with_capacity(self.strings.len() + self.numbers.len());
        for (k, v) in &self.strings {
            fields.push(format!("\"{}\": \"{}\"", escape(k), escape(v)));
        }
        for (k, v) in &self.numbers {
            let num = if v.is_finite() {
                format!("{v:.6}")
            } else {
                "null".to_string()
            };
            fields.push(format!("\"{}\": {num}", escape(k)));
        }
        format!("{{\n  {}\n}}\n", fields.join(",\n  "))
    }

    /// Writes the JSON report to `path`.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }

    /// The value of a numeric metric, if recorded.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.numbers.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// Reads the flat numeric fields back out of a report previously written
/// by [`ScalingReport::write_to`] — the baseline side of the CI perf-diff
/// check. Line-based, matching exactly the `"key": number` shape this
/// module emits (string fields and `null`s are skipped).
pub fn read_numbers(path: &Path) -> std::io::Result<Vec<(String, f64)>> {
    let text = std::fs::read_to_string(path)?;
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if let Ok(num) = value.trim().parse::<f64>() {
            out.push((key.to_string(), num));
        }
    }
    Ok(out)
}

/// Diffs `fresh` against a committed baseline report, returning the
/// human-readable failures for every metric in `gated` — `(key,
/// higher_is_better)` pairs — that moved more than `tolerance` in the
/// losing direction (improvements never fail; metrics missing from
/// either side do). Shared by the exp_scaling and exp_serving CI gates
/// so the tolerance semantics cannot diverge.
pub fn baseline_gate_failures(
    fresh: &ScalingReport,
    baseline_path: &Path,
    gated: &[(&str, bool)],
    tolerance: f64,
) -> Vec<String> {
    let baseline = match read_numbers(baseline_path) {
        Ok(nums) => nums,
        Err(e) => {
            return vec![format!(
                "cannot read baseline {}: {e}",
                baseline_path.display()
            )]
        }
    };
    let base_get = |key: &str| baseline.iter().find(|(k, _)| k == key).map(|&(_, v)| v);
    let mut failures = Vec::new();
    for &(key, higher_is_better) in gated {
        let (Some(new), Some(old)) = (fresh.get(key), base_get(key)) else {
            failures.push(format!(
                "metric {key} missing from fresh report or baseline"
            ));
            continue;
        };
        if old <= 0.0 {
            continue;
        }
        let ratio = new / old;
        let regressed = if higher_is_better {
            ratio < 1.0 - tolerance
        } else {
            ratio > 1.0 + tolerance
        };
        if regressed {
            failures.push(format!(
                "{key} regressed: baseline {old:.4} -> fresh {new:.4} ({:+.1}%)",
                (ratio - 1.0) * 100.0
            ));
        }
    }
    failures
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Seconds per run of `f`, minimum over `reps` timed runs (one warm-up run
/// first). Minimum — not mean — because scheduler noise only ever adds
/// time.
pub fn time_secs<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    assert!(reps >= 1);
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = std::time::Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape() {
        let mut r = ScalingReport::new();
        r.put_str("schema", "postvar.bench_scaling.v1");
        r.put("gate_apply_ns_per_amp", 1.25);
        r.put("bad", f64::NAN);
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with("}\n"));
        assert!(j.contains("\"schema\": \"postvar.bench_scaling.v1\""));
        assert!(j.contains("\"gate_apply_ns_per_amp\": 1.250000"));
        assert!(j.contains("\"bad\": null"));
    }

    #[test]
    fn time_secs_is_positive() {
        let t = time_secs(2, || (0..1000u64).sum::<u64>());
        assert!(t >= 0.0 && t.is_finite());
    }

    #[test]
    fn read_numbers_round_trips() {
        let mut r = ScalingReport::new();
        r.put_str("schema", "postvar.bench_scaling.v1");
        r.put("gate_apply_ns_per_amp", 1.75);
        r.put("features_rows_per_s", 74820.5);
        r.put("nan_metric", f64::NAN);
        let dir = std::env::temp_dir().join("postvar_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.json");
        r.write_to(&path).unwrap();
        let nums = read_numbers(&path).unwrap();
        let find = |k: &str| nums.iter().find(|(n, _)| n == k).map(|&(_, v)| v);
        assert_eq!(find("gate_apply_ns_per_amp"), Some(1.75));
        assert_eq!(find("features_rows_per_s"), Some(74820.5));
        assert_eq!(find("nan_metric"), None, "null values are skipped");
        assert_eq!(find("schema"), None, "string fields are skipped");
        assert_eq!(r.get("gate_apply_ns_per_amp"), Some(1.75));
        assert_eq!(r.get("missing"), None);
    }
}

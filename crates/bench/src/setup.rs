//! Dataset assembly matching the paper's experimental protocol (§VII.B):
//! binary coat-vs-shirt with 200 train + 50 test per class, and 10-class
//! multiclass with 400 evenly sampled training images — plus the shared
//! kernel-bench workloads used by both the Criterion benches and the
//! `BENCH_scaling.json` metrics, so the two measurements can never drift
//! onto different baselines.

use hpcq::{CircuitJob, QpuConfig, QpuDevice};
use pvqnn::features::FeatureGenerator;
use qdata::{fashion_synthetic, preprocess_4x4, Dataset, FashionClass, SynthConfig};
use qsim::{Circuit, Gate, StateVector};

/// A dense rotation + entangler layer circuit on `n` qubits — the gate mix
/// the kernel benches apply.
pub fn layer_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(Gate::H(q));
        c.push(Gate::Ry(q, 0.3 + 0.01 * q as f64));
        c.push(Gate::Rz(q, 0.7));
    }
    for q in 0..n - 1 {
        c.push(Gate::Cnot {
            control: q,
            target: q + 1,
        });
    }
    c
}

/// Deterministic feature rows in the Fig. 7 shape (16 features per row).
pub fn feature_data(d: usize) -> Vec<Vec<f64>> {
    (0..d)
        .map(|i| {
            (0..16)
                .map(|j| 0.3 + 0.17 * ((i * 16 + j) % 23) as f64)
                .collect()
        })
        .collect()
}

/// The pre-optimisation feature sweep used as the reuse-speedup baseline:
/// one full circuit simulation from `|0…0⟩` per (row, shift) and one state
/// pass per observable. Returns a value sum so the work can't be elided.
pub fn naive_feature_sweep(generator: &FeatureGenerator, data: &[Vec<f64>]) -> f64 {
    let obs = generator.strategy().observables();
    let p = generator.strategy().num_ansatze();
    let mut acc = 0.0;
    for x in data {
        for a in 0..p {
            let s = StateVector::from_circuit(&generator.circuit_for(x, a));
            for o in obs {
                acc += s.expectation(o);
            }
        }
    }
    acc
}

/// A mixed-size job batch for the executor-sharing comparisons: `groups`
/// repetitions of one `big_n`-qubit job (sized to cross `qsim`'s parallel
/// threshold, so its kernels want to fan out) followed by `small_per_big`
/// `small_n`-qubit jobs that never do — the regime where private
/// per-device threads with uncapped kernel fan-out used to oversubscribe
/// to devices × cores. Every job measures the first 1-local Paulis, exact.
pub fn mixed_pool_jobs(
    big_n: usize,
    small_n: usize,
    groups: usize,
    small_per_big: usize,
    obs_per_job: usize,
) -> Vec<CircuitJob> {
    let mut jobs = Vec::new();
    let mut id = 0u64;
    let entangled = |n: usize, base: f64| {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.push(Gate::Ry(q, base * (q as f64 + 1.0)));
        }
        for q in 0..n - 1 {
            c.push(Gate::Cnot {
                control: q,
                target: q + 1,
            });
        }
        c
    };
    for group in 0..groups {
        jobs.push(CircuitJob::new(
            id,
            entangled(big_n, 0.07 + 0.01 * group as f64),
            pauli::local_paulis(big_n, 1)[..obs_per_job].to_vec(),
            None,
        ));
        id += 1;
        for k in 0..small_per_big {
            jobs.push(CircuitJob::new(
                id,
                entangled(small_n, 0.11 + 0.01 * k as f64),
                pauli::local_paulis(small_n, 1)[..obs_per_job].to_vec(),
                None,
            ));
            id += 1;
        }
    }
    jobs
}

/// The PR-2 scheduling baseline the shared executor replaced: one private
/// OS thread per device, each executing its round-robin share of `jobs`
/// with **uncapped** kernel fan-out — so every large job's amplitude
/// kernels compete for the whole rayon pool from inside every device
/// thread at once.
pub fn oversubscribed_batch(jobs: &[CircuitJob], n_dev: usize) {
    std::thread::scope(|scope| {
        for d in 0..n_dev {
            scope.spawn(move || {
                let mut dev = QpuDevice::new(d, QpuConfig::default());
                for job in jobs.iter().skip(d).step_by(n_dev) {
                    std::hint::black_box(dev.execute(job));
                }
            });
        }
    });
}

/// A harder generator setting than the library default: larger positional
/// jitter pushes silhouettes across max-pool cell boundaries, so the 16
/// pooled features stop being linearly separable — closer to the
/// difficulty profile of real Fashion-MNIST (where the paper's linear
/// baseline sits at ~69 % train accuracy).
pub fn hard_synth_config() -> SynthConfig {
    SynthConfig {
        jitter_px: 3.2,
        scale_jitter: 0.2,
        pixel_noise: 0.09,
    }
}

/// The binary Table III task, fully preprocessed into `[0, 2π)^16` rows.
pub struct BinaryTask {
    /// Training feature rows.
    pub train_x: Vec<Vec<f64>>,
    /// Training labels (0 = coat, 1 = shirt).
    pub train_y: Vec<f64>,
    /// Test feature rows.
    pub test_x: Vec<Vec<f64>>,
    /// Test labels.
    pub test_y: Vec<f64>,
}

/// Builds the coat-vs-shirt task: `train_per_class` + `test_per_class`
/// synthetic samples per class, pooled/rescaled with train-set statistics.
pub fn binary_task(train_per_class: usize, test_per_class: usize, seed: u64) -> BinaryTask {
    let per_class = train_per_class + test_per_class;
    let ds = fashion_synthetic(
        &[FashionClass::Coat, FashionClass::Shirt],
        per_class,
        seed,
        &hard_synth_config(),
    );
    // The generator interleaves classes, so a prefix split keeps balance.
    let (train, test) = ds.split_at(2 * train_per_class);
    let (train_x, test_x) = preprocess_4x4(&train, &test);
    let to_binary = |d: &Dataset| -> Vec<f64> {
        d.labels
            .iter()
            .map(|&l| {
                if l == FashionClass::Shirt.label() {
                    1.0
                } else {
                    0.0
                }
            })
            .collect()
    };
    BinaryTask {
        train_x,
        train_y: to_binary(&train),
        test_x,
        test_y: to_binary(&test),
    }
}

/// The multiclass Table IV task.
pub struct MulticlassTask {
    /// Training feature rows.
    pub train_x: Vec<Vec<f64>>,
    /// Training labels 0–9.
    pub train_y: Vec<usize>,
    /// Test feature rows.
    pub test_x: Vec<Vec<f64>>,
    /// Test labels 0–9.
    pub test_y: Vec<usize>,
}

/// Builds the 10-class task with `train_per_class`/`test_per_class`
/// samples per class (paper: 400 training images evenly sampled).
pub fn multiclass_task(train_per_class: usize, test_per_class: usize, seed: u64) -> MulticlassTask {
    let per_class = train_per_class + test_per_class;
    let ds = fashion_synthetic(&[], per_class, seed, &hard_synth_config());
    let (train, test) = ds.split_at(10 * train_per_class);
    let (train_x, test_x) = preprocess_4x4(&train, &test);
    MulticlassTask {
        train_x,
        train_y: train.labels.clone(),
        test_x,
        test_y: test.labels.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_task_shapes_and_balance() {
        let t = binary_task(20, 5, 1);
        assert_eq!(t.train_x.len(), 40);
        assert_eq!(t.test_x.len(), 10);
        let pos = t.train_y.iter().filter(|&&y| y == 1.0).count();
        assert_eq!(pos, 20);
        assert!(t.train_x.iter().all(|r| r.len() == 16));
    }

    #[test]
    fn multiclass_task_shapes() {
        let t = multiclass_task(4, 1, 2);
        assert_eq!(t.train_x.len(), 40);
        assert_eq!(t.test_x.len(), 10);
        for c in 0..10 {
            assert_eq!(t.train_y.iter().filter(|&&l| l == c).count(), 4);
        }
    }
}

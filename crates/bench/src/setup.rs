//! Dataset assembly matching the paper's experimental protocol (§VII.B):
//! binary coat-vs-shirt with 200 train + 50 test per class, and 10-class
//! multiclass with 400 evenly sampled training images.

use qdata::{fashion_synthetic, preprocess_4x4, Dataset, FashionClass, SynthConfig};

/// A harder generator setting than the library default: larger positional
/// jitter pushes silhouettes across max-pool cell boundaries, so the 16
/// pooled features stop being linearly separable — closer to the
/// difficulty profile of real Fashion-MNIST (where the paper's linear
/// baseline sits at ~69 % train accuracy).
pub fn hard_synth_config() -> SynthConfig {
    SynthConfig {
        jitter_px: 3.2,
        scale_jitter: 0.2,
        pixel_noise: 0.09,
    }
}

/// The binary Table III task, fully preprocessed into `[0, 2π)^16` rows.
pub struct BinaryTask {
    /// Training feature rows.
    pub train_x: Vec<Vec<f64>>,
    /// Training labels (0 = coat, 1 = shirt).
    pub train_y: Vec<f64>,
    /// Test feature rows.
    pub test_x: Vec<Vec<f64>>,
    /// Test labels.
    pub test_y: Vec<f64>,
}

/// Builds the coat-vs-shirt task: `train_per_class` + `test_per_class`
/// synthetic samples per class, pooled/rescaled with train-set statistics.
pub fn binary_task(train_per_class: usize, test_per_class: usize, seed: u64) -> BinaryTask {
    let per_class = train_per_class + test_per_class;
    let ds = fashion_synthetic(
        &[FashionClass::Coat, FashionClass::Shirt],
        per_class,
        seed,
        &hard_synth_config(),
    );
    // The generator interleaves classes, so a prefix split keeps balance.
    let (train, test) = ds.split_at(2 * train_per_class);
    let (train_x, test_x) = preprocess_4x4(&train, &test);
    let to_binary = |d: &Dataset| -> Vec<f64> {
        d.labels
            .iter()
            .map(|&l| {
                if l == FashionClass::Shirt.label() {
                    1.0
                } else {
                    0.0
                }
            })
            .collect()
    };
    BinaryTask {
        train_x,
        train_y: to_binary(&train),
        test_x,
        test_y: to_binary(&test),
    }
}

/// The multiclass Table IV task.
pub struct MulticlassTask {
    /// Training feature rows.
    pub train_x: Vec<Vec<f64>>,
    /// Training labels 0–9.
    pub train_y: Vec<usize>,
    /// Test feature rows.
    pub test_x: Vec<Vec<f64>>,
    /// Test labels 0–9.
    pub test_y: Vec<usize>,
}

/// Builds the 10-class task with `train_per_class`/`test_per_class`
/// samples per class (paper: 400 training images evenly sampled).
pub fn multiclass_task(train_per_class: usize, test_per_class: usize, seed: u64) -> MulticlassTask {
    let per_class = train_per_class + test_per_class;
    let ds = fashion_synthetic(&[], per_class, seed, &hard_synth_config());
    let (train, test) = ds.split_at(10 * train_per_class);
    let (train_x, test_x) = preprocess_4x4(&train, &test);
    MulticlassTask {
        train_x,
        train_y: train.labels.clone(),
        test_x,
        test_y: test.labels.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_task_shapes_and_balance() {
        let t = binary_task(20, 5, 1);
        assert_eq!(t.train_x.len(), 40);
        assert_eq!(t.test_x.len(), 10);
        let pos = t.train_y.iter().filter(|&&y| y == 1.0).count();
        assert_eq!(pos, 20);
        assert!(t.train_x.iter().all(|r| r.len() == 16));
    }

    #[test]
    fn multiclass_task_shapes() {
        let t = multiclass_task(4, 1, 2);
        assert_eq!(t.train_x.len(), 40);
        assert_eq!(t.test_x.len(), 10);
        for c in 0..10 {
            assert_eq!(t.train_y.iter().filter(|&&l| l == c).count(), 4);
        }
    }
}

//! Minimal aligned-table printer for experiment output.

/// Collects rows and prints them with aligned columns, paper-style.
pub struct TablePrinter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TablePrinter {
    /// Creates a printer with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TablePrinter {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column-count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                out.push_str("| ");
                out.push_str(cell);
                out.push_str(&" ".repeat(widths[i] - cell.chars().count() + 1));
            }
            out.push_str("|\n");
        };
        line(&mut out, &self.headers);
        for w in &widths {
            out.push('|');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("|\n");
        for row in &self.rows {
            line(&mut out, row);
        }
        let _ = cols;
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TablePrinter::new(&["name", "value"]);
        t.row(&["a".into(), "1.00".into()]);
        t.row(&["longer-name".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("| name"));
        assert!(s.contains("| longer-name"));
        // All lines equal length.
        let lens: Vec<usize> = s.lines().map(|l| l.chars().count()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = TablePrinter::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }
}

//! Simulated QPU devices.
//!
//! A device executes [`CircuitJob`]s on the `qsim` state-vector engine and
//! charges a latency model calibrated to published superconducting-QPU
//! figures: per-job submission overhead, per-gate time, and per-shot
//! readout time. The simulated clock feeds the pool's utilization and
//! makespan statistics; actual computation runs at host speed.

use crate::fault::FaultSchedule;
use crate::job::{CircuitJob, JobResult};
use qsim::noise::estimate_pauli_noisy;
use qsim::{estimate_pauli_with_shots, NoiseModel, StateVector};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Device parameters.
#[derive(Clone, Debug)]
pub struct QpuConfig {
    /// Maximum register width accepted.
    pub max_qubits: usize,
    /// Per-job submission/queue overhead (ns of simulated time).
    pub submit_overhead_ns: u64,
    /// Simulated time per gate (ns).
    pub gate_time_ns: u64,
    /// Simulated time per shot (ns) — state reset + readout.
    pub shot_time_ns: u64,
    /// Device noise; `NoiseModel::noiseless()` for ideal execution.
    pub noise: NoiseModel,
    /// RNG seed root for this device's shot noise.
    pub seed: u64,
    /// Probability that a job submission fails transiently (calibration
    /// drop, queue eviction). Failed jobs are retried by the pool; used
    /// for fault-injection testing of the scheduler.
    pub fail_prob: f64,
    /// Deterministic fault timeline on the pool's shared simulated
    /// clock: hard outages (every submission in the window fails) and
    /// degraded phases (jobs take a latency multiple). Empty by default.
    pub faults: FaultSchedule,
}

impl Default for QpuConfig {
    fn default() -> Self {
        QpuConfig {
            max_qubits: 24,
            submit_overhead_ns: 20_000, // 20 µs job setup
            gate_time_ns: 60,           // ~superconducting two-qubit gate
            shot_time_ns: 1_000,        // 1 µs per shot cycle
            noise: NoiseModel::noiseless(),
            seed: 0,
            fail_prob: 0.0,
            faults: FaultSchedule::none(),
        }
    }
}

/// A simulated quantum processing unit.
#[derive(Clone, Debug)]
pub struct QpuDevice {
    /// Pool-assigned device index.
    pub id: usize,
    config: QpuConfig,
    /// Total simulated busy time accumulated (ns).
    sim_busy_ns: u64,
    /// Jobs executed.
    jobs_run: usize,
}

impl QpuDevice {
    /// Creates a device with the given pool index and configuration.
    pub fn new(id: usize, config: QpuConfig) -> Self {
        QpuDevice {
            id,
            config,
            sim_busy_ns: 0,
            jobs_run: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &QpuConfig {
        &self.config
    }

    /// Accumulated simulated busy time (ns).
    pub fn sim_busy_ns(&self) -> u64 {
        self.sim_busy_ns
    }

    /// Number of jobs executed so far.
    pub fn jobs_run(&self) -> usize {
        self.jobs_run
    }

    /// The simulated occupancy a job would incur on this device.
    pub fn sim_cost_ns(&self, job: &CircuitJob) -> u64 {
        let shots = job.shots.unwrap_or(0) as u64;
        self.config.submit_overhead_ns
            + job.circuit.len() as u64 * self.config.gate_time_ns
            + shots * job.observables.len() as u64 * self.config.shot_time_ns
    }

    /// Whether submission attempt `attempt` of `job` hits the injected
    /// transient-failure draw. Deterministic given the device seed, job id
    /// and attempt — it is exactly the draw [`Self::try_execute`] makes,
    /// so schedulers can *predict* placement (the work-stealing policy's
    /// simulated-time dispatch) and execution then reproduces it.
    pub fn would_fail(&self, job: &CircuitJob, attempt: u32) -> bool {
        if self.config.fail_prob <= 0.0 {
            return false;
        }
        let mut fail_rng = StdRng::seed_from_u64(
            self.config.seed.wrapping_add(0xFA11)
                ^ job.id.wrapping_mul(0x5851_F42D_4C95_7F2D)
                ^ (attempt as u64).wrapping_mul(0x1405_7B7E_F767_814F),
        );
        fail_rng.random::<f64>() < self.config.fail_prob
    }

    /// Attempts a job, returning `None` on an injected transient failure
    /// (the pool retries elsewhere). Attempt number `attempt` decorrelates
    /// the failure draw across retries on the same device.
    pub fn try_execute(&mut self, job: &CircuitJob, attempt: u32) -> Option<JobResult> {
        if self.would_fail(job, attempt) {
            // Failed submissions still occupy the device briefly.
            self.sim_busy_ns += self.config.submit_overhead_ns;
            return None;
        }
        Some(self.execute(job))
    }

    /// Pure execution: per-observable estimates, deterministic given the
    /// device seed and job id, with **no** clock charging or job
    /// accounting — the pool's dispatch engine decides occupancy (cost,
    /// degraded multipliers, hedge cancellations) separately and settles
    /// the ledger through the crate-internal `charge`.
    pub fn values(&self, job: &CircuitJob) -> Vec<f64> {
        assert!(
            job.circuit.num_qubits() <= self.config.max_qubits,
            "job needs {} qubits, device caps at {}",
            job.circuit.num_qubits(),
            self.config.max_qubits
        );
        let mut rng =
            StdRng::seed_from_u64(self.config.seed ^ job.id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        match (job.shots, self.config.noise.is_noiseless()) {
            (None, true) => {
                let state = StateVector::from_circuit(&job.circuit);
                job.observables
                    .iter()
                    .map(|o| state.expectation(o))
                    .collect()
            }
            (None, false) => {
                // Exact expectations are unavailable on noisy hardware;
                // model "asymptotic shots" with a large fixed budget.
                job.observables
                    .iter()
                    .map(|o| {
                        estimate_pauli_noisy(&job.circuit, o, &self.config.noise, 4096, &mut rng)
                    })
                    .collect()
            }
            (Some(shots), true) => {
                let state = StateVector::from_circuit(&job.circuit);
                job.observables
                    .iter()
                    .map(|o| estimate_pauli_with_shots(&state, o, shots, &mut rng))
                    .collect()
            }
            (Some(shots), false) => job
                .observables
                .iter()
                .map(|o| estimate_pauli_noisy(&job.circuit, o, &self.config.noise, shots, &mut rng))
                .collect(),
        }
    }

    /// Executes a job, returning per-observable estimates and charging the
    /// simulated clock. Deterministic given the device seed and job id.
    pub fn execute(&mut self, job: &CircuitJob) -> JobResult {
        let values = self.values(job);
        let cost = self.sim_cost_ns(job);
        self.sim_busy_ns += cost;
        self.jobs_run += 1;
        JobResult {
            id: job.id,
            values,
            device: self.id,
            sim_busy_ns: cost,
            sim_completed_ns: cost,
        }
    }

    /// Settles the pool's dispatch ledger onto this device: `busy_ns` of
    /// simulated occupancy (executed jobs, failed-submission overheads,
    /// cancelled hedge partials) and `jobs` completed jobs.
    pub(crate) fn charge(&mut self, busy_ns: u64, jobs: usize) {
        self.sim_busy_ns += busy_ns;
        self.jobs_run += jobs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pauli::PauliString;
    use qsim::{Circuit, Gate};

    fn bell_job(id: u64, shots: Option<usize>) -> CircuitJob {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        CircuitJob::new(
            id,
            c,
            vec![
                PauliString::parse("ZZ").unwrap(),
                PauliString::parse("ZI").unwrap(),
            ],
            shots,
        )
    }

    #[test]
    fn exact_execution_matches_simulator() {
        let mut dev = QpuDevice::new(0, QpuConfig::default());
        let res = dev.execute(&bell_job(1, None));
        assert!((res.values[0] - 1.0).abs() < 1e-12);
        assert!(res.values[1].abs() < 1e-12);
        assert_eq!(dev.jobs_run(), 1);
        assert!(dev.sim_busy_ns() > 0);
    }

    #[test]
    fn shot_execution_approximates() {
        let mut dev = QpuDevice::new(0, QpuConfig::default());
        let res = dev.execute(&bell_job(2, Some(20_000)));
        assert!((res.values[0] - 1.0).abs() < 0.05);
        assert!(res.values[1].abs() < 0.05);
    }

    #[test]
    fn execution_is_deterministic_per_seed_and_job() {
        let mut d1 = QpuDevice::new(0, QpuConfig::default());
        let mut d2 = QpuDevice::new(0, QpuConfig::default());
        let r1 = d1.execute(&bell_job(3, Some(500)));
        let r2 = d2.execute(&bell_job(3, Some(500)));
        assert_eq!(r1.values, r2.values);
        // Different job id → different shot noise.
        let r3 = d1.execute(&bell_job(4, Some(500)));
        assert_ne!(r1.values, r3.values);
    }

    #[test]
    fn latency_model_scales_with_work() {
        let dev = QpuDevice::new(0, QpuConfig::default());
        let small = dev.sim_cost_ns(&bell_job(0, Some(10)));
        let big = dev.sim_cost_ns(&bell_job(0, Some(10_000)));
        assert!(big > small);
    }

    #[test]
    fn noisy_device_degrades_bell_correlation() {
        let config = QpuConfig {
            noise: NoiseModel {
                depol_1q: 0.02,
                depol_2q: 0.1,
                readout_flip: 0.05,
            },
            ..Default::default()
        };
        let mut dev = QpuDevice::new(0, config);
        let res = dev.execute(&bell_job(5, Some(3000)));
        assert!(res.values[0] < 0.97, "noise should reduce ⟨ZZ⟩ below 1");
        assert!(res.values[0] > 0.3, "but not destroy it entirely");
    }

    #[test]
    #[should_panic]
    fn oversized_job_rejected() {
        let config = QpuConfig {
            max_qubits: 1,
            ..Default::default()
        };
        let mut dev = QpuDevice::new(0, config);
        let _ = dev.execute(&bell_job(6, None));
    }
}

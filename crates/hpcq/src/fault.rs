//! Fault domains: device fault schedules, health tracking, and the
//! policies that route work around failures.
//!
//! The paper's premise makes QPUs the scarce, *flaky* resource of the
//! hybrid system — real devices drop calibrations, go dark for
//! maintenance windows, and straggle when their control electronics
//! degrade. This module models those failure domains deterministically
//! (so chaos experiments replay bit-for-bit) and defines the policies
//! the pool uses to survive them:
//!
//! * [`FaultSchedule`] — a deterministic timeline of hard outages and
//!   degraded (latency-multiplied) phases injected into a device, on
//!   top of the per-submission transient `fail_prob` draw;
//! * [`RetryPolicy`] — bounded retry with exponential backoff charged
//!   to the simulated clock, failing over to a *different* device after
//!   a run of local attempts, and honoring per-job deadline budgets;
//! * [`CircuitBreaker`] — per-device consecutive-failure breaker:
//!   trip → quarantine for a cooldown → half-open probe → re-admission,
//!   which keeps dead devices out of the dispatch rotation;
//! * [`HedgeConfig`] — straggler hedging: a job whose projected
//!   completion exceeds a multiple of its expected cost gets a replica
//!   on another device, first completion wins, the loser is cancelled
//!   and its partial occupancy accounted;
//! * [`JobError`] — the typed failure a job resolves to when every
//!   recovery avenue is exhausted (the old pool panicked instead);
//! * [`FaultStats`] — the failure/recovery taxonomy every batch and the
//!   pool lifetime report.

use std::error::Error;
use std::fmt;

/// What a fault window does to the device while active.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Hard outage: every submission in the window fails (charging the
    /// submission overhead, like any failed submission).
    Outage,
    /// Straggler phase: jobs execute but take `latency_x` times their
    /// modeled cost.
    Degraded {
        /// Latency multiplier applied to the job's simulated cost.
        latency_x: f64,
    },
}

/// One contiguous fault window `[start_ns, end_ns)` on a device's
/// simulated timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultWindow {
    /// Window start (simulated ns, inclusive).
    pub start_ns: u64,
    /// Window end (simulated ns, exclusive).
    pub end_ns: u64,
    /// What happens inside the window.
    pub kind: FaultKind,
}

/// A deterministic fault timeline for one device. Windows may overlap;
/// an outage dominates a degraded phase at the same instant.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSchedule {
    /// The fault windows, in any order.
    pub windows: Vec<FaultWindow>,
}

impl FaultSchedule {
    /// A schedule with no injected faults.
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// A schedule from explicit windows.
    pub fn new(windows: Vec<FaultWindow>) -> Self {
        FaultSchedule { windows }
    }

    /// Adds a hard-outage window.
    pub fn with_outage(mut self, start_ns: u64, end_ns: u64) -> Self {
        self.windows.push(FaultWindow {
            start_ns,
            end_ns,
            kind: FaultKind::Outage,
        });
        self
    }

    /// Adds a degraded (straggler) window with the given latency
    /// multiplier.
    pub fn with_degraded(mut self, start_ns: u64, end_ns: u64, latency_x: f64) -> Self {
        assert!(latency_x >= 1.0, "latency multiplier below 1 is a speedup");
        self.windows.push(FaultWindow {
            start_ns,
            end_ns,
            kind: FaultKind::Degraded { latency_x },
        });
        self
    }

    /// Whether the device is hard-down at simulated time `now_ns`.
    pub fn is_down_at(&self, now_ns: u64) -> bool {
        self.windows
            .iter()
            .any(|w| w.kind == FaultKind::Outage && (w.start_ns..w.end_ns).contains(&now_ns))
    }

    /// The latency multiplier at `now_ns` (1.0 outside degraded
    /// windows; overlapping windows compound by taking the maximum).
    pub fn latency_multiplier_at(&self, now_ns: u64) -> f64 {
        self.windows
            .iter()
            .filter(|w| (w.start_ns..w.end_ns).contains(&now_ns))
            .filter_map(|w| match w.kind {
                FaultKind::Degraded { latency_x } => Some(latency_x),
                FaultKind::Outage => None,
            })
            .fold(1.0, f64::max)
    }
}

/// Bounded retry with exponential backoff and failover.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempt budget per job across all devices; exhausting it
    /// resolves the job to [`JobErrorKind::RetriesExhausted`]. The
    /// default matches the old hard-coded panic bound, so workloads the
    /// unbounded pool completed still complete.
    pub max_attempts_total: u32,
    /// Local attempts on one device before the job fails over to a
    /// different device (when the pool has one).
    pub max_attempts_per_device: u32,
    /// First-retry backoff (simulated ns); doubles every further
    /// attempt.
    pub backoff_base_ns: u64,
    /// Backoff ceiling (simulated ns).
    pub backoff_cap_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts_total: 1000,
            max_attempts_per_device: 3,
            backoff_base_ns: 10_000,   // 10 µs
            backoff_cap_ns: 5_000_000, // 5 ms
        }
    }
}

impl RetryPolicy {
    /// The backoff charged before retry number `attempt` (1-based):
    /// `base · 2^(attempt-1)`, capped.
    pub fn backoff_ns(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(32);
        self.backoff_base_ns
            .saturating_mul(1u64 << shift)
            .min(self.backoff_cap_ns)
    }
}

/// Circuit-breaker tuning.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive submission failures that trip the breaker.
    pub failure_threshold: u32,
    /// Quarantine duration after a trip (simulated ns); when it
    /// elapses the breaker half-opens and the next dispatch probes.
    pub cooldown_ns: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown_ns: 10_000_000, // 10 ms
        }
    }
}

/// Straggler hedging.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HedgeConfig {
    /// Enables hedged dispatch.
    pub enabled: bool,
    /// Straggler threshold: a hedge replica launches once a job has run
    /// `after_multiple ×` its expected cost without completing.
    pub after_multiple: f64,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            enabled: true,
            after_multiple: 3.0,
        }
    }
}

/// Everything the pool consults when routing around failures.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultPolicy {
    /// Retry/failover bounds.
    pub retry: RetryPolicy,
    /// Per-device breaker tuning.
    pub breaker: BreakerConfig,
    /// Straggler hedging.
    pub hedge: HedgeConfig,
}

/// Observed device health, derived from dispatch outcomes (not from the
/// injected schedule — the scheduler only knows what it has seen).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceHealth {
    /// No recent failures.
    Healthy,
    /// Recent failures below the breaker threshold, a half-open probe
    /// in progress, or straggling badly enough to have been hedged
    /// against in the last batch.
    Degraded,
    /// Breaker open: out of the dispatch rotation until the cooldown
    /// elapses.
    Quarantined,
}

/// Breaker state machine (see [`BreakerConfig`]).
#[derive(Clone, Copy, Debug, PartialEq)]
enum BreakerState {
    Closed,
    Open { until_ns: u64 },
    HalfOpen,
}

/// Per-device consecutive-failure circuit breaker.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed (healthy) breaker.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            trips: 0,
        }
    }

    /// The earliest simulated time at which this device may be
    /// dispatched to, given it would otherwise be free at `free_ns`:
    /// an open breaker defers dispatch to the end of its cooldown
    /// (where the first dispatch becomes the half-open probe).
    pub fn ready_ns(&self, free_ns: u64) -> u64 {
        match self.state {
            BreakerState::Open { until_ns } => free_ns.max(until_ns),
            _ => free_ns,
        }
    }

    /// Notes a dispatch at `now_ns`; an open breaker whose cooldown has
    /// elapsed half-opens. Returns `true` when this dispatch is the
    /// half-open probe.
    pub fn on_dispatch(&mut self, now_ns: u64) -> bool {
        if let BreakerState::Open { until_ns } = self.state {
            if now_ns >= until_ns {
                self.state = BreakerState::HalfOpen;
                return true;
            }
        }
        false
    }

    /// Notes a successful execution: probe or not, the breaker closes
    /// and the failure run resets (re-admission).
    pub fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// Notes a failed submission observed at `now_ns`. Returns `true`
    /// when this failure trips (or re-trips) the breaker into
    /// quarantine.
    pub fn on_failure(&mut self, now_ns: u64) -> bool {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let trip = match self.state {
            // A failed half-open probe re-quarantines immediately.
            BreakerState::HalfOpen => true,
            BreakerState::Closed => self.consecutive_failures >= self.config.failure_threshold,
            BreakerState::Open { .. } => false,
        };
        if trip {
            self.state = BreakerState::Open {
                until_ns: now_ns.saturating_add(self.config.cooldown_ns),
            };
            self.trips += 1;
        }
        trip
    }

    /// Whether the breaker is open (device quarantined) at `now_ns`.
    pub fn is_quarantined_at(&self, now_ns: u64) -> bool {
        matches!(self.state, BreakerState::Open { until_ns } if now_ns < until_ns)
    }

    /// Times the breaker has tripped into quarantine.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Health as observed by the scheduler (`straggler` marks a device
    /// that was hedged against in the most recent batch).
    pub fn health(&self, straggler: bool) -> DeviceHealth {
        match self.state {
            BreakerState::Open { .. } => DeviceHealth::Quarantined,
            BreakerState::HalfOpen => DeviceHealth::Degraded,
            BreakerState::Closed if self.consecutive_failures > 0 || straggler => {
                DeviceHealth::Degraded
            }
            BreakerState::Closed => DeviceHealth::Healthy,
        }
    }
}

/// Why a job could not be completed. Carries the job id so callers can
/// match outcomes back to requests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobError {
    /// Mirrors the job id.
    pub id: u64,
    /// Submission attempts spent before giving up.
    pub attempts: u32,
    /// The terminal failure.
    pub kind: JobErrorKind,
}

/// Terminal job-failure taxonomy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum JobErrorKind {
    /// The retry budget ([`RetryPolicy::max_attempts_total`]) ran out.
    RetriesExhausted,
    /// The job's deadline budget expired before (or while) it could be
    /// dispatched — expired jobs are never retried.
    DeadlineExpired {
        /// The absolute simulated deadline the job carried.
        deadline_ns: u64,
        /// Simulated time when the expiry was observed.
        now_ns: u64,
    },
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            JobErrorKind::RetriesExhausted => {
                write!(
                    f,
                    "job {}: retries exhausted after {} attempts",
                    self.id, self.attempts
                )
            }
            JobErrorKind::DeadlineExpired {
                deadline_ns,
                now_ns,
            } => write!(
                f,
                "job {}: deadline {deadline_ns} ns expired at {now_ns} ns (after {} attempts)",
                self.id, self.attempts
            ),
        }
    }
}

impl Error for JobError {}

/// The failure/recovery taxonomy of a batch (and, summed, of a pool's
/// lifetime).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Failed submissions that were retried (backoff charged).
    pub retries: u64,
    /// Jobs moved to a different device after a run of local failures
    /// or a quarantine.
    pub failovers: u64,
    /// Hedge replicas launched against stragglers.
    pub hedges_launched: u64,
    /// Hedges that beat their primary (primary cancelled).
    pub hedges_won: u64,
    /// Breaker trips into quarantine (including failed probes).
    pub breaker_trips: u64,
    /// Half-open probe dispatches after a cooldown.
    pub probes: u64,
    /// Jobs resolved to a typed [`JobError`].
    pub jobs_failed: u64,
}

impl FaultStats {
    /// Accumulates another batch's counters into `self`.
    pub fn absorb(&mut self, other: &FaultStats) {
        self.retries += other.retries;
        self.failovers += other.failovers;
        self.hedges_launched += other.hedges_launched;
        self.hedges_won += other.hedges_won;
        self.breaker_trips += other.breaker_trips;
        self.probes += other.probes;
        self.jobs_failed += other.jobs_failed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_windows_classify_time() {
        let s = FaultSchedule::none()
            .with_outage(100, 200)
            .with_degraded(150, 400, 4.0);
        assert!(!s.is_down_at(99));
        assert!(s.is_down_at(100));
        assert!(s.is_down_at(199));
        assert!(!s.is_down_at(200), "end is exclusive");
        assert_eq!(s.latency_multiplier_at(100), 1.0, "outage is not degraded");
        assert_eq!(s.latency_multiplier_at(300), 4.0);
        assert_eq!(s.latency_multiplier_at(400), 1.0);
    }

    #[test]
    fn overlapping_degraded_windows_take_the_max() {
        let s = FaultSchedule::none()
            .with_degraded(0, 100, 2.0)
            .with_degraded(50, 150, 8.0);
        assert_eq!(s.latency_multiplier_at(75), 8.0);
        assert_eq!(s.latency_multiplier_at(25), 2.0);
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let r = RetryPolicy {
            backoff_base_ns: 100,
            backoff_cap_ns: 1000,
            ..Default::default()
        };
        assert_eq!(r.backoff_ns(1), 100);
        assert_eq!(r.backoff_ns(2), 200);
        assert_eq!(r.backoff_ns(3), 400);
        assert_eq!(r.backoff_ns(5), 1000, "capped");
        assert_eq!(r.backoff_ns(64), 1000, "shift saturates, no overflow");
    }

    #[test]
    fn breaker_trips_quarantines_probes_and_readmits() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown_ns: 1000,
        });
        assert_eq!(b.health(false), DeviceHealth::Healthy);
        assert!(!b.on_failure(10));
        assert_eq!(b.health(false), DeviceHealth::Degraded);
        assert!(!b.on_failure(20));
        assert!(b.on_failure(30), "third consecutive failure trips");
        assert_eq!(b.trips(), 1);
        assert_eq!(b.health(false), DeviceHealth::Quarantined);
        assert!(b.is_quarantined_at(500));
        assert_eq!(b.ready_ns(40), 1030, "dispatch deferred to cooldown end");
        // Cooldown elapsed: dispatch half-opens (probe).
        assert!(b.on_dispatch(1030));
        assert_eq!(b.health(false), DeviceHealth::Degraded);
        // Failed probe re-trips immediately.
        assert!(b.on_failure(1030));
        assert_eq!(b.trips(), 2);
        // Second probe succeeds: closed, failure run reset.
        assert!(b.on_dispatch(2030));
        b.on_success();
        assert_eq!(b.health(false), DeviceHealth::Healthy);
        assert_eq!(b.ready_ns(2031), 2031);
    }

    #[test]
    fn straggler_flag_degrades_health() {
        let b = CircuitBreaker::new(BreakerConfig::default());
        assert_eq!(b.health(true), DeviceHealth::Degraded);
    }

    #[test]
    fn fault_stats_absorb_sums() {
        let mut a = FaultStats {
            retries: 1,
            failovers: 2,
            ..Default::default()
        };
        a.absorb(&FaultStats {
            retries: 10,
            breaker_trips: 3,
            ..Default::default()
        });
        assert_eq!(a.retries, 11);
        assert_eq!(a.failovers, 2);
        assert_eq!(a.breaker_trips, 3);
    }

    #[test]
    fn job_error_displays_taxonomy() {
        let e = JobError {
            id: 7,
            attempts: 12,
            kind: JobErrorKind::RetriesExhausted,
        };
        assert!(e.to_string().contains("retries exhausted"));
        let d = JobError {
            id: 8,
            attempts: 2,
            kind: JobErrorKind::DeadlineExpired {
                deadline_ns: 100,
                now_ns: 150,
            },
        };
        assert!(d.to_string().contains("deadline"));
    }
}

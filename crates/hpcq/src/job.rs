//! Units of quantum work.

use pauli::PauliString;
use qsim::Circuit;

/// One dispatchable quantum task: prepare the state of `circuit` and
/// estimate every observable on it.
///
/// This is the natural batching grain of Algorithm 1: a `(data point,
/// ansatz)` pair shares one prepared state across `q` observables.
#[derive(Clone, Debug)]
pub struct CircuitJob {
    /// Caller-assigned identifier; results are matched by it.
    pub id: u64,
    /// The state-preparation circuit (encoding + bound ansatz).
    pub circuit: Circuit,
    /// Observables to estimate on the prepared state.
    pub observables: Vec<PauliString>,
    /// Measurement shots per observable; `None` = exact expectations.
    pub shots: Option<usize>,
    /// Remaining deadline budget in simulated ns, measured from the
    /// start of the batch this job is submitted in; `None` = no
    /// deadline. The pool never dispatches (or retries) a job past its
    /// budget — it resolves to a typed deadline error instead.
    pub sim_budget_ns: Option<u64>,
}

impl CircuitJob {
    /// Creates a job, validating qubit counts.
    pub fn new(
        id: u64,
        circuit: Circuit,
        observables: Vec<PauliString>,
        shots: Option<usize>,
    ) -> Self {
        assert!(!observables.is_empty(), "job without observables");
        assert!(
            observables
                .iter()
                .all(|o| o.num_qubits() == circuit.num_qubits()),
            "observable/circuit qubit mismatch"
        );
        if let Some(s) = shots {
            assert!(s > 0, "zero shots");
        }
        CircuitJob {
            id,
            circuit,
            observables,
            shots,
            sim_budget_ns: None,
        }
    }

    /// Attaches a deadline budget (simulated ns from batch start).
    pub fn with_budget(mut self, sim_budget_ns: u64) -> Self {
        self.sim_budget_ns = Some(sim_budget_ns);
        self
    }

    /// A crude execution-cost estimate used by the least-loaded scheduler:
    /// proportional to gate count plus shots×observables readout cost.
    pub fn cost_estimate(&self) -> u64 {
        let gates = self.circuit.len() as u64;
        let readouts = self.shots.unwrap_or(1) as u64 * self.observables.len() as u64;
        gates + readouts
    }
}

/// The result of one [`CircuitJob`].
#[derive(Clone, Debug, PartialEq)]
pub struct JobResult {
    /// Mirrors the job id.
    pub id: u64,
    /// One estimate per observable, in job order.
    pub values: Vec<f64>,
    /// Which device ran the job.
    pub device: usize,
    /// Simulated device-occupancy time in nanoseconds (latency model).
    pub sim_busy_ns: u64,
    /// Simulated completion time in nanoseconds relative to batch start
    /// (pool dispatch) or to submission (direct `execute`) — i.e. the
    /// job's simulated latency, including queueing, retries, and
    /// backoff.
    pub sim_completed_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::Gate;

    #[test]
    fn job_construction_and_cost() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        let job = CircuitJob::new(7, c, vec![PauliString::parse("ZZ").unwrap()], Some(100));
        assert_eq!(job.id, 7);
        assert_eq!(job.cost_estimate(), 2 + 100);
    }

    #[test]
    #[should_panic]
    fn mismatched_observable_panics() {
        let c = Circuit::new(2);
        let _ = CircuitJob::new(0, c, vec![PauliString::parse("ZZZ").unwrap()], None);
    }

    #[test]
    #[should_panic]
    fn empty_observables_panic() {
        let c = Circuit::new(1);
        let _ = CircuitJob::new(0, c, vec![], None);
    }
}

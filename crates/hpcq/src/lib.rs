//! # hpcq — hybrid HPC-QC runtime
//!
//! The system layer of the reproduction: post-variational networks push
//! *all* quantum work into one embarrassingly parallel batch of fixed
//! circuits ("measurements are executed in one go on quantum computer",
//! Table I), which is exactly the workload shape an HPC host wants to
//! scatter across a pool of QPUs. This crate models that system:
//!
//! * [`CircuitJob`] / [`JobResult`] — the unit of quantum work (one
//!   prepared state, many observables),
//! * [`QpuDevice`] — a simulated quantum device: state-vector execution +
//!   shot noise + optional NISQ noise model + a latency/queue cost model
//!   (gate time, readout time, per-job submission overhead),
//! * [`QpuPool`] — a device pool with three scheduling policies
//!   (round-robin, least-loaded, simulated-time work-stealing), running
//!   its device tasks on the **same persistent rayon executor** the
//!   `qsim` amplitude kernels fan out on — one shared core budget with
//!   per-task fair-share fan-out hints instead of devices × cores
//!   oversubscription,
//! * [`HybridPipeline`] — the two-stage quantum→classical pipeline with
//!   per-stage timing,
//! * [`fault`] — the fault-domain layer: deterministic device fault
//!   schedules (outages, straggler phases), bounded retry with failover,
//!   per-device circuit breakers, hedged dispatch, and the typed
//!   [`JobError`] taxonomy jobs resolve to instead of panicking,
//! * [`scaling`] — strong-scaling harness (speedup/efficiency vs worker
//!   count) behind the `exp_scaling` experiment binary.

pub mod device;
pub mod fault;
pub mod job;
pub mod pipeline;
pub mod pool;
pub mod scaling;

pub use device::{QpuConfig, QpuDevice};
pub use fault::{
    BreakerConfig, CircuitBreaker, DeviceHealth, FaultKind, FaultPolicy, FaultSchedule, FaultStats,
    FaultWindow, HedgeConfig, JobError, JobErrorKind, RetryPolicy,
};
pub use job::{CircuitJob, JobResult};
pub use pipeline::{HybridPipeline, PipelineError, PipelineReport};
pub use pool::{outcome_id, JobOutcome, PoolReport, QpuPool, SchedulePolicy};
pub use scaling::{strong_scaling, ScalingPoint};

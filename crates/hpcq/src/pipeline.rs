//! The two-stage hybrid pipeline: quantum feature generation on the QPU
//! pool, classical convex optimisation on the host.
//!
//! Contrast with the variational loop (paper Table I): post-variational
//! needs **one** quantum stage and **one** classical stage, with no
//! feedback — so the quantum stage can be batched, scheduled, and scaled
//! like any other HPC workload.
//!
//! Both stages share one thread budget: the quantum stage's device tasks
//! run as scoped tasks on the persistent rayon executor (see
//! [`crate::pool`]), and any parallel kernels the classical closure uses
//! (matrix assembly, the convex fit) fan out on that same executor after
//! the quantum stage has fully drained — no private thread pools anywhere
//! in the pipeline.

use crate::job::{CircuitJob, JobResult};
use crate::pool::{PoolReport, QpuPool};
use std::time::Instant;

/// Per-stage timing of one pipeline run.
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// Wall seconds in the quantum stage.
    pub quantum_secs: f64,
    /// Wall seconds in the classical stage.
    pub classical_secs: f64,
    /// Device-pool statistics of the quantum stage.
    pub pool: PoolReport,
}

impl PipelineReport {
    /// Total wall time.
    pub fn total_secs(&self) -> f64 {
        self.quantum_secs + self.classical_secs
    }

    /// Fraction of time spent in the quantum stage.
    pub fn quantum_fraction(&self) -> f64 {
        self.quantum_secs / self.total_secs().max(1e-12)
    }
}

/// Orchestrates quantum-then-classical execution.
pub struct HybridPipeline {
    pool: QpuPool,
}

impl HybridPipeline {
    /// Wraps a device pool.
    pub fn new(pool: QpuPool) -> Self {
        HybridPipeline { pool }
    }

    /// The device pool.
    pub fn pool(&self) -> &QpuPool {
        &self.pool
    }

    /// Runs the full pipeline: executes `jobs` on the pool, then feeds the
    /// ordered results to the classical stage `classical` (e.g. the convex
    /// fit), returning its output and the stage timings.
    pub fn run<T>(
        &mut self,
        jobs: Vec<CircuitJob>,
        classical: impl FnOnce(&[JobResult]) -> T,
    ) -> (T, PipelineReport) {
        let q_start = Instant::now();
        let (results, pool_report) = self.pool.execute_batch(jobs);
        let quantum_secs = q_start.elapsed().as_secs_f64();

        let c_start = Instant::now();
        let output = classical(&results);
        let classical_secs = c_start.elapsed().as_secs_f64();

        (
            output,
            PipelineReport {
                quantum_secs,
                classical_secs,
                pool: pool_report,
            },
        )
    }
}

/// Assembles job results into a dense row-major feature table:
/// `rows × q` where job `id = row` and values are the job's observable
/// estimates. Jobs must cover ids `0..rows` exactly once.
pub fn results_to_rows(results: &[JobResult]) -> Vec<Vec<f64>> {
    let mut rows: Vec<Option<Vec<f64>>> = vec![None; results.len()];
    for r in results {
        let idx = r.id as usize;
        assert!(idx < rows.len(), "job id {idx} out of range");
        assert!(rows[idx].is_none(), "duplicate job id {idx}");
        rows[idx] = Some(r.values.clone());
    }
    rows.into_iter()
        .map(|r| r.expect("missing job id"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::QpuConfig;
    use crate::pool::SchedulePolicy;
    use pauli::PauliString;
    use qsim::{Circuit, Gate};

    fn jobs(n: usize) -> Vec<CircuitJob> {
        (0..n as u64)
            .map(|id| {
                let mut c = Circuit::new(2);
                c.push(Gate::Ry(0, 0.2 * id as f64));
                CircuitJob::new(
                    id,
                    c,
                    vec![
                        PauliString::parse("IZ").unwrap(),
                        PauliString::parse("IX").unwrap(),
                    ],
                    None,
                )
            })
            .collect()
    }

    #[test]
    fn pipeline_runs_both_stages() {
        let pool = QpuPool::homogeneous(2, QpuConfig::default(), SchedulePolicy::WorkStealing);
        let mut pipeline = HybridPipeline::new(pool);
        let (sum, report) = pipeline.run(jobs(8), |results| {
            results.iter().map(|r| r.values[0]).sum::<f64>()
        });
        assert!(sum.is_finite());
        assert!(report.quantum_secs > 0.0);
        assert!(report.classical_secs >= 0.0);
        assert!((0.0..=1.0).contains(&report.quantum_fraction()));
    }

    #[test]
    fn classical_stage_sees_ordered_results() {
        let pool = QpuPool::homogeneous(3, QpuConfig::default(), SchedulePolicy::WorkStealing);
        let mut pipeline = HybridPipeline::new(pool);
        let (ids, _) = pipeline.run(jobs(12), |results| {
            results.iter().map(|r| r.id).collect::<Vec<u64>>()
        });
        assert_eq!(ids, (0..12).collect::<Vec<u64>>());
    }

    #[test]
    fn results_to_rows_roundtrip() {
        let pool = QpuPool::homogeneous(2, QpuConfig::default(), SchedulePolicy::RoundRobin);
        let mut pipeline = HybridPipeline::new(pool);
        let (rows, _) = pipeline.run(jobs(6), results_to_rows);
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| r.len() == 2));
        // Row 0 is Ry(0): ⟨Z⟩ = 1.
        assert!((rows[0][0] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn results_to_rows_rejects_gaps() {
        let r = JobResult {
            id: 5,
            values: vec![],
            device: 0,
            sim_busy_ns: 0,
        };
        let _ = results_to_rows(&[r]);
    }
}

//! The two-stage hybrid pipeline: quantum feature generation on the QPU
//! pool, classical convex optimisation on the host.
//!
//! Contrast with the variational loop (paper Table I): post-variational
//! needs **one** quantum stage and **one** classical stage, with no
//! feedback — so the quantum stage can be batched, scheduled, and scaled
//! like any other HPC workload.
//!
//! Both stages share one thread budget: the quantum stage's device tasks
//! run as scoped tasks on the persistent rayon executor (see
//! [`crate::pool`]), and any parallel kernels the classical closure uses
//! (matrix assembly, the convex fit) fan out on that same executor after
//! the quantum stage has fully drained — no private thread pools anywhere
//! in the pipeline.

use crate::fault::JobError;
use crate::job::{CircuitJob, JobResult};
use crate::pool::{PoolReport, QpuPool};
use std::fmt;
use std::time::Instant;

/// Per-stage timing of one pipeline run.
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// Wall seconds in the quantum stage.
    pub quantum_secs: f64,
    /// Wall seconds in the classical stage.
    pub classical_secs: f64,
    /// Device-pool statistics of the quantum stage.
    pub pool: PoolReport,
}

impl PipelineReport {
    /// Total wall time.
    pub fn total_secs(&self) -> f64 {
        self.quantum_secs + self.classical_secs
    }

    /// Fraction of time spent in the quantum stage.
    pub fn quantum_fraction(&self) -> f64 {
        self.quantum_secs / self.total_secs().max(1e-12)
    }
}

/// The quantum stage could not deliver a complete batch: one or more
/// jobs resolved to typed errors (retries exhausted, deadlines expired).
/// The classical stage never runs on partial features.
#[derive(Clone, Debug)]
pub struct PipelineError {
    /// The terminally failed jobs, in id order.
    pub failed: Vec<JobError>,
    /// Jobs that did complete before the batch was abandoned.
    pub completed: usize,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "quantum stage failed {} of {} jobs (first: {})",
            self.failed.len(),
            self.failed.len() + self.completed,
            self.failed[0]
        )
    }
}

impl std::error::Error for PipelineError {}

/// Orchestrates quantum-then-classical execution.
pub struct HybridPipeline {
    pool: QpuPool,
}

impl HybridPipeline {
    /// Wraps a device pool.
    pub fn new(pool: QpuPool) -> Self {
        HybridPipeline { pool }
    }

    /// The device pool.
    pub fn pool(&self) -> &QpuPool {
        &self.pool
    }

    /// Runs the full pipeline: executes `jobs` on the pool, then feeds the
    /// ordered results to the classical stage `classical` (e.g. the convex
    /// fit), returning its output and the stage timings. If any job
    /// resolves to a typed error (retries exhausted, deadline expired),
    /// the classical stage is skipped and the failures are returned — a
    /// convex fit over a feature matrix with missing rows would silently
    /// train on garbage.
    pub fn run<T>(
        &mut self,
        jobs: Vec<CircuitJob>,
        classical: impl FnOnce(&[JobResult]) -> T,
    ) -> Result<(T, PipelineReport), PipelineError> {
        let q_start = Instant::now();
        let (outcomes, pool_report) = self.pool.execute_batch(jobs);
        let quantum_secs = q_start.elapsed().as_secs_f64();

        let mut results = Vec::with_capacity(outcomes.len());
        let mut failed = Vec::new();
        for outcome in outcomes {
            match outcome {
                Ok(r) => results.push(r),
                Err(e) => failed.push(e),
            }
        }
        if !failed.is_empty() {
            return Err(PipelineError {
                failed,
                completed: results.len(),
            });
        }

        let c_start = Instant::now();
        let output = classical(&results);
        let classical_secs = c_start.elapsed().as_secs_f64();

        Ok((
            output,
            PipelineReport {
                quantum_secs,
                classical_secs,
                pool: pool_report,
            },
        ))
    }
}

/// Assembles job results into a dense row-major feature table:
/// `rows × q` where job `id = row` and values are the job's observable
/// estimates. Jobs must cover ids `0..rows` exactly once.
pub fn results_to_rows(results: &[JobResult]) -> Vec<Vec<f64>> {
    let mut rows: Vec<Option<Vec<f64>>> = vec![None; results.len()];
    for r in results {
        let idx = r.id as usize;
        assert!(idx < rows.len(), "job id {idx} out of range");
        assert!(rows[idx].is_none(), "duplicate job id {idx}");
        rows[idx] = Some(r.values.clone());
    }
    rows.into_iter()
        .map(|r| r.expect("missing job id"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::QpuConfig;
    use crate::pool::SchedulePolicy;
    use pauli::PauliString;
    use qsim::{Circuit, Gate};

    fn jobs(n: usize) -> Vec<CircuitJob> {
        (0..n as u64)
            .map(|id| {
                let mut c = Circuit::new(2);
                c.push(Gate::Ry(0, 0.2 * id as f64));
                CircuitJob::new(
                    id,
                    c,
                    vec![
                        PauliString::parse("IZ").unwrap(),
                        PauliString::parse("IX").unwrap(),
                    ],
                    None,
                )
            })
            .collect()
    }

    #[test]
    fn pipeline_runs_both_stages() {
        let pool = QpuPool::homogeneous(2, QpuConfig::default(), SchedulePolicy::WorkStealing);
        let mut pipeline = HybridPipeline::new(pool);
        let (sum, report) = pipeline
            .run(jobs(8), |results| {
                results.iter().map(|r| r.values[0]).sum::<f64>()
            })
            .unwrap();
        assert!(sum.is_finite());
        assert!(report.quantum_secs > 0.0);
        assert!(report.classical_secs >= 0.0);
        assert!((0.0..=1.0).contains(&report.quantum_fraction()));
    }

    #[test]
    fn classical_stage_sees_ordered_results() {
        let pool = QpuPool::homogeneous(3, QpuConfig::default(), SchedulePolicy::WorkStealing);
        let mut pipeline = HybridPipeline::new(pool);
        let (ids, _) = pipeline
            .run(jobs(12), |results| {
                results.iter().map(|r| r.id).collect::<Vec<u64>>()
            })
            .unwrap();
        assert_eq!(ids, (0..12).collect::<Vec<u64>>());
    }

    #[test]
    fn results_to_rows_roundtrip() {
        let pool = QpuPool::homogeneous(2, QpuConfig::default(), SchedulePolicy::RoundRobin);
        let mut pipeline = HybridPipeline::new(pool);
        let (rows, _) = pipeline.run(jobs(6), results_to_rows).unwrap();
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| r.len() == 2));
        // Row 0 is Ry(0): ⟨Z⟩ = 1.
        assert!((rows[0][0] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn results_to_rows_rejects_gaps() {
        let r = JobResult {
            id: 5,
            values: vec![],
            device: 0,
            sim_busy_ns: 0,
            sim_completed_ns: 0,
        };
        let _ = results_to_rows(&[r]);
    }

    #[test]
    #[should_panic(expected = "duplicate job id")]
    fn results_to_rows_rejects_duplicates() {
        let r = |id| JobResult {
            id,
            values: vec![1.0],
            device: 0,
            sim_busy_ns: 0,
            sim_completed_ns: 0,
        };
        let _ = results_to_rows(&[r(0), r(0)]);
    }

    #[test]
    fn results_to_rows_empty_is_empty() {
        assert!(results_to_rows(&[]).is_empty());
    }

    #[test]
    fn pipeline_handles_empty_job_list() {
        // A serving micro-batch where every request was shed or served
        // from cache submits nothing: the pipeline must still run the
        // classical stage (on zero rows) and report sane timings.
        for policy in [
            SchedulePolicy::RoundRobin,
            SchedulePolicy::LeastLoaded,
            SchedulePolicy::WorkStealing,
        ] {
            let pool = QpuPool::homogeneous(2, QpuConfig::default(), policy);
            let mut pipeline = HybridPipeline::new(pool);
            let (rows, report) = pipeline.run(Vec::new(), results_to_rows).unwrap();
            assert!(rows.is_empty());
            assert!(report.quantum_secs >= 0.0);
            assert!(
                report.pool.sim_makespan_secs == 0.0,
                "no device was charged"
            );
            assert_eq!(report.pool.throughput, 0.0);
        }
    }

    #[test]
    fn pipeline_single_device_pool() {
        // Degenerate pool: one device takes every job, utilization is
        // exactly 1, and results still arrive complete and ordered.
        for policy in [
            SchedulePolicy::RoundRobin,
            SchedulePolicy::LeastLoaded,
            SchedulePolicy::WorkStealing,
        ] {
            let pool = QpuPool::homogeneous(1, QpuConfig::default(), policy);
            let mut pipeline = HybridPipeline::new(pool);
            let (rows, report) = pipeline.run(jobs(6), results_to_rows).unwrap();
            assert_eq!(rows.len(), 6);
            assert_eq!(report.pool.jobs_per_device, vec![6]);
            assert!((report.pool.utilization - 1.0).abs() < 1e-12);
            assert!((rows[0][0] - 1.0).abs() < 1e-12, "Ry(0): ⟨Z⟩ = 1");
        }
    }

    #[test]
    fn pipeline_survives_jobs_that_all_fail_first() {
        // Heavy fault injection: with fail_prob = 0.95 essentially every
        // job fails at least once (and most several times); every policy
        // must still deliver every result, bit-identical to a noiseless
        // pool, with the failed submissions charged to the sim clock.
        let clean_pool = QpuPool::homogeneous(2, QpuConfig::default(), SchedulePolicy::RoundRobin);
        let (clean, _) = HybridPipeline::new(clean_pool)
            .run(jobs(6), results_to_rows)
            .unwrap();
        let flaky = QpuConfig {
            fail_prob: 0.95,
            ..Default::default()
        };
        for policy in [
            SchedulePolicy::RoundRobin,
            SchedulePolicy::LeastLoaded,
            SchedulePolicy::WorkStealing,
        ] {
            let pool = QpuPool::homogeneous(2, flaky.clone(), policy);
            let mut pipeline = HybridPipeline::new(pool);
            let (rows, report) = pipeline.run(jobs(6), results_to_rows).unwrap();
            assert_eq!(rows, clean, "retries must not change exact results");
            // 6 jobs at 0.95 fail-prob retry ~20× each on average; the
            // charged overhead must exceed the 6 clean submissions.
            let clean_submit_ns = 6.0 * flaky.submit_overhead_ns as f64;
            assert!(
                report.pool.sim_makespan_secs * 1e9 > clean_submit_ns,
                "failed submissions must charge the simulated clock"
            );
        }
    }

    #[test]
    fn pipeline_surfaces_typed_errors_without_running_classical_stage() {
        use crate::fault::{FaultPolicy, JobErrorKind, RetryPolicy};
        let broken = QpuConfig {
            fail_prob: 1.0,
            ..Default::default()
        };
        let pool = QpuPool::homogeneous(2, broken, SchedulePolicy::WorkStealing).with_fault_policy(
            FaultPolicy {
                retry: RetryPolicy {
                    max_attempts_total: 3,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let mut pipeline = HybridPipeline::new(pool);
        let mut classical_ran = false;
        let err = pipeline
            .run(jobs(4), |_| classical_ran = true)
            .expect_err("all jobs must fail");
        assert!(!classical_ran, "classical stage must not see partial rows");
        assert_eq!(err.failed.len(), 4);
        assert_eq!(err.completed, 0);
        assert!(err
            .failed
            .iter()
            .all(|e| e.kind == JobErrorKind::RetriesExhausted));
        assert!(err.to_string().contains("failed 4 of 4"));
    }
}

//! Multi-QPU scheduling.
//!
//! The host scatters a batch of [`CircuitJob`]s over the device pool.
//! Three policies:
//!
//! * [`SchedulePolicy::RoundRobin`] — static cyclic assignment; zero
//!   scheduling cost, poor balance for heterogeneous jobs.
//! * [`SchedulePolicy::LeastLoaded`] — greedy offline assignment by the
//!   devices' simulated clocks using each job's cost estimate (classic
//!   LPT-style list scheduling).
//! * [`SchedulePolicy::WorkStealing`] — dynamic: one shared queue,
//!   drained in *simulated* time by whichever device's clock frees up
//!   first (placement is independent of host thread count and fully
//!   reproducible).
//!
//! All policies run their device tasks on the **shared rayon executor**
//! (`rayon::scope`), the same persistent pool the `qsim` amplitude
//! kernels fan out on — device-level and amplitude-level parallelism
//! cooperate under one core budget instead of multiplying (the old
//! per-device `std::thread` spawns oversubscribed to devices × cores
//! once a job's state crossed the kernel threshold). Each device task
//! carries a `rayon::with_inner_threads` hint — its fair share of the
//! pool, `threads / active_devices` — so one job's kernels cannot flood
//! the queues and starve the other devices. Results are returned in
//! job-id order regardless of completion order.

use crate::device::{QpuConfig, QpuDevice};
use crate::job::{CircuitJob, JobResult};
use std::time::Instant;

/// Job-to-device assignment policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Static cyclic assignment.
    RoundRobin,
    /// Greedy assignment to the device with the least simulated load.
    LeastLoaded,
    /// Dynamic work stealing from a shared queue.
    WorkStealing,
}

/// Aggregate statistics of one batch execution.
#[derive(Clone, Debug)]
pub struct PoolReport {
    /// Wall-clock seconds for the whole batch.
    pub wall_secs: f64,
    /// Simulated makespan: the maximum per-device simulated busy time (s).
    pub sim_makespan_secs: f64,
    /// Mean device utilization: mean(busy) / max(busy).
    pub utilization: f64,
    /// Jobs per wall-clock second.
    pub throughput: f64,
    /// Per-device job counts.
    pub jobs_per_device: Vec<usize>,
}

/// A pool of simulated QPUs.
pub struct QpuPool {
    devices: Vec<QpuDevice>,
    policy: SchedulePolicy,
}

impl QpuPool {
    /// Builds a homogeneous pool of `count` devices (seeds staggered so
    /// devices draw independent shot noise).
    pub fn homogeneous(count: usize, base: QpuConfig, policy: SchedulePolicy) -> Self {
        assert!(count >= 1);
        let devices = (0..count)
            .map(|i| {
                let mut cfg = base;
                cfg.seed = base.seed.wrapping_add(i as u64 * 0x0123_4567_89AB_CDEF);
                QpuDevice::new(i, cfg)
            })
            .collect();
        QpuPool { devices, policy }
    }

    /// Builds a pool from explicit device configurations.
    pub fn heterogeneous(configs: Vec<QpuConfig>, policy: SchedulePolicy) -> Self {
        assert!(!configs.is_empty());
        QpuPool {
            devices: configs
                .into_iter()
                .enumerate()
                .map(|(i, c)| QpuDevice::new(i, c))
                .collect(),
            policy,
        }
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// The scheduling policy.
    pub fn policy(&self) -> SchedulePolicy {
        self.policy
    }

    /// Executes a batch; returns `(results sorted by job id, report)`.
    /// An empty batch is a no-op: no device is touched and the report
    /// carries zero throughput (serving-style callers legitimately hit
    /// this when every request of a micro-batch was shed or cached).
    pub fn execute_batch(&mut self, jobs: Vec<CircuitJob>) -> (Vec<JobResult>, PoolReport) {
        let started = Instant::now();
        let n_dev = self.devices.len();

        let mut results: Vec<JobResult> = match self.policy {
            SchedulePolicy::RoundRobin => {
                let mut queues: Vec<Vec<CircuitJob>> = vec![Vec::new(); n_dev];
                for (i, job) in jobs.into_iter().enumerate() {
                    queues[i % n_dev].push(job);
                }
                self.run_static(queues)
            }
            SchedulePolicy::LeastLoaded => {
                // Greedy: largest jobs first onto the least-loaded device.
                let mut indexed: Vec<CircuitJob> = jobs;
                indexed.sort_by_key(|j| std::cmp::Reverse(j.cost_estimate()));
                let mut load = vec![0u64; n_dev];
                let mut queues: Vec<Vec<CircuitJob>> = vec![Vec::new(); n_dev];
                for job in indexed {
                    let dev = (0..n_dev).min_by_key(|&i| load[i]).unwrap();
                    load[dev] += self.devices[dev].sim_cost_ns(&job);
                    queues[dev].push(job);
                }
                self.run_static(queues)
            }
            SchedulePolicy::WorkStealing => self.run_stealing(jobs),
        };

        results.sort_by_key(|r| r.id);
        let wall_secs = started.elapsed().as_secs_f64();
        let busy: Vec<u64> = self.devices.iter().map(|d| d.sim_busy_ns()).collect();
        let max_busy = *busy.iter().max().unwrap() as f64;
        let mean_busy = busy.iter().sum::<u64>() as f64 / n_dev as f64;
        let report = PoolReport {
            wall_secs,
            sim_makespan_secs: max_busy / 1e9,
            utilization: if max_busy > 0.0 {
                mean_busy / max_busy
            } else {
                1.0
            },
            throughput: results.len() as f64 / wall_secs.max(1e-12),
            jobs_per_device: self.devices.iter().map(|d| d.jobs_run()).collect(),
        };
        (results, report)
    }

    /// Fair-share kernel fan-out per device task: with `active` device
    /// tasks sharing `rayon::current_num_threads()` pool threads, each
    /// job's inner amplitude kernels get `threads / active` of them (at
    /// least 1 — which runs the kernels inline on the device task).
    fn inner_threads_hint(active: usize) -> usize {
        (rayon::current_num_threads() / active.max(1)).max(1)
    }

    /// Runs pre-assigned queues, one scoped executor task per device.
    /// Transient failures (fault injection) are retried in place on the
    /// owning device.
    fn run_static(&mut self, queues: Vec<Vec<CircuitJob>>) -> Vec<JobResult> {
        let hint = Self::inner_threads_hint(queues.iter().filter(|q| !q.is_empty()).count());
        let mut outs: Vec<Vec<JobResult>> = Vec::with_capacity(self.devices.len());
        outs.resize_with(self.devices.len(), Vec::new);
        rayon::scope(|s| {
            for ((dev, queue), out) in self.devices.iter_mut().zip(queues).zip(outs.iter_mut()) {
                s.spawn(move || {
                    rayon::with_inner_threads(hint, || {
                        *out = queue
                            .iter()
                            .map(|job| {
                                let mut attempt = 0u32;
                                loop {
                                    if let Some(r) = dev.try_execute(job, attempt) {
                                        return r;
                                    }
                                    attempt += 1;
                                    assert!(attempt < 1000, "device stuck failing job {}", job.id);
                                }
                            })
                            .collect();
                    });
                });
            }
        });
        outs.into_iter().flatten().collect()
    }

    /// Dynamic work stealing, dispatched in **simulated time**: a shared
    /// injector queue is drained by whichever device's simulated clock
    /// frees up first, exactly like real QPUs pulling from a batch queue.
    /// Injected failures charge the submission overhead and re-queue the
    /// job (with an incremented attempt counter) for whichever device
    /// frees up next. Placement therefore depends only on the latency
    /// model — not on host thread count or OS scheduling races, which
    /// used to skew job balance whenever the host had fewer cores than
    /// the pool had devices (and made `jobs_per_device` nondeterministic).
    /// The placed queues then execute in parallel on the shared rayon
    /// executor; `try_execute` re-makes the same deterministic failure
    /// draws the placement predicted, so the simulated clocks charge
    /// identically.
    fn run_stealing(&mut self, jobs: Vec<CircuitJob>) -> Vec<JobResult> {
        use std::collections::VecDeque;
        let n_dev = self.devices.len();
        let hint = Self::inner_threads_hint(n_dev.min(jobs.len()));
        let mut clock: Vec<u64> = self.devices.iter().map(QpuDevice::sim_busy_ns).collect();
        let mut queue: VecDeque<(CircuitJob, u32)> =
            jobs.into_iter().map(|job| (job, 0u32)).collect();
        let mut queues: Vec<Vec<(CircuitJob, u32)>> = vec![Vec::new(); n_dev];
        while let Some((job, attempt)) = queue.pop_front() {
            assert!(attempt < 1000, "device pool stuck failing job {}", job.id);
            let dev = (0..n_dev).min_by_key(|&i| clock[i]).unwrap();
            if self.devices[dev].would_fail(&job, attempt) {
                clock[dev] += self.devices[dev].config().submit_overhead_ns;
                queues[dev].push((job.clone(), attempt));
                queue.push_back((job, attempt + 1));
            } else {
                clock[dev] += self.devices[dev].sim_cost_ns(&job);
                queues[dev].push((job, attempt));
            }
        }
        let mut outs: Vec<Vec<JobResult>> = Vec::with_capacity(n_dev);
        outs.resize_with(n_dev, Vec::new);
        rayon::scope(|s| {
            for ((dev, queue), out) in self.devices.iter_mut().zip(queues).zip(outs.iter_mut()) {
                s.spawn(move || {
                    rayon::with_inner_threads(hint, || {
                        // Predicted failures return `None` (charging the
                        // overhead); their retries were queued elsewhere.
                        *out = queue
                            .iter()
                            .filter_map(|(job, attempt)| dev.try_execute(job, *attempt))
                            .collect();
                    });
                });
            }
        });
        outs.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pauli::PauliString;
    use qsim::{Circuit, Gate};

    fn make_jobs(count: usize, shots: Option<usize>) -> Vec<CircuitJob> {
        (0..count as u64)
            .map(|id| {
                let mut c = Circuit::new(3);
                c.push(Gate::Ry(0, 0.1 + id as f64 * 0.01));
                c.push(Gate::Cnot {
                    control: 0,
                    target: 1,
                });
                c.push(Gate::Cnot {
                    control: 1,
                    target: 2,
                });
                CircuitJob::new(
                    id,
                    c,
                    vec![
                        PauliString::parse("ZZI").unwrap(),
                        PauliString::parse("IIZ").unwrap(),
                    ],
                    shots,
                )
            })
            .collect()
    }

    #[test]
    fn all_policies_return_all_results_in_order() {
        for policy in [
            SchedulePolicy::RoundRobin,
            SchedulePolicy::LeastLoaded,
            SchedulePolicy::WorkStealing,
        ] {
            let mut pool = QpuPool::homogeneous(3, QpuConfig::default(), policy);
            let (results, report) = pool.execute_batch(make_jobs(20, None));
            assert_eq!(results.len(), 20, "{policy:?}");
            for (i, r) in results.iter().enumerate() {
                assert_eq!(r.id, i as u64, "{policy:?}");
            }
            assert_eq!(report.jobs_per_device.iter().sum::<usize>(), 20);
        }
    }

    #[test]
    fn exact_results_are_policy_independent() {
        let run = |policy| {
            let mut pool = QpuPool::homogeneous(4, QpuConfig::default(), policy);
            pool.execute_batch(make_jobs(15, None)).0
        };
        let a = run(SchedulePolicy::RoundRobin);
        let b = run(SchedulePolicy::WorkStealing);
        let c = run(SchedulePolicy::LeastLoaded);
        for ((x, y), z) in a.iter().zip(b.iter()).zip(c.iter()) {
            assert_eq!(x.values, y.values);
            assert_eq!(x.values, z.values);
        }
    }

    #[test]
    fn round_robin_balances_job_counts() {
        let mut pool = QpuPool::homogeneous(4, QpuConfig::default(), SchedulePolicy::RoundRobin);
        let (_, report) = pool.execute_batch(make_jobs(20, None));
        assert!(report.jobs_per_device.iter().all(|&c| c == 5));
    }

    #[test]
    fn least_loaded_balances_heterogeneous_costs() {
        // Jobs with wildly different shot counts; least-loaded should beat
        // round-robin on simulated makespan.
        let mixed = |seed_shots: &[usize]| -> Vec<CircuitJob> {
            seed_shots
                .iter()
                .enumerate()
                .map(|(id, &s)| {
                    let mut c = Circuit::new(2);
                    c.push(Gate::H(0));
                    CircuitJob::new(
                        id as u64,
                        c,
                        vec![PauliString::parse("ZI").unwrap()],
                        Some(s),
                    )
                })
                .collect()
        };
        let shots = [10_000, 10, 10, 10, 10_000, 10, 10, 10];
        let mut rr = QpuPool::homogeneous(2, QpuConfig::default(), SchedulePolicy::RoundRobin);
        let (_, rr_report) = rr.execute_batch(mixed(&shots));
        let mut ll = QpuPool::homogeneous(2, QpuConfig::default(), SchedulePolicy::LeastLoaded);
        let (_, ll_report) = ll.execute_batch(mixed(&shots));
        assert!(
            ll_report.sim_makespan_secs <= rr_report.sim_makespan_secs,
            "LL {} vs RR {}",
            ll_report.sim_makespan_secs,
            rr_report.sim_makespan_secs
        );
    }

    #[test]
    fn utilization_in_unit_interval() {
        let mut pool = QpuPool::homogeneous(3, QpuConfig::default(), SchedulePolicy::WorkStealing);
        let (_, report) = pool.execute_batch(make_jobs(30, Some(50)));
        assert!(report.utilization > 0.0 && report.utilization <= 1.0 + 1e-12);
        assert!(report.throughput > 0.0);
        assert!(report.sim_makespan_secs > 0.0);
    }

    #[test]
    fn fault_injection_all_jobs_still_complete() {
        // 30% transient failure rate: every policy must still deliver every
        // job exactly once, with identical exact values.
        let config = QpuConfig {
            fail_prob: 0.3,
            ..Default::default()
        };
        let reference = {
            let mut pool =
                QpuPool::homogeneous(3, QpuConfig::default(), SchedulePolicy::RoundRobin);
            pool.execute_batch(make_jobs(24, None)).0
        };
        for policy in [
            SchedulePolicy::RoundRobin,
            SchedulePolicy::LeastLoaded,
            SchedulePolicy::WorkStealing,
        ] {
            let mut pool = QpuPool::homogeneous(3, config, policy);
            let (results, report) = pool.execute_batch(make_jobs(24, None));
            assert_eq!(results.len(), 24, "{policy:?} lost jobs");
            for (r, want) in results.iter().zip(reference.iter()) {
                assert_eq!(r.id, want.id, "{policy:?}");
                assert_eq!(r.values, want.values, "{policy:?} corrupted results");
            }
            assert_eq!(report.jobs_per_device.iter().sum::<usize>(), 24);
        }
    }

    #[test]
    fn fault_injection_charges_failed_submissions() {
        let clean = QpuConfig::default();
        let flaky = QpuConfig {
            fail_prob: 0.5,
            ..Default::default()
        };
        let mut clean_pool = QpuPool::homogeneous(1, clean, SchedulePolicy::RoundRobin);
        let (_, clean_report) = clean_pool.execute_batch(make_jobs(20, None));
        let mut flaky_pool = QpuPool::homogeneous(1, flaky, SchedulePolicy::RoundRobin);
        let (_, flaky_report) = flaky_pool.execute_batch(make_jobs(20, None));
        assert!(
            flaky_report.sim_makespan_secs > clean_report.sim_makespan_secs,
            "retries must cost simulated time: {} vs {}",
            flaky_report.sim_makespan_secs,
            clean_report.sim_makespan_secs
        );
    }

    #[test]
    fn heterogeneous_pool_runs() {
        let fast = QpuConfig {
            gate_time_ns: 10,
            ..Default::default()
        };
        let slow = QpuConfig {
            gate_time_ns: 1_000,
            seed: 1,
            ..Default::default()
        };
        let mut pool = QpuPool::heterogeneous(vec![fast, slow], SchedulePolicy::WorkStealing);
        let (results, _) = pool.execute_batch(make_jobs(10, None));
        assert_eq!(results.len(), 10);
    }
}

//! Multi-QPU scheduling with fault domains.
//!
//! The host scatters a batch of [`CircuitJob`]s over the device pool.
//! Three policies:
//!
//! * [`SchedulePolicy::RoundRobin`] — static cyclic assignment; zero
//!   scheduling cost, poor balance for heterogeneous jobs.
//! * [`SchedulePolicy::LeastLoaded`] — greedy offline assignment by the
//!   devices' simulated clocks using each job's cost estimate (classic
//!   LPT-style list scheduling).
//! * [`SchedulePolicy::WorkStealing`] — dynamic: one shared queue,
//!   drained in *simulated* time by whichever device's clock frees up
//!   first (placement is independent of host thread count and fully
//!   reproducible).
//!
//! All three feed one **sim-time dispatch engine** that routes around
//! the fault domains of [`crate::fault`]:
//!
//! * failed submissions (transient draws, hard-outage windows) charge
//!   the submission overhead and retry under a bounded
//!   [`RetryPolicy`](crate::fault::RetryPolicy) — exponential backoff on
//!   the simulated clock, failover to a different device after a run of
//!   local failures, typed
//!   [`RetriesExhausted`](crate::fault::JobErrorKind::RetriesExhausted)
//!   when the budget runs out (the old pool panicked here);
//! * per-device circuit breakers quarantine devices after consecutive
//!   failures and re-admit them through half-open probes;
//! * jobs landing on a degraded (straggler) device get a hedge replica
//!   on another device — first completion wins, the loser's partial
//!   occupancy is charged to its device;
//! * jobs carrying a deadline budget are never dispatched or retried
//!   past it — they resolve to a typed
//!   [`DeadlineExpired`](crate::fault::JobErrorKind::DeadlineExpired).
//!
//! Dispatch decisions are made in a sequential simulated-time loop, so
//! placement — and therefore every result — is reproducible bit-for-bit
//! regardless of host thread count, and identical to the no-fault path
//! whenever a job ultimately executes (failover changes *where*, never
//! *what*, for exact jobs; shot noise is device-seeded by design).
//! Execution then fans out on the **shared rayon executor**
//! (`rayon::scope`), the same persistent pool the `qsim` amplitude
//! kernels use, with `rayon::with_inner_threads` fair-share hints.
//! Results are returned in job-id order regardless of completion order.

use crate::device::{QpuConfig, QpuDevice};
use crate::fault::{CircuitBreaker, DeviceHealth, FaultPolicy, FaultStats, JobError, JobErrorKind};
use crate::job::{CircuitJob, JobResult};
use std::collections::VecDeque;
use std::time::Instant;

/// Job-to-device assignment policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Static cyclic assignment.
    RoundRobin,
    /// Greedy assignment to the device with the least simulated load.
    LeastLoaded,
    /// Dynamic work stealing from a shared queue.
    WorkStealing,
}

/// How one job left the pool: a result, or a typed terminal failure.
pub type JobOutcome = Result<JobResult, JobError>;

/// The job id an outcome refers to.
pub fn outcome_id(outcome: &JobOutcome) -> u64 {
    match outcome {
        Ok(r) => r.id,
        Err(e) => e.id,
    }
}

/// Aggregate statistics of one batch execution.
#[derive(Clone, Debug)]
pub struct PoolReport {
    /// Wall-clock seconds for the whole batch.
    pub wall_secs: f64,
    /// Simulated makespan: the maximum per-device simulated busy time (s).
    pub sim_makespan_secs: f64,
    /// Mean device utilization: mean(busy) / max(busy).
    pub utilization: f64,
    /// Completed jobs per wall-clock second.
    pub throughput: f64,
    /// Per-device job counts.
    pub jobs_per_device: Vec<usize>,
    /// Failure/recovery taxonomy of this batch.
    pub faults: FaultStats,
}

/// One job waiting to be dispatched (or re-dispatched after a failure).
struct Pending {
    job: CircuitJob,
    /// Failed submission attempts so far — also the decorrelation index
    /// of the next failure draw, matching the pre-fault-layer pool.
    attempts: u32,
    /// Consecutive failures on `failed_on`.
    local_attempts: u32,
    /// Device of the most recent failure (failover bookkeeping).
    failed_on: Option<usize>,
    /// Earliest simulated dispatch time (exponential backoff gate).
    ready_ns: u64,
    /// Absolute simulated deadline (`u64::MAX` = none).
    deadline_ns: u64,
}

/// How a dispatch attempt left a pending job.
enum Disposition {
    /// Executed (possibly via a hedge) or terminally failed.
    Resolved,
    /// Failed transiently; requeue for another attempt.
    Requeue(Pending),
}

/// The sequential simulated-time dispatch state for one batch. Placement
/// and all fault routing happen here, single-threaded and deterministic;
/// actual circuit execution runs afterwards from the `placed` ledger.
struct Dispatcher<'a> {
    devices: &'a [QpuDevice],
    breakers: &'a mut [CircuitBreaker],
    policy: FaultPolicy,
    /// Per-device simulated timeline position (starts at the device's
    /// accumulated busy time, like the pre-fault work-stealing dispatch).
    clock: Vec<u64>,
    /// Per-device busy time charged this batch (executed jobs, failed
    /// submissions, cancelled hedge partials — idle backoff/cooldown
    /// gaps are *not* busy).
    busy: Vec<u64>,
    /// Per-device `(job, cost_ns, completed_at_ns)` execution ledger.
    placed: Vec<Vec<(CircuitJob, u64, u64)>>,
    /// Devices hedged against this batch (observed stragglers).
    hedged: Vec<bool>,
    errors: Vec<JobError>,
    stats: FaultStats,
}

impl<'a> Dispatcher<'a> {
    fn new(
        devices: &'a [QpuDevice],
        breakers: &'a mut [CircuitBreaker],
        policy: FaultPolicy,
    ) -> Self {
        let n = devices.len();
        let clock: Vec<u64> = devices.iter().map(QpuDevice::sim_busy_ns).collect();
        Dispatcher {
            devices,
            breakers,
            policy,
            clock,
            busy: vec![0; n],
            placed: vec![Vec::new(); n],
            hedged: vec![false; n],
            errors: Vec::new(),
            stats: FaultStats::default(),
        }
    }

    /// The batch's simulated origin: the earliest any device could take
    /// work. Deadline budgets and completion latencies are relative to it.
    fn origin(&self) -> u64 {
        self.clock.iter().copied().min().unwrap_or(0)
    }

    /// When device `d` could next dispatch (its clock, deferred past an
    /// open breaker's cooldown).
    fn free_ns(&self, d: usize) -> u64 {
        self.breakers[d].ready_ns(self.clock[d])
    }

    /// Whether dispatching `job` on `d` at `now` would fail: hard-outage
    /// window first, then the transient draw.
    fn submission_fails(&self, d: usize, job: &CircuitJob, attempt: u32, now: u64) -> bool {
        self.devices[d].config().faults.is_down_at(now) || self.devices[d].would_fail(job, attempt)
    }

    /// The simulated cost of `job` on `d` dispatched at `now`, including
    /// the degraded-phase latency multiplier.
    fn cost_at(&self, d: usize, job: &CircuitJob, now: u64) -> u64 {
        let base = self.devices[d].sim_cost_ns(job) as f64;
        let mult = self.devices[d].config().faults.latency_multiplier_at(now);
        (base * mult).round() as u64
    }

    /// Attempts `p` on device `d` at the earliest feasible time. On
    /// success the job (or its winning hedge) lands in the `placed`
    /// ledger; terminal failures land in `errors`.
    fn dispatch(&mut self, mut p: Pending, d: usize) -> Disposition {
        let t0 = self.free_ns(d).max(p.ready_ns);
        if t0 > p.deadline_ns {
            self.fail_terminal(
                &p,
                JobErrorKind::DeadlineExpired {
                    deadline_ns: p.deadline_ns,
                    now_ns: t0,
                },
            );
            return Disposition::Resolved;
        }
        // Landing on a different device after a failure run is a failover.
        if let Some(prev) = p.failed_on {
            if prev != d {
                self.stats.failovers += 1;
                p.failed_on = None;
                p.local_attempts = 0;
            }
        }
        if self.breakers[d].on_dispatch(t0) {
            self.stats.probes += 1;
        }
        if self.submission_fails(d, &p.job, p.attempts, t0) {
            let end = t0 + self.devices[d].config().submit_overhead_ns;
            self.clock[d] = end;
            self.busy[d] += self.devices[d].config().submit_overhead_ns;
            if self.breakers[d].on_failure(end) {
                self.stats.breaker_trips += 1;
            }
            p.attempts += 1;
            if p.failed_on == Some(d) {
                p.local_attempts += 1;
            } else {
                p.failed_on = Some(d);
                p.local_attempts = 1;
            }
            if p.attempts >= self.policy.retry.max_attempts_total {
                self.fail_terminal(&p, JobErrorKind::RetriesExhausted);
                return Disposition::Resolved;
            }
            self.stats.retries += 1;
            p.ready_ns = end + self.policy.retry.backoff_ns(p.attempts);
            if p.ready_ns > p.deadline_ns {
                self.fail_terminal(
                    &p,
                    JobErrorKind::DeadlineExpired {
                        deadline_ns: p.deadline_ns,
                        now_ns: p.ready_ns,
                    },
                );
                return Disposition::Resolved;
            }
            return Disposition::Requeue(p);
        }
        // Successful submission.
        self.breakers[d].on_success();
        let cost = self.cost_at(d, &p.job, t0);
        let end = t0 + cost;
        let mult = self.devices[d].config().faults.latency_multiplier_at(t0);
        if let Some((c, h_start, h_cost)) = self.hedge_candidate(&p, d, t0, end, mult) {
            // Straggler: launch a replica on `c`; first completion wins,
            // the loser is cancelled and charged for the time it held
            // its device.
            self.stats.hedges_launched += 1;
            self.hedged[d] = true;
            self.breakers[c].on_dispatch(h_start);
            let h_end = h_start + h_cost;
            if h_end < end {
                self.stats.hedges_won += 1;
                self.breakers[c].on_success();
                self.placed[c].push((p.job, h_cost, h_end));
                self.clock[c] = h_end;
                self.busy[c] += h_cost;
                // Primary cancelled once the hedge finishes.
                self.clock[d] = h_end;
                self.busy[d] += h_end - t0;
            } else {
                self.placed[d].push((p.job, cost, end));
                self.clock[d] = end;
                self.busy[d] += cost;
                // Hedge cancelled once the primary finishes.
                self.clock[c] = end;
                self.busy[c] += end - h_start;
            }
        } else {
            self.placed[d].push((p.job, cost, end));
            self.clock[d] = end;
            self.busy[d] += cost;
        }
        Disposition::Resolved
    }

    /// A hedge target for a straggling primary: the device (≠ `d`) with
    /// the earliest replica completion, provided it is up, its failure
    /// draw passes, it can start before the primary finishes, and the
    /// primary really is straggling (`mult` at/over the threshold).
    fn hedge_candidate(
        &self,
        p: &Pending,
        d: usize,
        t0: u64,
        primary_end: u64,
        mult: f64,
    ) -> Option<(usize, u64, u64)> {
        let hedge = self.policy.hedge;
        if !hedge.enabled || mult < hedge.after_multiple || self.devices.len() < 2 {
            return None;
        }
        (0..self.devices.len())
            .filter(|&c| c != d)
            .filter_map(|c| {
                let h_start = self.free_ns(c).max(t0);
                if h_start >= primary_end || self.submission_fails(c, &p.job, p.attempts, h_start) {
                    return None;
                }
                Some((c, h_start, self.cost_at(c, &p.job, h_start)))
            })
            .min_by_key(|&(c, h_start, h_cost)| (h_start + h_cost, c))
    }

    fn fail_terminal(&mut self, p: &Pending, kind: JobErrorKind) {
        self.stats.jobs_failed += 1;
        self.errors.push(JobError {
            id: p.job.id,
            attempts: p.attempts,
            kind,
        });
    }
}

/// A pool of simulated QPUs.
pub struct QpuPool {
    devices: Vec<QpuDevice>,
    policy: SchedulePolicy,
    fault_policy: FaultPolicy,
    breakers: Vec<CircuitBreaker>,
    hedged_last: Vec<bool>,
    lifetime_faults: FaultStats,
}

impl QpuPool {
    /// Builds a homogeneous pool of `count` devices (seeds staggered so
    /// devices draw independent shot noise).
    pub fn homogeneous(count: usize, base: QpuConfig, policy: SchedulePolicy) -> Self {
        assert!(count >= 1);
        let devices = (0..count)
            .map(|i| {
                let mut cfg = base.clone();
                cfg.seed = base.seed.wrapping_add(i as u64 * 0x0123_4567_89AB_CDEF);
                QpuDevice::new(i, cfg)
            })
            .collect();
        Self::from_devices(devices, policy)
    }

    /// Builds a pool from explicit device configurations.
    pub fn heterogeneous(configs: Vec<QpuConfig>, policy: SchedulePolicy) -> Self {
        assert!(!configs.is_empty());
        let devices = configs
            .into_iter()
            .enumerate()
            .map(|(i, c)| QpuDevice::new(i, c))
            .collect();
        Self::from_devices(devices, policy)
    }

    fn from_devices(devices: Vec<QpuDevice>, policy: SchedulePolicy) -> Self {
        let fault_policy = FaultPolicy::default();
        let n = devices.len();
        QpuPool {
            devices,
            policy,
            fault_policy,
            breakers: vec![CircuitBreaker::new(fault_policy.breaker); n],
            hedged_last: vec![false; n],
            lifetime_faults: FaultStats::default(),
        }
    }

    /// Replaces the fault policy (retry/failover bounds, breaker tuning,
    /// hedging); resets the breakers to the new configuration.
    pub fn with_fault_policy(mut self, fault_policy: FaultPolicy) -> Self {
        self.fault_policy = fault_policy;
        self.breakers = vec![CircuitBreaker::new(fault_policy.breaker); self.devices.len()];
        self
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// The scheduling policy.
    pub fn policy(&self) -> SchedulePolicy {
        self.policy
    }

    /// The fault policy in force.
    pub fn fault_policy(&self) -> &FaultPolicy {
        &self.fault_policy
    }

    /// Lifetime failure/recovery counters, summed over every batch.
    pub fn fault_stats(&self) -> &FaultStats {
        &self.lifetime_faults
    }

    /// Observed per-device health: breaker state plus whether the device
    /// was hedged against (straggling) in the most recent batch.
    pub fn device_health(&self) -> Vec<DeviceHealth> {
        self.breakers
            .iter()
            .zip(&self.hedged_last)
            .map(|(b, &straggler)| b.health(straggler))
            .collect()
    }

    /// Executes a batch; returns `(outcomes sorted by job id, report)`.
    /// Every submitted job yields exactly one outcome: a [`JobResult`]
    /// bit-for-bit identical to what the no-fault path would produce
    /// (for exact jobs; shot noise follows the executing device's seed),
    /// or a typed [`JobError`] once retries/failover/deadline budgets
    /// are exhausted. An empty batch is a no-op: no device is touched
    /// and the report carries zero throughput (serving-style callers
    /// legitimately hit this when every request of a micro-batch was
    /// shed or cached).
    pub fn execute_batch(&mut self, jobs: Vec<CircuitJob>) -> (Vec<JobOutcome>, PoolReport) {
        let started = Instant::now();
        let n_dev = self.devices.len();

        // Phase 1: sequential simulated-time dispatch — placement, retry,
        // failover, breakers, hedging. Deterministic by construction.
        let mut dispatcher = Dispatcher::new(&self.devices, &mut self.breakers, self.fault_policy);
        let origin = dispatcher.origin();
        let pend = |job: CircuitJob| {
            let deadline_ns = job
                .sim_budget_ns
                .map_or(u64::MAX, |b| origin.saturating_add(b));
            Pending {
                job,
                attempts: 0,
                local_attempts: 0,
                failed_on: None,
                ready_ns: 0,
                deadline_ns,
            }
        };
        match self.policy {
            SchedulePolicy::RoundRobin => {
                let eligible = eligible_devices(&dispatcher);
                let mut queues: Vec<VecDeque<Pending>> =
                    (0..n_dev).map(|_| VecDeque::new()).collect();
                for (i, job) in jobs.into_iter().enumerate() {
                    queues[eligible[i % eligible.len()]].push_back(pend(job));
                }
                drain_static(&mut dispatcher, queues);
            }
            SchedulePolicy::LeastLoaded => {
                // Greedy: largest jobs first onto the least-loaded device.
                let eligible = eligible_devices(&dispatcher);
                let mut indexed: Vec<CircuitJob> = jobs;
                indexed.sort_by_key(|j| std::cmp::Reverse(j.cost_estimate()));
                let mut load = vec![0u64; n_dev];
                let mut queues: Vec<VecDeque<Pending>> =
                    (0..n_dev).map(|_| VecDeque::new()).collect();
                for job in indexed {
                    let dev = eligible.iter().copied().min_by_key(|&i| load[i]).unwrap();
                    load[dev] += self.devices[dev].sim_cost_ns(&job);
                    queues[dev].push_back(pend(job));
                }
                drain_static(&mut dispatcher, queues);
            }
            SchedulePolicy::WorkStealing => {
                let mut queue: VecDeque<Pending> = jobs.into_iter().map(pend).collect();
                while let Some(p) = queue.pop_front() {
                    let d = stealing_target(&dispatcher, &p);
                    if let Disposition::Requeue(p) = dispatcher.dispatch(p, d) {
                        queue.push_back(p);
                    }
                }
            }
        }
        let Dispatcher {
            busy,
            placed,
            hedged,
            errors,
            stats,
            ..
        } = dispatcher;
        self.hedged_last = hedged;
        self.lifetime_faults.absorb(&stats);

        // Phase 2: execute the placement ledger in parallel on the shared
        // executor; `values` is pure, so the charges settle afterwards.
        let hint = Self::inner_threads_hint(placed.iter().filter(|q| !q.is_empty()).count());
        let mut outs: Vec<Vec<JobResult>> = Vec::with_capacity(n_dev);
        outs.resize_with(n_dev, Vec::new);
        rayon::scope(|s| {
            for ((dev, work), out) in self.devices.iter().zip(&placed).zip(outs.iter_mut()) {
                if work.is_empty() {
                    continue;
                }
                s.spawn(move || {
                    rayon::with_inner_threads(hint, || {
                        *out = work
                            .iter()
                            .map(|(job, cost_ns, done_ns)| JobResult {
                                id: job.id,
                                values: dev.values(job),
                                device: dev.id,
                                sim_busy_ns: *cost_ns,
                                sim_completed_ns: done_ns - origin,
                            })
                            .collect();
                    });
                });
            }
        });
        for ((dev, add), work) in self.devices.iter_mut().zip(busy).zip(&placed) {
            dev.charge(add, work.len());
        }

        let mut outcomes: Vec<JobOutcome> = outs
            .into_iter()
            .flatten()
            .map(Ok)
            .chain(errors.into_iter().map(Err))
            .collect();
        outcomes.sort_by_key(outcome_id);
        let completed = outcomes.iter().filter(|o| o.is_ok()).count();

        let wall_secs = started.elapsed().as_secs_f64();
        let busy: Vec<u64> = self.devices.iter().map(|d| d.sim_busy_ns()).collect();
        let max_busy = *busy.iter().max().unwrap() as f64;
        let mean_busy = busy.iter().sum::<u64>() as f64 / n_dev as f64;
        let report = PoolReport {
            wall_secs,
            sim_makespan_secs: max_busy / 1e9,
            utilization: if max_busy > 0.0 {
                mean_busy / max_busy
            } else {
                1.0
            },
            throughput: completed as f64 / wall_secs.max(1e-12),
            jobs_per_device: self.devices.iter().map(|d| d.jobs_run()).collect(),
            faults: stats,
        };
        (outcomes, report)
    }

    /// Fair-share kernel fan-out per device task: with `active` device
    /// tasks sharing `rayon::current_num_threads()` pool threads, each
    /// job's inner amplitude kernels get `threads / active` of them (at
    /// least 1 — which runs the kernels inline on the device task).
    fn inner_threads_hint(active: usize) -> usize {
        (rayon::current_num_threads() / active.max(1)).max(1)
    }
}

/// Devices in the static-assignment rotation: quarantined devices are
/// skipped unless *every* device is quarantined (then jobs wait out the
/// shortest cooldown instead of having nowhere to go).
fn eligible_devices(d: &Dispatcher<'_>) -> Vec<usize> {
    let up: Vec<usize> = (0..d.devices.len())
        .filter(|&i| !d.breakers[i].is_quarantined_at(d.clock[i]))
        .collect();
    if up.is_empty() {
        (0..d.devices.len()).collect()
    } else {
        up
    }
}

/// Drains statically assigned per-device queues in simulated-time order:
/// the device whose head job can dispatch earliest goes next (lowest
/// index on ties), so cross-device moves (failover) interleave
/// deterministically. Transient failures retry at the head of their
/// queue — in place, like the pre-fault pool — until the local-attempt
/// budget moves the job to the device that frees up earliest.
fn drain_static(dispatcher: &mut Dispatcher<'_>, mut queues: Vec<VecDeque<Pending>>) {
    loop {
        let next = (0..queues.len())
            .filter(|&d| !queues[d].is_empty())
            .min_by_key(|&d| {
                (
                    dispatcher
                        .free_ns(d)
                        .max(queues[d].front().unwrap().ready_ns),
                    d,
                )
            });
        let Some(d) = next else { break };
        let p = queues[d].pop_front().unwrap();
        if let Disposition::Requeue(p) = dispatcher.dispatch(p, d) {
            let max_local = dispatcher.policy.retry.max_attempts_per_device;
            let target = if p.local_attempts >= max_local && queues.len() > 1 {
                // Failover: hand the job to whichever other device frees
                // up earliest.
                (0..queues.len())
                    .filter(|&c| c != d)
                    .min_by_key(|&c| (dispatcher.free_ns(c), c))
                    .unwrap()
            } else {
                d
            };
            if target == d {
                queues[d].push_front(p);
            } else {
                queues[target].push_back(p);
            }
        }
    }
}

/// The work-stealing pull target for `p`: the device that could dispatch
/// it earliest (breaker cooldowns included, lowest index on ties),
/// excluding the device it just failed on once the local-attempt budget
/// forces a failover.
fn stealing_target(dispatcher: &Dispatcher<'_>, p: &Pending) -> usize {
    let n = dispatcher.devices.len();
    let exclude = match p.failed_on {
        Some(prev)
            if n > 1 && p.local_attempts >= dispatcher.policy.retry.max_attempts_per_device =>
        {
            Some(prev)
        }
        _ => None,
    };
    (0..n)
        .filter(|&d| Some(d) != exclude)
        .min_by_key(|&d| (dispatcher.free_ns(d).max(p.ready_ns), d))
        .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{BreakerConfig, FaultSchedule, HedgeConfig, RetryPolicy};
    use pauli::PauliString;
    use qsim::{Circuit, Gate};

    fn make_jobs(count: usize, shots: Option<usize>) -> Vec<CircuitJob> {
        (0..count as u64)
            .map(|id| {
                let mut c = Circuit::new(3);
                c.push(Gate::Ry(0, 0.1 + id as f64 * 0.01));
                c.push(Gate::Cnot {
                    control: 0,
                    target: 1,
                });
                c.push(Gate::Cnot {
                    control: 1,
                    target: 2,
                });
                CircuitJob::new(
                    id,
                    c,
                    vec![
                        PauliString::parse("ZZI").unwrap(),
                        PauliString::parse("IIZ").unwrap(),
                    ],
                    shots,
                )
            })
            .collect()
    }

    fn unwrap_all(outcomes: Vec<JobOutcome>) -> Vec<JobResult> {
        outcomes
            .into_iter()
            .map(|o| o.expect("job failed"))
            .collect()
    }

    const ALL_POLICIES: [SchedulePolicy; 3] = [
        SchedulePolicy::RoundRobin,
        SchedulePolicy::LeastLoaded,
        SchedulePolicy::WorkStealing,
    ];

    #[test]
    fn all_policies_return_all_results_in_order() {
        for policy in ALL_POLICIES {
            let mut pool = QpuPool::homogeneous(3, QpuConfig::default(), policy);
            let (results, report) = pool.execute_batch(make_jobs(20, None));
            let results = unwrap_all(results);
            assert_eq!(results.len(), 20, "{policy:?}");
            for (i, r) in results.iter().enumerate() {
                assert_eq!(r.id, i as u64, "{policy:?}");
            }
            assert_eq!(report.jobs_per_device.iter().sum::<usize>(), 20);
            assert_eq!(report.faults, FaultStats::default(), "healthy pool");
        }
    }

    #[test]
    fn exact_results_are_policy_independent() {
        let run = |policy| {
            let mut pool = QpuPool::homogeneous(4, QpuConfig::default(), policy);
            unwrap_all(pool.execute_batch(make_jobs(15, None)).0)
        };
        let a = run(SchedulePolicy::RoundRobin);
        let b = run(SchedulePolicy::WorkStealing);
        let c = run(SchedulePolicy::LeastLoaded);
        for ((x, y), z) in a.iter().zip(b.iter()).zip(c.iter()) {
            assert_eq!(x.values, y.values);
            assert_eq!(x.values, z.values);
        }
    }

    #[test]
    fn round_robin_balances_job_counts() {
        let mut pool = QpuPool::homogeneous(4, QpuConfig::default(), SchedulePolicy::RoundRobin);
        let (_, report) = pool.execute_batch(make_jobs(20, None));
        assert!(report.jobs_per_device.iter().all(|&c| c == 5));
    }

    #[test]
    fn least_loaded_balances_heterogeneous_costs() {
        // Jobs with wildly different shot counts; least-loaded should beat
        // round-robin on simulated makespan.
        let mixed = |seed_shots: &[usize]| -> Vec<CircuitJob> {
            seed_shots
                .iter()
                .enumerate()
                .map(|(id, &s)| {
                    let mut c = Circuit::new(2);
                    c.push(Gate::H(0));
                    CircuitJob::new(
                        id as u64,
                        c,
                        vec![PauliString::parse("ZI").unwrap()],
                        Some(s),
                    )
                })
                .collect()
        };
        let shots = [10_000, 10, 10, 10, 10_000, 10, 10, 10];
        let mut rr = QpuPool::homogeneous(2, QpuConfig::default(), SchedulePolicy::RoundRobin);
        let (_, rr_report) = rr.execute_batch(mixed(&shots));
        let mut ll = QpuPool::homogeneous(2, QpuConfig::default(), SchedulePolicy::LeastLoaded);
        let (_, ll_report) = ll.execute_batch(mixed(&shots));
        assert!(
            ll_report.sim_makespan_secs <= rr_report.sim_makespan_secs,
            "LL {} vs RR {}",
            ll_report.sim_makespan_secs,
            rr_report.sim_makespan_secs
        );
    }

    #[test]
    fn utilization_in_unit_interval() {
        let mut pool = QpuPool::homogeneous(3, QpuConfig::default(), SchedulePolicy::WorkStealing);
        let (_, report) = pool.execute_batch(make_jobs(30, Some(50)));
        assert!(report.utilization > 0.0 && report.utilization <= 1.0 + 1e-12);
        assert!(report.throughput > 0.0);
        assert!(report.sim_makespan_secs > 0.0);
    }

    #[test]
    fn fault_injection_all_jobs_still_complete() {
        // 30% transient failure rate: every policy must still deliver every
        // job exactly once, with identical exact values.
        let config = QpuConfig {
            fail_prob: 0.3,
            ..Default::default()
        };
        let reference = {
            let mut pool =
                QpuPool::homogeneous(3, QpuConfig::default(), SchedulePolicy::RoundRobin);
            unwrap_all(pool.execute_batch(make_jobs(24, None)).0)
        };
        for policy in ALL_POLICIES {
            let mut pool = QpuPool::homogeneous(3, config.clone(), policy);
            let (results, report) = pool.execute_batch(make_jobs(24, None));
            let results = unwrap_all(results);
            assert_eq!(results.len(), 24, "{policy:?} lost jobs");
            for (r, want) in results.iter().zip(reference.iter()) {
                assert_eq!(r.id, want.id, "{policy:?}");
                assert_eq!(r.values, want.values, "{policy:?} corrupted results");
            }
            assert_eq!(report.jobs_per_device.iter().sum::<usize>(), 24);
            assert!(report.faults.retries > 0, "{policy:?} must observe retries");
        }
    }

    #[test]
    fn fault_injection_charges_failed_submissions() {
        let clean = QpuConfig::default();
        let flaky = QpuConfig {
            fail_prob: 0.5,
            ..Default::default()
        };
        let mut clean_pool = QpuPool::homogeneous(1, clean, SchedulePolicy::RoundRobin);
        let (_, clean_report) = clean_pool.execute_batch(make_jobs(20, None));
        let mut flaky_pool = QpuPool::homogeneous(1, flaky, SchedulePolicy::RoundRobin);
        let (_, flaky_report) = flaky_pool.execute_batch(make_jobs(20, None));
        assert!(
            flaky_report.sim_makespan_secs > clean_report.sim_makespan_secs,
            "retries must cost simulated time: {} vs {}",
            flaky_report.sim_makespan_secs,
            clean_report.sim_makespan_secs
        );
    }

    #[test]
    fn heterogeneous_pool_runs() {
        let fast = QpuConfig {
            gate_time_ns: 10,
            ..Default::default()
        };
        let slow = QpuConfig {
            gate_time_ns: 1_000,
            seed: 1,
            ..Default::default()
        };
        let mut pool = QpuPool::heterogeneous(vec![fast, slow], SchedulePolicy::WorkStealing);
        let (results, _) = pool.execute_batch(make_jobs(10, None));
        assert_eq!(unwrap_all(results).len(), 10);
    }

    #[test]
    fn retries_exhausted_is_a_typed_error_not_a_panic() {
        // A device that always fails resolves every job to a typed error
        // once the (small) attempt budget runs out — the old pool
        // panicked here.
        let config = QpuConfig {
            fail_prob: 1.0,
            ..Default::default()
        };
        for policy in ALL_POLICIES {
            let mut pool =
                QpuPool::homogeneous(1, config.clone(), policy).with_fault_policy(FaultPolicy {
                    retry: RetryPolicy {
                        max_attempts_total: 4,
                        ..Default::default()
                    },
                    ..Default::default()
                });
            let (outcomes, report) = pool.execute_batch(make_jobs(3, None));
            assert_eq!(outcomes.len(), 3, "{policy:?}");
            for (i, o) in outcomes.iter().enumerate() {
                let err = o.as_ref().expect_err("must fail");
                assert_eq!(err.id, i as u64);
                assert_eq!(err.attempts, 4);
                assert_eq!(err.kind, JobErrorKind::RetriesExhausted, "{policy:?}");
            }
            assert_eq!(report.faults.jobs_failed, 3);
        }
    }

    #[test]
    fn outage_window_fails_over_to_healthy_device() {
        // Device 0 is down for the whole batch; with bit-for-bit identical
        // results, every job must land on device 1.
        let down = QpuConfig {
            faults: FaultSchedule::none().with_outage(0, u64::MAX),
            ..Default::default()
        };
        let up = QpuConfig {
            seed: 99,
            ..Default::default()
        };
        let clean = {
            let mut pool =
                QpuPool::homogeneous(2, QpuConfig::default(), SchedulePolicy::RoundRobin);
            unwrap_all(pool.execute_batch(make_jobs(12, None)).0)
        };
        for policy in ALL_POLICIES {
            let mut pool = QpuPool::heterogeneous(vec![down.clone(), up.clone()], policy);
            let (outcomes, report) = pool.execute_batch(make_jobs(12, None));
            let results = unwrap_all(outcomes);
            assert_eq!(results.len(), 12, "{policy:?}");
            for (r, want) in results.iter().zip(clean.iter()) {
                assert_eq!(r.values, want.values, "{policy:?}: failover changed values");
                assert_eq!(r.device, 1, "{policy:?}: job ran on the dead device");
            }
            assert!(report.faults.failovers > 0, "{policy:?} must fail over");
        }
    }

    #[test]
    fn breaker_quarantines_dead_device_and_health_reflects_it() {
        let dead = QpuConfig {
            faults: FaultSchedule::none().with_outage(0, u64::MAX),
            ..Default::default()
        };
        let mut pool = QpuPool::heterogeneous(
            vec![dead, QpuConfig::default()],
            SchedulePolicy::WorkStealing,
        )
        .with_fault_policy(FaultPolicy {
            breaker: BreakerConfig {
                failure_threshold: 3,
                cooldown_ns: u64::MAX / 2,
            },
            ..Default::default()
        });
        let (outcomes, report) = pool.execute_batch(make_jobs(20, None));
        assert!(outcomes.iter().all(|o| o.is_ok()));
        assert!(report.faults.breaker_trips >= 1, "dead device must trip");
        let health = pool.device_health();
        assert_eq!(health[0], DeviceHealth::Quarantined);
        assert_eq!(health[1], DeviceHealth::Healthy);
        // Quarantine caps the dead device's charges: after the trip it
        // takes no further submissions this batch.
        assert!(report.jobs_per_device[0] == 0);
    }

    #[test]
    fn breaker_half_open_probe_readmits_recovered_device() {
        // Device 0 is down only for an initial window; after the breaker
        // cooldown a probe lands in the healthy region and re-admits it.
        let flappy = QpuConfig {
            faults: FaultSchedule::none().with_outage(0, 100_000),
            ..Default::default()
        };
        let mut pool = QpuPool::heterogeneous(
            vec![flappy, QpuConfig::default()],
            SchedulePolicy::WorkStealing,
        )
        .with_fault_policy(FaultPolicy {
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown_ns: 200_000,
            },
            ..Default::default()
        });
        let (outcomes, report) = pool.execute_batch(make_jobs(40, None));
        assert!(outcomes.iter().all(|o| o.is_ok()));
        assert!(report.faults.breaker_trips >= 1);
        assert!(report.faults.probes >= 1, "cooldown must end in a probe");
        assert!(
            report.jobs_per_device[0] > 0,
            "recovered device must be re-admitted"
        );
        assert_eq!(pool.device_health()[0], DeviceHealth::Healthy);
    }

    #[test]
    fn degraded_device_gets_hedged_and_hedge_wins() {
        // Device 0 is a 10× straggler for the whole batch; every job that
        // lands on it should be hedged onto device 1, and the hedge wins.
        let slow = QpuConfig {
            faults: FaultSchedule::none().with_degraded(0, u64::MAX, 10.0),
            ..Default::default()
        };
        let mut pool =
            QpuPool::heterogeneous(vec![slow, QpuConfig::default()], SchedulePolicy::RoundRobin);
        let (outcomes, report) = pool.execute_batch(make_jobs(10, None));
        let results = unwrap_all(outcomes);
        assert!(
            report.faults.hedges_launched > 0,
            "straggler must be hedged"
        );
        assert!(report.faults.hedges_won > 0, "hedges must win against 10×");
        assert!(
            results.iter().all(|r| r.device == 1),
            "winning hedges all run on the fast device"
        );
        assert_eq!(pool.device_health()[0], DeviceHealth::Degraded);
    }

    #[test]
    fn hedging_can_be_disabled() {
        let slow = QpuConfig {
            faults: FaultSchedule::none().with_degraded(0, u64::MAX, 10.0),
            ..Default::default()
        };
        let mut pool =
            QpuPool::heterogeneous(vec![slow, QpuConfig::default()], SchedulePolicy::RoundRobin)
                .with_fault_policy(FaultPolicy {
                    hedge: HedgeConfig {
                        enabled: false,
                        ..Default::default()
                    },
                    ..Default::default()
                });
        let (outcomes, report) = pool.execute_batch(make_jobs(10, None));
        assert!(outcomes.iter().all(|o| o.is_ok()));
        assert_eq!(report.faults.hedges_launched, 0);
        assert!(
            unwrap_all(outcomes).iter().any(|r| r.device == 0),
            "without hedging the straggler keeps its share"
        );
    }

    #[test]
    fn deadline_budget_expires_as_typed_error() {
        // One always-failing device and a deadline too tight to ride out
        // the retries: jobs resolve to DeadlineExpired, not a hang.
        let config = QpuConfig {
            fail_prob: 1.0,
            ..Default::default()
        };
        for policy in ALL_POLICIES {
            let mut pool = QpuPool::homogeneous(1, config.clone(), policy);
            let jobs: Vec<CircuitJob> = make_jobs(2, None)
                .into_iter()
                .map(|j| j.with_budget(50_000))
                .collect();
            let (outcomes, _) = pool.execute_batch(jobs);
            for o in outcomes {
                let err = o.expect_err("deadline must expire");
                assert!(
                    matches!(err.kind, JobErrorKind::DeadlineExpired { .. }),
                    "{policy:?}: got {:?}",
                    err.kind
                );
            }
        }
    }

    #[test]
    fn generous_deadline_does_not_fail_jobs() {
        for policy in ALL_POLICIES {
            let mut pool = QpuPool::homogeneous(2, QpuConfig::default(), policy);
            let jobs: Vec<CircuitJob> = make_jobs(8, None)
                .into_iter()
                .map(|j| j.with_budget(u64::MAX / 2))
                .collect();
            let (outcomes, _) = pool.execute_batch(jobs);
            assert!(outcomes.iter().all(|o| o.is_ok()), "{policy:?}");
        }
    }

    #[test]
    fn completion_times_are_monotone_in_latency_model() {
        let mut pool = QpuPool::homogeneous(2, QpuConfig::default(), SchedulePolicy::WorkStealing);
        let (outcomes, _) = pool.execute_batch(make_jobs(8, Some(100)));
        for r in unwrap_all(outcomes) {
            assert!(r.sim_completed_ns >= r.sim_busy_ns);
        }
    }

    #[test]
    fn lifetime_fault_stats_accumulate_across_batches() {
        let flaky = QpuConfig {
            fail_prob: 0.4,
            ..Default::default()
        };
        let mut pool = QpuPool::homogeneous(2, flaky, SchedulePolicy::WorkStealing);
        let (_, first) = pool.execute_batch(make_jobs(16, None));
        let after_first = *pool.fault_stats();
        let (_, second) = pool.execute_batch(make_jobs(16, None));
        assert_eq!(after_first.retries, first.faults.retries);
        assert_eq!(
            pool.fault_stats().retries,
            first.faults.retries + second.faults.retries
        );
    }
}

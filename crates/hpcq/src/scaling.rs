//! Strong-scaling harness: fixed batch, growing device pool.

use crate::device::QpuConfig;
use crate::job::CircuitJob;
use crate::pool::{QpuPool, SchedulePolicy};

/// One point of a strong-scaling sweep.
#[derive(Clone, Debug)]
pub struct ScalingPoint {
    /// Devices used.
    pub devices: usize,
    /// Wall-clock seconds for the fixed batch.
    pub wall_secs: f64,
    /// Simulated makespan seconds (latency model).
    pub sim_makespan_secs: f64,
    /// Speedup vs the 1-device baseline (wall clock).
    pub speedup: f64,
    /// Parallel efficiency `speedup / devices`.
    pub efficiency: f64,
}

/// Runs the same batch on pools of `device_counts` devices and reports
/// speedup/efficiency relative to the first count. Jobs are cloned per
/// run so every pool sees identical work.
pub fn strong_scaling(
    jobs: &[CircuitJob],
    device_counts: &[usize],
    config: QpuConfig,
    policy: SchedulePolicy,
) -> Vec<ScalingPoint> {
    assert!(!jobs.is_empty() && !device_counts.is_empty());
    let mut out: Vec<ScalingPoint> = Vec::new();
    let mut baseline_wall = 0.0;
    for (i, &count) in device_counts.iter().enumerate() {
        let mut pool = QpuPool::homogeneous(count, config.clone(), policy);
        let (_, report) = pool.execute_batch(jobs.to_vec());
        if i == 0 {
            baseline_wall = report.wall_secs;
        }
        let speedup = baseline_wall / report.wall_secs.max(1e-12) * device_counts[0] as f64;
        out.push(ScalingPoint {
            devices: count,
            wall_secs: report.wall_secs,
            sim_makespan_secs: report.sim_makespan_secs,
            speedup,
            efficiency: speedup / count as f64,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pauli::PauliString;
    use qsim::{Circuit, Gate};

    fn heavy_jobs(n: usize) -> Vec<CircuitJob> {
        // 12-qubit circuits: enough state-vector work per job that thread
        // parallelism is visible above scheduling overhead.
        (0..n as u64)
            .map(|id| {
                let mut c = Circuit::new(12);
                for layer in 0..6 {
                    for q in 0..12 {
                        c.push(Gate::Ry(q, 0.1 * (id as f64 + layer as f64 + q as f64)));
                    }
                    for q in 0..11 {
                        c.push(Gate::Cnot {
                            control: q,
                            target: q + 1,
                        });
                    }
                }
                CircuitJob::new(
                    id,
                    c,
                    vec![PauliString::single(12, 0, pauli::Pauli::Z)],
                    None,
                )
            })
            .collect()
    }

    #[test]
    fn scaling_points_have_sane_shape() {
        let jobs = heavy_jobs(16);
        let points = strong_scaling(
            &jobs,
            &[1, 2, 4],
            QpuConfig::default(),
            SchedulePolicy::WorkStealing,
        );
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].devices, 1);
        // Baseline speedup is 1 by construction.
        assert!((points[0].speedup - 1.0).abs() < 1e-9);
        for p in &points {
            assert!(p.wall_secs > 0.0);
            assert!(p.efficiency > 0.0);
        }
    }

    #[test]
    fn simulated_makespan_shrinks_with_devices() {
        // The latency model is deterministic, so this is the robust
        // scaling signal (wall clock can wobble under CI load).
        let jobs = heavy_jobs(32);
        let points = strong_scaling(
            &jobs,
            &[1, 4],
            QpuConfig::default(),
            SchedulePolicy::WorkStealing,
        );
        assert!(
            points[1].sim_makespan_secs < points[0].sim_makespan_secs / 2.0,
            "1 dev: {}, 4 dev: {}",
            points[0].sim_makespan_secs,
            points[1].sim_makespan_secs
        );
    }
}

//! Regression test for the pool/kernel oversubscription fix.
//!
//! Before the shared executor, a `WorkStealing` batch of large jobs fanned
//! out twice: one OS thread per device, and — once a job's state crossed
//! `qsim::PARALLEL_THRESHOLD` — a full set of kernel threads *inside each
//! device thread*, oversubscribing to devices × cores. With device tasks
//! and amplitude kernels multiplexed onto one executor, the number of
//! threads concurrently executing pool work can never exceed the thread
//! budget, no matter how many devices the batch uses.
//!
//! This file intentionally holds a single `#[test]`: the live-worker
//! high-water mark is process-global, so it must not be polluted by other
//! tests helping the executor from their own threads.

use hpcq::{CircuitJob, QpuConfig, QpuPool, SchedulePolicy};
use pauli::{Pauli, PauliString};
use qsim::state::PARALLEL_THRESHOLD;
use qsim::{Circuit, Gate};

#[test]
fn stealing_batch_of_large_jobs_stays_within_thread_budget() {
    // 2^17 amplitudes per job — far above the kernel threshold, so every
    // gate application inside every device task wants to fan out.
    let n = 17;
    assert!(1usize << n >= 16 * PARALLEL_THRESHOLD);
    let jobs: Vec<CircuitJob> = (0..6u64)
        .map(|id| {
            let mut c = Circuit::new(n);
            for q in 0..n {
                c.push(Gate::Ry(q, 0.1 + 0.01 * (id as f64 + q as f64)));
            }
            for q in 0..n - 1 {
                c.push(Gate::Cnot {
                    control: q,
                    target: q + 1,
                });
            }
            CircuitJob::new(
                id,
                c,
                vec![
                    PauliString::single(n, 0, Pauli::Z),
                    PauliString::single(n, 3, Pauli::X),
                ],
                None,
            )
        })
        .collect();

    let mut pool = QpuPool::homogeneous(3, QpuConfig::default(), SchedulePolicy::WorkStealing);
    rayon::reset_max_live_workers();
    let (results, report) = pool.execute_batch(jobs);

    assert_eq!(results.len(), 6);
    assert_eq!(report.jobs_per_device.iter().sum::<usize>(), 6);
    let budget = rayon::current_num_threads();
    let peak = rayon::max_live_workers();
    assert!(
        peak <= budget,
        "devices × kernels oversubscribed the executor: {peak} live workers > budget {budget}"
    );
}

//! Cholesky decomposition and SPD solves (used by ridge regression).

use crate::mat::Mat;

/// Computes the lower-triangular `L` with `A = L·Lᵀ` for symmetric
/// positive-definite `A`.
///
/// # Errors
/// Returns `None` if `A` is not positive definite (or not square).
pub fn cholesky_decompose(a: &Mat) -> Option<Mat> {
    let (m, n) = a.shape();
    if m != n {
        return None;
    }
    let mut l = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if s <= 0.0 {
                    return None; // not positive definite
                }
                l[(i, j)] = s.sqrt();
            } else {
                l[(i, j)] = s / l[(j, j)];
            }
        }
    }
    Some(l)
}

/// Solves `A x = b` for SPD `A` via Cholesky (forward + back substitution).
///
/// # Errors
/// Returns `None` if `A` is not positive definite.
pub fn cholesky_solve(a: &Mat, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.rows();
    assert_eq!(b.len(), n);
    let l = cholesky_decompose(a)?;
    // Forward: L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l[(i, k)] * y[k];
        }
        y[i] = s / l[(i, i)];
    }
    // Backward: Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for k in i + 1..n {
            s -= l[(k, i)] * x[k];
        }
        x[i] = s / l[(i, i)];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_spd(n: usize, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Mat::from_vec(
            n,
            n,
            (0..n * n).map(|_| rng.random::<f64>() - 0.5).collect(),
        );
        // AᵀA + n·I is safely SPD.
        let mut g = a.transpose().matmul(&a);
        for i in 0..n {
            g[(i, i)] += n as f64;
        }
        g
    }

    #[test]
    fn decompose_reconstructs() {
        let a = random_spd(6, 1);
        let l = cholesky_decompose(&a).unwrap();
        let back = l.matmul(&l.transpose());
        assert!(back.max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn l_is_lower_triangular() {
        let a = random_spd(5, 2);
        let l = cholesky_decompose(&a).unwrap();
        for i in 0..5 {
            for j in i + 1..5 {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn solve_roundtrip() {
        let a = random_spd(7, 3);
        let x_true: Vec<f64> = (0..7).map(|i| (i as f64).cos()).collect();
        let b = a.matvec(&x_true);
        let x = cholesky_solve(&a, &b).unwrap();
        for (got, want) in x.iter().zip(x_true.iter()) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalues 3, −1
        assert!(cholesky_decompose(&a).is_none());
    }

    #[test]
    fn rejects_non_square() {
        let a = Mat::zeros(2, 3);
        assert!(cholesky_decompose(&a).is_none());
    }
}

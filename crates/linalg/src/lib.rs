//! # linalg — dense linear algebra substrate
//!
//! The paper's classical layer is closed-form linear regression
//! `α = Q⁺Y` (Eq. (29)) plus the perturbation theory of §VI/Appendix C,
//! which needs pseudoinverses, singular values, ranks, and the spectral /
//! Frobenius / max norms. Rather than binding LAPACK, this crate implements
//! the required kernels from scratch:
//!
//! * [`Mat`] — dense row-major `f64` matrices with rayon-parallel matmul,
//! * [`qr`] — Householder QR,
//! * [`svd`] — one-sided Jacobi SVD (the workhorse; small matrices, high
//!   accuracy),
//! * [`mod@pinv`] — Moore-Penrose pseudoinverse, least squares, ridge
//!   (Tikhonov) regression and Cholesky solves.
//!
//! Everything is validated by property tests against the defining axioms
//! (reconstruction, orthogonality, the four Moore–Penrose conditions).

pub mod cholesky;
pub mod mat;
pub mod pinv;
pub mod qr;
pub mod svd;

pub use cholesky::{cholesky_decompose, cholesky_solve};
pub use mat::Mat;
pub use pinv::{lstsq, pinv, ridge_solve};
pub use qr::qr_decompose;
pub use svd::{singular_values, Svd};

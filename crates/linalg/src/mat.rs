//! Dense row-major matrices over `f64`.

use rayon::prelude::*;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Element count above which matmul parallelises over output rows.
const PAR_MATMUL_THRESHOLD: usize = 64 * 64;

/// A dense row-major matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a flat row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Mat { rows, cols, data }
    }

    /// Builds from nested rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty());
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        Mat {
            rows: rows.len(),
            cols,
            data: rows.concat(),
        }
    }

    /// A column vector from a slice.
    pub fn col_vector(v: &[f64]) -> Self {
        Mat::from_vec(v.len(), 1, v.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Flat row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// A view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product, parallelised over output rows for large problems.
    pub fn matmul(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.cols, rhs.rows, "matmul shape mismatch");
        let mut out = Mat::zeros(self.rows, rhs.cols);
        let n = rhs.cols;
        let k_dim = self.cols;
        let work = |i: usize, out_row: &mut [f64]| {
            let a_row = self.row(i);
            // i-k-j loop order: streams through rhs rows, cache-friendly.
            for (k, &aik) in a_row.iter().enumerate().take(k_dim) {
                if aik == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                for j in 0..n {
                    out_row[j] += aik * b_row[j];
                }
            }
        };
        if self.rows * rhs.cols >= PAR_MATMUL_THRESHOLD {
            out.data
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, row)| work(i, row));
        } else {
            for i in 0..self.rows {
                let row = &mut out.data[i * n..(i + 1) * n];
                work(i, row);
            }
        }
        out
    }

    /// Matrix–vector product.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec shape mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v.iter()).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// `Aᵀ v` without forming the transpose.
    pub fn t_matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, v.len(), "t_matvec shape mismatch");
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let vi = v[i];
            if vi == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(i)) {
                *o += vi * a;
            }
        }
        out
    }

    /// Scales all entries.
    pub fn scale(&self, s: f64) -> Mat {
        let mut out = self.clone();
        for x in out.data.iter_mut() {
            *x *= s;
        }
        out
    }

    /// Frobenius norm `‖A‖_F`.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Max (element-wise) norm `‖A‖_max` — the norm Theorems 3–4 bound.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    /// Max element-wise difference to another matrix.
    pub fn max_abs_diff(&self, rhs: &Mat) -> f64 {
        assert_eq!(self.shape(), rhs.shape());
        self.data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Whether every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Horizontal concatenation `[self | rhs]`.
    pub fn hcat(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.rows, rhs.rows);
        let mut out = Mat::zeros(self.rows, self.cols + rhs.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(rhs.row(i));
        }
        out
    }

    /// Returns the submatrix of the listed rows (cloned).
    pub fn select_rows(&self, indices: &[usize]) -> Mat {
        let mut out = Mat::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Mat {
    type Output = Mat;
    fn add(self, rhs: &Mat) -> Mat {
        assert_eq!(self.shape(), rhs.shape());
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(rhs.data.iter()) {
            *o += r;
        }
        out
    }
}

impl Sub for &Mat {
    type Output = Mat;
    fn sub(self, rhs: &Mat) -> Mat {
        assert_eq!(self.shape(), rhs.shape());
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(rhs.data.iter()) {
            *o -= r;
        }
        out
    }
}

impl Mul for &Mat {
    type Output = Mat;
    fn mul(self, rhs: &Mat) -> Mat {
        self.matmul(rhs)
    }
}

impl fmt::Display for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}×{}:", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>10.4}", self[(i, j)])?;
            }
            if self.cols > 8 {
                write!(f, " …")?;
            }
            writeln!(f, " ]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ⋮")?;
        }
        Ok(())
    }
}

/// Euclidean norm of a vector.
pub fn vec_norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Dot product.
pub fn vec_dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_mat(r: usize, c: usize, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        Mat::from_vec(
            r,
            c,
            (0..r * c).map(|_| rng.random::<f64>() - 0.5).collect(),
        )
    }

    #[test]
    fn identity_multiplication() {
        let a = random_mat(5, 7, 1);
        let i5 = Mat::eye(5);
        let i7 = Mat::eye(7);
        assert!(i5.matmul(&a).max_abs_diff(&a) < 1e-15);
        assert!(a.matmul(&i7).max_abs_diff(&a) < 1e-15);
    }

    #[test]
    fn matmul_associativity() {
        let a = random_mat(4, 6, 2);
        let b = random_mat(6, 3, 3);
        let c = random_mat(3, 5, 4);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        assert!(left.max_abs_diff(&right) < 1e-12);
    }

    #[test]
    fn parallel_matmul_matches_serial_path() {
        // Big enough to trigger the parallel path; compare with a naive
        // triple loop.
        let a = random_mat(80, 70, 5);
        let b = random_mat(70, 90, 6);
        let fast = a.matmul(&b);
        let mut naive = Mat::zeros(80, 90);
        for i in 0..80 {
            for j in 0..90 {
                let mut s = 0.0;
                for k in 0..70 {
                    s += a[(i, k)] * b[(k, j)];
                }
                naive[(i, j)] = s;
            }
        }
        assert!(fast.max_abs_diff(&naive) < 1e-10);
    }

    #[test]
    fn transpose_involution() {
        let a = random_mat(6, 4, 7);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_against_matmul() {
        let a = random_mat(5, 4, 8);
        let v: Vec<f64> = (0..4).map(|i| i as f64 - 1.5).collect();
        let got = a.matvec(&v);
        let want = a.matmul(&Mat::col_vector(&v));
        for (i, g) in got.iter().enumerate() {
            assert!((g - want[(i, 0)]).abs() < 1e-13);
        }
    }

    #[test]
    fn t_matvec_against_transpose() {
        let a = random_mat(5, 4, 9);
        let v: Vec<f64> = (0..5).map(|i| 0.3 * i as f64 - 1.0).collect();
        let got = a.t_matvec(&v);
        let want = a.transpose().matvec(&v);
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g - w).abs() < 1e-13);
        }
    }

    #[test]
    fn norms() {
        let m = Mat::from_rows(&[vec![3.0, 0.0], vec![0.0, -4.0]]);
        assert!((m.norm_fro() - 5.0).abs() < 1e-15);
        assert!((m.norm_max() - 4.0).abs() < 1e-15);
    }

    #[test]
    fn hcat_and_select() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Mat::from_rows(&[vec![5.0], vec![6.0]]);
        let c = a.hcat(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c[(1, 2)], 6.0);
        let sel = c.select_rows(&[1]);
        assert_eq!(sel.row(0), &[3.0, 4.0, 6.0]);
    }

    #[test]
    fn ops_traits() {
        let a = Mat::from_rows(&[vec![1.0, 2.0]]);
        let b = Mat::from_rows(&[vec![0.5, -2.0]]);
        let s = &a + &b;
        let d = &a - &b;
        assert_eq!(s.row(0), &[1.5, 0.0]);
        assert_eq!(d.row(0), &[0.5, 4.0]);
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn vector_helpers() {
        assert!((vec_norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert!((vec_dot(&[1.0, 2.0], &[3.0, -1.0]) - 1.0).abs() < 1e-15);
    }
}

//! Moore–Penrose pseudoinverse, least squares, and ridge regression.
//!
//! These are the classical-optimisation primitives of the paper's §V:
//! `α = Q⁺Y` (closed-form linear regression, Eq. (29)) and the Tikhonov
//! variant used to enforce the `‖α‖₂ ≤ 1` robustness constraint of
//! Theorem 4.

use crate::cholesky::cholesky_solve;
use crate::mat::Mat;
use crate::svd::Svd;

/// The Moore–Penrose pseudoinverse `A⁺` via SVD, truncating singular values
/// at `tol` (pass `None` for the LAPACK-style default `max(m,n)·ε·σ_max`).
pub fn pinv(a: &Mat, tol: Option<f64>) -> Mat {
    let svd = Svd::compute(a);
    let tol = tol.unwrap_or_else(|| svd.default_tol());
    // A⁺ = V · diag(1/σ) · Uᵀ over σ > tol.
    let k = svd.sigma.len();
    let mut vs = svd.v.clone(); // n×k
    for j in 0..k {
        let inv = if svd.sigma[j] > tol {
            1.0 / svd.sigma[j]
        } else {
            0.0
        };
        for i in 0..vs.rows() {
            vs[(i, j)] *= inv;
        }
    }
    vs.matmul(&svd.u.transpose())
}

/// Minimum-norm least-squares solution of `min ‖Ax − b‖₂` via the
/// pseudoinverse (works for any rank).
pub fn lstsq(a: &Mat, b: &[f64]) -> Vec<f64> {
    assert_eq!(a.rows(), b.len(), "rhs length mismatch");
    pinv(a, None).matvec(b)
}

/// Ridge (Tikhonov) regression: solves `(AᵀA + λI) x = Aᵀ b` via Cholesky.
///
/// `λ > 0` guarantees positive definiteness; this is the paper's
/// regularisation path toward `‖α‖₂ ≤ 1` (§VI, after Theorem 3).
pub fn ridge_solve(a: &Mat, b: &[f64], lambda: f64) -> Vec<f64> {
    assert!(lambda > 0.0, "ridge parameter must be positive");
    assert_eq!(a.rows(), b.len());
    let mut g = a.transpose().matmul(a);
    for i in 0..g.rows() {
        g[(i, i)] += lambda;
    }
    let atb = a.t_matvec(b);
    cholesky_solve(&g, &atb).expect("AᵀA + λI must be SPD for λ > 0")
}

/// Increases `λ` geometrically until `‖x(λ)‖₂ ≤ bound`; returns
/// `(x, λ_used)`. Implements the paper's "apply Tikhonov regularization
/// with an appropriate ridge parameter λ(α) to achieve ‖α‖₂ ≤ 1".
pub fn ridge_to_norm_bound(a: &Mat, b: &[f64], bound: f64) -> (Vec<f64>, f64) {
    assert!(bound > 0.0);
    let mut lambda = 1e-8;
    for _ in 0..200 {
        let x = ridge_solve(a, b, lambda);
        let norm = crate::mat::vec_norm2(&x);
        if norm <= bound {
            return (x, lambda);
        }
        lambda *= 2.0;
    }
    let x = ridge_solve(a, b, lambda);
    (x, lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::vec_norm2;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_mat(r: usize, c: usize, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        Mat::from_vec(
            r,
            c,
            (0..r * c).map(|_| rng.random::<f64>() - 0.5).collect(),
        )
    }

    /// The four Moore–Penrose conditions.
    fn check_moore_penrose(a: &Mat, ap: &Mat, tol: f64) {
        let a_ap_a = a.matmul(ap).matmul(a);
        assert!(a_ap_a.max_abs_diff(a) < tol, "A A⁺ A ≠ A");
        let ap_a_ap = ap.matmul(a).matmul(ap);
        assert!(ap_a_ap.max_abs_diff(ap) < tol, "A⁺ A A⁺ ≠ A⁺");
        let a_ap = a.matmul(ap);
        assert!(
            a_ap.max_abs_diff(&a_ap.transpose()) < tol,
            "AA⁺ not symmetric"
        );
        let ap_a = ap.matmul(a);
        assert!(
            ap_a.max_abs_diff(&ap_a.transpose()) < tol,
            "A⁺A not symmetric"
        );
    }

    #[test]
    fn moore_penrose_conditions_full_rank() {
        for (m, n, seed) in [(8, 5, 1), (5, 8, 2), (6, 6, 3)] {
            let a = random_mat(m, n, seed);
            let ap = pinv(&a, None);
            check_moore_penrose(&a, &ap, 1e-9);
        }
    }

    #[test]
    fn moore_penrose_conditions_rank_deficient() {
        // Construct rank-2 5×4 matrix.
        let b = random_mat(5, 2, 4);
        let c = random_mat(2, 4, 5);
        let a = b.matmul(&c);
        let ap = pinv(&a, None);
        check_moore_penrose(&a, &ap, 1e-8);
    }

    #[test]
    fn pinv_of_invertible_is_inverse() {
        let a = random_mat(4, 4, 6);
        let ap = pinv(&a, None);
        assert!(a.matmul(&ap).max_abs_diff(&Mat::eye(4)) < 1e-9);
    }

    #[test]
    fn pinv_norm_identity() {
        // ‖A⁺‖ = 1/σ_min(A) (paper §II.A).
        let a = random_mat(7, 4, 7);
        let svd = Svd::compute(&a);
        let ap = pinv(&a, None);
        let ap_norm = Svd::compute(&ap).spectral_norm();
        assert!((ap_norm - 1.0 / svd.sigma_min_nonzero()).abs() < 1e-9);
    }

    #[test]
    fn lstsq_matches_qr_on_full_rank() {
        let a = random_mat(12, 5, 8);
        let b: Vec<f64> = (0..12).map(|i| (0.3 * i as f64).cos()).collect();
        let x1 = lstsq(&a, &b);
        let x2 = crate::qr::qr_lstsq(&a, &b);
        for (p, q) in x1.iter().zip(x2.iter()) {
            assert!((p - q).abs() < 1e-9);
        }
    }

    #[test]
    fn lstsq_minimum_norm_on_wide_system() {
        // Underdetermined: x = A⁺b is the minimum-norm solution; any other
        // solution has larger norm.
        let a = random_mat(3, 6, 9);
        let b = vec![1.0, -0.5, 0.25];
        let x = lstsq(&a, &b);
        let ax = a.matvec(&x);
        for (p, q) in ax.iter().zip(b.iter()) {
            assert!((p - q).abs() < 1e-10, "not a solution");
        }
        // Perturb x within the null space direction? Simpler: add any
        // vector in null(A) found via projector I − A⁺A.
        let ap = pinv(&a, None);
        let proj = &Mat::eye(6) - &ap.matmul(&a);
        let w = proj.matvec(&[1.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
        if vec_norm2(&w) > 1e-8 {
            let x2: Vec<f64> = x.iter().zip(w.iter()).map(|(a, b)| a + b).collect();
            assert!(vec_norm2(&x2) > vec_norm2(&x));
        }
    }

    #[test]
    fn ridge_approaches_lstsq_as_lambda_vanishes() {
        let a = random_mat(10, 4, 10);
        let b: Vec<f64> = (0..10).map(|i| (i as f64 * 0.21).sin()).collect();
        let exact = lstsq(&a, &b);
        let ridge = ridge_solve(&a, &b, 1e-10);
        for (p, q) in ridge.iter().zip(exact.iter()) {
            assert!((p - q).abs() < 1e-5);
        }
    }

    #[test]
    fn ridge_shrinks_norm_monotonically() {
        let a = random_mat(10, 4, 11);
        let b: Vec<f64> = (0..10).map(|i| (i as f64 * 0.31).cos()).collect();
        let n1 = vec_norm2(&ridge_solve(&a, &b, 0.01));
        let n2 = vec_norm2(&ridge_solve(&a, &b, 1.0));
        let n3 = vec_norm2(&ridge_solve(&a, &b, 100.0));
        assert!(n1 >= n2 && n2 >= n3, "{n1} {n2} {n3}");
    }

    #[test]
    fn ridge_to_norm_bound_enforces_bound() {
        let a = random_mat(20, 6, 12);
        let b: Vec<f64> = (0..20).map(|i| 3.0 * (i as f64 * 0.17).sin()).collect();
        let (x, lambda) = ridge_to_norm_bound(&a, &b, 1.0);
        assert!(vec_norm2(&x) <= 1.0 + 1e-9, "‖x‖ = {}", vec_norm2(&x));
        assert!(lambda > 0.0);
    }
}

//! Householder QR decomposition.

use crate::mat::Mat;

/// A thin QR decomposition `A = Q·R` with `Q ∈ R^{m×k}` having orthonormal
/// columns and `R ∈ R^{k×n}` upper triangular, `k = min(m,n)`.
#[derive(Clone, Debug)]
pub struct Qr {
    /// Orthonormal factor.
    pub q: Mat,
    /// Upper-triangular factor.
    pub r: Mat,
}

/// Computes the thin QR decomposition by Householder reflections.
pub fn qr_decompose(a: &Mat) -> Qr {
    let (m, n) = a.shape();
    let k = m.min(n);
    let mut r = a.clone();
    // Q accumulated as a product of reflectors applied to identity.
    let mut q = Mat::eye(m);

    for col in 0..k {
        // Build the Householder vector for column `col`, rows col..m.
        let mut norm = 0.0;
        for i in col..m {
            norm += r[(i, col)] * r[(i, col)];
        }
        let norm = norm.sqrt();
        if norm == 0.0 {
            continue;
        }
        let alpha = if r[(col, col)] > 0.0 { -norm } else { norm };
        let mut v = vec![0.0; m - col];
        v[0] = r[(col, col)] - alpha;
        for i in col + 1..m {
            v[i - col] = r[(i, col)];
        }
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 == 0.0 {
            continue;
        }
        // Apply H = I − 2vvᵀ/‖v‖² to R (left) and accumulate into Q.
        for j in col..n {
            let mut dot = 0.0;
            for i in col..m {
                dot += v[i - col] * r[(i, j)];
            }
            let f = 2.0 * dot / vnorm2;
            for i in col..m {
                r[(i, j)] -= f * v[i - col];
            }
        }
        for j in 0..m {
            let mut dot = 0.0;
            for i in col..m {
                dot += v[i - col] * q[(j, i)];
            }
            let f = 2.0 * dot / vnorm2;
            for i in col..m {
                q[(j, i)] -= f * v[i - col];
            }
        }
    }

    // Thin factors.
    let mut q_thin = Mat::zeros(m, k);
    for i in 0..m {
        for j in 0..k {
            q_thin[(i, j)] = q[(i, j)];
        }
    }
    let mut r_thin = Mat::zeros(k, n);
    for i in 0..k {
        for j in i..n {
            r_thin[(i, j)] = r[(i, j)];
        }
    }
    Qr {
        q: q_thin,
        r: r_thin,
    }
}

/// Solves the least-squares problem `min ‖Ax − b‖₂` for **full-column-rank**
/// `A` via QR: `Rx = Qᵀb` by back substitution.
pub fn qr_lstsq(a: &Mat, b: &[f64]) -> Vec<f64> {
    let (m, n) = a.shape();
    assert!(m >= n, "QR least squares needs a tall matrix");
    assert_eq!(b.len(), m);
    let qr = qr_decompose(a);
    let qtb = qr.q.t_matvec(b);
    // Back substitution on R (n×n upper-triangular block).
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = qtb[i];
        for j in i + 1..n {
            s -= qr.r[(i, j)] * x[j];
        }
        let d = qr.r[(i, i)];
        assert!(
            d.abs() > 1e-300,
            "rank-deficient matrix in qr_lstsq; use pinv-based lstsq"
        );
        x[i] = s / d;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_mat(r: usize, c: usize, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        Mat::from_vec(
            r,
            c,
            (0..r * c).map(|_| rng.random::<f64>() - 0.5).collect(),
        )
    }

    #[test]
    fn qr_reconstructs() {
        for (m, n, seed) in [(6, 4, 1), (5, 5, 2), (4, 7, 3)] {
            let a = random_mat(m, n, seed);
            let qr = qr_decompose(&a);
            let back = qr.q.matmul(&qr.r);
            assert!(back.max_abs_diff(&a) < 1e-11, "{m}×{n}");
        }
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = random_mat(8, 5, 4);
        let qr = qr_decompose(&a);
        let g = qr.q.transpose().matmul(&qr.q);
        assert!(g.max_abs_diff(&Mat::eye(5)) < 1e-11);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = random_mat(6, 6, 5);
        let qr = qr_decompose(&a);
        for i in 0..6 {
            for j in 0..i {
                assert!(qr.r[(i, j)].abs() < 1e-12);
            }
        }
    }

    #[test]
    fn lstsq_recovers_exact_solution() {
        let a = random_mat(10, 4, 6);
        let x_true = vec![1.5, -2.0, 0.25, 3.0];
        let b = a.matvec(&x_true);
        let x = qr_lstsq(&a, &b);
        for (got, want) in x.iter().zip(x_true.iter()) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn lstsq_minimises_residual() {
        // Over-determined inconsistent system: the solution must satisfy
        // the normal equations Aᵀ(Ax − b) = 0.
        let a = random_mat(12, 3, 7);
        let b: Vec<f64> = (0..12).map(|i| (i as f64 * 0.37).sin()).collect();
        let x = qr_lstsq(&a, &b);
        let ax = a.matvec(&x);
        let resid: Vec<f64> = ax.iter().zip(b.iter()).map(|(p, q)| p - q).collect();
        let grad = a.t_matvec(&resid);
        for g in grad {
            assert!(g.abs() < 1e-10, "normal equations violated: {g}");
        }
    }
}

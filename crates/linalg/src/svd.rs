//! One-sided Jacobi singular value decomposition.
//!
//! The feature matrices in this library are at most a few hundred rows and
//! columns; one-sided Jacobi is simple, numerically excellent (it computes
//! small singular values to high relative accuracy, which matters because
//! Theorem 3's bound involves `σ_min(Q)`), and trivially parallel-safe.
//!
//! For `A ∈ R^{m×n}` with `m ≥ n` the algorithm orthogonalises the columns
//! of `A` by Givens rotations applied on the right, accumulating them into
//! `V`; at convergence the column norms are the singular values and the
//! normalised columns form `U`. Matrices with `m < n` are transposed first.

use crate::mat::Mat;

/// A thin SVD: `A = U · diag(σ) · Vᵀ` with `U ∈ R^{m×k}`, `σ ∈ R^k`,
/// `V ∈ R^{n×k}`, `k = min(m,n)`; singular values sorted descending.
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors (columns orthonormal where σ > 0).
    pub u: Mat,
    /// Singular values, descending.
    pub sigma: Vec<f64>,
    /// Right singular vectors (columns orthonormal).
    pub v: Mat,
}

impl Svd {
    /// Computes the SVD of `a`.
    pub fn compute(a: &Mat) -> Svd {
        let (m, n) = a.shape();
        if m >= n {
            jacobi_svd_tall(a)
        } else {
            // A = U Σ Vᵀ  ⇔  Aᵀ = V Σ Uᵀ.
            let t = jacobi_svd_tall(&a.transpose());
            Svd {
                u: t.v,
                sigma: t.sigma,
                v: t.u,
            }
        }
    }

    /// The rank with tolerance `tol` (σ > tol counts).
    pub fn rank(&self, tol: f64) -> usize {
        self.sigma.iter().filter(|&&s| s > tol).count()
    }

    /// Default rank tolerance: `max(m,n) · ε · σ_max` (LAPACK convention).
    pub fn default_tol(&self) -> f64 {
        let dim = self.u.rows().max(self.v.rows()) as f64;
        dim * f64::EPSILON * self.sigma.first().copied().unwrap_or(0.0)
    }

    /// Largest singular value (spectral norm of A).
    pub fn spectral_norm(&self) -> f64 {
        self.sigma.first().copied().unwrap_or(0.0)
    }

    /// Smallest **non-zero** singular value, using the default tolerance —
    /// the `σ_min` of the paper's Theorem 3.
    pub fn sigma_min_nonzero(&self) -> f64 {
        let tol = self.default_tol();
        self.sigma
            .iter()
            .rev()
            .find(|&&s| s > tol)
            .copied()
            .unwrap_or(0.0)
    }

    /// Condition number `κ = σ_max / σ_min(nonzero)` (∞ for the zero
    /// matrix).
    pub fn cond(&self) -> f64 {
        let smin = self.sigma_min_nonzero();
        if smin == 0.0 {
            f64::INFINITY
        } else {
            self.spectral_norm() / smin
        }
    }

    /// Reconstructs `U · diag(σ) · Vᵀ` (test/diagnostic helper).
    pub fn reconstruct(&self) -> Mat {
        let k = self.sigma.len();
        let mut us = self.u.clone();
        for j in 0..k {
            for i in 0..us.rows() {
                us[(i, j)] *= self.sigma[j];
            }
        }
        us.matmul(&self.v.transpose())
    }
}

/// One-sided Jacobi on a tall (or square) matrix.
fn jacobi_svd_tall(a: &Mat) -> Svd {
    let (m, n) = a.shape();
    debug_assert!(m >= n);
    let mut w = a.clone(); // working copy whose columns get orthogonalised
    let mut v = Mat::eye(n);

    const MAX_SWEEPS: usize = 60;
    // Convergence: |cᵢ·cⱼ| ≤ eps·‖cᵢ‖‖cⱼ‖ for all pairs.
    let eps = 1e-15;

    for _sweep in 0..MAX_SWEEPS {
        let mut rotated = false;
        for i in 0..n {
            for j in i + 1..n {
                // Column moments.
                let (mut aii, mut ajj, mut aij) = (0.0, 0.0, 0.0);
                for r in 0..m {
                    let wi = w[(r, i)];
                    let wj = w[(r, j)];
                    aii += wi * wi;
                    ajj += wj * wj;
                    aij += wi * wj;
                }
                if aij.abs() <= eps * (aii * ajj).sqrt() || aij == 0.0 {
                    continue;
                }
                rotated = true;
                // Jacobi rotation annihilating the (i,j) off-diagonal of
                // the implicit Gram matrix.
                let zeta = (ajj - aii) / (2.0 * aij);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for r in 0..m {
                    let wi = w[(r, i)];
                    let wj = w[(r, j)];
                    w[(r, i)] = c * wi - s * wj;
                    w[(r, j)] = s * wi + c * wj;
                }
                for r in 0..n {
                    let vi = v[(r, i)];
                    let vj = v[(r, j)];
                    v[(r, i)] = c * vi - s * vj;
                    v[(r, j)] = s * vi + c * vj;
                }
            }
        }
        if !rotated {
            break;
        }
    }

    // Singular values = column norms; U = normalised columns.
    let mut entries: Vec<(f64, usize)> = (0..n)
        .map(|j| {
            let norm = (0..m).map(|r| w[(r, j)] * w[(r, j)]).sum::<f64>().sqrt();
            (norm, j)
        })
        .collect();
    entries.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());

    let mut u = Mat::zeros(m, n);
    let mut vs = Mat::zeros(n, n);
    let mut sigma = Vec::with_capacity(n);
    for (dst, &(norm, src)) in entries.iter().enumerate() {
        sigma.push(norm);
        if norm > 0.0 {
            for r in 0..m {
                u[(r, dst)] = w[(r, src)] / norm;
            }
        }
        for r in 0..n {
            vs[(r, dst)] = v[(r, src)];
        }
    }
    Svd { u, sigma, v: vs }
}

/// Just the singular values of `a`, descending.
pub fn singular_values(a: &Mat) -> Vec<f64> {
    Svd::compute(a).sigma
}

/// Spectral norm `‖A‖` (largest singular value).
pub fn spectral_norm(a: &Mat) -> f64 {
    Svd::compute(a).spectral_norm()
}

/// Numerical rank with the default tolerance.
pub fn rank(a: &Mat) -> usize {
    let svd = Svd::compute(a);
    let tol = svd.default_tol();
    svd.rank(tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_mat(r: usize, c: usize, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        Mat::from_vec(
            r,
            c,
            (0..r * c).map(|_| rng.random::<f64>() - 0.5).collect(),
        )
    }

    fn assert_orthonormal_cols(m: &Mat, tol: f64) {
        let g = m.transpose().matmul(m);
        for i in 0..g.rows() {
            for j in 0..g.cols() {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (g[(i, j)] - want).abs() < tol,
                    "Gram[{i},{j}] = {}",
                    g[(i, j)]
                );
            }
        }
    }

    #[test]
    fn reconstruction_tall_square_wide() {
        for (r, c, seed) in [(8, 5, 1), (6, 6, 2), (4, 9, 3)] {
            let a = random_mat(r, c, seed);
            let svd = Svd::compute(&a);
            assert!(svd.reconstruct().max_abs_diff(&a) < 1e-10, "shape {r}×{c}");
        }
    }

    #[test]
    fn orthonormal_factors() {
        let a = random_mat(10, 6, 4);
        let svd = Svd::compute(&a);
        assert_orthonormal_cols(&svd.u, 1e-10);
        assert_orthonormal_cols(&svd.v, 1e-10);
    }

    #[test]
    fn singular_values_sorted_and_positive() {
        let a = random_mat(7, 7, 5);
        let s = singular_values(&a);
        for w in s.windows(2) {
            assert!(w[0] >= w[1] - 1e-15);
        }
        assert!(s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn known_diagonal_case() {
        let a = Mat::from_rows(&[vec![3.0, 0.0], vec![0.0, -4.0], vec![0.0, 0.0]]);
        let s = singular_values(&a);
        assert!((s[0] - 4.0).abs() < 1e-12);
        assert!((s[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rank_deficient_matrix() {
        // Second column = 2 × first column → rank 1.
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![-1.0, -2.0]]);
        assert_eq!(rank(&a), 1);
        let svd = Svd::compute(&a);
        assert!(svd.sigma[1] < 1e-12);
        assert!(svd.sigma_min_nonzero() > 1.0);
    }

    #[test]
    fn spectral_norm_of_orthogonal_is_one() {
        // Rotation matrix.
        let th = 0.77f64;
        let a = Mat::from_rows(&[vec![th.cos(), -th.sin()], vec![th.sin(), th.cos()]]);
        assert!((spectral_norm(&a) - 1.0).abs() < 1e-12);
        let svd = Svd::compute(&a);
        assert!((svd.cond() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn zero_matrix() {
        let a = Mat::zeros(3, 2);
        let svd = Svd::compute(&a);
        assert!(svd.sigma.iter().all(|&s| s == 0.0));
        assert_eq!(svd.rank(1e-12), 0);
        assert!(svd.cond().is_infinite());
    }

    #[test]
    fn norm_consistency_with_frobenius() {
        // ‖A‖ ≤ ‖A‖_F ≤ √rank·‖A‖ (Eq. (C1)-(C2) of the paper).
        let a = random_mat(9, 5, 6);
        let svd = Svd::compute(&a);
        let spec = svd.spectral_norm();
        let fro = a.norm_fro();
        let r = svd.rank(svd.default_tol()) as f64;
        assert!(spec <= fro + 1e-12);
        assert!(fro <= r.sqrt() * spec + 1e-12);
    }
}

//! k-fold cross-validation — model selection for the post-variational
//! heads (e.g. choosing locality L or the ridge λ without touching the
//! test set).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Deterministic k-fold split: returns `k` (train_indices, val_indices)
/// pairs covering `0..rows`, shuffled by `seed`.
pub fn kfold_indices(rows: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "need at least 2 folds");
    assert!(rows >= k, "more folds than rows");
    let mut idx: Vec<usize> = (0..rows).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..idx.len()).rev() {
        let j = rng.random_range(0..=i);
        idx.swap(i, j);
    }
    let base = rows / k;
    let extra = rows % k;
    let mut folds = Vec::with_capacity(k);
    let mut start = 0;
    for f in 0..k {
        let len = base + usize::from(f < extra);
        let val: Vec<usize> = idx[start..start + len].to_vec();
        let train: Vec<usize> = idx[..start]
            .iter()
            .chain(idx[start + len..].iter())
            .copied()
            .collect();
        folds.push((train, val));
        start += len;
    }
    folds
}

/// Runs k-fold cross-validation: `fit_score(train_idx, val_idx)` returns a
/// score per fold (higher = better, e.g. validation accuracy); returns
/// `(mean, std)` over folds.
pub fn cross_validate<F>(rows: usize, k: usize, seed: u64, mut fit_score: F) -> (f64, f64)
where
    F: FnMut(&[usize], &[usize]) -> f64,
{
    let folds = kfold_indices(rows, k, seed);
    let scores: Vec<f64> = folds
        .iter()
        .map(|(train, val)| fit_score(train, val))
        .collect();
    let mean = scores.iter().sum::<f64>() / scores.len() as f64;
    let var = scores.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / scores.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn folds_partition_rows() {
        let folds = kfold_indices(23, 5, 7);
        assert_eq!(folds.len(), 5);
        let mut all_val: Vec<usize> = Vec::new();
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 23);
            // Train and val are disjoint.
            let t: HashSet<_> = train.iter().collect();
            assert!(val.iter().all(|v| !t.contains(v)));
            all_val.extend(val);
        }
        all_val.sort_unstable();
        assert_eq!(all_val, (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn fold_sizes_balanced() {
        let folds = kfold_indices(10, 3, 1);
        let sizes: Vec<usize> = folds.iter().map(|(_, v)| v.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(kfold_indices(20, 4, 9), kfold_indices(20, 4, 9));
        assert_ne!(kfold_indices(20, 4, 9), kfold_indices(20, 4, 10));
    }

    #[test]
    fn cross_validate_aggregates() {
        // Score = fraction of validation indices below 50 → mean ≈ 0.5 on
        // 0..100.
        let (mean, std) = cross_validate(100, 5, 3, |_, val| {
            val.iter().filter(|&&i| i < 50).count() as f64 / val.len() as f64
        });
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!(std < 0.2);
    }

    #[test]
    #[should_panic]
    fn too_many_folds_panics() {
        let _ = kfold_indices(3, 5, 0);
    }
}

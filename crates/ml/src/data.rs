//! Dataset utilities: splits, standardisation, encodings.

use linalg::Mat;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Splits row indices into (train, test) with `test_fraction` of rows held
/// out, shuffled deterministically by `seed`.
pub fn train_test_split(rows: usize, test_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!((0.0..1.0).contains(&test_fraction));
    let mut idx: Vec<usize> = (0..rows).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    // Fisher–Yates.
    for i in (1..idx.len()).rev() {
        let j = rng.random_range(0..=i);
        idx.swap(i, j);
    }
    let n_test = (rows as f64 * test_fraction).round() as usize;
    let test = idx[..n_test].to_vec();
    let train = idx[n_test..].to_vec();
    (train, test)
}

/// Column means and standard deviations of a feature matrix.
pub fn column_stats(x: &Mat) -> (Vec<f64>, Vec<f64>) {
    let d = x.rows() as f64;
    let mut means = vec![0.0; x.cols()];
    for i in 0..x.rows() {
        for (m, &v) in means.iter_mut().zip(x.row(i)) {
            *m += v;
        }
    }
    for m in means.iter_mut() {
        *m /= d;
    }
    let mut stds = vec![0.0; x.cols()];
    for i in 0..x.rows() {
        for ((s, &v), m) in stds.iter_mut().zip(x.row(i)).zip(means.iter()) {
            *s += (v - m) * (v - m);
        }
    }
    for s in stds.iter_mut() {
        *s = (*s / d).sqrt();
        if *s == 0.0 {
            *s = 1.0; // constant columns stay untouched
        }
    }
    (means, stds)
}

/// Standardises `x` with the provided statistics (z-scores). Use the
/// training-set stats for both splits.
pub fn standardize(x: &Mat, means: &[f64], stds: &[f64]) -> Mat {
    assert_eq!(x.cols(), means.len());
    assert_eq!(x.cols(), stds.len());
    let mut out = x.clone();
    for i in 0..out.rows() {
        for (j, v) in out.row_mut(i).iter_mut().enumerate() {
            *v = (*v - means[j]) / stds[j];
        }
    }
    out
}

/// One-hot encodes integer labels into a `d × k` matrix.
pub fn one_hot(labels: &[usize], k: usize) -> Mat {
    assert!(labels.iter().all(|&l| l < k));
    let mut m = Mat::zeros(labels.len(), k);
    for (i, &l) in labels.iter().enumerate() {
        m[(i, l)] = 1.0;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_partition() {
        let (train, test) = train_test_split(100, 0.2, 42);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
        let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_deterministic_per_seed() {
        assert_eq!(train_test_split(50, 0.3, 1), train_test_split(50, 0.3, 1));
        assert_ne!(
            train_test_split(50, 0.3, 1).0,
            train_test_split(50, 0.3, 2).0
        );
    }

    #[test]
    fn standardize_zero_mean_unit_var() {
        let x = Mat::from_rows(&[vec![1.0, 10.0], vec![3.0, 20.0], vec![5.0, 30.0]]);
        let (m, s) = column_stats(&x);
        let z = standardize(&x, &m, &s);
        let (m2, s2) = column_stats(&z);
        for v in m2 {
            assert!(v.abs() < 1e-12);
        }
        for v in s2 {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_column_untouched() {
        let x = Mat::from_rows(&[vec![2.0], vec![2.0]]);
        let (m, s) = column_stats(&x);
        assert_eq!(s[0], 1.0);
        let z = standardize(&x, &m, &s);
        assert!(z.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn one_hot_encoding() {
        let m = one_hot(&[0, 2, 1], 3);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 1.0);
        assert_eq!(m[(2, 1)], 1.0);
        assert_eq!(m.data().iter().sum::<f64>(), 3.0);
    }
}

//! # ml — classical machine-learning substrate
//!
//! The paper's classical layer (§V) and baselines (§VII, Tables III–IV)
//! need: loss functions (RMSE/MAE/BCE, §II.A), binary logistic regression
//! (the scikit-learn model used for the post-variational head and the
//! "Classical Logistic" baseline), multinomial softmax regression (the
//! multiclass extension), a two-layer MLP (the "Classical MLP" baseline),
//! and the ℓ2-ball-constrained convex fits of Theorem 4. All implemented
//! here from scratch on top of `linalg`.

pub mod crossval;
pub mod data;
pub mod logistic;
pub mod loss;
pub mod metrics;
pub mod mlp;
pub mod optim;
pub mod softmax;

pub use crossval::{cross_validate, kfold_indices};
pub use data::{one_hot, standardize, train_test_split};
pub use logistic::{LogisticConfig, LogisticRegression};
pub use loss::{bce_loss, mae_loss, rmse_loss, softmax_ce_loss};
pub use metrics::{accuracy, accuracy_multiclass, confusion_matrix};
pub use mlp::{Mlp, MlpConfig};
pub use optim::{project_l2_ball, Adam};
pub use softmax::{SoftmaxConfig, SoftmaxRegression};

//! Binary logistic regression — the classical head of the post-variational
//! network (§VII.A: "For the classical regression layer, we use the
//! logistic regression algorithm as provided by the scikit-learn library")
//! and the "Classical Logistic" baseline of Table III.

use crate::loss::{bce_loss, sigmoid};
use crate::optim::{project_l2_ball, Adam};
use linalg::Mat;
use serde::{Deserialize, Serialize};

/// Training configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LogisticConfig {
    /// L2 penalty coefficient λ on the weights (not the intercept);
    /// `1e-2` roughly matches scikit-learn's default `C = 1` at the
    /// dataset sizes used in the paper.
    pub l2: f64,
    /// Full-batch training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Optional hard constraint `‖w‖₂ ≤ r` (Theorem 4's robustness
    /// constraint); projected after every step.
    pub weight_ball: Option<f64>,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        LogisticConfig {
            l2: 1e-2,
            epochs: 800,
            lr: 0.05,
            weight_ball: None,
        }
    }
}

/// A trained binary logistic-regression model `p(y=1|x) = σ(w·x + b)`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
    config: LogisticConfig,
}

impl LogisticRegression {
    /// Fits on feature matrix `x` (rows = samples) and labels `y ∈ {0,1}`.
    pub fn fit(x: &Mat, y: &[f64], config: LogisticConfig) -> Self {
        assert_eq!(x.rows(), y.len(), "row/label count mismatch");
        assert!(
            y.iter().all(|&v| v == 0.0 || v == 1.0),
            "labels must be 0/1"
        );
        let d = x.rows();
        let f = x.cols();
        let mut params = vec![0.0; f + 1]; // weights ++ bias
        let mut opt = Adam::new(f + 1, config.lr);
        let inv_d = 1.0 / d as f64;

        for _ in 0..config.epochs {
            // Full-batch gradient of mean BCE + (λ/2)‖w‖².
            let mut grad = vec![0.0; f + 1];
            for i in 0..d {
                let row = x.row(i);
                let z: f64 = row
                    .iter()
                    .zip(params.iter())
                    .map(|(a, b)| a * b)
                    .sum::<f64>()
                    + params[f];
                let err = (sigmoid(z) - y[i]) * inv_d;
                for (g, &xi) in grad.iter_mut().zip(row.iter()) {
                    *g += err * xi;
                }
                grad[f] += err;
            }
            for j in 0..f {
                grad[j] += config.l2 * params[j];
            }
            opt.step(&mut params, &grad);
            if let Some(r) = config.weight_ball {
                project_l2_ball(&mut params[..f], r);
            }
        }

        let bias = params[f];
        params.truncate(f);
        LogisticRegression {
            weights: params,
            bias,
            config,
        }
    }

    /// The learned weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &LogisticConfig {
        &self.config
    }

    /// Decision-function value `w·x + b` for one feature row — the
    /// row-wise entry point serving-style callers use; bit-for-bit
    /// identical to the corresponding [`Self::decision_function`] entry.
    pub fn decision_one(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.weights.len(), "feature-count mismatch");
        row.iter()
            .zip(self.weights.iter())
            .map(|(a, b)| a * b)
            .sum::<f64>()
            + self.bias
    }

    /// Probability `p(y=1|x)` for one feature row.
    pub fn predict_proba_one(&self, row: &[f64]) -> f64 {
        sigmoid(self.decision_one(row))
    }

    /// Decision-function values `w·x + b` per row.
    pub fn decision_function(&self, x: &Mat) -> Vec<f64> {
        assert_eq!(x.cols(), self.weights.len(), "feature-count mismatch");
        (0..x.rows()).map(|i| self.decision_one(x.row(i))).collect()
    }

    /// Probabilities `p(y=1|x)` per row.
    pub fn predict_proba(&self, x: &Mat) -> Vec<f64> {
        self.decision_function(x).into_iter().map(sigmoid).collect()
    }

    /// Hard 0/1 predictions.
    pub fn predict(&self, x: &Mat) -> Vec<f64> {
        self.predict_proba(x)
            .into_iter()
            .map(|p| if p >= 0.5 { 1.0 } else { 0.0 })
            .collect()
    }

    /// Mean BCE on a dataset.
    pub fn loss(&self, x: &Mat, y: &[f64]) -> f64 {
        bce_loss(y, &self.predict_proba(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Two Gaussian-ish blobs separated along x₀.
    fn blobs(d: usize, seed: u64) -> (Mat, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(d);
        let mut y = Vec::with_capacity(d);
        for i in 0..d {
            let label = (i % 2) as f64;
            let centre = if label == 1.0 { 1.5 } else { -1.5 };
            rows.push(vec![
                centre + rng.random::<f64>() - 0.5,
                rng.random::<f64>() - 0.5,
            ]);
            y.push(label);
        }
        (Mat::from_rows(&rows), y)
    }

    #[test]
    fn separable_blobs_reach_high_accuracy() {
        let (x, y) = blobs(120, 1);
        let model = LogisticRegression::fit(&x, &y, LogisticConfig::default());
        let acc = accuracy(&y, &model.predict_proba(&x));
        assert!(acc > 0.95, "train accuracy {acc}");
        assert!(model.loss(&x, &y) < 0.3);
        // Training provenance travels with the model.
        assert_eq!(model.config().epochs, LogisticConfig::default().epochs);
    }

    #[test]
    fn weight_points_along_separating_direction() {
        let (x, y) = blobs(200, 2);
        let model = LogisticRegression::fit(&x, &y, LogisticConfig::default());
        assert!(
            model.weights()[0].abs() > 3.0 * model.weights()[1].abs(),
            "weights {:?}",
            model.weights()
        );
        assert!(model.weights()[0] > 0.0);
    }

    #[test]
    fn l2_shrinks_weights() {
        let (x, y) = blobs(100, 3);
        let loose = LogisticRegression::fit(
            &x,
            &y,
            LogisticConfig {
                l2: 1e-6,
                ..Default::default()
            },
        );
        let tight = LogisticRegression::fit(
            &x,
            &y,
            LogisticConfig {
                l2: 1.0,
                ..Default::default()
            },
        );
        let norm = |w: &[f64]| w.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(norm(tight.weights()) < norm(loose.weights()));
    }

    #[test]
    fn ball_constraint_enforced() {
        let (x, y) = blobs(100, 4);
        let model = LogisticRegression::fit(
            &x,
            &y,
            LogisticConfig {
                weight_ball: Some(1.0),
                ..Default::default()
            },
        );
        let norm: f64 = model.weights().iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(norm <= 1.0 + 1e-9, "‖w‖ = {norm}");
        // Still learns the separable problem reasonably.
        let acc = accuracy(&y, &model.predict_proba(&x));
        assert!(acc > 0.9, "constrained accuracy {acc}");
    }

    #[test]
    fn predictions_are_binary() {
        let (x, y) = blobs(40, 5);
        let model = LogisticRegression::fit(&x, &y, LogisticConfig::default());
        for p in model.predict(&x) {
            assert!(p == 0.0 || p == 1.0);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_non_binary_labels() {
        let x = Mat::zeros(2, 1);
        let _ = LogisticRegression::fit(&x, &[0.0, 0.7], LogisticConfig::default());
    }
}

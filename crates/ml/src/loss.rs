//! Loss functions (paper §II.A).

/// Clamp for probabilities inside logs, matching scikit-learn's practice.
const P_EPS: f64 = 1e-12;

/// Root-mean-square error `L_RMSE = ‖y − ŷ‖₂ / √d`.
pub fn rmse_loss(y: &[f64], y_hat: &[f64]) -> f64 {
    assert_eq!(y.len(), y_hat.len());
    assert!(!y.is_empty());
    let ss: f64 = y
        .iter()
        .zip(y_hat.iter())
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    (ss / y.len() as f64).sqrt()
}

/// Mean absolute error `L_MAE = ‖y − ŷ‖₁ / d`.
pub fn mae_loss(y: &[f64], y_hat: &[f64]) -> f64 {
    assert_eq!(y.len(), y_hat.len());
    assert!(!y.is_empty());
    let s: f64 = y.iter().zip(y_hat.iter()).map(|(a, b)| (a - b).abs()).sum();
    s / y.len() as f64
}

/// Binary cross-entropy over labels `y ∈ {0,1}` and probabilities
/// `ŷ ∈ [0,1]`.
pub fn bce_loss(y: &[f64], p_hat: &[f64]) -> f64 {
    assert_eq!(y.len(), p_hat.len());
    assert!(!y.is_empty());
    let s: f64 = y
        .iter()
        .zip(p_hat.iter())
        .map(|(&yi, &pi)| {
            debug_assert!((0.0..=1.0).contains(&yi), "labels must be 0/1");
            let p = pi.clamp(P_EPS, 1.0 - P_EPS);
            -yi * p.ln() - (1.0 - yi) * (1.0 - p).ln()
        })
        .sum();
    s / y.len() as f64
}

/// The logistic sigmoid, numerically stable in both tails.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Row-wise softmax of logits.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&z| (z - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Multiclass cross-entropy over integer labels and per-row probability
/// slices (`probs[i]` sums to 1).
pub fn softmax_ce_loss(labels: &[usize], probs: &[Vec<f64>]) -> f64 {
    assert_eq!(labels.len(), probs.len());
    assert!(!labels.is_empty());
    let s: f64 = labels
        .iter()
        .zip(probs.iter())
        .map(|(&l, p)| -(p[l].clamp(P_EPS, 1.0)).ln())
        .sum();
    s / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_of_perfect_fit_is_zero() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(rmse_loss(&y, &y), 0.0);
        assert_eq!(mae_loss(&y, &y), 0.0);
    }

    #[test]
    fn rmse_known_value() {
        // errors (1, -1): RMSE = 1, MAE = 1.
        let y = [1.0, 2.0];
        let yh = [0.0, 3.0];
        assert!((rmse_loss(&y, &yh) - 1.0).abs() < 1e-15);
        assert!((mae_loss(&y, &yh) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn mae_below_rmse() {
        // Paper Eq. (13): MAE ≤ RMSE (Cauchy–Schwarz).
        let y = [0.0, 0.0, 0.0, 0.0];
        let yh = [0.1, 0.9, -0.3, 0.5];
        assert!(mae_loss(&y, &yh) <= rmse_loss(&y, &yh) + 1e-15);
    }

    #[test]
    fn bce_known_values() {
        // Confident correct prediction → near 0; 0.5 → ln 2.
        assert!(bce_loss(&[1.0], &[0.999999]) < 1e-4);
        assert!((bce_loss(&[1.0], &[0.5]) - std::f64::consts::LN_2).abs() < 1e-12);
        // Confident wrong prediction is large but finite (clamped).
        assert!(bce_loss(&[1.0], &[0.0]).is_finite());
    }

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
        assert!(sigmoid(40.0) > 1.0 - 1e-12);
        assert!(sigmoid(-40.0) < 1e-12);
        // Symmetry σ(−x) = 1 − σ(x).
        for x in [-3.0, -0.5, 0.1, 2.7] {
            assert!((sigmoid(-x) - (1.0 - sigmoid(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_normalises_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Stability with huge logits.
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ce_loss_perfect_prediction() {
        let probs = vec![vec![0.0, 1.0, 0.0]];
        assert!(softmax_ce_loss(&[1], &probs) < 1e-10);
    }
}

//! Classification metrics.

/// Binary accuracy: predictions are probabilities thresholded at 0.5,
/// labels are 0/1.
pub fn accuracy(labels: &[f64], probs: &[f64]) -> f64 {
    assert_eq!(labels.len(), probs.len());
    assert!(!labels.is_empty());
    let correct = labels
        .iter()
        .zip(probs.iter())
        .filter(|(&y, &p)| (p >= 0.5) == (y >= 0.5))
        .count();
    correct as f64 / labels.len() as f64
}

/// Multiclass accuracy over integer labels and predicted classes.
pub fn accuracy_multiclass(labels: &[usize], preds: &[usize]) -> f64 {
    assert_eq!(labels.len(), preds.len());
    assert!(!labels.is_empty());
    let correct = labels
        .iter()
        .zip(preds.iter())
        .filter(|(a, b)| a == b)
        .count();
    correct as f64 / labels.len() as f64
}

/// `k×k` confusion matrix: `C[true][pred]` counts.
pub fn confusion_matrix(labels: &[usize], preds: &[usize], k: usize) -> Vec<Vec<usize>> {
    assert_eq!(labels.len(), preds.len());
    let mut c = vec![vec![0usize; k]; k];
    for (&t, &p) in labels.iter().zip(preds.iter()) {
        assert!(t < k && p < k, "label {t}/{p} out of range {k}");
        c[t][p] += 1;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_accuracy() {
        let y = [1.0, 0.0, 1.0, 0.0];
        let p = [0.9, 0.2, 0.4, 0.6]; // last two wrong
        assert!((accuracy(&y, &p) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn multiclass_accuracy() {
        let y = [0, 1, 2, 1];
        let p = [0, 1, 1, 1];
        assert!((accuracy_multiclass(&y, &p) - 0.75).abs() < 1e-15);
    }

    #[test]
    fn confusion_counts() {
        let y = [0, 0, 1, 1, 1];
        let p = [0, 1, 1, 1, 0];
        let c = confusion_matrix(&y, &p, 2);
        assert_eq!(c[0][0], 1);
        assert_eq!(c[0][1], 1);
        assert_eq!(c[1][1], 2);
        assert_eq!(c[1][0], 1);
        // Row sums = class counts.
        assert_eq!(c[0].iter().sum::<usize>(), 2);
        assert_eq!(c[1].iter().sum::<usize>(), 3);
    }
}

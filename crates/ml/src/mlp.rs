//! Two-layer multilayer perceptron — the "Classical MLP" baseline of
//! Tables III–IV. The paper compares against "two-layer feedforward
//! classical neural networks" (§I, §VII.B); structurally, the
//! post-variational network mimics exactly this architecture with a frozen
//! first layer (§V).

use crate::loss::{bce_loss, sigmoid, softmax, softmax_ce_loss};
use crate::optim::Adam;
use linalg::Mat;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// MLP hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct MlpConfig {
    /// Hidden-layer width.
    pub hidden: usize,
    /// Training epochs (full batch).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Initialisation seed.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: 16,
            epochs: 600,
            lr: 0.02,
            seed: 7,
        }
    }
}

/// A two-layer perceptron `x → ReLU(W₁x + b₁) → W₂h + b₂` with a sigmoid
/// (binary) or softmax (multiclass) head.
#[derive(Clone, Debug)]
pub struct Mlp {
    w1: Mat,
    b1: Vec<f64>,
    w2: Mat,
    b2: Vec<f64>,
    num_classes: usize, // 1 = binary head
}

fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Mat {
    let scale = (6.0 / (rows + cols) as f64).sqrt();
    Mat::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|_| (rng.random::<f64>() * 2.0 - 1.0) * scale)
            .collect(),
    )
}

impl Mlp {
    /// Creates an untrained MLP; `num_classes = 1` builds a binary
    /// (sigmoid) head, `k ≥ 2` a softmax head.
    pub fn new(inputs: usize, num_classes: usize, config: &MlpConfig) -> Self {
        assert!(inputs >= 1 && config.hidden >= 1 && num_classes >= 1);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let out = num_classes.max(1);
        Mlp {
            w1: xavier(config.hidden, inputs, &mut rng),
            b1: vec![0.0; config.hidden],
            w2: xavier(out, config.hidden, &mut rng),
            b2: vec![0.0; out],
            num_classes,
        }
    }

    /// Hidden activations for one sample.
    fn hidden(&self, x: &[f64]) -> Vec<f64> {
        (0..self.w1.rows())
            .map(|h| {
                let z: f64 = self
                    .w1
                    .row(h)
                    .iter()
                    .zip(x.iter())
                    .map(|(a, b)| a * b)
                    .sum();
                (z + self.b1[h]).max(0.0) // ReLU
            })
            .collect()
    }

    /// Output logits for one sample.
    fn logits(&self, h: &[f64]) -> Vec<f64> {
        (0..self.w2.rows())
            .map(|o| {
                let z: f64 = self
                    .w2
                    .row(o)
                    .iter()
                    .zip(h.iter())
                    .map(|(a, b)| a * b)
                    .sum();
                z + self.b2[o]
            })
            .collect()
    }

    /// Trains with full-batch Adam; binary targets are `y ∈ {0,1}` encoded
    /// in `labels` (for `num_classes == 1`) or integer class indices.
    pub fn fit(&mut self, x: &Mat, labels: &[usize], config: &MlpConfig) {
        assert_eq!(x.rows(), labels.len());
        let d = x.rows();
        let hdim = self.w1.rows();
        let odim = self.w2.rows();
        let fdim = self.w1.cols();
        let inv_d = 1.0 / d as f64;

        // Flatten all parameters for Adam: w1, b1, w2, b2.
        let nparams = hdim * fdim + hdim + odim * hdim + odim;
        let mut opt = Adam::new(nparams, config.lr);

        for _ in 0..config.epochs {
            let mut g_w1 = Mat::zeros(hdim, fdim);
            let mut g_b1 = vec![0.0; hdim];
            let mut g_w2 = Mat::zeros(odim, hdim);
            let mut g_b2 = vec![0.0; odim];

            for i in 0..d {
                let xi = x.row(i);
                let h = self.hidden(xi);
                let logits = self.logits(&h);
                // δ_out = (p − y) for both heads.
                let delta_out: Vec<f64> = if self.num_classes == 1 {
                    let p = sigmoid(logits[0]);
                    vec![(p - labels[i] as f64) * inv_d]
                } else {
                    let p = softmax(&logits);
                    (0..odim)
                        .map(|c| (p[c] - if labels[i] == c { 1.0 } else { 0.0 }) * inv_d)
                        .collect()
                };
                // Output layer gradients.
                for o in 0..odim {
                    for (gh, &hv) in g_w2.row_mut(o).iter_mut().zip(h.iter()) {
                        *gh += delta_out[o] * hv;
                    }
                    g_b2[o] += delta_out[o];
                }
                // Back-prop through ReLU.
                for hu in 0..hdim {
                    if h[hu] <= 0.0 {
                        continue;
                    }
                    let dh: f64 = (0..odim).map(|o| delta_out[o] * self.w2[(o, hu)]).sum();
                    for (gw, &xv) in g_w1.row_mut(hu).iter_mut().zip(xi.iter()) {
                        *gw += dh * xv;
                    }
                    g_b1[hu] += dh;
                }
            }

            // Flatten, step, unflatten.
            let mut params: Vec<f64> = Vec::with_capacity(nparams);
            params.extend_from_slice(self.w1.data());
            params.extend_from_slice(&self.b1);
            params.extend_from_slice(self.w2.data());
            params.extend_from_slice(&self.b2);
            let mut grads: Vec<f64> = Vec::with_capacity(nparams);
            grads.extend_from_slice(g_w1.data());
            grads.extend_from_slice(&g_b1);
            grads.extend_from_slice(g_w2.data());
            grads.extend_from_slice(&g_b2);
            opt.step(&mut params, &grads);

            let (a, rest) = params.split_at(hdim * fdim);
            let (b, rest) = rest.split_at(hdim);
            let (c, e) = rest.split_at(odim * hdim);
            self.w1 = Mat::from_vec(hdim, fdim, a.to_vec());
            self.b1 = b.to_vec();
            self.w2 = Mat::from_vec(odim, hdim, c.to_vec());
            self.b2 = e.to_vec();
        }
    }

    /// Binary probabilities (`num_classes == 1` heads only).
    pub fn predict_proba_binary(&self, x: &Mat) -> Vec<f64> {
        assert_eq!(self.num_classes, 1, "binary head required");
        (0..x.rows())
            .map(|i| sigmoid(self.logits(&self.hidden(x.row(i)))[0]))
            .collect()
    }

    /// Multiclass probabilities.
    pub fn predict_proba(&self, x: &Mat) -> Vec<Vec<f64>> {
        assert!(self.num_classes >= 2, "multiclass head required");
        (0..x.rows())
            .map(|i| softmax(&self.logits(&self.hidden(x.row(i)))))
            .collect()
    }

    /// Argmax predictions (binary → 0/1 via threshold).
    pub fn predict(&self, x: &Mat) -> Vec<usize> {
        if self.num_classes == 1 {
            self.predict_proba_binary(x)
                .into_iter()
                .map(|p| usize::from(p >= 0.5))
                .collect()
        } else {
            self.predict_proba(x)
                .into_iter()
                .map(|p| {
                    p.iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                        .unwrap()
                        .0
                })
                .collect()
        }
    }

    /// Dataset loss under the appropriate head.
    pub fn loss(&self, x: &Mat, labels: &[usize]) -> f64 {
        if self.num_classes == 1 {
            let y: Vec<f64> = labels.iter().map(|&l| l as f64).collect();
            bce_loss(&y, &self.predict_proba_binary(x))
        } else {
            softmax_ce_loss(labels, &self.predict_proba(x))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy_multiclass;

    /// XOR — not linearly separable, so a working hidden layer is required.
    fn xor_data() -> (Mat, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for rep in 0..25 {
            let jitter = rep as f64 * 1e-3;
            for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
                rows.push(vec![a + jitter, b - jitter]);
                labels.push(usize::from((a > 0.5) != (b > 0.5)));
            }
        }
        (Mat::from_rows(&rows), labels)
    }

    #[test]
    fn mlp_solves_xor() {
        let (x, y) = xor_data();
        let config = MlpConfig {
            hidden: 8,
            epochs: 1500,
            lr: 0.05,
            seed: 3,
        };
        let mut mlp = Mlp::new(2, 1, &config);
        mlp.fit(&x, &y, &config);
        let acc = accuracy_multiclass(&y, &mlp.predict(&x));
        assert!(acc > 0.95, "XOR accuracy {acc}");
    }

    #[test]
    fn multiclass_head_learns_blobs() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let centres = [(2.0, 0.0), (-1.0, 1.7), (-1.0, -1.7)];
        let mut rng = StdRng::seed_from_u64(5);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..120 {
            let c = i % 3;
            rows.push(vec![
                centres[c].0 + rng.random::<f64>() - 0.5,
                centres[c].1 + rng.random::<f64>() - 0.5,
            ]);
            labels.push(c);
        }
        let x = Mat::from_rows(&rows);
        let config = MlpConfig {
            hidden: 12,
            epochs: 800,
            lr: 0.03,
            seed: 1,
        };
        let mut mlp = Mlp::new(2, 3, &config);
        mlp.fit(&x, &labels, &config);
        let acc = accuracy_multiclass(&labels, &mlp.predict(&x));
        assert!(acc > 0.95, "blob accuracy {acc}");
        assert!(mlp.loss(&x, &labels) < 0.3);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = xor_data();
        let config = MlpConfig {
            hidden: 4,
            epochs: 50,
            lr: 0.05,
            seed: 11,
        };
        let mut m1 = Mlp::new(2, 1, &config);
        m1.fit(&x, &y, &config);
        let mut m2 = Mlp::new(2, 1, &config);
        m2.fit(&x, &y, &config);
        assert_eq!(m1.predict_proba_binary(&x), m2.predict_proba_binary(&x));
    }

    #[test]
    fn probabilities_in_range() {
        let (x, y) = xor_data();
        let config = MlpConfig::default();
        let mut mlp = Mlp::new(2, 1, &config);
        mlp.fit(&x, &y, &config);
        for p in mlp.predict_proba_binary(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }
}

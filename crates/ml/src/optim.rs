//! First-order optimizers and the ℓ2-ball projection of Theorem 4.

/// Projects `x` onto the ℓ2 ball of the given `radius` (in place). This is
/// the projection step of the constrained convex program `‖α‖₂ ≤ 1` the
/// paper solves for robustness (§VI, Theorem 4).
pub fn project_l2_ball(x: &mut [f64], radius: f64) {
    assert!(radius > 0.0);
    let norm: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > radius {
        let s = radius / norm;
        for v in x.iter_mut() {
            *v *= s;
        }
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates an optimizer for `dim` parameters with learning rate `lr`
    /// and the standard β = (0.9, 0.999).
    pub fn new(dim: usize, lr: f64) -> Self {
        assert!(lr > 0.0);
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; dim],
            v: vec![0.0; dim],
            t: 0,
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f64 {
        self.lr
    }

    /// Sets the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f64) {
        assert!(lr > 0.0);
        self.lr = lr;
    }

    /// Applies one update `params ← params − lr·m̂/(√v̂ + ε)`.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len());
        assert_eq!(grads.len(), self.m.len());
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grads[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            params[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

/// Projected (sub)gradient descent for convex objectives over an ℓ2 ball:
/// minimises `f` with oracle `grad` starting from `x0`, stepping
/// `lr/√(t+1)` and projecting after every step. Returns the best iterate
/// visited (standard guarantee for projected subgradient methods).
pub fn projected_gradient_descent<F, G>(
    f: F,
    grad: G,
    x0: Vec<f64>,
    radius: f64,
    steps: usize,
    lr: f64,
) -> Vec<f64>
where
    F: Fn(&[f64]) -> f64,
    G: Fn(&[f64]) -> Vec<f64>,
{
    let mut x = x0;
    project_l2_ball(&mut x, radius);
    let mut best = x.clone();
    let mut best_f = f(&x);
    for t in 0..steps {
        let g = grad(&x);
        let step = lr / ((t + 1) as f64).sqrt();
        for (xi, gi) in x.iter_mut().zip(g.iter()) {
            *xi -= step * gi;
        }
        project_l2_ball(&mut x, radius);
        let fx = f(&x);
        if fx < best_f {
            best_f = fx;
            best = x.clone();
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_inside_ball_is_noop() {
        let mut x = vec![0.3, 0.4];
        project_l2_ball(&mut x, 1.0);
        assert_eq!(x, vec![0.3, 0.4]);
    }

    #[test]
    fn projection_outside_ball_rescales() {
        let mut x = vec![3.0, 4.0];
        project_l2_ball(&mut x, 1.0);
        let norm: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-12);
        // Direction preserved.
        assert!((x[0] / x[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn adam_minimises_quadratic() {
        // f(x) = (x₀−3)² + (x₁+1)².
        let mut x = vec![0.0, 0.0];
        let mut opt = Adam::new(2, 0.1);
        for _ in 0..2000 {
            let g = vec![2.0 * (x[0] - 3.0), 2.0 * (x[1] + 1.0)];
            opt.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-3, "x0={}", x[0]);
        assert!((x[1] + 1.0).abs() < 1e-3, "x1={}", x[1]);
    }

    #[test]
    fn projected_gd_respects_constraint() {
        // Unconstrained minimum at (3, 0), ‖·‖ = 3 > 1 → solution on the
        // boundary at (1, 0).
        let f = |x: &[f64]| (x[0] - 3.0).powi(2) + x[1].powi(2);
        let grad = |x: &[f64]| vec![2.0 * (x[0] - 3.0), 2.0 * x[1]];
        let x = projected_gradient_descent(f, grad, vec![0.0, 0.0], 1.0, 3000, 0.5);
        let norm: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(norm <= 1.0 + 1e-9);
        assert!((x[0] - 1.0).abs() < 1e-2, "x={x:?}");
        assert!(x[1].abs() < 1e-2);
    }

    #[test]
    fn projected_gd_interior_optimum() {
        // Minimum at (0.1, −0.2) is inside the unit ball — projection must
        // not distort it.
        let f = |x: &[f64]| (x[0] - 0.1).powi(2) + (x[1] + 0.2).powi(2);
        let grad = |x: &[f64]| vec![2.0 * (x[0] - 0.1), 2.0 * (x[1] + 0.2)];
        let x = projected_gradient_descent(f, grad, vec![0.9, 0.0], 1.0, 3000, 0.5);
        assert!((x[0] - 0.1).abs() < 1e-2);
        assert!((x[1] + 0.2).abs() < 1e-2);
    }
}

//! Multinomial (softmax) logistic regression — the multiclass extension of
//! §VII.B: "being simply adding an additional dimension to the classical
//! linear map".

use crate::loss::{softmax, softmax_ce_loss};
use crate::optim::{project_l2_ball, Adam};
use linalg::Mat;
use serde::{Deserialize, Serialize};

/// Training configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SoftmaxConfig {
    /// L2 penalty on weights.
    pub l2: f64,
    /// Full-batch epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Optional per-class ℓ2 ball constraint on weight rows.
    pub weight_ball: Option<f64>,
}

impl Default for SoftmaxConfig {
    fn default() -> Self {
        SoftmaxConfig {
            l2: 1e-2,
            epochs: 800,
            lr: 0.05,
            weight_ball: None,
        }
    }
}

/// A trained softmax classifier: `p(y=k|x) ∝ exp(w_k·x + b_k)`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SoftmaxRegression {
    /// `k × f` weights.
    weights: Vec<Vec<f64>>,
    /// `k` biases.
    biases: Vec<f64>,
    num_classes: usize,
}

impl SoftmaxRegression {
    /// Fits on features `x` (rows = samples) and integer labels `< k`.
    pub fn fit(x: &Mat, labels: &[usize], k: usize, config: SoftmaxConfig) -> Self {
        assert_eq!(x.rows(), labels.len());
        assert!(k >= 2, "need at least two classes");
        assert!(labels.iter().all(|&l| l < k), "label out of range");
        let d = x.rows();
        let f = x.cols();
        // Flat parameter vector: k rows of (f weights) then k biases.
        let mut params = vec![0.0; k * f + k];
        let mut opt = Adam::new(params.len(), config.lr);
        let inv_d = 1.0 / d as f64;

        for _ in 0..config.epochs {
            let mut grad = vec![0.0; k * f + k];
            for i in 0..d {
                let row = x.row(i);
                let logits: Vec<f64> = (0..k)
                    .map(|c| {
                        row.iter()
                            .zip(&params[c * f..(c + 1) * f])
                            .map(|(a, b)| a * b)
                            .sum::<f64>()
                            + params[k * f + c]
                    })
                    .collect();
                let probs = softmax(&logits);
                for c in 0..k {
                    let err = (probs[c] - if labels[i] == c { 1.0 } else { 0.0 }) * inv_d;
                    for (g, &xi) in grad[c * f..(c + 1) * f].iter_mut().zip(row.iter()) {
                        *g += err * xi;
                    }
                    grad[k * f + c] += err;
                }
            }
            for c in 0..k {
                for j in 0..f {
                    grad[c * f + j] += config.l2 * params[c * f + j];
                }
            }
            opt.step(&mut params, &grad);
            if let Some(r) = config.weight_ball {
                for c in 0..k {
                    project_l2_ball(&mut params[c * f..(c + 1) * f], r);
                }
            }
        }

        let weights = (0..k)
            .map(|c| params[c * f..(c + 1) * f].to_vec())
            .collect();
        let biases = params[k * f..].to_vec();
        SoftmaxRegression {
            weights,
            biases,
            num_classes: k,
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Per-row class probabilities.
    pub fn predict_proba(&self, x: &Mat) -> Vec<Vec<f64>> {
        (0..x.rows())
            .map(|i| {
                let row = x.row(i);
                let logits: Vec<f64> = self
                    .weights
                    .iter()
                    .zip(self.biases.iter())
                    .map(|(w, b)| row.iter().zip(w.iter()).map(|(a, c)| a * c).sum::<f64>() + b)
                    .collect();
                softmax(&logits)
            })
            .collect()
    }

    /// Argmax class predictions.
    pub fn predict(&self, x: &Mat) -> Vec<usize> {
        self.predict_proba(x)
            .into_iter()
            .map(|p| {
                p.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap()
            })
            .collect()
    }

    /// Mean cross-entropy on a dataset.
    pub fn loss(&self, x: &Mat, labels: &[usize]) -> f64 {
        softmax_ce_loss(labels, &self.predict_proba(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy_multiclass;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Three blobs on a triangle.
    fn blobs3(d: usize, seed: u64) -> (Mat, Vec<usize>) {
        let centres = [(2.0, 0.0), (-1.0, 1.7), (-1.0, -1.7)];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..d {
            let c = i % 3;
            rows.push(vec![
                centres[c].0 + rng.random::<f64>() - 0.5,
                centres[c].1 + rng.random::<f64>() - 0.5,
            ]);
            labels.push(c);
        }
        (Mat::from_rows(&rows), labels)
    }

    #[test]
    fn three_blobs_high_accuracy() {
        let (x, y) = blobs3(150, 1);
        let model = SoftmaxRegression::fit(&x, &y, 3, SoftmaxConfig::default());
        let acc = accuracy_multiclass(&y, &model.predict(&x));
        assert!(acc > 0.95, "accuracy {acc}");
        assert!(model.loss(&x, &y) < 0.3);
    }

    #[test]
    fn probabilities_normalised() {
        let (x, y) = blobs3(60, 2);
        let model = SoftmaxRegression::fit(&x, &y, 3, SoftmaxConfig::default());
        for p in model.predict_proba(&x) {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-10);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn binary_case_matches_logistic_shape() {
        // k = 2 softmax should solve binary problems too.
        let (x, y3) = blobs3(100, 3);
        let y: Vec<usize> = y3.iter().map(|&c| usize::from(c == 0)).collect();
        let model = SoftmaxRegression::fit(&x, &y, 2, SoftmaxConfig::default());
        let acc = accuracy_multiclass(&y, &model.predict(&x));
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn ball_constraint_enforced_per_class() {
        let (x, y) = blobs3(90, 4);
        let model = SoftmaxRegression::fit(
            &x,
            &y,
            3,
            SoftmaxConfig {
                weight_ball: Some(0.5),
                ..Default::default()
            },
        );
        for w in &model.weights {
            let norm: f64 = w.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!(norm <= 0.5 + 1e-9);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_labels() {
        let x = Mat::zeros(2, 2);
        let _ = SoftmaxRegression::fit(&x, &[0, 5], 3, SoftmaxConfig::default());
    }
}

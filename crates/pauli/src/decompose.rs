//! Appendix-A decomposition: any Hermitian matrix as a real combination of
//! Pauli strings.
//!
//! The paper's Appendix A argues that `U†(θ) O U(θ) ∈ span({I,X,Y,Z}^⊗n)`,
//! so a post-variational model needs at most `4^n` terms to represent any
//! variational observable exactly. This module implements the projection
//!
//! ```text
//! c_P = tr(P · H) / 2^n
//! ```
//!
//! using the sparse basis action of `P` (each column of a Pauli matrix has a
//! single non-zero), i.e. `O(8^n)` total work for the full basis instead of
//! `O(16^n)` with naive dense products — fine for the test sizes used here.

use crate::dense::{sum_to_dense, CMat};
use crate::enumerate::local_paulis;
use crate::sum::PauliSum;

/// Projects Hermitian `h` onto every Pauli string of weight ≤ `l`,
/// returning the (real) coefficients as a [`PauliSum`].
///
/// With `l = n` the reconstruction is exact (Appendix A); with `l < n` this
/// is the paper's *low-degree approximation* (§IV.B, citing Huang et al.
/// \[62\]) — the truncation used by the observable-construction strategy.
///
/// # Panics
/// Panics if `h` is not square with power-of-two dimension, or not
/// Hermitian to `1e-10`.
pub fn decompose_hermitian(h: &CMat, l: usize) -> PauliSum {
    let (rows, cols) = h.shape();
    assert_eq!(rows, cols, "matrix must be square");
    assert!(rows.is_power_of_two(), "dimension must be 2^n");
    assert!(h.is_hermitian(1e-10), "matrix must be Hermitian");
    let n = rows.trailing_zeros() as usize;
    let dim = rows;

    let mut sum = PauliSum::zero(n);
    for p in local_paulis(n, l) {
        // tr(P·H) = Σ_b (P·H)[b,b] = Σ_b Σ_k P[b,k] H[k,b]; P's row b has a
        // single non-zero: P[b⊕x, b] = λ(b), i.e. P[b, k] ≠ 0 iff k = b⊕x
        // with value λ(b⊕x)... Use columns instead: column b of P has entry
        // λ(b) at row b⊕x, so tr(P·H) = Σ_b λ(b) · H[b, b⊕x].
        let mut tr_re = 0.0;
        for b in 0..dim as u64 {
            let (phase, row) = p.apply_to_basis(b);
            let val = phase.to_c64() * h[(b as usize, row as usize)];
            tr_re += val.re; // imaginary parts cancel for Hermitian h
        }
        let coeff = tr_re / dim as f64;
        if coeff.abs() > 1e-12 {
            sum.push(coeff, p);
        }
    }
    sum.simplified(1e-12)
}

/// Rebuilds the dense matrix from a Pauli-term decomposition (test helper
/// and Appendix-A demonstrator).
pub fn reconstruct_from_terms(s: &PauliSum) -> CMat {
    sum_to_dense(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::pauli_to_dense;
    use crate::string::PauliString;
    use num_complex::Complex64;

    fn random_hermitian(n: usize, seed: u64) -> CMat {
        // Tiny deterministic LCG so this module stays dependency-free.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let dim = 1 << n;
        let mut a = CMat::zeros(dim, dim);
        for i in 0..dim {
            for j in 0..dim {
                a[(i, j)] = Complex64::new(next(), next());
            }
        }
        // H = (A + A†)/2.
        a.add(&a.dagger()).scale(Complex64::new(0.5, 0.0))
    }

    #[test]
    fn exact_reconstruction_full_locality() {
        for n in 1..=3 {
            let h = random_hermitian(n, 42 + n as u64);
            let terms = decompose_hermitian(&h, n);
            let back = reconstruct_from_terms(&terms);
            assert!(
                h.max_abs_diff(&back) < 1e-10,
                "n={n}: reconstruction error {}",
                h.max_abs_diff(&back)
            );
        }
    }

    #[test]
    fn coefficients_of_pure_pauli() {
        let p = PauliString::parse("XZ").unwrap();
        let h = pauli_to_dense(&p);
        let terms = decompose_hermitian(&h, 2);
        assert_eq!(terms.num_terms(), 1);
        assert_eq!(terms.terms()[0].1, p);
        assert!((terms.terms()[0].0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn truncation_keeps_only_local_terms() {
        // H = ZZ + X⊗I has a 2-local and a 1-local part; truncating at L=1
        // must keep only the X⊗I term.
        let zz = pauli_to_dense(&PauliString::parse("ZZ").unwrap());
        let xi = pauli_to_dense(&PauliString::parse("XI").unwrap());
        let h = zz.add(&xi);
        let t1 = decompose_hermitian(&h, 1);
        assert_eq!(t1.num_terms(), 1);
        assert_eq!(t1.terms()[0].1, PauliString::parse("XI").unwrap());
        let t2 = decompose_hermitian(&h, 2);
        assert_eq!(t2.num_terms(), 2);
    }

    #[test]
    fn term_count_bounded_by_4_pow_n() {
        let h = random_hermitian(2, 7);
        let terms = decompose_hermitian(&h, 2);
        assert!(terms.num_terms() <= 16);
        // A generic random Hermitian hits all 16 basis elements.
        assert_eq!(terms.num_terms(), 16);
    }

    #[test]
    #[should_panic]
    fn rejects_non_hermitian() {
        let mut m = CMat::zeros(2, 2);
        m[(0, 1)] = Complex64::new(1.0, 0.0);
        let _ = decompose_hermitian(&m, 1);
    }
}

//! Dense complex matrices for small-`n` cross-validation.
//!
//! Production code paths never materialise `2^n × 2^n` matrices — the
//! simulator works on state vectors, and Pauli actions use the bitmask
//! kernels in [`crate::string`]. This module exists so that tests and the
//! Appendix-A decomposition can cross-check the fast paths against the
//! textbook definitions.

use crate::string::PauliString;
use crate::sum::PauliSum;
use num_complex::Complex64;

/// A dense, row-major complex matrix (used for ≤ ~10 qubits in tests).
#[derive(Clone, Debug, PartialEq)]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CMat {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMat {
            rows,
            cols,
            data: vec![Complex64::new(0.0, 0.0); rows * cols],
        }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::new(1.0, 0.0);
        }
        m
    }

    /// Dimensions `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Raw data slice (row-major).
    pub fn data(&self) -> &[Complex64] {
        &self.data
    }

    /// Matrix product.
    pub fn matmul(&self, rhs: &CMat) -> CMat {
        assert_eq!(self.cols, rhs.rows, "shape mismatch");
        let mut out = CMat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a.norm_sqr() == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Conjugate transpose.
    pub fn dagger(&self) -> CMat {
        let mut out = CMat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Kronecker product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &CMat) -> CMat {
        let mut out = CMat::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                for k in 0..rhs.rows {
                    for l in 0..rhs.cols {
                        out[(i * rhs.rows + k, j * rhs.cols + l)] = a * rhs[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Sum of two matrices.
    pub fn add(&self, rhs: &CMat) -> CMat {
        assert_eq!(self.shape(), rhs.shape());
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(rhs.data.iter()) {
            *o += r;
        }
        out
    }

    /// Scales all entries.
    pub fn scale(&self, s: Complex64) -> CMat {
        let mut out = self.clone();
        for o in out.data.iter_mut() {
            *o *= s;
        }
        out
    }

    /// Trace (square matrices).
    pub fn trace(&self) -> Complex64 {
        assert_eq!(self.rows, self.cols);
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Matrix-vector product.
    pub fn matvec(&self, v: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(self.cols, v.len());
        (0..self.rows)
            .map(|i| {
                (0..self.cols)
                    .map(|j| self[(i, j)] * v[j])
                    .sum::<Complex64>()
            })
            .collect()
    }

    /// Max entry-wise distance to another matrix.
    pub fn max_abs_diff(&self, rhs: &CMat) -> f64 {
        assert_eq!(self.shape(), rhs.shape());
        self.data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| (a - b).norm())
            .fold(0.0, f64::max)
    }

    /// Whether `‖self − self†‖_max < tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.rows == self.cols && self.max_abs_diff(&self.dagger()) < tol
    }
}

impl std::ops::Index<(usize, usize)> for CMat {
    type Output = Complex64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex64 {
        &mut self.data[i * self.cols + j]
    }
}

/// The dense `2^n × 2^n` matrix of a Pauli string.
pub fn pauli_to_dense(p: &PauliString) -> CMat {
    let n = p.num_qubits();
    assert!(n <= 12, "dense conversion limited to small n");
    // Build by basis action: column b has a single entry λ(b) at row b⊕x.
    let dim = 1usize << n;
    let mut m = CMat::zeros(dim, dim);
    for b in 0..dim as u64 {
        let (phase, b2) = p.apply_to_basis(b);
        m[(b2 as usize, b as usize)] = phase.to_c64();
    }
    m
}

/// The dense matrix of a Pauli sum.
pub fn sum_to_dense(s: &PauliSum) -> CMat {
    let n = s.num_qubits();
    let dim = 1usize << n;
    let mut m = CMat::zeros(dim, dim);
    for &(c, p) in s.terms() {
        m = m.add(&pauli_to_dense(&p).scale(Complex64::new(c, 0.0)));
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense Pauli by explicit Kronecker products — the textbook definition.
    fn pauli_dense_kron(p: &PauliString) -> CMat {
        let n = p.num_qubits();
        let mut m = CMat::eye(1);
        // Highest qubit is the leftmost factor.
        for k in (0..n).rev() {
            let letter = p.get(k);
            let lm = letter.matrix();
            let mut small = CMat::zeros(2, 2);
            for i in 0..2 {
                for j in 0..2 {
                    small[(i, j)] = lm[i][j];
                }
            }
            m = m.kron(&small);
        }
        m
    }

    #[test]
    fn basis_action_matches_kron_definition() {
        for s in ["X", "Y", "Z", "XY", "ZZ", "YIX", "XYZ", "IZYX"] {
            let p = PauliString::parse(s).unwrap();
            let fast = pauli_to_dense(&p);
            let slow = pauli_dense_kron(&p);
            assert!(fast.max_abs_diff(&slow) < 1e-14, "{s}");
        }
    }

    #[test]
    fn product_phases_match_dense() {
        let a = PauliString::parse("XYZ").unwrap();
        let b = PauliString::parse("ZZY").unwrap();
        let (phase, c) = a.mul(&b);
        let lhs = pauli_to_dense(&a).matmul(&pauli_to_dense(&b));
        let rhs = pauli_to_dense(&c).scale(phase.to_c64());
        assert!(lhs.max_abs_diff(&rhs) < 1e-14);
    }

    #[test]
    fn sums_are_hermitian() {
        let s = PauliSum::from_terms(vec![
            (0.5, PauliString::parse("XY").unwrap()),
            (-1.5, PauliString::parse("ZI").unwrap()),
            (2.0, PauliString::parse("YY").unwrap()),
        ]);
        assert!(sum_to_dense(&s).is_hermitian(1e-14));
    }

    #[test]
    fn trace_of_nonidentity_pauli_is_zero() {
        for s in ["X", "ZZ", "XYZ"] {
            let p = PauliString::parse(s).unwrap();
            assert!(pauli_to_dense(&p).trace().norm() < 1e-14, "{s}");
        }
        let id = PauliString::identity(3);
        assert!((pauli_to_dense(&id).trace() - Complex64::new(8.0, 0.0)).norm() < 1e-14);
    }

    #[test]
    fn kron_shapes() {
        let a = CMat::eye(2);
        let b = CMat::eye(3);
        assert_eq!(a.kron(&b).shape(), (6, 6));
    }

    #[test]
    fn matvec_identity() {
        let m = CMat::eye(4);
        let v: Vec<Complex64> = (0..4).map(|i| Complex64::new(i as f64, -1.0)).collect();
        let w = m.matvec(&v);
        for (a, b) in v.iter().zip(w.iter()) {
            assert!((a - b).norm() < 1e-15);
        }
    }
}

//! Enumeration of all Pauli strings with locality ≤ L.
//!
//! The observable-construction strategy (§IV.B, Fig. 4) measures every Pauli
//! string acting on at most `L` qubits. Eq. (18) of the paper counts them:
//!
//! ```text
//! q = Σ_{ℓ=0}^{L} C(n, ℓ) · 3^ℓ   ∈ O(3^L n^L)
//! ```
//!
//! [`local_paulis`] materialises the list in a deterministic order (weight
//! ascending, then support ascending, then letter assignment in X<Y<Z
//! order); [`LocalPauliIter`] streams the same sequence without allocating.

use crate::single::Pauli;
use crate::string::PauliString;

/// Binomial coefficient C(n, k) in u128 to postpone overflow.
pub fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num: u128 = 1;
    for i in 0..k {
        num = num * (n - i) as u128 / (i + 1) as u128;
    }
    num
}

/// The exact count of Pauli strings on `n` qubits with weight ≤ `l`
/// (Eq. (18): Σ_{ℓ≤L} C(n,ℓ)·3^ℓ, including the identity at ℓ=0).
pub fn local_pauli_count(n: usize, l: usize) -> u128 {
    (0..=l.min(n))
        .map(|k| binomial(n, k) * 3u128.pow(k as u32))
        .sum()
}

/// All Pauli strings on `n` qubits with weight ≤ `l`, deterministically
/// ordered. The identity is always first.
pub fn local_paulis(n: usize, l: usize) -> Vec<PauliString> {
    LocalPauliIter::new(n, l).collect()
}

/// Streaming enumeration of ≤ `l`-local Pauli strings on `n` qubits.
pub struct LocalPauliIter {
    n: usize,
    max_weight: usize,
    weight: usize,
    /// Current support: `support[i]` is a qubit index, strictly increasing.
    support: Vec<usize>,
    /// Current letter assignment: `letters[i] ∈ {0,1,2}` ↦ `{X,Y,Z}` on
    /// `support[i]`.
    letters: Vec<usize>,
    done: bool,
    emitted_identity: bool,
}

impl LocalPauliIter {
    /// Creates the iterator; `l` is clamped to `n`.
    pub fn new(n: usize, l: usize) -> Self {
        assert!((1..=crate::MAX_QUBITS).contains(&n));
        LocalPauliIter {
            n,
            max_weight: l.min(n),
            weight: 1,
            support: Vec::new(),
            letters: Vec::new(),
            done: false,
            emitted_identity: false,
        }
    }

    fn current(&self) -> PauliString {
        let mut s = PauliString::identity(self.n);
        for (i, &q) in self.support.iter().enumerate() {
            s.set(q, Pauli::NONTRIVIAL[self.letters[i]]);
        }
        s
    }

    /// Advances `letters` as a base-3 counter; on overflow advances the
    /// support combination; on exhaustion bumps the weight. Returns `false`
    /// when everything of weight ≤ max has been produced.
    fn advance(&mut self) -> bool {
        // Next letter assignment (base-3 odometer).
        for i in (0..self.letters.len()).rev() {
            if self.letters[i] < 2 {
                self.letters[i] += 1;
                for l in self.letters.iter_mut().skip(i + 1) {
                    *l = 0;
                }
                return true;
            }
        }
        // Next support combination of the same weight (lexicographic).
        let w = self.weight;
        let n = self.n;
        let mut i = w;
        loop {
            if i == 0 {
                break;
            }
            i -= 1;
            if self.support[i] < n - (w - i) {
                self.support[i] += 1;
                for j in i + 1..w {
                    self.support[j] = self.support[j - 1] + 1;
                }
                self.letters.iter_mut().for_each(|l| *l = 0);
                return true;
            }
        }
        // Next weight.
        if self.weight < self.max_weight {
            self.weight += 1;
            self.support = (0..self.weight).collect();
            self.letters = vec![0; self.weight];
            true
        } else {
            false
        }
    }
}

impl Iterator for LocalPauliIter {
    type Item = PauliString;

    fn next(&mut self) -> Option<PauliString> {
        if self.done {
            return None;
        }
        if !self.emitted_identity {
            self.emitted_identity = true;
            if self.max_weight == 0 {
                self.done = true;
            } else {
                // Initialise the first weight-1 configuration for the next call.
                self.support = vec![0];
                self.letters = vec![0];
            }
            return Some(PauliString::identity(self.n));
        }
        let out = self.current();
        if !self.advance() {
            self.done = true;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn counts_match_formula() {
        for n in 1..=6 {
            for l in 0..=n {
                let want = local_pauli_count(n, l);
                let got = local_paulis(n, l).len() as u128;
                assert_eq!(got, want, "n={n} l={l}");
            }
        }
    }

    #[test]
    fn paper_counts_for_four_qubits() {
        // n = 4 (the experiments): 1-local → 13, 2-local → 67, 3-local → 175.
        assert_eq!(local_pauli_count(4, 1), 13);
        assert_eq!(local_pauli_count(4, 2), 67);
        assert_eq!(local_pauli_count(4, 3), 175);
        assert_eq!(local_pauli_count(4, 4), 256); // full 4^n basis
    }

    #[test]
    fn no_duplicates_and_weight_bounded() {
        let list = local_paulis(5, 3);
        let set: HashSet<String> = list.iter().map(|p| p.to_string()).collect();
        assert_eq!(set.len(), list.len(), "duplicates found");
        assert!(list.iter().all(|p| p.weight() <= 3));
    }

    #[test]
    fn identity_first_and_order_by_weight() {
        let list = local_paulis(3, 3);
        assert!(list[0].is_identity());
        let weights: Vec<usize> = list.iter().map(|p| p.weight()).collect();
        let mut sorted = weights.clone();
        sorted.sort_unstable();
        assert_eq!(weights, sorted, "not sorted by weight");
    }

    #[test]
    fn l_zero_is_identity_only() {
        let list = local_paulis(4, 0);
        assert_eq!(list.len(), 1);
        assert!(list[0].is_identity());
    }

    #[test]
    fn full_enumeration_is_4_pow_n() {
        let list = local_paulis(3, 3);
        assert_eq!(list.len(), 64);
    }

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(10, 0), 1);
        assert_eq!(binomial(10, 10), 1);
        assert_eq!(binomial(10, 3), 120);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(64, 32), 1832624140942590534);
    }

    #[test]
    fn iterator_matches_vec() {
        let it: Vec<_> = LocalPauliIter::new(4, 2).collect();
        let v = local_paulis(4, 2);
        assert_eq!(it, v);
    }
}

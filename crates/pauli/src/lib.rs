//! # pauli — Pauli-string algebra
//!
//! Substrate crate for the post-variational QNN library. It provides the
//! algebra of *n*-qubit Pauli strings (tensor products of `I`, `X`, `Y`, `Z`)
//! that the paper's *observable construction* strategy (§IV.B) is built on:
//!
//! * [`Pauli`] — the single-qubit letters and their multiplication table,
//! * [`PauliString`] — an `n`-qubit string stored as a pair of bitmasks with
//!   exact phase tracking for products and basis-state action,
//! * [`PauliSum`] — a real-weighted sum of strings (a Hermitian observable),
//! * [`enumerate`] — enumeration of all strings of locality ≤ L
//!   (Eq. (18): Σ_{ℓ≤L} C(n,ℓ)·3^ℓ strings),
//! * [`dense`] / [`decompose`] — conversion to dense matrices and the
//!   Appendix-A decomposition of an arbitrary Hermitian into Pauli terms.
//!
//! Strings are limited to **64 qubits** (bitmask representation); the
//! experiments in the paper use 4.

pub mod decompose;
pub mod dense;
pub mod enumerate;
pub mod phase;
pub mod single;
pub mod string;
pub mod sum;

pub use decompose::{decompose_hermitian, reconstruct_from_terms};
pub use dense::{pauli_to_dense, sum_to_dense, CMat};
pub use enumerate::{local_pauli_count, local_paulis, LocalPauliIter};
pub use phase::PhaseI;
pub use single::Pauli;
pub use string::{BasisKernel, PauliString};
pub use sum::PauliSum;

/// Maximum number of qubits supported by the bitmask representation.
pub const MAX_QUBITS: usize = 64;

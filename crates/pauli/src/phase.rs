//! Exact phases from the group {+1, +i, −1, −i}.
//!
//! Pauli products only ever produce phases that are integer powers of the
//! imaginary unit, so we track them exactly as an exponent modulo 4 instead
//! of as floating-point complex numbers.

use num_complex::Complex64;
use std::fmt;
use std::ops::{Mul, MulAssign, Neg};

/// A phase `i^k` with `k ∈ {0,1,2,3}`: exactly one of `+1, +i, −1, −i`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct PhaseI(u8);

impl PhaseI {
    /// The identity phase `+1`.
    pub const ONE: PhaseI = PhaseI(0);
    /// The phase `+i`.
    pub const I: PhaseI = PhaseI(1);
    /// The phase `−1`.
    pub const MINUS_ONE: PhaseI = PhaseI(2);
    /// The phase `−i`.
    pub const MINUS_I: PhaseI = PhaseI(3);

    /// Constructs `i^k` (exponent taken modulo 4).
    #[inline]
    pub fn from_power(k: u32) -> Self {
        PhaseI((k % 4) as u8)
    }

    /// The exponent `k` of `i^k`, in `0..4`.
    #[inline]
    pub fn power(self) -> u8 {
        self.0
    }

    /// Whether this phase is real (`±1`).
    #[inline]
    pub fn is_real(self) -> bool {
        self.0.is_multiple_of(2)
    }

    /// The phase as a complex number.
    #[inline]
    pub fn to_c64(self) -> Complex64 {
        match self.0 {
            0 => Complex64::new(1.0, 0.0),
            1 => Complex64::new(0.0, 1.0),
            2 => Complex64::new(-1.0, 0.0),
            _ => Complex64::new(0.0, -1.0),
        }
    }

    /// For real phases, the sign as `f64` (`+1.0` or `−1.0`).
    ///
    /// # Panics
    /// Panics if the phase is imaginary.
    #[inline]
    pub fn real_sign(self) -> f64 {
        match self.0 {
            0 => 1.0,
            2 => -1.0,
            _ => panic!("PhaseI::real_sign called on imaginary phase i^{}", self.0),
        }
    }

    /// Multiplicative inverse (`i^k → i^{-k}`).
    #[inline]
    pub fn inverse(self) -> Self {
        PhaseI((4 - self.0) % 4)
    }
}

impl Mul for PhaseI {
    type Output = PhaseI;
    #[inline]
    fn mul(self, rhs: PhaseI) -> PhaseI {
        PhaseI((self.0 + rhs.0) % 4)
    }
}

impl MulAssign for PhaseI {
    #[inline]
    fn mul_assign(&mut self, rhs: PhaseI) {
        self.0 = (self.0 + rhs.0) % 4;
    }
}

impl Neg for PhaseI {
    type Output = PhaseI;
    #[inline]
    fn neg(self) -> PhaseI {
        self * PhaseI::MINUS_ONE
    }
}

impl fmt::Display for PhaseI {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self.0 {
            0 => "+1",
            1 => "+i",
            2 => "-1",
            _ => "-i",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_table() {
        assert_eq!(PhaseI::I * PhaseI::I, PhaseI::MINUS_ONE);
        assert_eq!(PhaseI::I * PhaseI::MINUS_I, PhaseI::ONE);
        assert_eq!(PhaseI::MINUS_ONE * PhaseI::MINUS_ONE, PhaseI::ONE);
        assert_eq!(PhaseI::MINUS_I * PhaseI::MINUS_I, PhaseI::MINUS_ONE);
    }

    #[test]
    fn inverse_cancels() {
        for k in 0..4 {
            let p = PhaseI::from_power(k);
            assert_eq!(p * p.inverse(), PhaseI::ONE);
        }
    }

    #[test]
    fn complex_agrees_with_powers_of_i() {
        let i = Complex64::new(0.0, 1.0);
        let mut acc = Complex64::new(1.0, 0.0);
        for k in 0..8u32 {
            let p = PhaseI::from_power(k);
            assert!((p.to_c64() - acc).norm() < 1e-15, "k={k}");
            acc *= i;
        }
    }

    #[test]
    fn real_sign() {
        assert_eq!(PhaseI::ONE.real_sign(), 1.0);
        assert_eq!(PhaseI::MINUS_ONE.real_sign(), -1.0);
        assert!(PhaseI::ONE.is_real());
        assert!(!PhaseI::I.is_real());
    }

    #[test]
    #[should_panic]
    fn real_sign_panics_on_imaginary() {
        let _ = PhaseI::I.real_sign();
    }
}

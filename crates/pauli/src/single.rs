//! Single-qubit Pauli letters and their multiplication table.

use crate::phase::PhaseI;
use num_complex::Complex64;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the four single-qubit Pauli operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Pauli {
    /// Identity.
    I,
    /// Bit flip.
    X,
    /// Bit and phase flip (`Y = iXZ`).
    Y,
    /// Phase flip.
    Z,
}

impl Pauli {
    /// All four letters in canonical order `I, X, Y, Z`.
    pub const ALL: [Pauli; 4] = [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z];

    /// The three non-identity letters `X, Y, Z`.
    pub const NONTRIVIAL: [Pauli; 3] = [Pauli::X, Pauli::Y, Pauli::Z];

    /// `(x, z)` symplectic bits: `X → (1,0)`, `Z → (0,1)`, `Y → (1,1)`.
    #[inline]
    pub fn xz_bits(self) -> (bool, bool) {
        match self {
            Pauli::I => (false, false),
            Pauli::X => (true, false),
            Pauli::Y => (true, true),
            Pauli::Z => (false, true),
        }
    }

    /// Reconstructs a letter from its symplectic bits.
    #[inline]
    pub fn from_xz_bits(x: bool, z: bool) -> Self {
        match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        }
    }

    /// Single-letter product `self · rhs = phase · letter`.
    ///
    /// Implements the standard table, e.g. `X·Y = iZ`, `Y·X = −iZ`,
    /// `X·X = I`.
    #[inline]
    #[allow(clippy::should_implement_trait)] // returns (phase, letter); `Mul` cannot
    pub fn mul(self, rhs: Pauli) -> (PhaseI, Pauli) {
        use Pauli::*;
        match (self, rhs) {
            (I, p) => (PhaseI::ONE, p),
            (p, I) => (PhaseI::ONE, p),
            (X, X) | (Y, Y) | (Z, Z) => (PhaseI::ONE, I),
            (X, Y) => (PhaseI::I, Z),
            (Y, X) => (PhaseI::MINUS_I, Z),
            (Y, Z) => (PhaseI::I, X),
            (Z, Y) => (PhaseI::MINUS_I, X),
            (Z, X) => (PhaseI::I, Y),
            (X, Z) => (PhaseI::MINUS_I, Y),
        }
    }

    /// Whether two letters commute (`I` commutes with everything; distinct
    /// non-identity letters anticommute).
    #[inline]
    pub fn commutes_with(self, rhs: Pauli) -> bool {
        self == Pauli::I || rhs == Pauli::I || self == rhs
    }

    /// The 2×2 matrix of this letter, row-major.
    pub fn matrix(self) -> [[Complex64; 2]; 2] {
        let o = Complex64::new(0.0, 0.0);
        let l = Complex64::new(1.0, 0.0);
        let i = Complex64::new(0.0, 1.0);
        match self {
            Pauli::I => [[l, o], [o, l]],
            Pauli::X => [[o, l], [l, o]],
            Pauli::Y => [[o, -i], [i, o]],
            Pauli::Z => [[l, o], [o, -l]],
        }
    }

    /// Parses one of `I X Y Z` (case-insensitive).
    pub fn from_char(c: char) -> Option<Self> {
        match c.to_ascii_uppercase() {
            'I' => Some(Pauli::I),
            'X' => Some(Pauli::X),
            'Y' => Some(Pauli::Y),
            'Z' => Some(Pauli::Z),
            _ => None,
        }
    }

    /// The canonical character for this letter.
    pub fn to_char(self) -> char {
        match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        }
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2×2 complex matrix product for cross-checking the algebraic table.
    fn matmul2(a: [[Complex64; 2]; 2], b: [[Complex64; 2]; 2]) -> [[Complex64; 2]; 2] {
        let mut c = [[Complex64::new(0.0, 0.0); 2]; 2];
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    c[i][j] += a[i][k] * b[k][j];
                }
            }
        }
        c
    }

    #[test]
    fn product_table_matches_matrices() {
        for &a in &Pauli::ALL {
            for &b in &Pauli::ALL {
                let (phase, c) = a.mul(b);
                let lhs = matmul2(a.matrix(), b.matrix());
                let scale = phase.to_c64();
                let rhs = c.matrix();
                for r in 0..2 {
                    for s in 0..2 {
                        let want = scale * rhs[r][s];
                        assert!(
                            (lhs[r][s] - want).norm() < 1e-14,
                            "{a}*{b}: entry ({r},{s})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn commutation_matches_table() {
        for &a in &Pauli::ALL {
            for &b in &Pauli::ALL {
                let (pab, _) = a.mul(b);
                let (pba, _) = b.mul(a);
                let commute = pab == pba;
                assert_eq!(a.commutes_with(b), commute, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn xz_bits_roundtrip() {
        for &p in &Pauli::ALL {
            let (x, z) = p.xz_bits();
            assert_eq!(Pauli::from_xz_bits(x, z), p);
        }
    }

    #[test]
    fn char_roundtrip() {
        for &p in &Pauli::ALL {
            assert_eq!(Pauli::from_char(p.to_char()), Some(p));
            assert_eq!(Pauli::from_char(p.to_char().to_ascii_lowercase()), Some(p));
        }
        assert_eq!(Pauli::from_char('Q'), None);
    }

    #[test]
    fn paulis_are_hermitian_and_unitary() {
        for &p in &Pauli::ALL {
            let m = p.matrix();
            // Hermitian: m == m†
            for i in 0..2 {
                for j in 0..2 {
                    assert!((m[i][j] - m[j][i].conj()).norm() < 1e-15);
                }
            }
            // Unitary with P² = I.
            let sq = matmul2(m, m);
            for i in 0..2 {
                for j in 0..2 {
                    let want = if i == j { 1.0 } else { 0.0 };
                    assert!((sq[i][j] - Complex64::new(want, 0.0)).norm() < 1e-15);
                }
            }
        }
    }
}

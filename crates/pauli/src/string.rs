//! `n`-qubit Pauli strings stored as symplectic bitmask pairs.
//!
//! A string `P = σ_{n−1} ⊗ … ⊗ σ_1 ⊗ σ_0` is stored as two `u64` masks:
//! bit `k` of `x` is set when `σ_k ∈ {X, Y}` and bit `k` of `z` is set when
//! `σ_k ∈ {Z, Y}`. The operator represented is exactly the tensor product of
//! the letters (the `i` factors inside each `Y` are part of the operator, not
//! tracked separately), so every `PauliString` is Hermitian with eigenvalues
//! ±1.

use crate::phase::PhaseI;
use crate::single::Pauli;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An `n`-qubit Pauli string (tensor product of single-qubit Paulis).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct PauliString {
    n: usize,
    x: u64,
    z: u64,
}

/// Precomputed basis-action data of one string, ready for hot expectation
/// loops: `P|b⟩ = phase · (−1)^{|b ∧ z|} |b ⊕ x⟩`.
///
/// Hoisting this out of per-amplitude loops lets fused multi-observable
/// kernels (e.g. `StateVector::expectation_many`) evaluate many strings in
/// one pass over the amplitudes without touching [`PauliString`] methods
/// per element.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BasisKernel {
    /// X-type mask: the basis flip `b → b ⊕ x`.
    pub x: u64,
    /// Z-type mask: the sign `(−1)^{|b ∧ z|}`.
    pub z: u64,
    /// Global phase `i^{#Y}` from the `Y` letters.
    pub phase: PhaseI,
}

impl PauliString {
    /// The identity string on `n` qubits.
    ///
    /// # Panics
    /// Panics if `n` is zero or exceeds [`crate::MAX_QUBITS`].
    pub fn identity(n: usize) -> Self {
        assert!(
            (1..=crate::MAX_QUBITS).contains(&n),
            "unsupported qubit count {n}"
        );
        PauliString { n, x: 0, z: 0 }
    }

    /// A string with a single non-identity letter `p` on `qubit`.
    pub fn single(n: usize, qubit: usize, p: Pauli) -> Self {
        let mut s = Self::identity(n);
        s.set(qubit, p);
        s
    }

    /// Builds a string from per-qubit letters; `letters[k]` acts on qubit `k`.
    pub fn from_letters(letters: &[Pauli]) -> Self {
        let mut s = Self::identity(letters.len());
        for (k, &p) in letters.iter().enumerate() {
            s.set(k, p);
        }
        s
    }

    /// Parses a textual string such as `"XIZY"`.
    ///
    /// The **leftmost character acts on the highest qubit** (matching how
    /// kets are written); `"XI"` is `X` on qubit 1, `I` on qubit 0.
    pub fn parse(text: &str) -> Option<Self> {
        let n = text.len();
        if n == 0 || n > crate::MAX_QUBITS {
            return None;
        }
        let mut s = Self::identity(n);
        for (pos, c) in text.chars().enumerate() {
            let qubit = n - 1 - pos;
            s.set(qubit, Pauli::from_char(c)?);
        }
        Some(s)
    }

    /// Constructs directly from symplectic masks (bits above `n` must be 0).
    pub fn from_masks(n: usize, x: u64, z: u64) -> Self {
        assert!((1..=crate::MAX_QUBITS).contains(&n));
        let valid = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        assert_eq!(x & !valid, 0, "x mask has bits above qubit {n}");
        assert_eq!(z & !valid, 0, "z mask has bits above qubit {n}");
        PauliString { n, x, z }
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The X-type mask (bit `k` set iff letter `k` is `X` or `Y`).
    #[inline]
    pub fn x_mask(&self) -> u64 {
        self.x
    }

    /// The Z-type mask (bit `k` set iff letter `k` is `Z` or `Y`).
    #[inline]
    pub fn z_mask(&self) -> u64 {
        self.z
    }

    /// Mask of qubits on which the string acts non-trivially.
    #[inline]
    pub fn support_mask(&self) -> u64 {
        self.x | self.z
    }

    /// The letter on `qubit`.
    #[inline]
    pub fn get(&self, qubit: usize) -> Pauli {
        assert!(qubit < self.n);
        let x = (self.x >> qubit) & 1 == 1;
        let z = (self.z >> qubit) & 1 == 1;
        Pauli::from_xz_bits(x, z)
    }

    /// Sets the letter on `qubit`.
    pub fn set(&mut self, qubit: usize, p: Pauli) {
        assert!(qubit < self.n);
        let (xb, zb) = p.xz_bits();
        let bit = 1u64 << qubit;
        if xb {
            self.x |= bit;
        } else {
            self.x &= !bit;
        }
        if zb {
            self.z |= bit;
        } else {
            self.z &= !bit;
        }
    }

    /// The *weight* (= *locality* in the paper's sense): the number of
    /// qubits on which the string acts non-trivially.
    #[inline]
    pub fn weight(&self) -> usize {
        self.support_mask().count_ones() as usize
    }

    /// Whether the string is the identity.
    #[inline]
    pub fn is_identity(&self) -> bool {
        self.x == 0 && self.z == 0
    }

    /// The qubits in the support, in ascending order.
    pub fn support(&self) -> Vec<usize> {
        let mut m = self.support_mask();
        let mut out = Vec::with_capacity(self.weight());
        while m != 0 {
            let k = m.trailing_zeros() as usize;
            out.push(k);
            m &= m - 1;
        }
        out
    }

    /// Number of `Y` letters in the string.
    #[inline]
    pub fn y_count(&self) -> usize {
        (self.x & self.z).count_ones() as usize
    }

    /// Product of two strings: `self · rhs = phase · string`.
    ///
    /// The result's masks are the XOR of the operands' masks; the phase is
    /// accumulated exactly letter-by-letter.
    pub fn mul(&self, rhs: &PauliString) -> (PhaseI, PauliString) {
        assert_eq!(self.n, rhs.n, "qubit-count mismatch");
        let mut phase = PhaseI::ONE;
        // Only qubits where both strings are non-identity can contribute a
        // phase; walk those.
        let mut both = self.support_mask() & rhs.support_mask();
        while both != 0 {
            let k = both.trailing_zeros() as usize;
            let (ph, _) = self.get(k).mul(rhs.get(k));
            phase *= ph;
            both &= both - 1;
        }
        (
            phase,
            PauliString {
                n: self.n,
                x: self.x ^ rhs.x,
                z: self.z ^ rhs.z,
            },
        )
    }

    /// Whether two strings commute, via the symplectic form: they commute
    /// iff `|x₁∧z₂| + |z₁∧x₂|` is even.
    #[inline]
    pub fn commutes_with(&self, rhs: &PauliString) -> bool {
        assert_eq!(self.n, rhs.n, "qubit-count mismatch");
        let a = (self.x & rhs.z).count_ones();
        let b = (self.z & rhs.x).count_ones();
        (a + b).is_multiple_of(2)
    }

    /// Precomputes the basis-action kernel (masks and `Y` phase) for hot
    /// expectation loops; see [`BasisKernel`].
    #[inline]
    pub fn basis_kernel(&self) -> BasisKernel {
        BasisKernel {
            x: self.x,
            z: self.z,
            phase: PhaseI::from_power(self.y_count() as u32),
        }
    }

    /// Action on a computational-basis state: `P |b⟩ = λ(b) |b ⊕ x⟩`.
    ///
    /// Returns `(λ(b), b ⊕ x)` where `λ(b) = i^{#Y} · (−1)^{|b ∧ z|}` is a
    /// `PhaseI`. This is the kernel used by the simulator's expectation
    /// routine and by the shadows estimator.
    #[inline]
    pub fn apply_to_basis(&self, b: u64) -> (PhaseI, u64) {
        let sign_flips = (b & self.z).count_ones();
        let phase = PhaseI::from_power(self.y_count() as u32 + 2 * sign_flips);
        (phase, b ^ self.x)
    }

    /// Eigenvalue sign of a computational-basis outcome **after** the string
    /// has been rotated to Z-type: `(−1)^{|outcome ∧ support|}`.
    #[inline]
    pub fn outcome_sign(&self, outcome: u64) -> f64 {
        if (outcome & self.support_mask())
            .count_ones()
            .is_multiple_of(2)
        {
            1.0
        } else {
            -1.0
        }
    }

    /// The letters of the string as a vector, index = qubit.
    pub fn letters(&self) -> Vec<Pauli> {
        (0..self.n).map(|k| self.get(k)).collect()
    }
}

impl fmt::Display for PauliString {
    /// Displays with the highest qubit leftmost, matching [`Self::parse`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for k in (0..self.n).rev() {
            write!(f, "{}", self.get(k))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_roundtrip() {
        for s in ["XIZY", "IIII", "ZZ", "Y", "XYZXYZXYZ"] {
            let p = PauliString::parse(s).unwrap();
            assert_eq!(p.to_string(), s);
        }
        assert!(PauliString::parse("").is_none());
        assert!(PauliString::parse("AB").is_none());
    }

    #[test]
    fn parse_orientation() {
        // "XI": X on qubit 1, I on qubit 0.
        let p = PauliString::parse("XI").unwrap();
        assert_eq!(p.get(1), Pauli::X);
        assert_eq!(p.get(0), Pauli::I);
    }

    #[test]
    fn weight_and_support() {
        let p = PauliString::parse("XIZY").unwrap();
        assert_eq!(p.weight(), 3);
        assert_eq!(p.support(), vec![0, 1, 3]); // Y@0, Z@1, X@3
        assert_eq!(p.y_count(), 1);
        assert!(!p.is_identity());
        assert!(PauliString::identity(5).is_identity());
    }

    #[test]
    fn product_letterwise_cross_check() {
        // Compare mask-based product against per-letter products.
        let a = PauliString::parse("XYZI").unwrap();
        let b = PauliString::parse("YYXZ").unwrap();
        let (phase, c) = a.mul(&b);
        let mut want_phase = PhaseI::ONE;
        for k in 0..4 {
            let (ph, letter) = a.get(k).mul(b.get(k));
            want_phase *= ph;
            assert_eq!(c.get(k), letter, "qubit {k}");
        }
        assert_eq!(phase, want_phase);
    }

    #[test]
    fn self_product_is_identity() {
        for s in ["XIZY", "YYYY", "ZXZX"] {
            let p = PauliString::parse(s).unwrap();
            let (phase, sq) = p.mul(&p);
            assert_eq!(phase, PhaseI::ONE, "{s}");
            assert!(sq.is_identity(), "{s}");
        }
    }

    #[test]
    fn commutation_symplectic_vs_product() {
        let strings = ["XXII", "ZIZI", "YXYZ", "IIII", "ZZZZ", "XYIX"];
        for a in strings {
            for b in strings {
                let pa = PauliString::parse(a).unwrap();
                let pb = PauliString::parse(b).unwrap();
                let (pab, _) = pa.mul(&pb);
                let (pba, _) = pb.mul(&pa);
                assert_eq!(pa.commutes_with(&pb), pab == pba, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn apply_to_basis_z_and_x() {
        // Z on qubit 0 of n=2: |01⟩ (b=1) picks up −1, stays in place.
        let z0 = PauliString::single(2, 0, Pauli::Z);
        let (ph, b2) = z0.apply_to_basis(0b01);
        assert_eq!(ph, PhaseI::MINUS_ONE);
        assert_eq!(b2, 0b01);
        // X on qubit 1 flips the bit with no phase.
        let x1 = PauliString::single(2, 1, Pauli::X);
        let (ph, b2) = x1.apply_to_basis(0b01);
        assert_eq!(ph, PhaseI::ONE);
        assert_eq!(b2, 0b11);
        // Y|0⟩ = i|1⟩, Y|1⟩ = −i|0⟩ on qubit 0.
        let y0 = PauliString::single(1, 0, Pauli::Y);
        let (ph, b2) = y0.apply_to_basis(0);
        assert_eq!((ph, b2), (PhaseI::I, 1));
        let (ph, b2) = y0.apply_to_basis(1);
        assert_eq!((ph, b2), (PhaseI::MINUS_I, 0));
    }

    #[test]
    fn basis_kernel_matches_apply_to_basis() {
        for s in ["XIZY", "YYYY", "ZZII", "IXIX", "IIII"] {
            let p = PauliString::parse(s).unwrap();
            let k = p.basis_kernel();
            assert_eq!(k.x, p.x_mask(), "{s}");
            assert_eq!(k.z, p.z_mask(), "{s}");
            for b in 0..16u64 {
                let (phase, b2) = p.apply_to_basis(b);
                assert_eq!(b2, b ^ k.x, "{s} b={b}");
                let sign_power = 2 * (b & k.z).count_ones();
                assert_eq!(phase, k.phase * PhaseI::from_power(sign_power), "{s} b={b}");
            }
        }
    }

    #[test]
    fn outcome_sign_parity() {
        let p = PauliString::parse("ZIZ").unwrap(); // support qubits 0 and 2
        assert_eq!(p.outcome_sign(0b000), 1.0);
        assert_eq!(p.outcome_sign(0b001), -1.0);
        assert_eq!(p.outcome_sign(0b101), 1.0);
        assert_eq!(p.outcome_sign(0b010), 1.0); // qubit 1 not in support
    }

    #[test]
    fn from_masks_rejects_out_of_range() {
        let p = PauliString::from_masks(3, 0b101, 0b010);
        // x bits on 0 and 2 (X letters), z bit on 1 (Z letter) → "XZX".
        assert_eq!(p.to_string(), "XZX");
        assert_eq!(p.get(0), Pauli::X);
        assert_eq!(p.get(1), Pauli::Z);
        assert_eq!(p.get(2), Pauli::X);
    }

    #[test]
    #[should_panic]
    fn from_masks_panics_on_overflow_bits() {
        let _ = PauliString::from_masks(3, 0b1000, 0);
    }
}

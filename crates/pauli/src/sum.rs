//! Real-weighted sums of Pauli strings — Hermitian observables.
//!
//! The *classical combination of quantum observables* (CQO, §III.D of the
//! paper) builds estimators of the form `O(α) = Σ_j α_j O_j`; a [`PauliSum`]
//! is the concrete representation of such an observable when the `O_j` are
//! Pauli strings.

use crate::string::PauliString;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A Hermitian observable `Σ_j c_j P_j` with real coefficients `c_j` and
/// Pauli strings `P_j`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PauliSum {
    n: usize,
    terms: Vec<(f64, PauliString)>,
}

impl PauliSum {
    /// The zero observable on `n` qubits.
    pub fn zero(n: usize) -> Self {
        assert!((1..=crate::MAX_QUBITS).contains(&n));
        PauliSum {
            n,
            terms: Vec::new(),
        }
    }

    /// An observable with a single term.
    pub fn from_term(coeff: f64, p: PauliString) -> Self {
        PauliSum {
            n: p.num_qubits(),
            terms: vec![(coeff, p)],
        }
    }

    /// Builds from a list of `(coefficient, string)` pairs.
    ///
    /// # Panics
    /// Panics if the strings disagree on qubit count or the list is empty.
    pub fn from_terms(terms: Vec<(f64, PauliString)>) -> Self {
        assert!(!terms.is_empty(), "use PauliSum::zero for empty sums");
        let n = terms[0].1.num_qubits();
        assert!(
            terms.iter().all(|(_, p)| p.num_qubits() == n),
            "qubit-count mismatch between terms"
        );
        PauliSum { n, terms }
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The terms as `(coefficient, string)` pairs.
    #[inline]
    pub fn terms(&self) -> &[(f64, PauliString)] {
        &self.terms
    }

    /// Number of terms (after any simplification performed so far).
    #[inline]
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Adds a term in place.
    pub fn push(&mut self, coeff: f64, p: PauliString) {
        assert_eq!(p.num_qubits(), self.n, "qubit-count mismatch");
        self.terms.push((coeff, p));
    }

    /// Sum of two observables.
    pub fn add(&self, rhs: &PauliSum) -> PauliSum {
        assert_eq!(self.n, rhs.n, "qubit-count mismatch");
        let mut terms = self.terms.clone();
        terms.extend_from_slice(&rhs.terms);
        PauliSum { n: self.n, terms }
    }

    /// Scales every coefficient by `s`.
    pub fn scale(&self, s: f64) -> PauliSum {
        PauliSum {
            n: self.n,
            terms: self.terms.iter().map(|&(c, p)| (c * s, p)).collect(),
        }
    }

    /// Combines duplicate strings and drops terms with |coeff| ≤ `tol`.
    pub fn simplified(&self, tol: f64) -> PauliSum {
        let mut acc: HashMap<PauliString, f64> = HashMap::with_capacity(self.terms.len());
        for &(c, p) in &self.terms {
            *acc.entry(p).or_insert(0.0) += c;
        }
        let mut terms: Vec<(f64, PauliString)> = acc
            .into_iter()
            .filter(|&(_, c)| c.abs() > tol)
            .map(|(p, c)| (c, p))
            .collect();
        // Deterministic order: by weight, then by display string.
        terms.sort_by(|a, b| {
            a.1.weight()
                .cmp(&b.1.weight())
                .then_with(|| a.1.to_string().cmp(&b.1.to_string()))
        });
        PauliSum { n: self.n, terms }
    }

    /// The maximum locality (weight) over all terms; 0 for the zero sum.
    pub fn max_locality(&self) -> usize {
        self.terms
            .iter()
            .map(|(_, p)| p.weight())
            .max()
            .unwrap_or(0)
    }

    /// Whether every term acts on at most `l` qubits.
    pub fn is_local(&self, l: usize) -> bool {
        self.max_locality() <= l
    }

    /// `Σ_j |c_j|` — an upper bound on the spectral norm of the observable
    /// (triangle inequality; each Pauli string has spectral norm 1).
    pub fn coeff_l1(&self) -> f64 {
        self.terms.iter().map(|(c, _)| c.abs()).sum()
    }

    /// `√(Σ_j c_j²)`.
    pub fn coeff_l2(&self) -> f64 {
        self.terms.iter().map(|(c, _)| c * c).sum::<f64>().sqrt()
    }
}

impl fmt::Display for PauliSum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, (c, p)) in self.terms.iter().enumerate() {
            if i == 0 {
                write!(f, "{c:+.6}·{p}")?;
            } else {
                write!(f, " {c:+.6}·{p}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single::Pauli;

    #[test]
    fn simplify_combines_and_drops() {
        let zz = PauliString::parse("ZZ").unwrap();
        let xi = PauliString::parse("XI").unwrap();
        let s = PauliSum::from_terms(vec![(1.0, zz), (2.0, xi), (-1.0, zz), (0.5, xi)]);
        let t = s.simplified(1e-12);
        assert_eq!(t.num_terms(), 1);
        assert_eq!(t.terms()[0].1, xi);
        assert!((t.terms()[0].0 - 2.5).abs() < 1e-15);
    }

    #[test]
    fn locality_and_norms() {
        let s = PauliSum::from_terms(vec![
            (3.0, PauliString::parse("ZII").unwrap()),
            (-4.0, PauliString::parse("XYI").unwrap()),
        ]);
        assert_eq!(s.max_locality(), 2);
        assert!(s.is_local(2));
        assert!(!s.is_local(1));
        assert!((s.coeff_l1() - 7.0).abs() < 1e-15);
        assert!((s.coeff_l2() - 5.0).abs() < 1e-15);
    }

    #[test]
    fn add_scale() {
        let a = PauliSum::from_term(1.0, PauliString::single(2, 0, Pauli::Z));
        let b = PauliSum::from_term(2.0, PauliString::single(2, 1, Pauli::X));
        let c = a.add(&b).scale(2.0);
        assert_eq!(c.num_terms(), 2);
        assert!((c.coeff_l1() - 6.0).abs() < 1e-15);
    }

    #[test]
    fn zero_sum_behaviour() {
        let z = PauliSum::zero(3);
        assert_eq!(z.num_terms(), 0);
        assert_eq!(z.max_locality(), 0);
        assert_eq!(z.to_string(), "0");
    }

    #[test]
    #[should_panic]
    fn mismatched_terms_panic() {
        let _ = PauliSum::from_terms(vec![
            (1.0, PauliString::identity(2)),
            (1.0, PauliString::identity(3)),
        ]);
    }
}

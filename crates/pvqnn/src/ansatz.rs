//! Ansatz constructions (paper Fig. 8).
//!
//! "We use a simple Ansatz made of 2 alternations of RY gates and circular
//! CNOT gates … We set initial parameters to 0, on which the Ansatz would
//! evaluate to identity" — the Grant et al. \[21\] identity-block
//! initialisation that avoids barren plateaus at step 0.

use qsim::{Gate, ParamCircuit, RotAxis};

/// A hardware-efficient ansatz: `layers` alternations of an RY rotation on
/// every qubit followed by a ring of CNOTs (`q → q+1 mod n`). Has
/// `layers · n` parameters.
pub fn hardware_efficient_ansatz(n: usize, layers: usize) -> ParamCircuit {
    assert!(n >= 2, "ring entangler needs at least 2 qubits");
    assert!(layers >= 1);
    let mut pc = ParamCircuit::new(n);
    for _ in 0..layers {
        for q in 0..n {
            pc.push_rot(RotAxis::Y, q);
        }
        for q in 0..n {
            let target = (q + 1) % n;
            pc.push_fixed(Gate::Cnot { control: q, target });
        }
    }
    pc
}

/// The paper's concrete Fig. 8 instance: 4 qubits, 2 layers, k = 8
/// parameters.
pub fn fig8_ansatz(n: usize) -> ParamCircuit {
    hardware_efficient_ansatz(n, 2)
}

/// Splits an ansatz at a gate boundary into `(U_A, U_B)` with
/// `U(θ) = U_B(θ_B) · U_A(θ_A)` — the §IV.C hybrid construction cuts "the
/// circuit at a certain depth". Returns the two halves and the number of
/// parameters living in the first half.
pub fn split_ansatz(
    pc: &ParamCircuit,
    gate_boundary: usize,
) -> (ParamCircuit, ParamCircuit, usize) {
    assert!(gate_boundary <= pc.gates().len());
    let n = pc.num_qubits();
    let mut a = ParamCircuit::new(n);
    let mut b = ParamCircuit::new(n);
    let mut params_in_a = 0;
    for (i, g) in pc.gates().iter().enumerate() {
        let target = if i < gate_boundary { &mut a } else { &mut b };
        match *g {
            qsim::ParamGate::Fixed(fg) => target.push_fixed(fg),
            qsim::ParamGate::Rot { axis, qubit, .. } => {
                // Re-index parameters per half.
                let p = target.push_rot(axis, qubit);
                if i < gate_boundary {
                    params_in_a = params_in_a.max(p + 1);
                }
            }
        }
    }
    (a, b, params_in_a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::StateVector;

    #[test]
    fn fig8_has_2n_params_and_ring() {
        let pc = fig8_ansatz(4);
        assert_eq!(pc.num_params(), 8);
        let c = pc.bind(&[0.1; 8]);
        // 8 RY + 8 CNOT.
        let (single, double) = c.gate_counts();
        assert_eq!(single, 8);
        assert_eq!(double, 8);
    }

    #[test]
    fn zero_parameters_give_identity() {
        let pc = fig8_ansatz(4);
        let c = pc.bind(&[0.0; 8]);
        let s = StateVector::from_circuit(&c);
        // CNOT ring on |0000⟩ is identity; RY(0) is identity.
        assert!((s.probability(0) - 1.0).abs() < 1e-12);
        // With elision, only the CNOTs remain and still act trivially.
        let opt = pc.bind_optimized(&[0.0; 8]);
        assert_eq!(opt.gate_counts().0, 0);
    }

    #[test]
    fn nonzero_parameters_entangle() {
        let pc = fig8_ansatz(3);
        let c = pc.bind(&[0.7; 6]);
        let s = StateVector::from_circuit(&c);
        // ⟨Z₀⟩ should not equal cos(0.7)·something trivially separable;
        // check the state is not a product of |q0⟩ ⊗ rest via purity of
        // reduced state proxy: compare ZZ correlation vs product of Z's.
        let z0 = pauli::PauliString::parse("IIZ").unwrap();
        let z1 = pauli::PauliString::parse("IZI").unwrap();
        let zz = pauli::PauliString::parse("IZZ").unwrap();
        let corr = s.expectation(&zz) - s.expectation(&z0) * s.expectation(&z1);
        assert!(corr.abs() > 1e-3, "no correlation generated: {corr}");
    }

    #[test]
    fn deeper_ansatz_has_more_params() {
        let pc = hardware_efficient_ansatz(5, 3);
        assert_eq!(pc.num_params(), 15);
    }

    #[test]
    fn split_reconstructs_circuit() {
        let pc = fig8_ansatz(4);
        // Split after the first RY layer + ring = 8 gates.
        let (a, b, ka) = split_ansatz(&pc, 8);
        assert_eq!(ka, 4);
        assert_eq!(a.num_params() + b.num_params(), pc.num_params());
        // Binding the halves with the matching slices equals binding whole.
        let theta: Vec<f64> = (0..8).map(|i| 0.1 * (i as f64 + 1.0)).collect();
        let mut whole = a.bind(&theta[..4]);
        whole.extend(&b.bind(&theta[4..]));
        let direct = pc.bind(&theta);
        let s1 = StateVector::from_circuit(&whole);
        let s2 = StateVector::from_circuit(&direct);
        assert!((s1.fidelity(&s2) - 1.0).abs() < 1e-12);
    }
}

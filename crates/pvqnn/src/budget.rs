//! Measurement budgets: Propositions 1–2 and Table II.
//!
//! Proposition 1 (direct estimation): all `m·d` neuron outputs within
//! additive error ε_H with probability 1−δ needs
//! `O((md/ε_H²)·log(md/δ))` measurements.
//!
//! Proposition 2 (shadow estimation): `O((pd/ε_H²)·max_k‖O_k‖_S²·log(md/δ))`.
//!
//! Table II combines these with Theorem 4's `ε_H = ε/(2√m)` to express the
//! end-to-end budget for each design principle; [`table2_rows`] evaluates
//! all four rows.

/// Per-(neuron, datum) shot count from Hoeffding + union bound
/// (Proposition 1's proof): `t = ⌈(2/ε_H²)·ln(2md/δ)⌉`.
pub fn prop1_shots_per_neuron(m: usize, d: usize, eps_h: f64, delta: f64) -> u128 {
    assert!(eps_h > 0.0 && delta > 0.0 && delta < 1.0 && m >= 1 && d >= 1);
    let ln = (2.0 * (m as f64) * (d as f64) / delta).ln();
    ((2.0 / (eps_h * eps_h)) * ln).ceil() as u128
}

/// Total direct-measurement budget of Proposition 1: `m·d·t`.
pub fn prop1_total(m: usize, d: usize, eps_h: f64, delta: f64) -> u128 {
    (m as u128) * (d as u128) * prop1_shots_per_neuron(m, d, eps_h, delta)
}

/// Snapshots per (ansatz, datum) state from the median-of-means analysis
/// (Proposition 2's proof): group size `⌈34·max‖O‖_S²/ε_H²⌉` times
/// `⌈2 ln(2md/δ)⌉` groups.
pub fn prop2_snapshots_per_state(
    m: usize,
    d: usize,
    max_shadow_norm_sq: f64,
    eps_h: f64,
    delta: f64,
) -> u128 {
    assert!(eps_h > 0.0 && delta > 0.0 && delta < 1.0);
    let group = ((34.0 * max_shadow_norm_sq) / (eps_h * eps_h)).ceil() as u128;
    let groups = (2.0 * (2.0 * (m as f64) * (d as f64) / delta).ln()).ceil() as u128;
    group.max(1) * groups.max(1)
}

/// Total shadow budget of Proposition 2: `p·d·T`.
pub fn prop2_total(
    p: usize,
    m: usize,
    d: usize,
    max_shadow_norm_sq: f64,
    eps_h: f64,
    delta: f64,
) -> u128 {
    (p as u128) * (d as u128) * prop2_snapshots_per_state(m, d, max_shadow_norm_sq, eps_h, delta)
}

/// Theorem 4's element-wise accuracy requirement for final loss error ε
/// with the `‖α‖₂ ≤ 1` constraint: `ε_H = ε/(2√m)`.
pub fn theorem4_eps_h(eps: f64, m: usize) -> f64 {
    assert!(eps > 0.0 && m >= 1);
    eps / (2.0 * (m as f64).sqrt())
}

/// One evaluated row of Table II.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Strategy name as printed in the paper.
    pub strategy: &'static str,
    /// `p` — number of ansätze.
    pub p: usize,
    /// `q` — number of observables.
    pub q: usize,
    /// `m = pq`.
    pub m: usize,
    /// Total measurements, direct estimation.
    pub direct: u128,
    /// Total measurements, classical shadows.
    pub shadows: u128,
    /// Which column the paper bolds (the cheaper estimator).
    pub winner: &'static str,
}

/// Evaluates the four Table II rows for concrete dimensions: `p` ansätze,
/// local observables of weight ≤ `locality` on `n` qubits, `d` data
/// points, end-to-end loss error `eps`, failure probability `delta`.
///
/// The observable set of the construction/hybrid rows is the ≤L-local
/// Pauli family, whose worst shadow norm is `3^L`; the ansatz-expansion
/// row uses a single observable of locality `obs_locality`.
pub fn table2_rows(
    p: usize,
    n: usize,
    locality: usize,
    obs_locality: usize,
    d: usize,
    eps: f64,
    delta: f64,
) -> Vec<Table2Row> {
    let q_local = pauli::local_pauli_count(n, locality) as usize;
    let single_norm_sq = 3f64.powi(obs_locality as i32);
    let local_norm_sq = 3f64.powi(locality as i32);

    let mut rows = Vec::new();

    // Ansatz expansion: q = 1.
    {
        let (pp, q) = (p, 1usize);
        let m = pp * q;
        let eps_h = theorem4_eps_h(eps, m);
        let direct = prop1_total(m, d, eps_h, delta);
        let shadows = prop2_total(pp, m, d, single_norm_sq, eps_h, delta);
        rows.push(Table2Row {
            strategy: "Ansatz expansion (q=1)",
            p: pp,
            q,
            m,
            direct,
            shadows,
            winner: if direct <= shadows {
                "direct"
            } else {
                "shadows"
            },
        });
    }

    // Observable construction: p = 1.
    {
        let (pp, q) = (1usize, q_local);
        let m = pp * q;
        let eps_h = theorem4_eps_h(eps, m);
        let direct = prop1_total(m, d, eps_h, delta);
        let shadows = prop2_total(pp, m, d, local_norm_sq, eps_h, delta);
        rows.push(Table2Row {
            strategy: "Observable construction (p=1)",
            p: pp,
            q,
            m,
            direct,
            shadows,
            winner: if direct <= shadows {
                "direct"
            } else {
                "shadows"
            },
        });
    }

    // Hybrid.
    {
        let (pp, q) = (p, q_local);
        let m = pp * q;
        let eps_h = theorem4_eps_h(eps, m);
        let direct = prop1_total(m, d, eps_h, delta);
        let shadows = prop2_total(pp, m, d, local_norm_sq, eps_h, delta);
        rows.push(Table2Row {
            strategy: "Hybrid",
            p: pp,
            q,
            m,
            direct,
            shadows,
            winner: if direct <= shadows {
                "direct"
            } else {
                "shadows"
            },
        });
    }

    // L-local hybrid (same numbers, emphasising the 3^L n^L scaling).
    {
        let (pp, q) = (p, q_local);
        let m = pp * q;
        let eps_h = theorem4_eps_h(eps, m);
        let direct = prop1_total(m, d, eps_h, delta);
        let shadows = prop2_total(pp, m, d, local_norm_sq, eps_h, delta);
        rows.push(Table2Row {
            strategy: "L-local Hybrid (q∈O(3^L n^L))",
            p: pp,
            q,
            m,
            direct,
            shadows,
            winner: if direct <= shadows {
                "direct"
            } else {
                "shadows"
            },
        });
    }

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prop1_scaling_in_eps() {
        // Halving ε_H quadruples the per-neuron count (within rounding).
        let a = prop1_shots_per_neuron(10, 100, 0.1, 0.05);
        let b = prop1_shots_per_neuron(10, 100, 0.05, 0.05);
        let ratio = b as f64 / a as f64;
        assert!((ratio - 4.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn prop1_logarithmic_in_md() {
        let a = prop1_shots_per_neuron(10, 100, 0.1, 0.05);
        let b = prop1_shots_per_neuron(1000, 100, 0.1, 0.05);
        assert!(
            (b as f64) < 2.0 * a as f64,
            "per-neuron cost must grow only log"
        );
    }

    #[test]
    fn shadows_win_for_observable_construction_with_low_locality() {
        // Table II bold: for the observable-construction row with local
        // observables, shadows beat direct (qd·3^L vs q²d scaling). The
        // proof constants (34 vs 2) mean the crossover needs q ≳ 300·3^L —
        // n = 12 qubits at L = 2 gives q = 631.
        let rows = table2_rows(17, 12, 2, 1, 100, 0.1, 0.05);
        let oc = &rows[1];
        assert_eq!(oc.strategy, "Observable construction (p=1)");
        assert!(
            oc.shadows < oc.direct,
            "shadows {} should beat direct {}",
            oc.shadows,
            oc.direct
        );
        assert_eq!(oc.winner, "shadows");
    }

    #[test]
    fn direct_wins_for_ansatz_expansion() {
        // Table II bold: with q = 1 the shadows protocol only adds the
        // ‖O‖_S² factor — direct must win (for any nontrivial observable).
        let rows = table2_rows(17, 4, 2, 1, 100, 0.1, 0.05);
        let ae = &rows[0];
        assert!(ae.direct <= ae.shadows);
        assert_eq!(ae.winner, "direct");
    }

    #[test]
    fn hybrid_shadow_advantage_grows_with_q() {
        // direct/shadows ratio ~ q/‖O‖_S²: larger n (more local Paulis)
        // widens the gap.
        let small = &table2_rows(9, 4, 1, 1, 50, 0.1, 0.05)[2];
        let large = &table2_rows(9, 12, 1, 1, 50, 0.1, 0.05)[2];
        let ratio_small = small.direct as f64 / small.shadows as f64;
        let ratio_large = large.direct as f64 / large.shadows as f64;
        assert!(
            ratio_large > ratio_small,
            "small {ratio_small}, large {ratio_large}"
        );
    }

    #[test]
    fn theorem4_eps_h_shrinks_with_m() {
        assert!(theorem4_eps_h(0.1, 100) < theorem4_eps_h(0.1, 10));
        assert!((theorem4_eps_h(0.2, 4) - 0.05).abs() < 1e-15);
    }

    #[test]
    fn totals_are_products() {
        let m = 10;
        let d = 20;
        let t = prop1_shots_per_neuron(m, d, 0.1, 0.1);
        assert_eq!(prop1_total(m, d, 0.1, 0.1), (m * d) as u128 * t);
    }
}

//! Data-encoding circuits (paper Fig. 7).
//!
//! "Each column of the compressed image is encoded into a single qubit,
//! and each row is encoded consecutively via alternating rotation-Z and
//! rotation-X gates."
//!
//! Features arrive row-major from the 4×4 pooled image: feature index
//! `r·n + c` is (row r, column c), column `c` lands on qubit `c`, and the
//! per-qubit gate sequence over rows is `RZ(x₀c) RX(x₁c) RZ(x₂c) RX(x₃c)`.
//! The leading RZ on `|0⟩` only contributes a phase, exactly as in the
//! paper's figure; the information still enters through the following RX
//! layers. [`encoding_with_h_prefix`] offers the variant with a Hadamard
//! wall in front, which makes the first RZ informative too.

use qsim::{Circuit, Gate};

/// Builds the Fig. 7 encoding circuit `S(x)` for an `n`-qubit register from
/// `rows·n` features laid out row-major (`features[r*n + c]` → row `r`,
/// qubit `c`). Even rows become `RZ`, odd rows `RX`.
///
/// # Panics
/// Panics if `features.len()` is not a positive multiple of `n`.
pub fn column_encoding(features: &[f64], n: usize) -> Circuit {
    assert!(n >= 1);
    assert!(
        !features.is_empty() && features.len().is_multiple_of(n),
        "feature count {} must be a positive multiple of n = {n}",
        features.len()
    );
    let rows = features.len() / n;
    let mut c = Circuit::new(n);
    for r in 0..rows {
        for q in 0..n {
            let angle = features[r * n + q];
            if r % 2 == 0 {
                c.push(Gate::Rz(q, angle));
            } else {
                c.push(Gate::Rx(q, angle));
            }
        }
    }
    c
}

/// The paper's concrete instance: 16 features → 4 qubits, 4 alternating
/// RZ/RX rows (Fig. 7).
pub fn fig7_encoding(features: &[f64]) -> Circuit {
    assert_eq!(features.len(), 16, "Fig. 7 encodes 4×4 = 16 features");
    column_encoding(features, 4)
}

/// Variant with a Hadamard on every qubit **before** the alternating
/// rotations, which makes the leading RZ row informative from `|0⟩`.
pub fn encoding_with_h_prefix(features: &[f64], n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(Gate::H(q));
    }
    c.extend(&column_encoding(features, n));
    c
}

/// A data re-uploading encoding (§III.B, citing Pérez-Salinas et al. [47]):
/// `layers` repetitions of (column encoding → ring of CNOTs). The paper
/// notes such models map exactly onto the simple construction with more
/// qubits [48]; here we provide them directly so re-uploading ansätze can
/// be used as the `S(x)` of any post-variational strategy.
pub fn reuploading_encoding(features: &[f64], n: usize, layers: usize) -> Circuit {
    assert!(layers >= 1);
    let mut c = Circuit::new(n);
    for layer in 0..layers {
        c.extend(&column_encoding(features, n));
        // Entangle between uploads (no entangler after the last upload —
        // measurement bases handle that).
        if layer + 1 < layers && n >= 2 {
            for q in 0..n {
                c.push(Gate::Cnot {
                    control: q,
                    target: (q + 1) % n,
                });
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::StateVector;

    #[test]
    fn fig7_gate_pattern() {
        let x: Vec<f64> = (0..16).map(|i| 0.1 * i as f64).collect();
        let c = fig7_encoding(&x);
        assert_eq!(c.num_qubits(), 4);
        assert_eq!(c.len(), 16);
        // First row is RZ on qubits 0..4 with features 0..4.
        assert_eq!(c.gates()[0], Gate::Rz(0, 0.0));
        assert!(matches!(c.gates()[3], Gate::Rz(3, a) if (a - 0.3).abs() < 1e-12));
        // Second row is RX.
        assert!(matches!(c.gates()[4], Gate::Rx(0, a) if (a - 0.4).abs() < 1e-12));
        // Third row RZ again.
        assert!(matches!(c.gates()[8], Gate::Rz(0, a) if (a - 0.8).abs() < 1e-12));
    }

    #[test]
    fn different_features_give_different_states() {
        let a: Vec<f64> = (0..16).map(|i| 0.3 + 0.1 * i as f64).collect();
        let mut b = a.clone();
        b[5] += 1.0; // an RX angle — physically meaningful
        let sa = StateVector::from_circuit(&fig7_encoding(&a));
        let sb = StateVector::from_circuit(&fig7_encoding(&b));
        assert!(sa.fidelity(&sb) < 1.0 - 1e-4);
    }

    #[test]
    fn zero_features_give_zero_state() {
        let s = StateVector::from_circuit(&fig7_encoding(&[0.0; 16]));
        assert!((s.probability(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn first_rz_row_is_global_phase_only() {
        // Changing only row-0 (RZ) angles must not change any probability
        // or any later measurement statistic from |0⟩ — matching the note
        // in the module docs.
        let mut a = vec![0.5; 16];
        let mut b = vec![0.5; 16];
        for q in 0..4 {
            a[q] = 0.1;
            b[q] = 2.1;
        }
        let sa = StateVector::from_circuit(&fig7_encoding(&a));
        let sb = StateVector::from_circuit(&fig7_encoding(&b));
        assert!((sa.fidelity(&sb) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn h_prefix_makes_first_rz_informative() {
        let mut a = vec![0.5; 16];
        let mut b = vec![0.5; 16];
        for q in 0..4 {
            a[q] = 0.1;
            b[q] = 2.1;
        }
        let sa = StateVector::from_circuit(&encoding_with_h_prefix(&a, 4));
        let sb = StateVector::from_circuit(&encoding_with_h_prefix(&b, 4));
        assert!(sa.fidelity(&sb) < 1.0 - 1e-4);
    }

    #[test]
    fn general_shapes() {
        let c = column_encoding(&[0.1; 12], 6); // 2 rows × 6 qubits
        assert_eq!(c.num_qubits(), 6);
        assert_eq!(c.len(), 12);
    }

    #[test]
    #[should_panic]
    fn wrong_feature_count_panics() {
        let _ = fig7_encoding(&[0.0; 15]);
    }

    #[test]
    fn reuploading_single_layer_equals_plain_encoding() {
        let x: Vec<f64> = (0..16).map(|i| 0.3 + 0.2 * i as f64).collect();
        let a = StateVector::from_circuit(&reuploading_encoding(&x, 4, 1));
        let b = StateVector::from_circuit(&column_encoding(&x, 4));
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reuploading_layers_change_the_state() {
        let x: Vec<f64> = (0..16).map(|i| 0.4 + 0.15 * i as f64).collect();
        let one = StateVector::from_circuit(&reuploading_encoding(&x, 4, 1));
        let two = StateVector::from_circuit(&reuploading_encoding(&x, 4, 2));
        assert!(one.fidelity(&two) < 1.0 - 1e-6);
        // Re-uploading creates entanglement between columns.
        let z0 = pauli::PauliString::parse("IIIZ").unwrap();
        let z1 = pauli::PauliString::parse("IIZI").unwrap();
        let zz = pauli::PauliString::parse("IIZZ").unwrap();
        let corr = two.expectation(&zz) - two.expectation(&z0) * two.expectation(&z1);
        assert!(corr.abs() > 1e-6, "no correlation: {corr}");
    }

    #[test]
    fn reuploading_gate_count() {
        let x = vec![0.2; 16];
        let c = reuploading_encoding(&x, 4, 3);
        // 3 × 16 rotations + 2 × 4 CNOTs.
        assert_eq!(c.len(), 48 + 8);
    }
}

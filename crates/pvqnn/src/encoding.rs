//! Data-encoding circuits (paper Fig. 7).
//!
//! "Each column of the compressed image is encoded into a single qubit,
//! and each row is encoded consecutively via alternating rotation-Z and
//! rotation-X gates."
//!
//! Features arrive row-major from the 4×4 pooled image: feature index
//! `r·n + c` is (row r, column c), column `c` lands on qubit `c`, and the
//! per-qubit gate sequence over rows is `RZ(x₀c) RX(x₁c) RZ(x₂c) RX(x₃c)`.
//! The leading RZ on `|0⟩` only contributes a phase, exactly as in the
//! paper's figure; the information still enters through the following RX
//! layers. [`encoding_with_h_prefix`] offers the variant with a Hadamard
//! wall in front, which makes the first RZ informative too.

use qsim::{identity2, matmul2, BatchedStateVector, Circuit, Gate, Mat2, StateVector};

/// Builds the Fig. 7 encoding circuit `S(x)` for an `n`-qubit register from
/// `rows·n` features laid out row-major (`features[r*n + c]` → row `r`,
/// qubit `c`). Even rows become `RZ`, odd rows `RX`.
///
/// # Panics
/// Panics if `features.len()` is not a positive multiple of `n`.
pub fn column_encoding(features: &[f64], n: usize) -> Circuit {
    assert!(n >= 1);
    assert!(
        !features.is_empty() && features.len().is_multiple_of(n),
        "feature count {} must be a positive multiple of n = {n}",
        features.len()
    );
    let rows = features.len() / n;
    let mut c = Circuit::new(n);
    for r in 0..rows {
        for q in 0..n {
            let angle = features[r * n + q];
            if r % 2 == 0 {
                c.push(Gate::Rz(q, angle));
            } else {
                c.push(Gate::Rx(q, angle));
            }
        }
    }
    c
}

/// The paper's concrete instance: 16 features → 4 qubits, 4 alternating
/// RZ/RX rows (Fig. 7).
pub fn fig7_encoding(features: &[f64]) -> Circuit {
    assert_eq!(features.len(), 16, "Fig. 7 encodes 4×4 = 16 features");
    column_encoding(features, 4)
}

/// Variant with a Hadamard on every qubit **before** the alternating
/// rotations, which makes the leading RZ row informative from `|0⟩`.
pub fn encoding_with_h_prefix(features: &[f64], n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(Gate::H(q));
    }
    c.extend(&column_encoding(features, n));
    c
}

/// The fused execution plan for [`column_encoding`]: since every gate of
/// the Fig. 7 circuit is a single-qubit rotation, each qubit's whole gate
/// column collapses into **one** dense 2×2 — encoding a point is then `n`
/// fused kernel sweeps instead of `rows·n` gate applications, and a batch
/// of points encodes through [`BatchedStateVector::apply_unary_per_lane`]
/// in amplitude-major SoA sweeps.
///
/// Per lane, the batched path evaluates exactly the same per-qubit fused
/// matrix through the same kernel arithmetic as [`Self::encode_one`], so
/// batch lanes are **bit-for-bit** equal to standalone encodes — the
/// invariant the serving layer's micro-batching guarantee requires.
#[derive(Clone, Debug)]
pub struct EncodingPlan {
    n: usize,
    rows: usize,
}

impl EncodingPlan {
    /// Plan for encoding `num_features`-long points onto `n` qubits.
    ///
    /// # Panics
    /// Panics if `num_features` is not a positive multiple of `n` (the
    /// same contract as [`column_encoding`]).
    pub fn new(num_features: usize, n: usize) -> Self {
        assert!(n >= 1);
        assert!(
            num_features > 0 && num_features.is_multiple_of(n),
            "feature count {num_features} must be a positive multiple of n = {n}"
        );
        EncodingPlan {
            n,
            rows: num_features / n,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Number of features each point must carry.
    pub fn num_features(&self) -> usize {
        self.rows * self.n
    }

    /// The fused 2×2 for qubit `q`: the product of its alternating
    /// RZ/RX column, later rows applied after earlier ones.
    pub fn qubit_matrix(&self, x: &[f64], q: usize) -> Mat2 {
        let mut acc = identity2();
        for r in 0..self.rows {
            let angle = x[r * self.n + q];
            let g = if r % 2 == 0 {
                Gate::Rz(q, angle)
            } else {
                Gate::Rx(q, angle)
            };
            let m = g.matrix1().expect("rotations are single-qubit");
            acc = matmul2(&m, &acc);
        }
        acc
    }

    /// Encodes one point: `S(x)|0…0⟩` in `n` fused sweeps. Equal to
    /// `StateVector::from_circuit(&column_encoding(x, n))` to simulator
    /// tolerance (1e-12), and bit-for-bit equal to any lane of
    /// [`Self::encode_batch`] that carries the same point.
    pub fn encode_one(&self, x: &[f64]) -> StateVector {
        assert_eq!(x.len(), self.num_features(), "feature-count mismatch");
        let mut s = StateVector::zero_state(self.n);
        for q in 0..self.n {
            s.apply_unary(q, &self.qubit_matrix(x, q));
        }
        s
    }

    /// Encodes a batch of points into an amplitude-major SoA batch, lane
    /// `l` holding `S(xs[l])|0…0⟩` bit-for-bit as [`Self::encode_one`]
    /// would produce it.
    pub fn encode_batch(&self, xs: &[&[f64]]) -> BatchedStateVector {
        assert!(!xs.is_empty(), "batch must be non-empty");
        let mut b = BatchedStateVector::zero_states(self.n, xs.len());
        let mut mats = vec![identity2(); xs.len()];
        for q in 0..self.n {
            for (m, x) in mats.iter_mut().zip(xs) {
                assert_eq!(x.len(), self.num_features(), "feature-count mismatch");
                *m = self.qubit_matrix(x, q);
            }
            b.apply_unary_per_lane(q, &mats);
        }
        b
    }
}

/// A data re-uploading encoding (§III.B, citing Pérez-Salinas et al. \[47\]):
/// `layers` repetitions of (column encoding → ring of CNOTs). The paper
/// notes such models map exactly onto the simple construction with more
/// qubits \[48\]; here we provide them directly so re-uploading ansätze can
/// be used as the `S(x)` of any post-variational strategy.
pub fn reuploading_encoding(features: &[f64], n: usize, layers: usize) -> Circuit {
    assert!(layers >= 1);
    let mut c = Circuit::new(n);
    for layer in 0..layers {
        c.extend(&column_encoding(features, n));
        // Entangle between uploads (no entangler after the last upload —
        // measurement bases handle that).
        if layer + 1 < layers && n >= 2 {
            for q in 0..n {
                c.push(Gate::Cnot {
                    control: q,
                    target: (q + 1) % n,
                });
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::StateVector;

    #[test]
    fn fig7_gate_pattern() {
        let x: Vec<f64> = (0..16).map(|i| 0.1 * i as f64).collect();
        let c = fig7_encoding(&x);
        assert_eq!(c.num_qubits(), 4);
        assert_eq!(c.len(), 16);
        // First row is RZ on qubits 0..4 with features 0..4.
        assert_eq!(c.gates()[0], Gate::Rz(0, 0.0));
        assert!(matches!(c.gates()[3], Gate::Rz(3, a) if (a - 0.3).abs() < 1e-12));
        // Second row is RX.
        assert!(matches!(c.gates()[4], Gate::Rx(0, a) if (a - 0.4).abs() < 1e-12));
        // Third row RZ again.
        assert!(matches!(c.gates()[8], Gate::Rz(0, a) if (a - 0.8).abs() < 1e-12));
    }

    #[test]
    fn different_features_give_different_states() {
        let a: Vec<f64> = (0..16).map(|i| 0.3 + 0.1 * i as f64).collect();
        let mut b = a.clone();
        b[5] += 1.0; // an RX angle — physically meaningful
        let sa = StateVector::from_circuit(&fig7_encoding(&a));
        let sb = StateVector::from_circuit(&fig7_encoding(&b));
        assert!(sa.fidelity(&sb) < 1.0 - 1e-4);
    }

    #[test]
    fn zero_features_give_zero_state() {
        let s = StateVector::from_circuit(&fig7_encoding(&[0.0; 16]));
        assert!((s.probability(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn first_rz_row_is_global_phase_only() {
        // Changing only row-0 (RZ) angles must not change any probability
        // or any later measurement statistic from |0⟩ — matching the note
        // in the module docs.
        let mut a = vec![0.5; 16];
        let mut b = vec![0.5; 16];
        for q in 0..4 {
            a[q] = 0.1;
            b[q] = 2.1;
        }
        let sa = StateVector::from_circuit(&fig7_encoding(&a));
        let sb = StateVector::from_circuit(&fig7_encoding(&b));
        assert!((sa.fidelity(&sb) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn h_prefix_makes_first_rz_informative() {
        let mut a = vec![0.5; 16];
        let mut b = vec![0.5; 16];
        for q in 0..4 {
            a[q] = 0.1;
            b[q] = 2.1;
        }
        let sa = StateVector::from_circuit(&encoding_with_h_prefix(&a, 4));
        let sb = StateVector::from_circuit(&encoding_with_h_prefix(&b, 4));
        assert!(sa.fidelity(&sb) < 1.0 - 1e-4);
    }

    #[test]
    fn general_shapes() {
        let c = column_encoding(&[0.1; 12], 6); // 2 rows × 6 qubits
        assert_eq!(c.num_qubits(), 6);
        assert_eq!(c.len(), 12);
    }

    #[test]
    #[should_panic]
    fn wrong_feature_count_panics() {
        let _ = fig7_encoding(&[0.0; 15]);
    }

    #[test]
    fn reuploading_single_layer_equals_plain_encoding() {
        let x: Vec<f64> = (0..16).map(|i| 0.3 + 0.2 * i as f64).collect();
        let a = StateVector::from_circuit(&reuploading_encoding(&x, 4, 1));
        let b = StateVector::from_circuit(&column_encoding(&x, 4));
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reuploading_layers_change_the_state() {
        let x: Vec<f64> = (0..16).map(|i| 0.4 + 0.15 * i as f64).collect();
        let one = StateVector::from_circuit(&reuploading_encoding(&x, 4, 1));
        let two = StateVector::from_circuit(&reuploading_encoding(&x, 4, 2));
        assert!(one.fidelity(&two) < 1.0 - 1e-6);
        // Re-uploading creates entanglement between columns.
        let z0 = pauli::PauliString::parse("IIIZ").unwrap();
        let z1 = pauli::PauliString::parse("IIZI").unwrap();
        let zz = pauli::PauliString::parse("IIZZ").unwrap();
        let corr = two.expectation(&zz) - two.expectation(&z0) * two.expectation(&z1);
        assert!(corr.abs() > 1e-6, "no correlation: {corr}");
    }

    #[test]
    fn reuploading_gate_count() {
        let x = vec![0.2; 16];
        let c = reuploading_encoding(&x, 4, 3);
        // 3 × 16 rotations + 2 × 4 CNOTs.
        assert_eq!(c.len(), 48 + 8);
    }

    #[test]
    fn plan_matches_circuit_encoding() {
        for (nf, n) in [(16, 4), (12, 6), (5, 5), (9, 3)] {
            let x: Vec<f64> = (0..nf).map(|i| -0.8 + 0.23 * i as f64).collect();
            let plan = EncodingPlan::new(nf, n);
            let fused = plan.encode_one(&x);
            let direct = StateVector::from_circuit(&column_encoding(&x, n));
            for (a, b) in fused.amplitudes().iter().zip(direct.amplitudes()) {
                assert!((a - b).norm() < 1e-12, "nf={nf} n={n}");
            }
        }
    }

    #[test]
    fn plan_batch_lanes_bit_identical_to_encode_one() {
        let plan = EncodingPlan::new(16, 4);
        let points: Vec<Vec<f64>> = (0..5)
            .map(|p| (0..16).map(|i| 0.11 * (p * 16 + i) as f64).collect())
            .collect();
        let refs: Vec<&[f64]> = points.iter().map(|p| p.as_slice()).collect();
        let batch = plan.encode_batch(&refs);
        assert_eq!(batch.batch_size(), 5);
        for (l, x) in refs.iter().enumerate() {
            let solo = plan.encode_one(x);
            let lane = batch.lane(l);
            for (a, b) in lane.amplitudes().iter().zip(solo.amplitudes()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "lane {l}");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "lane {l}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn plan_rejects_wrong_feature_count() {
        let plan = EncodingPlan::new(16, 4);
        let _ = plan.encode_one(&[0.0; 12]);
    }
}

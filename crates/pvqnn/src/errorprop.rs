//! Error propagation through the network: Theorems 3–4 and Appendix C.
//!
//! The estimated feature matrix `Q̂` differs from the true `Q` by at most
//! `ε_H` per entry. Theorem 3 bounds the induced excess RMSE
//! `ΔL = L(α̂*, Q) − L(α*, Q)` of the closed-form solution; Theorem 4
//! gives the dimension-friendlier bound `ΔL ≤ 2√m·‖Q̂−Q‖_max` under the
//! `‖α‖₂ ≤ 1` constraint. This module computes both sides empirically so
//! the bounds can be *verified* on real feature matrices.

use linalg::svd::Svd;
use linalg::{lstsq, Mat};
use ml::optim::projected_gradient_descent;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Adds i.i.d. uniform(−`eps_h`, `eps_h`) noise to every entry — the
/// worst-case-bounded perturbation model of §VI.B.
pub fn perturb_uniform(q: &Mat, eps_h: f64, seed: u64) -> Mat {
    assert!(eps_h >= 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = q.clone();
    for v in out.data_mut() {
        *v += (rng.random::<f64>() * 2.0 - 1.0) * eps_h;
    }
    out
}

/// RMSE loss `‖Y − Qα‖₂/√d` (Eq. (29)).
pub fn rmse_of(q: &Mat, y: &[f64], alpha: &[f64]) -> f64 {
    let pred = q.matvec(alpha);
    let ss: f64 = pred
        .iter()
        .zip(y.iter())
        .map(|(p, t)| (p - t) * (p - t))
        .sum();
    (ss / q.rows() as f64).sqrt()
}

/// `ΔL_RMSE` for the **unconstrained** closed-form solutions (Eq. (32)):
/// trains `α* = Q⁺Y` and `α̂* = Q̂⁺Y`, evaluates both on the true `Q`.
pub fn delta_rmse_closed_form(q: &Mat, q_hat: &Mat, y: &[f64]) -> f64 {
    let alpha_star = lstsq(q, y);
    let alpha_hat = lstsq(q_hat, y);
    rmse_of(q, y, &alpha_hat) - rmse_of(q, y, &alpha_star)
}

/// `ΔL_RMSE` for the **ℓ2-constrained** program of Theorem 4 (`‖α‖₂ ≤
/// radius`), solved by projected gradient descent on both matrices.
pub fn delta_rmse_constrained(q: &Mat, q_hat: &Mat, y: &[f64], radius: f64) -> f64 {
    let solve = |mat: &Mat| {
        let d = mat.rows() as f64;
        let f = |a: &[f64]| {
            let pred = mat.matvec(a);
            pred.iter()
                .zip(y.iter())
                .map(|(p, t)| (p - t) * (p - t))
                .sum::<f64>()
                / d
        };
        let grad = |a: &[f64]| {
            let pred = mat.matvec(a);
            let resid: Vec<f64> = pred.iter().zip(y.iter()).map(|(p, t)| p - t).collect();
            mat.t_matvec(&resid).iter().map(|g| 2.0 * g / d).collect()
        };
        projected_gradient_descent(f, grad, vec![0.0; mat.cols()], radius, 6000, 0.5)
    };
    let alpha_star = solve(q);
    let alpha_hat = solve(q_hat);
    rmse_of(q, y, &alpha_hat) - rmse_of(q, y, &alpha_star)
}

/// The Theorem 3 admissible perturbation size: to guarantee `ΔL < ε` the
/// element-wise error must satisfy
/// `‖Q̂−Q‖_max < min( min(σ_min(Q), σ_min(Q̂)) / √(min(m,d)·m·d),
///                    ε / (6√m·‖Y‖₂·‖Q‖·‖Q⁺‖²) )`.
pub fn theorem3_threshold(q: &Mat, q_hat: &Mat, y: &[f64], eps: f64) -> f64 {
    let (d, m) = q.shape();
    let svd_q = Svd::compute(q);
    let svd_qh = Svd::compute(q_hat);
    let sigma_min = svd_q.sigma_min_nonzero().min(svd_qh.sigma_min_nonzero());
    let rank_guard = sigma_min / ((m.min(d) as f64).sqrt() * (m as f64) * (d as f64)).sqrt();

    let y_norm = linalg::mat::vec_norm2(y);
    let q_norm = svd_q.spectral_norm();
    let q_pinv_norm = 1.0 / svd_q.sigma_min_nonzero();
    let loss_guard = eps / (6.0 * (m as f64).sqrt() * y_norm * q_norm * q_pinv_norm * q_pinv_norm);

    rank_guard.min(loss_guard)
}

/// Theorem 4's threshold: `‖Q̂−Q‖_max < ε/(2√m)` suffices under the
/// constraint.
pub fn theorem4_threshold(eps: f64, m: usize) -> f64 {
    eps / (2.0 * (m as f64).sqrt())
}

/// Verifies the Lemma 8 rank-stability condition: if the perturbation is
/// below the rank guard, `rank(Q) = rank(Q̂)`.
pub fn ranks_match(q: &Mat, q_hat: &Mat) -> bool {
    linalg::svd::rank(q) == linalg::svd::rank(q_hat)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A well-conditioned synthetic Q with the paper's assumptions
    /// (κ_Q ∈ O(1), ‖Y‖ ∈ O(√d)).
    fn synthetic_q(d: usize, m: usize, seed: u64) -> (Mat, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = Mat::from_vec(
            d,
            m,
            (0..d * m)
                .map(|_| rng.random::<f64>() * 2.0 - 1.0)
                .collect(),
        );
        let alpha: Vec<f64> = (0..m)
            .map(|j| 0.5 * ((j as f64) * 0.7).sin() / (m as f64).sqrt())
            .collect();
        let mut y = q.matvec(&alpha);
        for v in y.iter_mut() {
            *v += (rng.random::<f64>() - 0.5) * 0.1; // small label noise
        }
        (q, y)
    }

    #[test]
    fn delta_l_is_nonnegative_for_closed_form() {
        // α* minimises L(·, Q), so any other α (including α̂*) can't do
        // better.
        let (q, y) = synthetic_q(40, 8, 1);
        for seed in 0..5 {
            let q_hat = perturb_uniform(&q, 0.05, seed);
            let dl = delta_rmse_closed_form(&q, &q_hat, &y);
            assert!(dl >= -1e-12, "ΔL = {dl}");
        }
    }

    #[test]
    fn theorem3_bound_holds_empirically() {
        let (q, y) = synthetic_q(50, 6, 2);
        let eps = 0.05;
        for seed in 0..10 {
            // Perturb *below* the admissible threshold and check ΔL < ε.
            let probe = perturb_uniform(&q, 1e-6, seed);
            let thr = theorem3_threshold(&q, &probe, &y, eps);
            assert!(thr > 0.0);
            let q_hat = perturb_uniform(&q, thr * 0.99, seed + 100);
            assert!(q_hat.max_abs_diff(&q) < thr);
            let dl = delta_rmse_closed_form(&q, &q_hat, &y);
            assert!(dl < eps, "seed {seed}: ΔL = {dl} ≥ ε = {eps}");
        }
    }

    #[test]
    fn theorem4_bound_holds_empirically() {
        let (q, y) = synthetic_q(40, 5, 3);
        let eps = 0.1;
        let m = q.cols();
        let thr = theorem4_threshold(eps, m);
        for seed in 0..5 {
            let q_hat = perturb_uniform(&q, thr * 0.99, seed);
            let dl = delta_rmse_constrained(&q, &q_hat, &y, 1.0);
            // The PGD solver is approximate; allow a small numerical slack.
            assert!(dl < eps + 1e-3, "seed {seed}: ΔL = {dl}");
        }
    }

    #[test]
    fn rank_stability_under_small_perturbation() {
        let (q, _) = synthetic_q(30, 6, 4);
        let svd = Svd::compute(&q);
        let guard = svd.sigma_min_nonzero() / ((6f64).sqrt() * 6.0 * 30.0).sqrt();
        let q_hat = perturb_uniform(&q, guard * 0.5, 7);
        assert!(ranks_match(&q, &q_hat));
    }

    #[test]
    fn larger_perturbations_generally_hurt_more() {
        let (q, y) = synthetic_q(60, 8, 5);
        // Average ΔL over seeds at two noise levels; the bigger level must
        // dominate on average.
        let avg = |eps_h: f64| -> f64 {
            (0..8)
                .map(|s| delta_rmse_closed_form(&q, &perturb_uniform(&q, eps_h, s), &y))
                .sum::<f64>()
                / 8.0
        };
        assert!(avg(0.1) > avg(0.001));
    }

    #[test]
    fn thresholds_shrink_with_m_and_eps() {
        assert!(theorem4_threshold(0.1, 100) < theorem4_threshold(0.1, 10));
        assert!(theorem4_threshold(0.05, 10) < theorem4_threshold(0.1, 10));
    }

    #[test]
    fn perturbation_respects_max_norm() {
        let (q, _) = synthetic_q(20, 4, 6);
        let q_hat = perturb_uniform(&q, 0.02, 1);
        assert!(q_hat.max_abs_diff(&q) <= 0.02 + 1e-15);
        let same = perturb_uniform(&q, 0.0, 1);
        assert_eq!(same.data(), q.data());
    }
}

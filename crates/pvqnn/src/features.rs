//! Post-variational feature generation (paper Algorithm 1).
//!
//! For every data point `x_i` and every neuron `(θ_a, O_b)` the generator
//! evaluates `Q[i, a·q+b] = ⟨0ⁿ| S†(x_i) U†(θ_a) O_b U(θ_a) S(x_i) |0ⁿ⟩`,
//! where `S` is the Fig. 7 column encoding and `U` the strategy's ansatz.
//!
//! Three measurement backends mirror the paper's error analysis:
//! * [`FeatureBackend::Exact`] — noiseless expectations (infinite shots),
//! * [`FeatureBackend::Shots`] — independent sample-mean estimation per
//!   neuron (Proposition 1's estimator),
//! * [`FeatureBackend::Shadows`] — classical shadows shared across all
//!   observables of one prepared state (Proposition 2's estimator).
//!
//! Rows are generated in parallel with rayon: the measurement stage is
//! embarrassingly parallel over `(data point, ansatz)` pairs, which is
//! precisely the structure the hybrid HPC-QC runtime (`hpcq`) exploits
//! across simulated QPUs.
//!
//! Three batching optimisations shape the inner loop: per data point the
//! shared encoding state `S(x_i)|0⟩` is simulated once and cloned per
//! ansatz shift (the shifts only append the — usually tiny, identity-
//! elided — ansatz tail); per prepared state all observables are
//! evaluated by one fused `StateVector::expectation_many` pass for the
//! exact backend; and the stochastic backends sample **all shifts of one
//! row in a single pass** — one RNG per row (instead of one per
//! `(row, shift)` pair) and, for `Shots`, one measurement rotation + CDF
//! sampler per qubit-wise-commuting observable group
//! (`qsim::estimate_paulis_batched`), so sampler setup is amortized
//! across the shifts while every neuron still draws its own independent
//! shots (Proposition 1's estimator).

use crate::encoding::column_encoding;
use crate::strategy::Strategy;
use linalg::Mat;
use qsim::{estimate_paulis_batched, Circuit, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use shadows::{ShadowEstimator, ShadowProtocol};

/// How neuron expectations are estimated.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FeatureBackend {
    /// Noiseless expectation values from the state vector.
    Exact,
    /// Independent finite-shot sample means, `shots` per neuron
    /// (Proposition 1), drawn in one batched pass per row (rotations and
    /// CDF samplers shared, shots not). Deterministic given `seed`.
    Shots {
        /// Measurement shots per (data point, neuron).
        shots: usize,
        /// Base RNG seed.
        seed: u64,
    },
    /// Classical shadows: `snapshots` random-basis measurements per
    /// prepared state, shared by all observables of that state
    /// (Proposition 2), estimated with `groups`-fold median-of-means.
    Shadows {
        /// Snapshots per (data point, ansatz) state.
        snapshots: usize,
        /// Median-of-means groups.
        groups: usize,
        /// Base RNG seed.
        seed: u64,
    },
}

/// Generates feature matrices from raw `[0, 2π)` feature rows.
#[derive(Clone, Debug)]
pub struct FeatureGenerator {
    strategy: Strategy,
    backend: FeatureBackend,
}

/// Derives a stream-independent seed for data row `i`. One RNG serves the
/// whole row — consumed in fixed shift-then-observable order, so results
/// stay deterministic for any thread count — instead of re-seeding per
/// `(row, shift)` pair.
fn derive_row_seed(base: u64, i: usize) -> u64 {
    base ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x1656_67B1_9E37_79F9
}

impl FeatureGenerator {
    /// Couples a strategy with a measurement backend.
    pub fn new(strategy: Strategy, backend: FeatureBackend) -> Self {
        FeatureGenerator { strategy, backend }
    }

    /// The underlying strategy.
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// The measurement backend.
    pub fn backend(&self) -> FeatureBackend {
        self.backend
    }

    /// The full circuit for (features `x`, shift index `a`): encoding plus
    /// the bound (and identity-elided) ansatz.
    pub fn circuit_for(&self, x: &[f64], shift_idx: usize) -> Circuit {
        let n = self.strategy.num_qubits();
        let mut c = column_encoding(x, n);
        if let Some(ansatz) = self.strategy.ansatz() {
            c.extend(&ansatz.bind_optimized(&self.strategy.shifts()[shift_idx]));
        }
        c
    }

    /// The per-shift ansatz circuits, bound (and identity-elided) once —
    /// they are shared by every data point, so binding per `(i, a)` pair
    /// would redo the same work `d` times.
    fn bound_shift_circuits(&self) -> Vec<Option<Circuit>> {
        match self.strategy.ansatz() {
            Some(ansatz) => self
                .strategy
                .shifts()
                .iter()
                .map(|s| Some(ansatz.bind_optimized(s)))
                .collect(),
            None => vec![None; self.strategy.num_ansatze()],
        }
    }

    /// One feature row: the encoding state `S(x)|0⟩` is simulated **once**
    /// and then cloned-and-extended per ansatz shift, instead of re-running
    /// the full circuit from `|0…0⟩` for every shift — for the hybrid
    /// strategy (17 shifts at 1-order) that cuts circuit simulation ~17×.
    /// Stochastic backends additionally sample all shifts in one pass
    /// through a single row-level RNG.
    fn row_for(&self, i: usize, x: &[f64], shift_circuits: &[Option<Circuit>]) -> Vec<f64> {
        let m = self.strategy.num_neurons();
        let q = self.strategy.num_observables();
        let n = self.strategy.num_qubits();
        let mut row = vec![0.0; m];
        let encoded = StateVector::from_circuit(&column_encoding(x, n));
        let mut rng = match self.backend {
            FeatureBackend::Exact => None,
            FeatureBackend::Shots { seed, .. } | FeatureBackend::Shadows { seed, .. } => {
                Some(StdRng::seed_from_u64(derive_row_seed(seed, i)))
            }
        };
        for (a, shifted) in shift_circuits.iter().enumerate() {
            let out = &mut row[a * q..(a + 1) * q];
            match shifted {
                Some(c) if !c.is_empty() => {
                    let mut state = encoded.clone();
                    state.apply_circuit(c);
                    self.fill_observables(&state, rng.as_mut(), out);
                }
                // No ansatz (observable construction) or a fully-elided
                // shift (the all-zeros base circuit): measure S(x)|0⟩.
                _ => self.fill_observables(&encoded, rng.as_mut(), out),
            }
        }
        row
    }

    /// Generates the `d × m` feature matrix `Q` for the given data rows
    /// (each row is a `[0, 2π)` feature vector, length a multiple of the
    /// qubit count). Deterministic for stochastic backends.
    pub fn generate(&self, data: &[Vec<f64>]) -> Mat {
        assert!(!data.is_empty(), "no data rows");
        let shift_circuits = self.bound_shift_circuits();
        let rows: Vec<Vec<f64>> = data
            .par_iter()
            .enumerate()
            .map(|(i, x)| self.row_for(i, x, &shift_circuits))
            .collect();
        Mat::from_rows(&rows)
    }

    /// Evaluates all observables of one prepared state into `out`,
    /// drawing any shot noise from the row-level RNG (`None` only for the
    /// exact backend).
    fn fill_observables(&self, state: &StateVector, rng: Option<&mut StdRng>, out: &mut [f64]) {
        let obs = self.strategy.observables();
        match self.backend {
            FeatureBackend::Exact => {
                out.copy_from_slice(&state.expectation_many(obs));
            }
            FeatureBackend::Shots { shots, .. } => {
                // One rotation + CDF sampler per commuting observable
                // group; every neuron still draws its own `shots`.
                let rng = rng.expect("stochastic backend needs a row RNG");
                out.copy_from_slice(&estimate_paulis_batched(state, obs, shots, rng));
            }
            FeatureBackend::Shadows {
                snapshots, groups, ..
            } => {
                let rng = rng.expect("stochastic backend needs a row RNG");
                let protocol = ShadowProtocol::new(snapshots, 0);
                let est = ShadowEstimator::new(protocol.acquire_with_rng(state, rng), groups);
                let values = est.estimate_many(obs);
                out.copy_from_slice(&values);
            }
        }
    }

    /// Convenience: generate features for a single sample — the row is
    /// produced directly, with no intermediate data copy or matrix.
    pub fn generate_one(&self, x: &[f64]) -> Vec<f64> {
        self.row_for(0, x, &self.bound_shift_circuits())
    }

    /// One feature row per input, each seeded exactly like a standalone
    /// [`Self::generate_one`] call (row index 0) — so a row depends only
    /// on its own data point, never on where it sits in the batch. This
    /// is the batch entry point for online inference: the serving layer
    /// coalesces concurrent single requests into micro-batches and caches
    /// rows by input, which is only sound when the batched row is
    /// bit-for-bit the row a lone request would have produced. Shift
    /// circuits are bound once and rows fan out on the shared executor.
    ///
    /// Contrast [`Self::generate`], which seeds stochastic backends per
    /// row *index* — right for training datasets (independent noise per
    /// sample), wrong for a cache keyed on the input alone.
    pub fn generate_rows_standalone(&self, xs: &[&[f64]]) -> Vec<Vec<f64>> {
        if xs.is_empty() {
            return Vec::new();
        }
        let shift_circuits = self.bound_shift_circuits();
        xs.par_iter()
            .map(|x| self.row_for(0, x, &shift_circuits))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::fig8_ansatz;
    use crate::strategy::Strategy;

    fn toy_data(d: usize) -> Vec<Vec<f64>> {
        (0..d)
            .map(|i| {
                (0..16)
                    .map(|j| 0.3 + 0.11 * ((i * 16 + j) % 19) as f64)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn exact_features_shape_and_range() {
        let s = Strategy::observable_construction(4, 1);
        let generator = FeatureGenerator::new(s, FeatureBackend::Exact);
        let q = generator.generate(&toy_data(5));
        assert_eq!(q.shape(), (5, 13));
        // Expectations of Pauli strings are in [−1, 1]; identity column is 1.
        for i in 0..5 {
            assert!((q[(i, 0)] - 1.0).abs() < 1e-12, "identity column");
            for j in 0..13 {
                assert!(q[(i, j)].abs() <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn hybrid_column_layout_matches_strategy() {
        let s = Strategy::hybrid(fig8_ansatz(4), 1, 1);
        let generator = FeatureGenerator::new(s, FeatureBackend::Exact);
        let data = toy_data(2);
        let q = generator.generate(&data);
        assert_eq!(q.shape(), (2, 17 * 13));
        // Column (a, 0) is the identity observable under any shift → 1.
        let strat = generator.strategy();
        for a in 0..strat.num_ansatze() {
            let col = strat.column_of(a, 0);
            assert!((q[(0, col)] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn shots_converge_to_exact() {
        let s = Strategy::observable_construction(4, 1);
        let exact = FeatureGenerator::new(s.clone(), FeatureBackend::Exact);
        let shot = FeatureGenerator::new(
            s,
            FeatureBackend::Shots {
                shots: 50_000,
                seed: 3,
            },
        );
        let data = toy_data(2);
        let qe = exact.generate(&data);
        let qs = shot.generate(&data);
        assert!(
            qe.max_abs_diff(&qs) < 0.05,
            "max dev {}",
            qe.max_abs_diff(&qs)
        );
    }

    #[test]
    fn shadows_converge_to_exact() {
        let s = Strategy::observable_construction(4, 1);
        let exact = FeatureGenerator::new(s.clone(), FeatureBackend::Exact);
        let sh = FeatureGenerator::new(
            s,
            FeatureBackend::Shadows {
                snapshots: 30_000,
                groups: 10,
                seed: 5,
            },
        );
        let data = toy_data(2);
        let qe = exact.generate(&data);
        let qs = sh.generate(&data);
        assert!(
            qe.max_abs_diff(&qs) < 0.12,
            "max dev {}",
            qe.max_abs_diff(&qs)
        );
    }

    #[test]
    fn stochastic_backends_are_deterministic() {
        let s = Strategy::observable_construction(4, 1);
        let make = || {
            FeatureGenerator::new(
                s.clone(),
                FeatureBackend::Shots {
                    shots: 100,
                    seed: 9,
                },
            )
            .generate(&toy_data(3))
        };
        assert_eq!(make().data(), make().data());
    }

    #[test]
    fn different_data_different_features() {
        let s = Strategy::observable_construction(4, 2);
        let generator = FeatureGenerator::new(s, FeatureBackend::Exact);
        let q = generator.generate(&toy_data(3));
        // Rows shouldn't be identical for distinct inputs.
        assert!(q.row(0) != q.row(1));
    }

    #[test]
    fn generate_one_matches_batch() {
        let s = Strategy::observable_construction(4, 1);
        let generator = FeatureGenerator::new(s, FeatureBackend::Exact);
        let data = toy_data(3);
        let q = generator.generate(&data);
        let one = generator.generate_one(&data[1]);
        assert_eq!(q.row(1), &one[..]);
    }

    #[test]
    fn standalone_rows_match_generate_one_for_stochastic_backends() {
        // Every row of a standalone batch must be bit-for-bit the row a
        // lone generate_one call produces — including shot noise, which
        // generate() would instead seed by row index.
        let s = Strategy::observable_construction(4, 1);
        let generator = FeatureGenerator::new(
            s,
            FeatureBackend::Shots {
                shots: 200,
                seed: 13,
            },
        );
        let data = toy_data(3);
        let refs: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        let rows = generator.generate_rows_standalone(&refs);
        assert_eq!(rows.len(), 3);
        for (x, row) in data.iter().zip(rows.iter()) {
            assert_eq!(row, &generator.generate_one(x));
        }
        assert!(generator.generate_rows_standalone(&[]).is_empty());
    }

    #[test]
    fn zero_shift_base_circuit_has_no_ansatz_rotations() {
        let s = Strategy::hybrid(fig8_ansatz(4), 1, 1);
        let generator = FeatureGenerator::new(s, FeatureBackend::Exact);
        let x: Vec<f64> = (0..16).map(|i| 0.2 * i as f64).collect();
        let base = generator.circuit_for(&x, 0);
        // Encoding has 16 rotations; zero ansatz leaves only the 8 CNOTs.
        let (single, double) = base.gate_counts();
        assert_eq!(single, 16);
        assert_eq!(double, 8);
        // A shifted circuit keeps its one surviving rotation.
        let shifted = generator.circuit_for(&x, 1);
        assert_eq!(shifted.gate_counts().0, 17);
    }
}

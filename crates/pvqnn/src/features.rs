//! Post-variational feature generation (paper Algorithm 1).
//!
//! For every data point `x_i` and every neuron `(θ_a, O_b)` the generator
//! evaluates `Q[i, a·q+b] = ⟨0ⁿ| S†(x_i) U†(θ_a) O_b U(θ_a) S(x_i) |0ⁿ⟩`,
//! where `S` is the Fig. 7 column encoding and `U` the strategy's ansatz.
//!
//! Three measurement backends mirror the paper's error analysis:
//! * [`FeatureBackend::Exact`] — noiseless expectations (infinite shots),
//! * [`FeatureBackend::Shots`] — independent sample-mean estimation per
//!   neuron (Proposition 1's estimator),
//! * [`FeatureBackend::Shadows`] — classical shadows shared across all
//!   observables of one prepared state (Proposition 2's estimator).
//!
//! Rows are generated in parallel with rayon: the measurement stage is
//! embarrassingly parallel over `(data point, ansatz)` pairs, which is
//! precisely the structure the hybrid HPC-QC runtime (`hpcq`) exploits
//! across simulated QPUs.
//!
//! Several batching optimisations shape the inner loop:
//!
//! * the Fig. 7 encoding is executed through a fused
//!   [`EncodingPlan`] — one dense 2×2 sweep per qubit instead of one per
//!   gate — and whole blocks of data points encode together in an
//!   amplitude-major [`qsim::BatchedStateVector`] (see [`ENCODE_BLOCK`]);
//! * the per-shift ansatz tails are bound, identity-elided, and
//!   **gate-fused** once per generator ([`qsim::compile()`]) and cached, so
//!   every row replays compact [`CompiledCircuit`]s;
//! * per prepared state all observables are evaluated by one fused
//!   `StateVector::expectation_many` pass for the exact backend;
//! * the stochastic backends sample **all shifts of one row in a single
//!   pass** — one RNG per row (instead of one per `(row, shift)` pair)
//!   and, for `Shots`, one measurement rotation + CDF sampler per
//!   qubit-wise-commuting observable group
//!   (`qsim::estimate_paulis_batched`), so sampler setup is amortized
//!   across the shifts while every neuron still draws its own independent
//!   shots (Proposition 1's estimator).
//!
//! Batched and per-point paths are **bit-for-bit identical**: the batch
//! kernels evaluate the same arithmetic per lane, and each lane's RNG is
//! seeded and consumed exactly as the standalone row would seed and
//! consume it. The serving layer's "micro-batching never changes a
//! prediction" guarantee is built on this.

use crate::encoding::{column_encoding, EncodingPlan};
use crate::strategy::Strategy;
use linalg::Mat;
use qsim::{estimate_paulis_batched, Circuit, CompiledCircuit, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use shadows::{ShadowEstimator, ShadowProtocol};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Rows encoded together per batched simulation block: enough lanes to
/// fill wide SIMD sweeps and amortize per-basis index math, small enough
/// that a block of states stays cache-resident and chunk-level rayon
/// parallelism still has work to steal.
pub const ENCODE_BLOCK: usize = 32;

/// How neuron expectations are estimated.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FeatureBackend {
    /// Noiseless expectation values from the state vector.
    Exact,
    /// Independent finite-shot sample means, `shots` per neuron
    /// (Proposition 1), drawn in one batched pass per row (rotations and
    /// CDF samplers shared, shots not). Deterministic given `seed`.
    Shots {
        /// Measurement shots per (data point, neuron).
        shots: usize,
        /// Base RNG seed.
        seed: u64,
    },
    /// Classical shadows: `snapshots` random-basis measurements per
    /// prepared state, shared by all observables of that state
    /// (Proposition 2), estimated with `groups`-fold median-of-means.
    Shadows {
        /// Snapshots per (data point, ansatz) state.
        snapshots: usize,
        /// Median-of-means groups.
        groups: usize,
        /// Base RNG seed.
        seed: u64,
    },
}

/// Generates feature matrices from raw `[0, 2π)` feature rows.
#[derive(Clone)]
pub struct FeatureGenerator {
    strategy: Strategy,
    backend: FeatureBackend,
    /// Per-shift ansatz tails, bound + gate-fused once on first use
    /// (`None` for shifts whose tail elides/fuses away entirely). The
    /// encoding circuit is static per model, so this is the tentpole's
    /// "compile once, cache alongside the fingerprint" store.
    compiled_shifts: OnceLock<Arc<Vec<Option<CompiledCircuit>>>>,
    /// Cached [`Self::fingerprint`].
    fingerprint: OnceLock<u64>,
}

/// Caches are deliberately excluded: the serving layer fingerprints a
/// generator by hashing this representation, so it must spell out exactly
/// the semantic fields (strategy and backend, shots/seeds included) and
/// nothing derived from them.
impl fmt::Debug for FeatureGenerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FeatureGenerator")
            .field("strategy", &self.strategy)
            .field("backend", &self.backend)
            .finish()
    }
}

/// Derives a stream-independent seed for data row `i`. One RNG serves the
/// whole row — consumed in fixed shift-then-observable order, so results
/// stay deterministic for any thread count — instead of re-seeding per
/// `(row, shift)` pair.
fn derive_row_seed(base: u64, i: usize) -> u64 {
    base ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x1656_67B1_9E37_79F9
}

impl FeatureGenerator {
    /// Couples a strategy with a measurement backend.
    pub fn new(strategy: Strategy, backend: FeatureBackend) -> Self {
        FeatureGenerator {
            strategy,
            backend,
            compiled_shifts: OnceLock::new(),
            fingerprint: OnceLock::new(),
        }
    }

    /// A stable fingerprint of the semantic configuration: equal
    /// generators (same strategy, shifts, observables, backend — shot
    /// counts and seeds included) hash equal. Cached feature rows are
    /// valid only for the generator that produced them, so the serving
    /// layer segments its cache by this value. Built from the `Debug`
    /// representation, which spells out every semantic component and
    /// none of the derived caches.
    pub fn fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| {
            use std::hash::{Hash, Hasher};
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            format!("{self:?}").hash(&mut hasher);
            hasher.finish()
        })
    }

    /// The underlying strategy.
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// The measurement backend.
    pub fn backend(&self) -> FeatureBackend {
        self.backend
    }

    /// The full circuit for (features `x`, shift index `a`): encoding plus
    /// the bound (and identity-elided) ansatz.
    pub fn circuit_for(&self, x: &[f64], shift_idx: usize) -> Circuit {
        let n = self.strategy.num_qubits();
        let mut c = column_encoding(x, n);
        if let Some(ansatz) = self.strategy.ansatz() {
            c.extend(&ansatz.bind_optimized(&self.strategy.shifts()[shift_idx]));
        }
        c
    }

    /// The per-shift ansatz circuits, bound, identity-elided, and
    /// gate-fused **once per generator** — they are shared by every data
    /// point ever fed through this generator, so the one-time
    /// [`qsim::compile`] pass amortizes across the whole workload. Shifts
    /// whose tail compiles to nothing (e.g. the all-zeros base shift)
    /// are `None`: the encoding state is measured directly.
    fn compiled_shifts(&self) -> Arc<Vec<Option<CompiledCircuit>>> {
        Arc::clone(self.compiled_shifts.get_or_init(|| {
            Arc::new(match self.strategy.ansatz() {
                Some(ansatz) => self
                    .strategy
                    .shifts()
                    .iter()
                    .map(|s| {
                        let cc = qsim::compile(&ansatz.bind_optimized(s));
                        if cc.is_empty() {
                            None
                        } else {
                            Some(cc)
                        }
                    })
                    .collect(),
                None => vec![None; self.strategy.num_ansatze()],
            })
        }))
    }

    /// One feature row: the encoding state `S(x)|0⟩` is built **once**
    /// through the fused [`EncodingPlan`] and then cloned-and-extended per
    /// compiled ansatz shift, instead of re-running the full circuit from
    /// `|0…0⟩` for every shift — for the hybrid strategy (17 shifts at
    /// 1-order) that cuts circuit simulation ~17×. Stochastic backends
    /// additionally sample all shifts in one pass through a single
    /// row-level RNG.
    fn row_for(&self, i: usize, x: &[f64], shifts: &[Option<CompiledCircuit>]) -> Vec<f64> {
        let m = self.strategy.num_neurons();
        let q = self.strategy.num_observables();
        let n = self.strategy.num_qubits();
        let mut row = vec![0.0; m];
        let encoded = EncodingPlan::new(x.len(), n).encode_one(x);
        let mut rng = match self.backend {
            FeatureBackend::Exact => None,
            FeatureBackend::Shots { seed, .. } | FeatureBackend::Shadows { seed, .. } => {
                Some(StdRng::seed_from_u64(derive_row_seed(seed, i)))
            }
        };
        for (a, shifted) in shifts.iter().enumerate() {
            let out = &mut row[a * q..(a + 1) * q];
            match shifted {
                Some(cc) => {
                    let mut state = encoded.clone();
                    state.apply_compiled(cc);
                    self.fill_observables(&state, rng.as_mut(), out);
                }
                // No ansatz (observable construction) or a fully-fused-
                // away shift (the all-zeros base circuit): measure S(x)|0⟩.
                None => self.fill_observables(&encoded, rng.as_mut(), out),
            }
        }
        row
    }

    /// Feature rows for a block of points that share one feature length:
    /// the whole block encodes in one amplitude-major
    /// [`qsim::BatchedStateVector`] pass, each compiled shift applies to
    /// all lanes at once, and lane `l` is measured with its own RNG seeded
    /// by `indices[l]` and consumed in ascending shift order — exactly the
    /// seeding and consumption order [`Self::row_for`] uses, so each row
    /// is bit-for-bit what the per-point path would have produced.
    fn rows_for_block(
        &self,
        indices: &[usize],
        xs: &[&[f64]],
        shifts: &[Option<CompiledCircuit>],
    ) -> Vec<Vec<f64>> {
        debug_assert_eq!(indices.len(), xs.len());
        let m = self.strategy.num_neurons();
        let q = self.strategy.num_observables();
        let n = self.strategy.num_qubits();
        let encoded = EncodingPlan::new(xs[0].len(), n).encode_batch(xs);
        let mut rngs: Vec<Option<StdRng>> = match self.backend {
            FeatureBackend::Exact => vec![None; xs.len()],
            FeatureBackend::Shots { seed, .. } | FeatureBackend::Shadows { seed, .. } => indices
                .iter()
                .map(|&i| Some(StdRng::seed_from_u64(derive_row_seed(seed, i))))
                .collect(),
        };
        let mut rows = vec![vec![0.0; m]; xs.len()];
        for (a, shifted) in shifts.iter().enumerate() {
            match shifted {
                Some(cc) => {
                    let mut batch = encoded.clone();
                    batch.apply_compiled(cc);
                    for (l, row) in rows.iter_mut().enumerate() {
                        self.fill_observables(
                            &batch.lane(l),
                            rngs[l].as_mut(),
                            &mut row[a * q..(a + 1) * q],
                        );
                    }
                }
                None => {
                    for (l, row) in rows.iter_mut().enumerate() {
                        self.fill_observables(
                            &encoded.lane(l),
                            rngs[l].as_mut(),
                            &mut row[a * q..(a + 1) * q],
                        );
                    }
                }
            }
        }
        rows
    }

    /// Splits a chunk into consecutive runs of equal feature length (a
    /// [`rows_for_block`](Self::rows_for_block) needs one shared encoding
    /// shape) and concatenates the runs' rows in order.
    fn rows_for_chunk(
        &self,
        indices: &[usize],
        xs: &[&[f64]],
        shifts: &[Option<CompiledCircuit>],
    ) -> Vec<Vec<f64>> {
        let mut out = Vec::with_capacity(xs.len());
        let mut start = 0;
        while start < xs.len() {
            let mut end = start + 1;
            while end < xs.len() && xs[end].len() == xs[start].len() {
                end += 1;
            }
            out.extend(self.rows_for_block(&indices[start..end], &xs[start..end], shifts));
            start = end;
        }
        out
    }

    /// Generates the `d × m` feature matrix `Q` for the given data rows
    /// (each row is a `[0, 2π)` feature vector, length a multiple of the
    /// qubit count). Rows encode in batched blocks of [`ENCODE_BLOCK`]
    /// (blocks fanned out on the shared executor); the result is
    /// deterministic for stochastic backends and independent of both the
    /// thread count and the blocking — each row is bit-for-bit the row
    /// the per-point path computes.
    pub fn generate(&self, data: &[Vec<f64>]) -> Mat {
        assert!(!data.is_empty(), "no data rows");
        let shifts = self.compiled_shifts();
        let blocks: Vec<Vec<Vec<f64>>> = data
            .par_chunks(ENCODE_BLOCK)
            .enumerate()
            .map(|(ci, chunk)| {
                let refs: Vec<&[f64]> = chunk.iter().map(Vec::as_slice).collect();
                let base = ci * ENCODE_BLOCK;
                let indices: Vec<usize> = (base..base + chunk.len()).collect();
                self.rows_for_chunk(&indices, &refs, &shifts)
            })
            .collect();
        let rows: Vec<Vec<f64>> = blocks.into_iter().flatten().collect();
        Mat::from_rows(&rows)
    }

    /// Evaluates all observables of one prepared state into `out`,
    /// drawing any shot noise from the row-level RNG (`None` only for the
    /// exact backend).
    fn fill_observables(&self, state: &StateVector, rng: Option<&mut StdRng>, out: &mut [f64]) {
        let obs = self.strategy.observables();
        match self.backend {
            FeatureBackend::Exact => {
                out.copy_from_slice(&state.expectation_many(obs));
            }
            FeatureBackend::Shots { shots, .. } => {
                // One rotation + CDF sampler per commuting observable
                // group; every neuron still draws its own `shots`.
                let rng = rng.expect("stochastic backend needs a row RNG");
                out.copy_from_slice(&estimate_paulis_batched(state, obs, shots, rng));
            }
            FeatureBackend::Shadows {
                snapshots, groups, ..
            } => {
                let rng = rng.expect("stochastic backend needs a row RNG");
                let protocol = ShadowProtocol::new(snapshots, 0);
                let est = ShadowEstimator::new(protocol.acquire_with_rng(state, rng), groups);
                let values = est.estimate_many(obs);
                out.copy_from_slice(&values);
            }
        }
    }

    /// Convenience: generate features for a single sample — the row is
    /// produced directly, with no intermediate data copy or matrix.
    pub fn generate_one(&self, x: &[f64]) -> Vec<f64> {
        self.row_for(0, x, &self.compiled_shifts())
    }

    /// One feature row per input, each seeded exactly like a standalone
    /// [`Self::generate_one`] call (row index 0) — so a row depends only
    /// on its own data point, never on where it sits in the batch. This
    /// is the batch entry point for online inference: the serving layer
    /// coalesces concurrent single requests into micro-batches and caches
    /// rows by input, which is only sound when the batched row is
    /// bit-for-bit the row a lone request would have produced — which
    /// holds even though the batch encodes in SoA blocks, because the
    /// batched kernels are bit-identical per lane.
    ///
    /// Contrast [`Self::generate`], which seeds stochastic backends per
    /// row *index* — right for training datasets (independent noise per
    /// sample), wrong for a cache keyed on the input alone.
    pub fn generate_rows_standalone(&self, xs: &[&[f64]]) -> Vec<Vec<f64>> {
        if xs.is_empty() {
            return Vec::new();
        }
        let shifts = self.compiled_shifts();
        let blocks: Vec<Vec<Vec<f64>>> = xs
            .par_chunks(ENCODE_BLOCK)
            .map(|chunk| {
                let indices = vec![0usize; chunk.len()];
                self.rows_for_chunk(&indices, chunk, &shifts)
            })
            .collect();
        blocks.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::fig8_ansatz;
    use crate::strategy::Strategy;

    fn toy_data(d: usize) -> Vec<Vec<f64>> {
        (0..d)
            .map(|i| {
                (0..16)
                    .map(|j| 0.3 + 0.11 * ((i * 16 + j) % 19) as f64)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn exact_features_shape_and_range() {
        let s = Strategy::observable_construction(4, 1);
        let generator = FeatureGenerator::new(s, FeatureBackend::Exact);
        let q = generator.generate(&toy_data(5));
        assert_eq!(q.shape(), (5, 13));
        // Expectations of Pauli strings are in [−1, 1]; identity column is 1.
        for i in 0..5 {
            assert!((q[(i, 0)] - 1.0).abs() < 1e-12, "identity column");
            for j in 0..13 {
                assert!(q[(i, j)].abs() <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn hybrid_column_layout_matches_strategy() {
        let s = Strategy::hybrid(fig8_ansatz(4), 1, 1);
        let generator = FeatureGenerator::new(s, FeatureBackend::Exact);
        let data = toy_data(2);
        let q = generator.generate(&data);
        assert_eq!(q.shape(), (2, 17 * 13));
        // Column (a, 0) is the identity observable under any shift → 1.
        let strat = generator.strategy();
        for a in 0..strat.num_ansatze() {
            let col = strat.column_of(a, 0);
            assert!((q[(0, col)] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn shots_converge_to_exact() {
        let s = Strategy::observable_construction(4, 1);
        let exact = FeatureGenerator::new(s.clone(), FeatureBackend::Exact);
        let shot = FeatureGenerator::new(
            s,
            FeatureBackend::Shots {
                shots: 50_000,
                seed: 3,
            },
        );
        let data = toy_data(2);
        let qe = exact.generate(&data);
        let qs = shot.generate(&data);
        assert!(
            qe.max_abs_diff(&qs) < 0.05,
            "max dev {}",
            qe.max_abs_diff(&qs)
        );
    }

    #[test]
    fn shadows_converge_to_exact() {
        let s = Strategy::observable_construction(4, 1);
        let exact = FeatureGenerator::new(s.clone(), FeatureBackend::Exact);
        let sh = FeatureGenerator::new(
            s,
            FeatureBackend::Shadows {
                snapshots: 30_000,
                groups: 10,
                seed: 5,
            },
        );
        let data = toy_data(2);
        let qe = exact.generate(&data);
        let qs = sh.generate(&data);
        assert!(
            qe.max_abs_diff(&qs) < 0.12,
            "max dev {}",
            qe.max_abs_diff(&qs)
        );
    }

    #[test]
    fn stochastic_backends_are_deterministic() {
        let s = Strategy::observable_construction(4, 1);
        let make = || {
            FeatureGenerator::new(
                s.clone(),
                FeatureBackend::Shots {
                    shots: 100,
                    seed: 9,
                },
            )
            .generate(&toy_data(3))
        };
        assert_eq!(make().data(), make().data());
    }

    #[test]
    fn different_data_different_features() {
        let s = Strategy::observable_construction(4, 2);
        let generator = FeatureGenerator::new(s, FeatureBackend::Exact);
        let q = generator.generate(&toy_data(3));
        // Rows shouldn't be identical for distinct inputs.
        assert!(q.row(0) != q.row(1));
    }

    #[test]
    fn generate_one_matches_batch() {
        let s = Strategy::observable_construction(4, 1);
        let generator = FeatureGenerator::new(s, FeatureBackend::Exact);
        let data = toy_data(3);
        let q = generator.generate(&data);
        let one = generator.generate_one(&data[1]);
        assert_eq!(q.row(1), &one[..]);
    }

    #[test]
    fn standalone_rows_match_generate_one_for_stochastic_backends() {
        // Every row of a standalone batch must be bit-for-bit the row a
        // lone generate_one call produces — including shot noise, which
        // generate() would instead seed by row index.
        let s = Strategy::observable_construction(4, 1);
        let generator = FeatureGenerator::new(
            s,
            FeatureBackend::Shots {
                shots: 200,
                seed: 13,
            },
        );
        let data = toy_data(3);
        let refs: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        let rows = generator.generate_rows_standalone(&refs);
        assert_eq!(rows.len(), 3);
        for (x, row) in data.iter().zip(rows.iter()) {
            assert_eq!(row, &generator.generate_one(x));
        }
        assert!(generator.generate_rows_standalone(&[]).is_empty());
    }

    #[test]
    fn batched_generate_bit_identical_across_thread_counts() {
        // Satellite: batched encode must be bit-for-bit equal to the
        // per-point path at 1, 2, and 4 threads. generate_one is the
        // per-point reference (row_for + encode_one); generate and
        // generate_rows_standalone go through the SoA block path.
        let s = Strategy::hybrid(fig8_ansatz(4), 1, 1);
        let generator = FeatureGenerator::new(
            s,
            FeatureBackend::Shots {
                shots: 64,
                seed: 21,
            },
        );
        let data = toy_data(5);
        let refs: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        let reference: Vec<Vec<f64>> = refs.iter().map(|x| generator.generate_one(x)).collect();
        for threads in [1, 2, 4] {
            let rows =
                rayon::with_num_threads(threads, || generator.generate_rows_standalone(&refs));
            assert_eq!(rows, reference, "threads = {threads}");
        }
    }

    #[test]
    fn generate_handles_mixed_feature_lengths() {
        // Blocks split into runs of equal feature length; rows of either
        // length must match their standalone counterparts exactly.
        let s = Strategy::observable_construction(4, 1);
        let generator = FeatureGenerator::new(s, FeatureBackend::Exact);
        let mut data = toy_data(2);
        data.push((0..8).map(|j| 0.4 + 0.09 * j as f64).collect());
        data.push((0..16).map(|j| 0.2 + 0.05 * j as f64).collect());
        let q = generator.generate(&data);
        for (i, x) in data.iter().enumerate() {
            assert_eq!(q.row(i), &generator.generate_one(x)[..], "row {i}");
        }
    }

    #[test]
    fn generate_spanning_multiple_blocks_matches_per_point() {
        // More rows than ENCODE_BLOCK forces multi-chunk fan-out; exact
        // backend rows must still equal generate_one per point.
        let s = Strategy::observable_construction(4, 1);
        let generator = FeatureGenerator::new(s, FeatureBackend::Exact);
        let data = toy_data(ENCODE_BLOCK + 3);
        let q = generator.generate(&data);
        for (i, x) in data.iter().enumerate().step_by(7) {
            assert_eq!(q.row(i), &generator.generate_one(x)[..], "row {i}");
        }
    }

    #[test]
    fn fingerprint_tracks_semantic_config_only() {
        let s = Strategy::observable_construction(4, 1);
        let a = FeatureGenerator::new(s.clone(), FeatureBackend::Exact);
        let b = FeatureGenerator::new(s.clone(), FeatureBackend::Exact);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Warming the compiled-shift cache must not change the print.
        let _ = a.generate_one(&[0.3; 16]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = FeatureGenerator::new(s, FeatureBackend::Shots { shots: 10, seed: 1 });
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn zero_shift_base_circuit_has_no_ansatz_rotations() {
        let s = Strategy::hybrid(fig8_ansatz(4), 1, 1);
        let generator = FeatureGenerator::new(s, FeatureBackend::Exact);
        let x: Vec<f64> = (0..16).map(|i| 0.2 * i as f64).collect();
        let base = generator.circuit_for(&x, 0);
        // Encoding has 16 rotations; zero ansatz leaves only the 8 CNOTs.
        let (single, double) = base.gate_counts();
        assert_eq!(single, 16);
        assert_eq!(double, 8);
        // A shifted circuit keeps its one surviving rotation.
        let shifted = generator.circuit_for(&x, 1);
        assert_eq!(shifted.gate_counts().0, 17);
    }
}

//! # pvqnn — post-variational quantum neural networks
//!
//! The core library: a faithful implementation of Huang & Rebentrost,
//! *Post-variational quantum neural networks* (arXiv:2307.10560), the
//! methods paper behind the hybrid HPC-QC system this workspace reproduces.
//!
//! The post-variational idea (§III): instead of optimising a parameterised
//! circuit `U(θ)` on the quantum device (and fighting barren plateaus),
//! measure a **fixed ensemble** of circuit/observable pairs ("quantum
//! neurons", Definition 1) once, collect the results in a feature matrix
//! `Q ∈ R^{d×m}` (Eq. (26), transposed to row-per-sample here), and fit the
//! combination weights classically — a convex problem with a global
//! optimum.
//!
//! Module map (paper section → code):
//!
//! | Paper | Module |
//! |-------|--------|
//! | Fig. 7 data encoding | [`encoding`] |
//! | Fig. 8 ansatz | [`ansatz`] |
//! | §IV.A ansatz expansion (shift grids, Eq. (16)) | [`shifts`], [`strategy`] |
//! | §IV.B observable construction (Eq. (18)) | [`strategy`] |
//! | §IV.C hybrid + pruning (Eqs. (17), (25)) | [`strategy`], [`pruning`] |
//! | Algorithm 1 feature generation | [`features`] |
//! | §V architecture (linear/logistic/softmax heads) | [`model`] |
//! | §VII variational baseline | [`variational`] |
//! | §VI Props. 1–2, Table II | [`budget`] |
//! | §VI Theorems 3–4, Appendix C | [`errorprop`] |
//! | §I barren-plateau motivation | [`barren`] |

pub mod ansatz;
pub mod barren;
pub mod budget;
pub mod encoding;
pub mod errorprop;
pub mod features;
pub mod model;
pub mod pruning;
pub mod shifts;
pub mod strategy;
pub mod variational;

pub use ansatz::fig8_ansatz;
pub use encoding::{fig7_encoding, EncodingPlan};
pub use features::{FeatureBackend, FeatureGenerator};
pub use model::{PostVarClassifier, PostVarMulticlass, PostVarRegressor};
pub use strategy::{Strategy, StrategyKind};
pub use variational::{VariationalClassifier, VariationalConfig};

//! Post-variational models (paper §V, Fig. 6).
//!
//! The architecture is a frozen quantum feature layer (the neuron ensemble)
//! followed by a trainable classical linear map: linear regression for
//! real-valued targets (Eq. (29)), logistic regression for binary labels,
//! and softmax for multiclass — "being simply adding an additional
//! dimension to the classical linear map" (§VII.B).

use crate::features::FeatureGenerator;
use linalg::{lstsq, ridge_solve, Mat};
use ml::loss::rmse_loss;
use ml::optim::projected_gradient_descent;
use ml::{
    accuracy, accuracy_multiclass, LogisticConfig, LogisticRegression, SoftmaxConfig,
    SoftmaxRegression,
};

/// How the linear-regression head is solved.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RegressorMode {
    /// Closed form `α = Q⁺Y` (Eq. (29)).
    Pinv,
    /// Tikhonov-regularised `(QᵀQ + λI)α = QᵀY`.
    Ridge(f64),
    /// Constrained convex program `min ‖Y − Qα‖ s.t. ‖α‖₂ ≤ r`
    /// (Theorem 4), solved by projected gradient descent.
    ConstrainedL2(f64),
}

/// Post-variational linear regression.
#[derive(Clone, Debug)]
pub struct PostVarRegressor {
    generator: FeatureGenerator,
    alpha: Vec<f64>,
    mode: RegressorMode,
}

impl PostVarRegressor {
    /// Fits the head on features generated from `data` against targets `y`.
    pub fn fit(
        generator: FeatureGenerator,
        data: &[Vec<f64>],
        y: &[f64],
        mode: RegressorMode,
    ) -> Self {
        assert_eq!(data.len(), y.len());
        let q = generator.generate(data);
        let alpha = Self::solve(&q, y, mode);
        PostVarRegressor {
            generator,
            alpha,
            mode,
        }
    }

    /// Solves the head given a precomputed feature matrix (reused by
    /// experiments that sweep heads over one `Q`).
    pub fn solve(q: &Mat, y: &[f64], mode: RegressorMode) -> Vec<f64> {
        match mode {
            RegressorMode::Pinv => lstsq(q, y),
            RegressorMode::Ridge(lambda) => ridge_solve(q, y, lambda),
            RegressorMode::ConstrainedL2(radius) => {
                let d = q.rows() as f64;
                let f = |a: &[f64]| {
                    let pred = q.matvec(a);
                    pred.iter()
                        .zip(y.iter())
                        .map(|(p, t)| (p - t) * (p - t))
                        .sum::<f64>()
                        / d
                };
                let grad = |a: &[f64]| {
                    let pred = q.matvec(a);
                    let resid: Vec<f64> = pred.iter().zip(y.iter()).map(|(p, t)| p - t).collect();
                    q.t_matvec(&resid).iter().map(|g| 2.0 * g / d).collect()
                };
                projected_gradient_descent(f, grad, vec![0.0; q.cols()], radius, 4000, 0.5)
            }
        }
    }

    /// The fitted combination coefficients `α`.
    pub fn alpha(&self) -> &[f64] {
        &self.alpha
    }

    /// The solver used.
    pub fn mode(&self) -> RegressorMode {
        self.mode
    }

    /// The feature generator.
    pub fn generator(&self) -> &FeatureGenerator {
        &self.generator
    }

    /// Predictions `Qα` from a precomputed feature matrix — the
    /// batch-friendly half of [`Self::predict`], for callers (the serving
    /// layer, head sweeps) that produce feature rows themselves, e.g.
    /// through a cache. Bit-for-bit identical to `predict` on the same
    /// rows.
    pub fn predict_features(&self, q: &Mat) -> Vec<f64> {
        q.matvec(&self.alpha)
    }

    /// Prediction for one precomputed feature row; bit-for-bit identical
    /// to the corresponding [`Self::predict_features`] entry (same dot-
    /// product order as `Mat::matvec`).
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.alpha.len(), "feature-count mismatch");
        row.iter().zip(self.alpha.iter()).map(|(a, b)| a * b).sum()
    }

    /// Predictions `Qα` for new raw data.
    pub fn predict(&self, data: &[Vec<f64>]) -> Vec<f64> {
        self.predict_features(&self.generator.generate(data))
    }

    /// RMSE on a dataset.
    pub fn rmse(&self, data: &[Vec<f64>], y: &[f64]) -> f64 {
        rmse_loss(y, &self.predict(data))
    }
}

/// Post-variational binary classifier: quantum features + logistic head.
#[derive(Clone, Debug)]
pub struct PostVarClassifier {
    generator: FeatureGenerator,
    head: LogisticRegression,
}

impl PostVarClassifier {
    /// Fits on raw data rows and 0/1 labels.
    pub fn fit(
        generator: FeatureGenerator,
        data: &[Vec<f64>],
        labels: &[f64],
        config: LogisticConfig,
    ) -> Self {
        assert_eq!(data.len(), labels.len());
        let q = generator.generate(data);
        let head = LogisticRegression::fit(&q, labels, config);
        PostVarClassifier { generator, head }
    }

    /// The logistic head.
    pub fn head(&self) -> &LogisticRegression {
        &self.head
    }

    /// The feature generator.
    pub fn generator(&self) -> &FeatureGenerator {
        &self.generator
    }

    /// `p(y=1|x)` from a precomputed feature matrix — the batch-friendly
    /// half of [`Self::predict_proba`] for serving-style callers.
    pub fn predict_proba_features(&self, q: &Mat) -> Vec<f64> {
        self.head.predict_proba(q)
    }

    /// `p(y=1|x)` for one precomputed feature row; bit-for-bit identical
    /// to the corresponding [`Self::predict_proba_features`] entry.
    pub fn predict_proba_row(&self, row: &[f64]) -> f64 {
        self.head.predict_proba_one(row)
    }

    /// `p(y=1|x)` for raw data rows.
    pub fn predict_proba(&self, data: &[Vec<f64>]) -> Vec<f64> {
        self.predict_proba_features(&self.generator.generate(data))
    }

    /// `(BCE loss, accuracy)` on a dataset — the two columns Table III
    /// reports.
    pub fn evaluate(&self, data: &[Vec<f64>], labels: &[f64]) -> (f64, f64) {
        let q = self.generator.generate(data);
        let probs = self.head.predict_proba(&q);
        (ml::bce_loss(labels, &probs), accuracy(labels, &probs))
    }
}

/// Post-variational multiclass classifier: quantum features + softmax head.
#[derive(Clone, Debug)]
pub struct PostVarMulticlass {
    generator: FeatureGenerator,
    head: SoftmaxRegression,
}

impl PostVarMulticlass {
    /// Fits on raw data rows and integer labels `< k`.
    pub fn fit(
        generator: FeatureGenerator,
        data: &[Vec<f64>],
        labels: &[usize],
        k: usize,
        config: SoftmaxConfig,
    ) -> Self {
        assert_eq!(data.len(), labels.len());
        let q = generator.generate(data);
        let head = SoftmaxRegression::fit(&q, labels, k, config);
        PostVarMulticlass { generator, head }
    }

    /// The feature generator.
    pub fn generator(&self) -> &FeatureGenerator {
        &self.generator
    }

    /// Class predictions from a precomputed feature matrix.
    pub fn predict_features(&self, q: &Mat) -> Vec<usize> {
        self.head.predict(q)
    }

    /// Class predictions for raw data rows.
    pub fn predict(&self, data: &[Vec<f64>]) -> Vec<usize> {
        self.predict_features(&self.generator.generate(data))
    }

    /// `(cross-entropy loss, accuracy)` — the Table IV columns.
    pub fn evaluate(&self, data: &[Vec<f64>], labels: &[usize]) -> (f64, f64) {
        let q = self.generator.generate(data);
        let loss = self.head.loss(&q, labels);
        let acc = accuracy_multiclass(labels, &self.head.predict(&q));
        (loss, acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureBackend;
    use crate::strategy::Strategy;

    /// Synthetic task whose target is an exact linear function of the
    /// quantum features — the regressor must drive train RMSE to ~0.
    fn linear_task(d: usize) -> (Vec<Vec<f64>>, Vec<f64>, FeatureGenerator) {
        let data: Vec<Vec<f64>> = (0..d)
            .map(|i| {
                (0..16)
                    .map(|j| 0.2 + 0.37 * ((i * 7 + j * 3) % 17) as f64 / 17.0 * 5.0)
                    .collect()
            })
            .collect();
        let generator = FeatureGenerator::new(
            Strategy::observable_construction(4, 1),
            FeatureBackend::Exact,
        );
        let q = generator.generate(&data);
        // Ground-truth α: decaying pattern over the 13 features.
        let alpha: Vec<f64> = (0..q.cols()).map(|j| 0.5 / (j as f64 + 1.0)).collect();
        let y = q.matvec(&alpha);
        (data, y, generator)
    }

    #[test]
    fn regressor_recovers_linear_target() {
        let (data, y, generator) = linear_task(40);
        let model = PostVarRegressor::fit(generator, &data, &y, RegressorMode::Pinv);
        assert!(model.rmse(&data, &y) < 1e-8);
    }

    #[test]
    fn ridge_regressor_close_to_exact() {
        let (data, y, generator) = linear_task(40);
        let model = PostVarRegressor::fit(generator, &data, &y, RegressorMode::Ridge(1e-8));
        assert!(model.rmse(&data, &y) < 1e-3);
    }

    #[test]
    fn constrained_regressor_respects_ball() {
        let (data, y, generator) = linear_task(30);
        let model = PostVarRegressor::fit(generator, &data, &y, RegressorMode::ConstrainedL2(1.0));
        let norm: f64 = model.alpha().iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(norm <= 1.0 + 1e-9, "‖α‖ = {norm}");
    }

    #[test]
    fn classifier_separates_quantum_separable_labels() {
        // Label = sign of a quantum feature → linearly separable in Q.
        let (data, _, generator) = linear_task(60);
        let q = generator.generate(&data);
        // Label by thresholding feature 1 at its median → balanced classes
        // that are linearly separable in feature space.
        let mut col: Vec<f64> = (0..q.rows()).map(|i| q[(i, 1)]).collect();
        col.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = col[col.len() / 2];
        let labels: Vec<f64> = (0..q.rows())
            .map(|i| if q[(i, 1)] >= median { 1.0 } else { 0.0 })
            .collect();
        let pos = labels.iter().filter(|&&l| l == 1.0).count();
        assert!(pos > 5 && pos < 55, "degenerate labelling ({pos} positive)");
        let model =
            PostVarClassifier::fit(generator, &data, &labels, ml::LogisticConfig::default());
        let (loss, acc) = model.evaluate(&data, &labels);
        // Median-threshold labels put samples on the decision boundary, so
        // demand strong-but-not-perfect separation.
        assert!(acc >= 0.9, "accuracy {acc}");
        assert!(loss < 0.45, "loss {loss}");
    }

    #[test]
    fn batch_friendly_entry_points_match_raw_paths_bitwise() {
        // The serving layer computes feature rows itself (one at a time,
        // through a cache) and feeds them to the heads — every split
        // entry point must reproduce the raw-data path bit for bit.
        let (data, y, generator) = linear_task(20);
        let model = PostVarRegressor::fit(generator.clone(), &data, &y, RegressorMode::Pinv);
        let q = model.generator().generate(&data);
        let direct = model.predict(&data);
        assert_eq!(model.predict_features(&q), direct);
        for (i, &want) in direct.iter().enumerate() {
            assert_eq!(model.predict_row(q.row(i)), want, "row {i}");
            // A row generated alone must equal the batch row (index-free
            // seeding), so cached single-row inference is exact too.
            assert_eq!(
                model.predict_row(&model.generator().generate_one(&data[i])),
                want,
                "generate_one row {i}"
            );
        }

        let labels: Vec<f64> = (0..data.len()).map(|i| (i % 2) as f64).collect();
        let clf = PostVarClassifier::fit(
            generator,
            &data,
            &labels,
            ml::LogisticConfig {
                epochs: 50,
                ..Default::default()
            },
        );
        let qc = clf.generator().generate(&data);
        let direct = clf.predict_proba(&data);
        assert_eq!(clf.predict_proba_features(&qc), direct);
        for (i, &want) in direct.iter().enumerate() {
            assert_eq!(clf.predict_proba_row(qc.row(i)), want, "row {i}");
        }
    }

    #[test]
    fn multiclass_on_feature_argmax() {
        let (data, _, generator) = linear_task(60);
        let q = generator.generate(&data);
        // Three classes from which of three features is largest.
        let labels: Vec<usize> = (0..q.rows())
            .map(|i| {
                let vals = [q[(i, 1)], q[(i, 2)], q[(i, 3)]];
                vals.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0
            })
            .collect();
        let model =
            PostVarMulticlass::fit(generator, &data, &labels, 3, ml::SoftmaxConfig::default());
        let (_, acc) = model.evaluate(&data, &labels);
        assert!(acc > 0.8, "accuracy {acc}");
    }
}

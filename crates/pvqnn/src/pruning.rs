//! Circuit-pruning heuristics (paper §IV.A Eq. (17) and §IV.C Eq. (25)).
//!
//! Both passes detect parameters whose ±π/2 shifts barely change the
//! model's behaviour on the data, and drop every shifted circuit touching
//! such a "flat" parameter — "further higher-order gradients based on the
//! gradient circuits would also be small".
//!
//! * **Gradient pruning** compares the *measured expectation values* of
//!   the up/down shifted circuits (needs the observable).
//! * **Fidelity pruning** compares the shifted *states* directly via
//!   `F(ρ₊, ρ₋)`, bounding the same quantity without choosing an
//!   observable (Eq. (25)); on pure states we evaluate the overlap
//!   exactly.

use crate::encoding::column_encoding;
use crate::shifts::shift_touches;
use crate::strategy::Strategy;
use pauli::PauliString;
use qsim::StateVector;
use rayon::prelude::*;
use std::f64::consts::FRAC_PI_2;

/// Outcome of a pruning pass.
#[derive(Clone, Debug)]
pub struct PruningReport {
    /// Parameters judged flat (their shifts were dropped).
    pub flat_params: Vec<usize>,
    /// Per-parameter scores (MSE of expectation differences, or `1 − F̄`).
    pub scores: Vec<f64>,
    /// Shift vectors retained.
    pub kept_shifts: Vec<Vec<f64>>,
    /// Number of shift vectors removed.
    pub removed: usize,
}

fn shifted_states(
    strategy: &Strategy,
    data: &[Vec<f64>],
    param: usize,
) -> Vec<(StateVector, StateVector)> {
    let ansatz = strategy
        .ansatz()
        .expect("pruning requires an ansatz-bearing strategy");
    let k = ansatz.num_params();
    let n = strategy.num_qubits();
    let mut plus = vec![0.0; k];
    plus[param] = FRAC_PI_2;
    let mut minus = vec![0.0; k];
    minus[param] = -FRAC_PI_2;
    data.par_iter()
        .map(|x| {
            let mut cp = column_encoding(x, n);
            cp.extend(&ansatz.bind_optimized(&plus));
            let mut cm = column_encoding(x, n);
            cm.extend(&ansatz.bind_optimized(&minus));
            (
                StateVector::from_circuit(&cp),
                StateVector::from_circuit(&cm),
            )
        })
        .collect()
}

/// Gradient-based pruning (Eq. (17)): for each parameter `u`, computes the
/// MSE over the data of `tr(O ρ₊) − tr(O ρ₋)`; parameters with MSE below
/// `threshold` are flat and all shifts touching them are removed.
pub fn prune_by_gradient(
    strategy: &Strategy,
    data: &[Vec<f64>],
    observable: &PauliString,
    threshold: f64,
) -> PruningReport {
    let ansatz = strategy.ansatz().expect("gradient pruning needs an ansatz");
    let k = ansatz.num_params();
    let scores: Vec<f64> = (0..k)
        .map(|u| {
            let states = shifted_states(strategy, data, u);
            states
                .iter()
                .map(|(sp, sm)| {
                    let diff = sp.expectation(observable) - sm.expectation(observable);
                    diff * diff
                })
                .sum::<f64>()
                / data.len() as f64
        })
        .collect();
    build_report(strategy, scores, threshold)
}

/// Fidelity-based pruning (§IV.C, Eq. (25)): scores each parameter by
/// `1 − mean_x F(ρ₊(x), ρ₋(x))`; parameters scoring below `threshold` are
/// flat. Observable-free, so it also covers the multi-observable hybrid
/// case.
pub fn prune_by_fidelity(strategy: &Strategy, data: &[Vec<f64>], threshold: f64) -> PruningReport {
    let ansatz = strategy.ansatz().expect("fidelity pruning needs an ansatz");
    let k = ansatz.num_params();
    let scores: Vec<f64> = (0..k)
        .map(|u| {
            let states = shifted_states(strategy, data, u);
            let mean_f: f64 =
                states.iter().map(|(sp, sm)| sp.fidelity(sm)).sum::<f64>() / data.len() as f64;
            1.0 - mean_f
        })
        .collect();
    build_report(strategy, scores, threshold)
}

fn build_report(strategy: &Strategy, scores: Vec<f64>, threshold: f64) -> PruningReport {
    let flat_params: Vec<usize> = scores
        .iter()
        .enumerate()
        .filter(|(_, &s)| s < threshold)
        .map(|(u, _)| u)
        .collect();
    let kept_shifts: Vec<Vec<f64>> = strategy
        .shifts()
        .iter()
        .filter(|s| !shift_touches(s, &flat_params))
        .cloned()
        .collect();
    let removed = strategy.shifts().len() - kept_shifts.len();
    PruningReport {
        flat_params,
        scores,
        kept_shifts,
        removed,
    }
}

impl PruningReport {
    /// Applies the report to a strategy, returning the pruned copy.
    pub fn apply(&self, strategy: Strategy) -> Strategy {
        strategy.with_shifts(self.kept_shifts.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::fig8_ansatz;
    use crate::strategy::Strategy;
    use qsim::{Gate, ParamCircuit, RotAxis};

    fn toy_data(d: usize) -> Vec<Vec<f64>> {
        (0..d)
            .map(|i| {
                (0..16)
                    .map(|j| 0.3 + 0.23 * ((i + 2 * j) % 13) as f64)
                    .collect()
            })
            .collect()
    }

    /// An ansatz whose last parameter rotates a qubit that the observable
    /// never sees and that no entangler connects — guaranteed flat.
    fn ansatz_with_dead_param() -> ParamCircuit {
        let mut pc = ParamCircuit::new(4);
        pc.push_rot(RotAxis::Y, 0);
        pc.push_rot(RotAxis::Y, 1);
        pc.push_fixed(Gate::Cnot {
            control: 0,
            target: 1,
        });
        // Parameter 2 acts on qubit 3, disconnected from everything.
        pc.push_rot(RotAxis::Z, 3);
        pc
    }

    #[test]
    fn gradient_pruning_finds_dead_parameter() {
        let strategy = Strategy::ansatz_expansion(
            ansatz_with_dead_param(),
            1,
            Strategy::default_observable(4), // Z on qubit 0
        );
        let data = toy_data(8);
        let report = prune_by_gradient(&strategy, &data, &Strategy::default_observable(4), 1e-6);
        // Param 2 (RZ on q3) can't move ⟨Z₀⟩; params 0 is live.
        assert!(report.flat_params.contains(&2), "{:?}", report.flat_params);
        assert!(!report.flat_params.contains(&0));
        assert!(report.removed >= 2); // both ± shifts of param 2 dropped
                                      // Base circuit survives.
        assert!(report.kept_shifts[0].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn fidelity_pruning_finds_phase_only_parameter() {
        // RZ on a computational-basis qubit changes only the phase → the
        // ± shifted states coincide up to global phase → fidelity 1.
        let mut pc = ParamCircuit::new(2);
        pc.push_rot(RotAxis::Y, 0);
        pc.push_rot(RotAxis::Z, 1); // qubit 1 stays |0⟩-diagonal: flat
        let strategy = Strategy::hybrid(pc, 1, 1);
        // Data that leaves qubit 1 in a basis state: features all zero on
        // its rotations. Use 8-feature rows (2 qubits × 4 rows) with
        // column 1 zeroed.
        let data: Vec<Vec<f64>> = (0..6)
            .map(|i| {
                (0..8)
                    .map(|j| {
                        if j % 2 == 1 {
                            0.0
                        } else {
                            0.4 + 0.2 * (i % 3) as f64
                        }
                    })
                    .collect()
            })
            .collect();
        let report = prune_by_fidelity(&strategy, &data, 1e-9);
        assert!(report.flat_params.contains(&1), "{:?}", report.scores);
        assert!(!report.flat_params.contains(&0), "{:?}", report.scores);
    }

    #[test]
    fn pruned_strategy_shrinks_and_applies() {
        let strategy = Strategy::ansatz_expansion(
            ansatz_with_dead_param(),
            1,
            Strategy::default_observable(4),
        );
        let before = strategy.num_neurons();
        let data = toy_data(5);
        let report = prune_by_gradient(&strategy, &data, &Strategy::default_observable(4), 1e-6);
        let pruned = report.apply(strategy);
        assert!(pruned.num_neurons() < before);
        assert_eq!(pruned.num_neurons(), report.kept_shifts.len());
    }

    #[test]
    fn zero_threshold_prunes_nothing() {
        let strategy =
            Strategy::ansatz_expansion(fig8_ansatz(4), 1, Strategy::default_observable(4));
        let data = toy_data(4);
        let report = prune_by_gradient(&strategy, &data, &Strategy::default_observable(4), 0.0);
        assert!(report.flat_params.is_empty());
        assert_eq!(report.removed, 0);
    }

    #[test]
    fn fidelity_bounds_gradient_score() {
        // Paper Eqs. (23)–(25): the squared expectation difference is
        // bounded by 4(1 − F). Check per parameter on the Fig. 8 ansatz.
        let strategy =
            Strategy::ansatz_expansion(fig8_ansatz(4), 1, Strategy::default_observable(4));
        let data = toy_data(6);
        let grad = prune_by_gradient(
            &strategy,
            &data,
            &Strategy::default_observable(4),
            -1.0, // keep everything; we only want scores
        );
        let fid = prune_by_fidelity(&strategy, &data, -1.0);
        for u in 0..grad.scores.len() {
            assert!(
                grad.scores[u] <= 4.0 * fid.scores[u] + 1e-9,
                "param {u}: grad {} vs 4(1−F) {}",
                grad.scores[u],
                4.0 * fid.scores[u]
            );
        }
    }
}

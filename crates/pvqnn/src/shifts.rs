//! Parameter-shift grids for the ansatz-expansion strategy (§IV.A).
//!
//! "Truncating at the R-th derivative order, … we simply select all
//! combinations of size ≤ R from the k parameters in θ … and set each
//! parameter to ±π/2" (around the zero initialisation). Eq. (16) counts
//! the circuits: `Σ_{ℓ≤R} C(k,ℓ)·2^ℓ ∈ O(2^R k^R)`.

use pauli::enumerate::binomial;
use std::f64::consts::FRAC_PI_2;

/// Number of shifted circuits for `k` parameters truncated at derivative
/// order `r` (Eq. (16)), including the unshifted base circuit.
pub fn shift_count(k: usize, r: usize) -> u128 {
    (0..=r.min(k)).map(|l| binomial(k, l) * (1u128 << l)).sum()
}

/// All size-`l` subsets of `0..k` in lexicographic order.
fn combinations(k: usize, l: usize) -> Vec<Vec<usize>> {
    if l == 0 {
        return vec![vec![]];
    }
    if l > k {
        return vec![];
    }
    let mut out = Vec::new();
    let mut subset: Vec<usize> = (0..l).collect();
    loop {
        out.push(subset.clone());
        // Advance to the next combination.
        let mut i = l;
        let mut advanced = false;
        while i > 0 {
            i -= 1;
            if subset[i] < k - (l - i) {
                subset[i] += 1;
                for j in i + 1..l {
                    subset[j] = subset[j - 1] + 1;
                }
                advanced = true;
                break;
            }
        }
        if !advanced {
            break;
        }
    }
    out
}

/// Enumerates all shift vectors `θ ∈ {0, ±π/2}^k` with at most `r`
/// non-zero entries, deterministically ordered: by number of shifted
/// parameters ascending, then by parameter subset, then by sign pattern
/// (− before +). The all-zeros vector is always first.
pub fn enumerate_shifts(k: usize, r: usize) -> Vec<Vec<f64>> {
    assert!(k >= 1);
    let r = r.min(k);
    let mut out = Vec::with_capacity(shift_count(k, r) as usize);
    out.push(vec![0.0; k]);
    for l in 1..=r {
        for subset in combinations(k, l) {
            for signs in 0..(1u32 << l) {
                let mut v = vec![0.0; k];
                for (bit, &param) in subset.iter().enumerate() {
                    let sign = if (signs >> bit) & 1 == 0 { -1.0 } else { 1.0 };
                    v[param] = sign * FRAC_PI_2;
                }
                out.push(v);
            }
        }
    }
    out
}

/// The support of a shift vector: indices of non-zero entries.
pub fn shift_support(shift: &[f64]) -> Vec<usize> {
    shift
        .iter()
        .enumerate()
        .filter(|(_, &v)| v != 0.0)
        .map(|(i, _)| i)
        .collect()
}

/// Whether a shift vector touches any of the given parameters.
pub fn shift_touches(shift: &[f64], params: &[usize]) -> bool {
    params.iter().any(|&p| shift[p] != 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_formula() {
        for k in 1..=8 {
            for r in 0..=3.min(k) {
                let want = shift_count(k, r);
                let got = enumerate_shifts(k, r).len() as u128;
                assert_eq!(got, want, "k={k} r={r}");
            }
        }
    }

    #[test]
    fn paper_counts_for_fig8() {
        // k = 8 (Fig. 8 with n = 4): order 1 → 17, order 2 → 129.
        assert_eq!(shift_count(8, 1), 17);
        assert_eq!(shift_count(8, 2), 129);
    }

    #[test]
    fn first_is_zero_vector() {
        let shifts = enumerate_shifts(5, 2);
        assert!(shifts[0].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn entries_are_only_zero_or_half_pi() {
        for v in enumerate_shifts(4, 2) {
            for &x in &v {
                assert!(
                    x == 0.0 || (x.abs() - FRAC_PI_2).abs() < 1e-15,
                    "bad entry {x}"
                );
            }
        }
    }

    #[test]
    fn no_duplicates() {
        let shifts = enumerate_shifts(6, 2);
        let mut keys: Vec<String> = shifts
            .iter()
            .map(|v| {
                v.iter()
                    .map(|&x| {
                        if x == 0.0 {
                            "0"
                        } else if x > 0.0 {
                            "+"
                        } else {
                            "-"
                        }
                    })
                    .collect()
            })
            .collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), before);
    }

    #[test]
    fn support_bounded_by_order() {
        for v in enumerate_shifts(7, 3) {
            assert!(shift_support(&v).len() <= 3);
        }
    }

    #[test]
    fn r_zero_is_base_only() {
        let shifts = enumerate_shifts(5, 0);
        assert_eq!(shifts.len(), 1);
    }

    #[test]
    fn touches_helper() {
        let shifts = enumerate_shifts(4, 1);
        // Shifts on parameter 2 touch {2}, not {0,1,3}.
        let touching: Vec<_> = shifts.iter().filter(|s| shift_touches(s, &[2])).collect();
        assert_eq!(touching.len(), 2); // ±π/2 on param 2
    }

    #[test]
    fn r_larger_than_k_clamps() {
        let shifts = enumerate_shifts(2, 10);
        // Full grid: 1 + C(2,1)·2 + C(2,2)·4 = 9 = 3^2.
        assert_eq!(shifts.len(), 9);
    }
}

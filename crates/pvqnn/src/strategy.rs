//! The three post-variational design principles (paper §IV, Fig. 2).
//!
//! A strategy is a recipe for the ensemble of quantum neurons
//! (Definition 1): `p` fixed ansätze × `q` fixed observables, giving
//! `m = p·q` circuit/observable pairs whose measured expectations fill the
//! feature matrix `Q`.
//!
//! * **Ansatz expansion** (§IV.A, Fig. 3): `p` = parameter-shift grid of
//!   the ansatz truncated at derivative order `R` (Eq. (16)), `q = 1`
//!   fixed observable.
//! * **Observable construction** (§IV.B, Fig. 4): `p = 1` (no ansatz),
//!   `q` = all Pauli strings of locality ≤ `L` (Eq. (18)).
//! * **Hybrid** (§IV.C, Fig. 5): the product of both.

use crate::shifts::{enumerate_shifts, shift_count};
use pauli::{local_pauli_count, local_paulis, Pauli, PauliString};
use qsim::ParamCircuit;

/// Which design principle generated a [`Strategy`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StrategyKind {
    /// §IV.A: parameter-shift ensemble of a single ansatz, one observable.
    AnsatzExpansion {
        /// Truncation order `R` of the Taylor expansion.
        order: usize,
    },
    /// §IV.B: no ansatz, all ≤ `locality`-local Pauli observables.
    ObservableConstruction {
        /// Maximum Pauli weight `L`.
        locality: usize,
    },
    /// §IV.C: shift ensemble × local observables.
    Hybrid {
        /// Truncation order `R`.
        order: usize,
        /// Maximum Pauli weight `L`.
        locality: usize,
    },
}

/// A concrete neuron ensemble: every `(shift, observable)` pair is one
/// quantum neuron `tr(U†(θ_a) O_b U(θ_a) ρ(x))`.
#[derive(Clone, Debug)]
pub struct Strategy {
    kind: StrategyKind,
    n: usize,
    ansatz: Option<ParamCircuit>,
    shifts: Vec<Vec<f64>>,
    observables: Vec<PauliString>,
}

impl Strategy {
    /// Ansatz-expansion strategy around θ = 0 with a single measurement
    /// observable (the paper's default head is `Z` on qubit 0 — pass e.g.
    /// [`Strategy::default_observable`]).
    pub fn ansatz_expansion(ansatz: ParamCircuit, order: usize, observable: PauliString) -> Self {
        assert_eq!(observable.num_qubits(), ansatz.num_qubits());
        let shifts = enumerate_shifts(ansatz.num_params(), order);
        Strategy {
            kind: StrategyKind::AnsatzExpansion { order },
            n: ansatz.num_qubits(),
            ansatz: Some(ansatz),
            shifts,
            observables: vec![observable],
        }
    }

    /// Observable-construction strategy: all Pauli strings of weight ≤
    /// `locality` on `n` qubits, with no ansatz at all.
    pub fn observable_construction(n: usize, locality: usize) -> Self {
        Strategy {
            kind: StrategyKind::ObservableConstruction { locality },
            n,
            ansatz: None,
            shifts: vec![vec![]],
            observables: local_paulis(n, locality),
        }
    }

    /// Hybrid strategy: shift grid of `ansatz` at derivative order `order`
    /// × all ≤ `locality`-local Paulis. Derivative circuits are combined
    /// only with local observables, the §IV.C pruning that keeps the
    /// ensemble polynomial.
    pub fn hybrid(ansatz: ParamCircuit, order: usize, locality: usize) -> Self {
        let n = ansatz.num_qubits();
        let shifts = enumerate_shifts(ansatz.num_params(), order);
        Strategy {
            kind: StrategyKind::Hybrid { order, locality },
            n,
            ansatz: Some(ansatz),
            shifts,
            observables: local_paulis(n, locality),
        }
    }

    /// The §IV.C split construction in its literal form: cut the ansatz at
    /// `gate_boundary` into `U(θ) = U_B(θ_B)·U_A(θ_A)`, expand only the
    /// shallow half `U_A` with the order-`order` shift grid, and replace
    /// `U_B† O U_B` with the ≤`locality`-local Pauli family ("we split the
    /// Ansatz U(θ) into two unitaries … decompose O′(θ) directly into a
    /// linear combination of Paulis").
    pub fn hybrid_split(
        ansatz: ParamCircuit,
        gate_boundary: usize,
        order: usize,
        locality: usize,
    ) -> Self {
        let n = ansatz.num_qubits();
        let (u_a, _u_b, _ka) = crate::ansatz::split_ansatz(&ansatz, gate_boundary);
        let shifts = enumerate_shifts(u_a.num_params().max(1), order);
        Strategy {
            kind: StrategyKind::Hybrid { order, locality },
            n,
            ansatz: Some(u_a),
            shifts,
            observables: local_paulis(n, locality),
        }
    }

    /// The conventional single-qubit default head: `Z` on qubit 0.
    pub fn default_observable(n: usize) -> PauliString {
        PauliString::single(n, 0, Pauli::Z)
    }

    /// Which design principle this is.
    pub fn kind(&self) -> StrategyKind {
        self.kind
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The ansatz, when the strategy uses one.
    pub fn ansatz(&self) -> Option<&ParamCircuit> {
        self.ansatz.as_ref()
    }

    /// The `p` shift vectors (ansätze). For observable construction this
    /// is a single empty shift.
    pub fn shifts(&self) -> &[Vec<f64>] {
        &self.shifts
    }

    /// The `q` measurement observables.
    pub fn observables(&self) -> &[PauliString] {
        &self.observables
    }

    /// `p` — number of fixed ansätze (Definition 1).
    pub fn num_ansatze(&self) -> usize {
        self.shifts.len()
    }

    /// `q` — number of observables (Definition 1).
    pub fn num_observables(&self) -> usize {
        self.observables.len()
    }

    /// `m = p·q` — total neuron count / feature dimension.
    pub fn num_neurons(&self) -> usize {
        self.num_ansatze() * self.num_observables()
    }

    /// Maximum observable locality in the ensemble.
    pub fn max_locality(&self) -> usize {
        self.observables
            .iter()
            .map(|o| o.weight())
            .max()
            .unwrap_or(0)
    }

    /// The feature-column index of neuron `(shift a, observable b)`:
    /// columns are ordered shift-major (`a·q + b`).
    pub fn column_of(&self, shift_idx: usize, obs_idx: usize) -> usize {
        assert!(shift_idx < self.num_ansatze() && obs_idx < self.num_observables());
        shift_idx * self.num_observables() + obs_idx
    }

    /// Replaces the shift list (used by the pruning passes); the base
    /// (all-zeros) shift must survive.
    pub fn with_shifts(mut self, shifts: Vec<Vec<f64>>) -> Self {
        assert!(!shifts.is_empty(), "cannot prune every shift");
        if let Some(a) = &self.ansatz {
            assert!(shifts.iter().all(|s| s.len() == a.num_params()));
        }
        self.shifts = shifts;
        self
    }

    /// Predicted ensemble size without construction, from the closed
    /// forms (Eqs. (16) and (18)).
    pub fn predicted_size(kind: StrategyKind, n: usize, k: usize) -> u128 {
        match kind {
            StrategyKind::AnsatzExpansion { order } => shift_count(k, order),
            StrategyKind::ObservableConstruction { locality } => local_pauli_count(n, locality),
            StrategyKind::Hybrid { order, locality } => {
                shift_count(k, order) * local_pauli_count(n, locality)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::fig8_ansatz;

    #[test]
    fn ansatz_expansion_dimensions() {
        // Paper Table III row "Ansatz 1-order": k = 8 → p = 17, q = 1.
        let s = Strategy::ansatz_expansion(fig8_ansatz(4), 1, Strategy::default_observable(4));
        assert_eq!(s.num_ansatze(), 17);
        assert_eq!(s.num_observables(), 1);
        assert_eq!(s.num_neurons(), 17);
        // 2-order: 129.
        let s2 = Strategy::ansatz_expansion(fig8_ansatz(4), 2, Strategy::default_observable(4));
        assert_eq!(s2.num_neurons(), 129);
    }

    #[test]
    fn observable_construction_dimensions() {
        // Paper Table III rows: 1-local → 13, 2-local → 67, 3-local → 175.
        for (l, want) in [(1, 13), (2, 67), (3, 175)] {
            let s = Strategy::observable_construction(4, l);
            assert_eq!(s.num_neurons(), want, "L={l}");
            assert_eq!(s.num_ansatze(), 1);
            assert_eq!(s.max_locality(), l);
        }
    }

    #[test]
    fn hybrid_dimensions() {
        // "1-order + 1-local": 17 × 13 = 221.
        let s = Strategy::hybrid(fig8_ansatz(4), 1, 1);
        assert_eq!(s.num_neurons(), 17 * 13);
        // "2-order + 1-local": 129 × 13.
        let s = Strategy::hybrid(fig8_ansatz(4), 2, 1);
        assert_eq!(s.num_neurons(), 129 * 13);
        // "1-order + 2-local": 17 × 67.
        let s = Strategy::hybrid(fig8_ansatz(4), 1, 2);
        assert_eq!(s.num_neurons(), 17 * 67);
    }

    #[test]
    fn predicted_sizes_match_constructed() {
        let k = 8;
        let n = 4;
        for kind in [
            StrategyKind::AnsatzExpansion { order: 2 },
            StrategyKind::ObservableConstruction { locality: 2 },
            StrategyKind::Hybrid {
                order: 1,
                locality: 2,
            },
        ] {
            let s = match kind {
                StrategyKind::AnsatzExpansion { order } => Strategy::ansatz_expansion(
                    fig8_ansatz(n),
                    order,
                    Strategy::default_observable(n),
                ),
                StrategyKind::ObservableConstruction { locality } => {
                    Strategy::observable_construction(n, locality)
                }
                StrategyKind::Hybrid { order, locality } => {
                    Strategy::hybrid(fig8_ansatz(n), order, locality)
                }
            };
            assert_eq!(
                s.num_neurons() as u128,
                Strategy::predicted_size(kind, n, k),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn column_indexing_is_bijective() {
        let s = Strategy::hybrid(fig8_ansatz(4), 1, 1);
        let mut seen = std::collections::HashSet::new();
        for a in 0..s.num_ansatze() {
            for b in 0..s.num_observables() {
                assert!(seen.insert(s.column_of(a, b)));
            }
        }
        assert_eq!(seen.len(), s.num_neurons());
        assert_eq!(*seen.iter().max().unwrap(), s.num_neurons() - 1);
    }

    #[test]
    fn with_shifts_prunes() {
        let s = Strategy::ansatz_expansion(fig8_ansatz(4), 1, Strategy::default_observable(4));
        let kept: Vec<Vec<f64>> = s.shifts()[..5].to_vec();
        let pruned = s.with_shifts(kept);
        assert_eq!(pruned.num_neurons(), 5);
    }

    #[test]
    fn hybrid_split_uses_only_shallow_half() {
        // Fig. 8 on 4 qubits has 16 gates (8 RY + 8 CNOT); cutting after
        // the first layer (8 gates) leaves 4 parameters in U_A.
        let s = Strategy::hybrid_split(fig8_ansatz(4), 8, 1, 1);
        // p = 1 + 2·4 = 9 shifts over U_A's 4 params; q = 13.
        assert_eq!(s.num_ansatze(), 9);
        assert_eq!(s.num_observables(), 13);
        assert_eq!(s.ansatz().unwrap().num_params(), 4);
        // Much smaller than the full hybrid at the same settings.
        let full = Strategy::hybrid(fig8_ansatz(4), 1, 1);
        assert!(s.num_neurons() < full.num_neurons());
    }

    #[test]
    fn first_shift_is_base_circuit() {
        let s = Strategy::hybrid(fig8_ansatz(4), 2, 1);
        assert!(s.shifts()[0].iter().all(|&v| v == 0.0));
        // First observable is the identity (weight 0).
        assert!(s.observables()[0].is_identity());
    }
}

//! The variational baseline (paper §III.B and the "Variational" rows of
//! Tables III–IV).
//!
//! A circuit-centric quantum classifier \[7\]: encode `x` with the Fig. 7
//! circuit, apply the Fig. 8 ansatz `U(θ)`, measure an observable. The
//! parameters are trained by gradient descent where every partial
//! derivative comes from the ±π/2 parameter-shift rule [6, 46] — the
//! hybrid quantum-classical feedback loop the post-variational method
//! removes.

use crate::encoding::column_encoding;
use linalg::Mat;
use ml::loss::{bce_loss, softmax_ce_loss};
use ml::optim::Adam;
use pauli::PauliString;
use qsim::{ParamCircuit, StateVector};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;
use std::f64::consts::FRAC_PI_2;

/// Training configuration.
#[derive(Clone, Copy, Debug)]
pub struct VariationalConfig {
    /// Full-batch training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Zero-initialise parameters (the paper's identity-block choice \[21\]);
    /// otherwise uniform in `(−π, π)` from `seed`.
    pub init_zero: bool,
    /// Seed for random initialisation.
    pub seed: u64,
}

impl Default for VariationalConfig {
    fn default() -> Self {
        VariationalConfig {
            epochs: 60,
            lr: 0.05,
            init_zero: true,
            seed: 1,
        }
    }
}

/// A trained variational quantum classifier.
#[derive(Clone, Debug)]
pub struct VariationalClassifier {
    ansatz: ParamCircuit,
    theta: Vec<f64>,
    observable: PauliString,
    num_classes: usize,
}

impl VariationalClassifier {
    fn initial_theta(k: usize, config: &VariationalConfig) -> Vec<f64> {
        if config.init_zero {
            vec![0.0; k]
        } else {
            let mut rng = StdRng::seed_from_u64(config.seed);
            (0..k)
                .map(|_| (rng.random::<f64>() * 2.0 - 1.0) * std::f64::consts::PI)
                .collect()
        }
    }

    fn state(&self, x: &[f64], theta: &[f64]) -> StateVector {
        let mut c = column_encoding(x, self.ansatz.num_qubits());
        c.extend(&self.ansatz.bind(theta));
        StateVector::from_circuit(&c)
    }

    /// `⟨O⟩` head value for one sample at parameters `theta`.
    fn head_value(&self, x: &[f64], theta: &[f64]) -> f64 {
        self.state(x, theta).expectation(&self.observable)
    }

    /// Bitstring-partition class probabilities [75]: outcome `b` is
    /// assigned to class `b mod k`, probabilities summed per class.
    fn class_probs(&self, x: &[f64], theta: &[f64], k: usize) -> Vec<f64> {
        let probs = self.state(x, theta).probabilities();
        let mut out = vec![0.0; k];
        for (b, p) in probs.iter().enumerate() {
            out[b % k] += p;
        }
        out
    }

    /// Trains a binary classifier: minimises MSE between `⟨O⟩(x) ∈ [−1,1]`
    /// and labels mapped to ±1, by parameter-shift gradients + Adam.
    pub fn fit_binary(
        ansatz: ParamCircuit,
        observable: PauliString,
        data: &[Vec<f64>],
        labels: &[f64],
        config: &VariationalConfig,
    ) -> Self {
        assert_eq!(data.len(), labels.len());
        assert!(labels.iter().all(|&l| l == 0.0 || l == 1.0));
        let k = ansatz.num_params();
        let mut model = VariationalClassifier {
            ansatz,
            theta: Self::initial_theta(k, config),
            observable,
            num_classes: 1,
        };
        let targets: Vec<f64> = labels.iter().map(|&l| 2.0 * l - 1.0).collect();
        let d = data.len() as f64;
        let mut opt = Adam::new(k, config.lr);

        for _ in 0..config.epochs {
            let theta = model.theta.clone();
            // Per-sample residual and per-parameter shifted evaluations.
            let grads: Vec<f64> = (0..k)
                .into_par_iter()
                .map(|u| {
                    let mut plus = theta.clone();
                    plus[u] += FRAC_PI_2;
                    let mut minus = theta.clone();
                    minus[u] -= FRAC_PI_2;
                    data.par_iter()
                        .zip(targets.par_iter())
                        .map(|(x, &t)| {
                            let f = model.head_value(x, &theta);
                            // Parameter-shift: ∂⟨O⟩/∂θu = (E₊ − E₋)/2.
                            let de =
                                (model.head_value(x, &plus) - model.head_value(x, &minus)) / 2.0;
                            2.0 * (f - t) * de / d
                        })
                        .sum()
                })
                .collect();
            opt.step(&mut model.theta, &grads);
        }
        model
    }

    /// Trains a multiclass classifier with bitstring-partition readout and
    /// cross-entropy loss; gradients again via parameter shift (the class
    /// probabilities are projector expectations, so the rule applies).
    pub fn fit_multiclass(
        ansatz: ParamCircuit,
        data: &[Vec<f64>],
        labels: &[usize],
        num_classes: usize,
        config: &VariationalConfig,
    ) -> Self {
        assert_eq!(data.len(), labels.len());
        assert!(num_classes >= 2);
        let n = ansatz.num_qubits();
        let k = ansatz.num_params();
        let mut model = VariationalClassifier {
            ansatz,
            theta: Self::initial_theta(k, config),
            observable: PauliString::identity(n),
            num_classes,
        };
        let d = data.len() as f64;
        let mut opt = Adam::new(k, config.lr);

        for _ in 0..config.epochs {
            let theta = model.theta.clone();
            let grads: Vec<f64> = (0..k)
                .into_par_iter()
                .map(|u| {
                    let mut plus = theta.clone();
                    plus[u] += FRAC_PI_2;
                    let mut minus = theta.clone();
                    minus[u] -= FRAC_PI_2;
                    data.par_iter()
                        .zip(labels.par_iter())
                        .map(|(x, &y)| {
                            let p = model.class_probs(x, &theta, num_classes);
                            let pp = model.class_probs(x, &plus, num_classes);
                            let pm = model.class_probs(x, &minus, num_classes);
                            // ∂CE/∂θu = −(1/p_y)·∂p_y/∂θu per sample.
                            let dp = (pp[y] - pm[y]) / 2.0;
                            -dp / p[y].max(1e-12) / d
                        })
                        .sum()
                })
                .collect();
            opt.step(&mut model.theta, &grads);
        }
        model
    }

    /// The trained parameters.
    pub fn theta(&self) -> &[f64] {
        &self.theta
    }

    /// Binary probabilities via the affine map `(⟨O⟩ + 1)/2`.
    pub fn predict_proba_binary(&self, data: &[Vec<f64>]) -> Vec<f64> {
        assert_eq!(self.num_classes, 1);
        data.par_iter()
            .map(|x| (self.head_value(x, &self.theta) + 1.0) / 2.0)
            .collect()
    }

    /// `(BCE-equivalent loss, accuracy)` for binary labels. The paper's
    /// Table III leaves the variational loss blank (different objective);
    /// we report accuracy and the MSE-on-±1 objective for completeness.
    pub fn evaluate_binary(&self, data: &[Vec<f64>], labels: &[f64]) -> (f64, f64) {
        let probs = self.predict_proba_binary(data);
        let acc = ml::accuracy(labels, &probs);
        (bce_loss(labels, &probs), acc)
    }

    /// Multiclass predictions.
    pub fn predict_multiclass(&self, data: &[Vec<f64>]) -> Vec<usize> {
        assert!(self.num_classes >= 2);
        data.par_iter()
            .map(|x| {
                let p = self.class_probs(x, &self.theta, self.num_classes);
                p.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0
            })
            .collect()
    }

    /// `(cross-entropy, accuracy)` for multiclass labels.
    pub fn evaluate_multiclass(&self, data: &[Vec<f64>], labels: &[usize]) -> (f64, f64) {
        let probs: Vec<Vec<f64>> = data
            .par_iter()
            .map(|x| self.class_probs(x, &self.theta, self.num_classes))
            .collect();
        let loss = softmax_ce_loss(labels, &probs);
        let preds = self.predict_multiclass(data);
        (loss, ml::accuracy_multiclass(labels, &preds))
    }

    /// Exposes per-sample head values (diagnostics; e.g. Table III's
    /// decision margins).
    pub fn decision_values(&self, data: &[Vec<f64>]) -> Vec<f64> {
        data.par_iter()
            .map(|x| self.head_value(x, &self.theta))
            .collect()
    }

    /// The feature matrix a *post-variational* observer would see from the
    /// trained circuit: one column per observable at the trained θ. Used
    /// by tests to cross-check CQO equivalence (§III.D).
    pub fn feature_column(&self, data: &[Vec<f64>]) -> Mat {
        let col: Vec<Vec<f64>> = data
            .iter()
            .map(|x| vec![self.head_value(x, &self.theta)])
            .collect();
        Mat::from_rows(&col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::fig8_ansatz;
    use crate::strategy::Strategy;

    /// A binary task that a variational circuit *can* learn: the label is
    /// the sign of ⟨Z₀⟩ of the *encoded* state, so some θ (e.g. identity)
    /// solves it perfectly.
    fn easy_task(d: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        let mut i = 0;
        while data.len() < d {
            i += 1;
            let x: Vec<f64> = (0..16)
                .map(|j| 0.25 + 0.41 * ((i * 5 + j * 11) % 23) as f64 / 23.0 * 5.5)
                .collect();
            let n = 4;
            let c = column_encoding(&x, n);
            let s = StateVector::from_circuit(&c);
            let z0 = Strategy::default_observable(n);
            let v = s.expectation(&z0);
            if v.abs() < 0.15 {
                continue; // keep a margin so the task is cleanly separable
            }
            labels.push(if v > 0.0 { 1.0 } else { 0.0 });
            data.push(x);
        }
        (data, labels)
    }

    #[test]
    fn binary_training_improves_over_initialisation() {
        let (data, labels) = easy_task(40);
        let config = VariationalConfig {
            epochs: 40,
            lr: 0.1,
            init_zero: true,
            seed: 1,
        };
        let model = VariationalClassifier::fit_binary(
            fig8_ansatz(4),
            Strategy::default_observable(4),
            &data,
            &labels,
            &config,
        );
        let (_, acc) = model.evaluate_binary(&data, &labels);
        // Zero-init already solves this task (identity circuit); training
        // must not destroy it.
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn parameter_shift_matches_finite_difference() {
        let (data, _) = easy_task(3);
        let model = VariationalClassifier {
            ansatz: fig8_ansatz(4),
            theta: vec![0.3, -0.2, 0.5, 0.1, -0.4, 0.2, 0.0, 0.6],
            observable: Strategy::default_observable(4),
            num_classes: 1,
        };
        let x = &data[0];
        for u in [0, 3, 7] {
            let mut plus = model.theta.clone();
            plus[u] += FRAC_PI_2;
            let mut minus = model.theta.clone();
            minus[u] -= FRAC_PI_2;
            let shift_grad = (model.head_value(x, &plus) - model.head_value(x, &minus)) / 2.0;
            let h = 1e-5;
            let mut fp = model.theta.clone();
            fp[u] += h;
            let mut fm = model.theta.clone();
            fm[u] -= h;
            let fd_grad = (model.head_value(x, &fp) - model.head_value(x, &fm)) / (2.0 * h);
            assert!(
                (shift_grad - fd_grad).abs() < 1e-6,
                "param {u}: shift {shift_grad} vs fd {fd_grad}"
            );
        }
    }

    #[test]
    fn multiclass_probabilities_normalised() {
        let (data, _) = easy_task(5);
        let model = VariationalClassifier {
            ansatz: fig8_ansatz(4),
            theta: vec![0.2; 8],
            observable: PauliString::identity(4),
            num_classes: 3,
        };
        for x in &data {
            let p = model.class_probs(x, &model.theta, 3);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn multiclass_training_runs_and_beats_uniform_loss() {
        let (data, _) = easy_task(20);
        let labels: Vec<usize> = (0..20).map(|i| i % 3).collect();
        let config = VariationalConfig {
            epochs: 15,
            lr: 0.1,
            init_zero: false,
            seed: 3,
        };
        let model =
            VariationalClassifier::fit_multiclass(fig8_ansatz(4), &data, &labels, 3, &config);
        let (loss, acc) = model.evaluate_multiclass(&data, &labels);
        assert!(loss.is_finite());
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn zero_init_gives_identity_circuit_predictions() {
        let (data, _) = easy_task(4);
        let model = VariationalClassifier {
            ansatz: fig8_ansatz(4),
            theta: vec![0.0; 8],
            observable: Strategy::default_observable(4),
            num_classes: 1,
        };
        // With θ = 0 the ansatz is the CNOT ring only; head values equal
        // those of the encoded state passed through the ring.
        for x in &data {
            let mut c = column_encoding(x, 4);
            c.extend(&fig8_ansatz(4).bind(&[0.0; 8]));
            let want = StateVector::from_circuit(&c).expectation(&model.observable);
            assert!((model.head_value(x, &model.theta) - want).abs() < 1e-12);
        }
    }
}

//! In-memory image datasets.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The ten Fashion-MNIST classes in the official label order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FashionClass {
    /// 0 — T-shirt/top.
    TShirt,
    /// 1 — Trouser.
    Trouser,
    /// 2 — Pullover.
    Pullover,
    /// 3 — Dress.
    Dress,
    /// 4 — Coat.
    Coat,
    /// 5 — Sandal.
    Sandal,
    /// 6 — Shirt.
    Shirt,
    /// 7 — Sneaker.
    Sneaker,
    /// 8 — Bag.
    Bag,
    /// 9 — Ankle boot.
    AnkleBoot,
}

impl FashionClass {
    /// All classes in label order.
    pub const ALL: [FashionClass; 10] = [
        FashionClass::TShirt,
        FashionClass::Trouser,
        FashionClass::Pullover,
        FashionClass::Dress,
        FashionClass::Coat,
        FashionClass::Sandal,
        FashionClass::Shirt,
        FashionClass::Sneaker,
        FashionClass::Bag,
        FashionClass::AnkleBoot,
    ];

    /// The numeric label (0–9).
    pub fn label(self) -> usize {
        Self::ALL.iter().position(|&c| c == self).unwrap()
    }

    /// From a numeric label.
    pub fn from_label(l: usize) -> Option<Self> {
        Self::ALL.get(l).copied()
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            FashionClass::TShirt => "T-shirt/top",
            FashionClass::Trouser => "Trouser",
            FashionClass::Pullover => "Pullover",
            FashionClass::Dress => "Dress",
            FashionClass::Coat => "Coat",
            FashionClass::Sandal => "Sandal",
            FashionClass::Shirt => "Shirt",
            FashionClass::Sneaker => "Sneaker",
            FashionClass::Bag => "Bag",
            FashionClass::AnkleBoot => "Ankle boot",
        }
    }
}

/// A labelled grayscale image dataset; pixels are `f64` in `[0, 1]`.
#[derive(Clone, Debug, Default)]
pub struct Dataset {
    /// Row-major pixel buffers, one per image.
    pub images: Vec<Vec<f64>>,
    /// Numeric class labels.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Appends a sample.
    pub fn push(&mut self, image: Vec<f64>, label: usize) {
        if let Some(first) = self.images.first() {
            assert_eq!(first.len(), image.len(), "inconsistent image size");
        }
        self.images.push(image);
        self.labels.push(label);
    }

    /// Keeps only samples whose label is in `keep`, remapping labels to
    /// `0..keep.len()` in the order given (e.g. `[Coat, Shirt] → {0, 1}`).
    pub fn filter_classes(&self, keep: &[usize]) -> Dataset {
        let mut out = Dataset::default();
        for (img, &l) in self.images.iter().zip(self.labels.iter()) {
            if let Some(new_label) = keep.iter().position(|&k| k == l) {
                out.push(img.clone(), new_label);
            }
        }
        out
    }

    /// Draws a class-balanced subset with `per_class` samples of each
    /// label present, shuffled deterministically.
    pub fn balanced_subset(&self, per_class: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut by_class: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for (i, &l) in self.labels.iter().enumerate() {
            by_class.entry(l).or_default().push(i);
        }
        let mut chosen = Vec::new();
        for (label, mut idxs) in by_class {
            assert!(
                idxs.len() >= per_class,
                "class {label} has only {} samples, need {per_class}",
                idxs.len()
            );
            for i in (1..idxs.len()).rev() {
                let j = rng.random_range(0..=i);
                idxs.swap(i, j);
            }
            chosen.extend_from_slice(&idxs[..per_class]);
        }
        // Shuffle across classes too.
        for i in (1..chosen.len()).rev() {
            let j = rng.random_range(0..=i);
            chosen.swap(i, j);
        }
        let mut out = Dataset::default();
        for &i in &chosen {
            out.push(self.images[i].clone(), self.labels[i]);
        }
        out
    }

    /// Splits into `(train, test)` by sample counts, preserving order.
    pub fn split_at(&self, train_len: usize) -> (Dataset, Dataset) {
        assert!(train_len <= self.len());
        let mut train = Dataset::default();
        let mut test = Dataset::default();
        for i in 0..self.len() {
            let target = if i < train_len { &mut train } else { &mut test };
            target.push(self.images[i].clone(), self.labels[i]);
        }
        (train, test)
    }

    /// The distinct labels present, sorted.
    pub fn classes(&self) -> Vec<usize> {
        let mut c: Vec<usize> = self.labels.clone();
        c.sort_unstable();
        c.dedup();
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let mut d = Dataset::default();
        for i in 0..12 {
            d.push(vec![i as f64; 4], i % 3);
        }
        d
    }

    #[test]
    fn class_enum_roundtrip() {
        for c in FashionClass::ALL {
            assert_eq!(FashionClass::from_label(c.label()), Some(c));
        }
        assert_eq!(FashionClass::Coat.label(), 4);
        assert_eq!(FashionClass::Shirt.label(), 6);
        assert!(FashionClass::from_label(10).is_none());
    }

    #[test]
    fn filter_remaps_labels() {
        let d = tiny();
        let f = d.filter_classes(&[2, 0]);
        assert_eq!(f.len(), 8);
        assert_eq!(f.classes(), vec![0, 1]);
        // Original label 2 → 0, label 0 → 1.
        let first_orig_2 = d.labels.iter().position(|&l| l == 2).unwrap();
        assert_eq!(
            f.labels[f
                .images
                .iter()
                .position(|img| img == &d.images[first_orig_2])
                .unwrap()],
            0
        );
    }

    #[test]
    fn balanced_subset_counts() {
        let d = tiny();
        let b = d.balanced_subset(2, 7);
        assert_eq!(b.len(), 6);
        for c in 0..3 {
            assert_eq!(b.labels.iter().filter(|&&l| l == c).count(), 2);
        }
    }

    #[test]
    fn balanced_subset_deterministic() {
        let d = tiny();
        assert_eq!(
            d.balanced_subset(2, 7).labels,
            d.balanced_subset(2, 7).labels
        );
    }

    #[test]
    #[should_panic]
    fn balanced_subset_insufficient_samples() {
        let d = tiny();
        let _ = d.balanced_subset(100, 0);
    }

    #[test]
    fn split_preserves_order() {
        let d = tiny();
        let (tr, te) = d.split_at(9);
        assert_eq!(tr.len(), 9);
        assert_eq!(te.len(), 3);
        assert_eq!(te.images[0], d.images[9]);
    }
}

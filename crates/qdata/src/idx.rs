//! Loader for the IDX binary format used by MNIST/Fashion-MNIST.
//!
//! Only uncompressed files are supported (`gunzip` the official downloads
//! first). Magic numbers: `0x00000803` for image files (u8, 3 dims),
//! `0x00000801` for label files (u8, 1 dim).

use crate::dataset::Dataset;
use std::io::{self, Read};
use std::path::Path;

fn read_u32_be(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_be_bytes(buf))
}

/// Parses an IDX3 (images) byte stream into per-image pixel buffers scaled
/// to `[0, 1]`.
pub fn parse_idx_images(mut r: impl Read) -> io::Result<Vec<Vec<f64>>> {
    let magic = read_u32_be(&mut r)?;
    if magic != 0x0000_0803 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad IDX3 magic 0x{magic:08x}"),
        ));
    }
    let count = read_u32_be(&mut r)? as usize;
    let rows = read_u32_be(&mut r)? as usize;
    let cols = read_u32_be(&mut r)? as usize;
    let mut out = Vec::with_capacity(count);
    let mut buf = vec![0u8; rows * cols];
    for _ in 0..count {
        r.read_exact(&mut buf)?;
        out.push(buf.iter().map(|&b| b as f64 / 255.0).collect());
    }
    Ok(out)
}

/// Parses an IDX1 (labels) byte stream.
pub fn parse_idx_labels(mut r: impl Read) -> io::Result<Vec<usize>> {
    let magic = read_u32_be(&mut r)?;
    if magic != 0x0000_0801 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad IDX1 magic 0x{magic:08x}"),
        ));
    }
    let count = read_u32_be(&mut r)? as usize;
    let mut buf = vec![0u8; count];
    r.read_exact(&mut buf)?;
    Ok(buf.into_iter().map(|b| b as usize).collect())
}

/// Loads a (images, labels) IDX pair from disk.
pub fn load_idx_pair(images_path: &Path, labels_path: &Path) -> io::Result<Dataset> {
    let images = parse_idx_images(std::fs::File::open(images_path)?)?;
    let labels = parse_idx_labels(std::fs::File::open(labels_path)?)?;
    if images.len() != labels.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{} images but {} labels", images.len(), labels.len()),
        ));
    }
    Ok(Dataset { images, labels })
}

/// Loads the real Fashion-MNIST training split from a directory containing
/// the standard file names (`train-images-idx3-ubyte`,
/// `train-labels-idx1-ubyte`). Returns `None` when the files are absent,
/// letting callers fall back to the synthetic substitute.
pub fn load_fashion_mnist(dir: &Path) -> Option<Dataset> {
    let images = dir.join("train-images-idx3-ubyte");
    let labels = dir.join("train-labels-idx1-ubyte");
    if !images.exists() || !labels.exists() {
        return None;
    }
    load_idx_pair(&images, &labels).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises a tiny IDX pair in memory.
    fn fake_idx(images: &[[u8; 4]], labels: &[u8]) -> (Vec<u8>, Vec<u8>) {
        let mut img = Vec::new();
        img.extend_from_slice(&0x0000_0803u32.to_be_bytes());
        img.extend_from_slice(&(images.len() as u32).to_be_bytes());
        img.extend_from_slice(&2u32.to_be_bytes());
        img.extend_from_slice(&2u32.to_be_bytes());
        for im in images {
            img.extend_from_slice(im);
        }
        let mut lab = Vec::new();
        lab.extend_from_slice(&0x0000_0801u32.to_be_bytes());
        lab.extend_from_slice(&(labels.len() as u32).to_be_bytes());
        lab.extend_from_slice(labels);
        (img, lab)
    }

    #[test]
    fn roundtrip_parse() {
        let (img, lab) = fake_idx(&[[0, 128, 255, 64], [10, 20, 30, 40]], &[3, 7]);
        let images = parse_idx_images(&img[..]).unwrap();
        let labels = parse_idx_labels(&lab[..]).unwrap();
        assert_eq!(images.len(), 2);
        assert_eq!(labels, vec![3, 7]);
        assert!((images[0][1] - 128.0 / 255.0).abs() < 1e-12);
        assert!((images[0][2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_magic() {
        let bytes = 0xdeadbeefu32.to_be_bytes();
        assert!(parse_idx_images(&bytes[..]).is_err());
        assert!(parse_idx_labels(&bytes[..]).is_err());
    }

    #[test]
    fn rejects_truncated_stream() {
        let (img, _) = fake_idx(&[[1, 2, 3, 4]], &[0]);
        assert!(parse_idx_images(&img[..img.len() - 2]).is_err());
    }

    #[test]
    fn missing_directory_returns_none() {
        assert!(load_fashion_mnist(Path::new("/nonexistent/dir")).is_none());
    }
}

//! # qdata — datasets for the post-variational experiments
//!
//! The paper trains on Fashion-MNIST \[67\] (28×28 grayscale, 10 garment
//! classes), max-pools 7×7 patches down to 4×4 and rescales into `[0, 2π)`
//! before the quantum encoding (§VII.A). This crate supplies:
//!
//! * [`synth`] — a **procedural synthetic substitute** for Fashion-MNIST:
//!   ten parametric garment-silhouette templates with per-sample jitter and
//!   pixel noise. The `Coat`/`Shirt` pair is deliberately similar, mirroring
//!   the paper's choice of a visually confusable binary task. Used by
//!   default so the repo has no data download (substitution documented in
//!   DESIGN.md).
//! * [`idx`] — a loader for the real Fashion-MNIST IDX files when present
//!   on disk (drop `*-images-idx3-ubyte` / `*-labels-idx1-ubyte` into a
//!   directory and point [`idx::load_fashion_mnist`] at it).
//! * [`preprocess`] — the paper's 7×7 max-pool → 4×4 → `[0, 2π)` rescale.

pub mod dataset;
pub mod idx;
pub mod preprocess;
pub mod synth;

pub use dataset::{Dataset, FashionClass};
pub use preprocess::{max_pool_28_to_4, preprocess_4x4, Preprocessor};
pub use synth::{fashion_synthetic, SynthConfig};

/// Image side length of the raw dataset.
pub const IMG_SIDE: usize = 28;
/// Pixels per raw image.
pub const IMG_PIXELS: usize = IMG_SIDE * IMG_SIDE;
/// Side length after max pooling.
pub const POOLED_SIDE: usize = 4;
/// Features per pooled image (16 = 4×4).
pub const POOLED_PIXELS: usize = POOLED_SIDE * POOLED_SIDE;

//! The paper's preprocessing pipeline (§VII.A): "we first reduce the
//! dimensions of the image to 4×4 images … we instead apply max pooling
//! over 7×7 patches and rescaling the parameters to a range of [0, 2π)".

use crate::dataset::Dataset;
use crate::{IMG_PIXELS, IMG_SIDE, POOLED_PIXELS, POOLED_SIDE};

/// Max-pools a 28×28 image over non-overlapping 7×7 patches → 16 values,
/// row-major (row `r`, column `c` at index `4r + c`).
pub fn max_pool_28_to_4(image: &[f64]) -> Vec<f64> {
    assert_eq!(image.len(), IMG_PIXELS, "expected 28×28 input");
    let patch = IMG_SIDE / POOLED_SIDE; // 7
    let mut out = vec![0.0; POOLED_PIXELS];
    for pr in 0..POOLED_SIDE {
        for pc in 0..POOLED_SIDE {
            let mut m = f64::NEG_INFINITY;
            for dy in 0..patch {
                for dx in 0..patch {
                    let y = pr * patch + dy;
                    let x = pc * patch + dx;
                    m = m.max(image[y * IMG_SIDE + x]);
                }
            }
            out[pr * POOLED_SIDE + pc] = m;
        }
    }
    out
}

/// Per-feature min/max rescaler into `[0, 2π)`, fitted on a training set
/// and applied to both splits (the standard leakage-free protocol).
#[derive(Clone, Debug)]
pub struct Preprocessor {
    mins: Vec<f64>,
    ranges: Vec<f64>,
}

/// Strictly below 2π so the half-open interval `[0, 2π)` is respected.
const TWO_PI_OPEN: f64 = std::f64::consts::TAU * (1.0 - 1e-9);

impl Preprocessor {
    /// Fits min/max statistics on already-pooled 16-feature rows.
    pub fn fit(pooled: &[Vec<f64>]) -> Self {
        assert!(!pooled.is_empty());
        let f = pooled[0].len();
        let mut mins = vec![f64::INFINITY; f];
        let mut maxs = vec![f64::NEG_INFINITY; f];
        for row in pooled {
            assert_eq!(row.len(), f);
            for j in 0..f {
                mins[j] = mins[j].min(row[j]);
                maxs[j] = maxs[j].max(row[j]);
            }
        }
        let ranges = mins
            .iter()
            .zip(maxs.iter())
            .map(|(lo, hi)| {
                let r = hi - lo;
                if r > 0.0 {
                    r
                } else {
                    1.0 // constant feature maps to 0
                }
            })
            .collect();
        Preprocessor { mins, ranges }
    }

    /// Rescales one pooled row into `[0, 2π)`, clamping unseen values.
    pub fn transform(&self, pooled: &[f64]) -> Vec<f64> {
        assert_eq!(pooled.len(), self.mins.len());
        pooled
            .iter()
            .enumerate()
            .map(|(j, &v)| {
                let t = ((v - self.mins[j]) / self.ranges[j]).clamp(0.0, 1.0);
                t * TWO_PI_OPEN
            })
            .collect()
    }
}

/// Full pipeline over a dataset: pool every image, fit the rescaler on the
/// pooled **training** rows, and return `(train_features, test_features)`
/// in `[0, 2π)^16`.
pub fn preprocess_4x4(train: &Dataset, test: &Dataset) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let pooled_train: Vec<Vec<f64>> = train.images.iter().map(|i| max_pool_28_to_4(i)).collect();
    let pooled_test: Vec<Vec<f64>> = test.images.iter().map(|i| max_pool_28_to_4(i)).collect();
    let prep = Preprocessor::fit(&pooled_train);
    (
        pooled_train.iter().map(|r| prep.transform(r)).collect(),
        pooled_test.iter().map(|r| prep.transform(r)).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    #[test]
    fn max_pool_picks_patch_maxima() {
        let mut img = vec![0.0; IMG_PIXELS];
        // Put a known max in patch (0,0) and (3,3).
        img[3 * IMG_SIDE + 4] = 0.9; // row 3, col 4 → patch (0,0)
        img[27 * IMG_SIDE + 27] = 0.7; // patch (3,3)
        let pooled = max_pool_28_to_4(&img);
        assert_eq!(pooled[0], 0.9);
        assert_eq!(pooled[15], 0.7);
        assert_eq!(pooled[5], 0.0);
    }

    #[test]
    fn rescale_hits_full_range() {
        let rows = vec![vec![0.0, 5.0], vec![1.0, 10.0]];
        let prep = Preprocessor::fit(&rows);
        let lo = prep.transform(&rows[0]);
        let hi = prep.transform(&rows[1]);
        assert!(lo[0].abs() < 1e-12);
        assert!(hi[0] < TAU && hi[0] > TAU - 1e-6);
        assert!(lo[1].abs() < 1e-12);
    }

    #[test]
    fn rescale_clamps_out_of_range_test_values() {
        let rows = vec![vec![0.0], vec![1.0]];
        let prep = Preprocessor::fit(&rows);
        let below = prep.transform(&[-5.0]);
        let above = prep.transform(&[9.0]);
        assert_eq!(below[0], 0.0);
        assert!(above[0] < TAU);
    }

    #[test]
    fn constant_feature_maps_to_zero() {
        let rows = vec![vec![3.0], vec![3.0]];
        let prep = Preprocessor::fit(&rows);
        assert_eq!(prep.transform(&[3.0])[0], 0.0);
    }

    #[test]
    fn pipeline_shapes_and_ranges() {
        use crate::synth::{fashion_synthetic, SynthConfig};
        use crate::FashionClass;
        let ds = fashion_synthetic(
            &[FashionClass::Coat, FashionClass::Shirt],
            10,
            3,
            &SynthConfig::default(),
        );
        let (train, test) = ds.split_at(16);
        let (ftr, fte) = preprocess_4x4(&train, &test);
        assert_eq!(ftr.len(), 16);
        assert_eq!(fte.len(), 4);
        for row in ftr.iter().chain(fte.iter()) {
            assert_eq!(row.len(), POOLED_PIXELS);
            assert!(row.iter().all(|&v| (0.0..TAU).contains(&v)));
        }
    }
}

//! Procedural synthetic Fashion-MNIST substitute.
//!
//! Each of the ten classes is a parametric garment silhouette drawn from
//! geometric primitives on a 28×28 canvas, with per-sample jitter in
//! position, scale and intensity plus additive pixel noise. The `Coat` and
//! `Shirt` templates share the same torso-with-sleeves construction and
//! differ only in hem length, collar notch and a front seam — so the binary
//! Coat-vs-Shirt task stays genuinely hard, matching the paper's choice of
//! that pair for Table III.
//!
//! This is the documented substitution for the real Fashion-MNIST download
//! (see DESIGN.md); the real IDX files can be loaded with [`crate::idx`]
//! instead and flow through the identical pipeline.

use crate::dataset::{Dataset, FashionClass};
use crate::{IMG_PIXELS, IMG_SIDE};
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Generator settings.
#[derive(Clone, Copy, Debug)]
pub struct SynthConfig {
    /// Positional jitter radius in pixels.
    pub jitter_px: f64,
    /// Relative scale jitter (e.g. 0.1 → ±10 %).
    pub scale_jitter: f64,
    /// Additive uniform pixel noise amplitude.
    pub pixel_noise: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            jitter_px: 1.5,
            scale_jitter: 0.12,
            pixel_noise: 0.06,
        }
    }
}

/// A 28×28 float canvas with drawing primitives.
struct Canvas {
    px: Vec<f64>,
}

impl Canvas {
    fn new() -> Self {
        Canvas {
            px: vec![0.0; IMG_PIXELS],
        }
    }

    fn set_max(&mut self, x: i64, y: i64, v: f64) {
        if (0..IMG_SIDE as i64).contains(&x) && (0..IMG_SIDE as i64).contains(&y) {
            let idx = y as usize * IMG_SIDE + x as usize;
            self.px[idx] = self.px[idx].max(v);
        }
    }

    /// Axis-aligned filled rectangle (coordinates in canvas units).
    fn rect(&mut self, x0: f64, y0: f64, x1: f64, y1: f64, v: f64) {
        for y in y0.floor() as i64..=y1.ceil() as i64 {
            for x in x0.floor() as i64..=x1.ceil() as i64 {
                self.set_max(x, y, v);
            }
        }
    }

    /// Filled ellipse.
    fn ellipse(&mut self, cx: f64, cy: f64, rx: f64, ry: f64, v: f64) {
        for y in (cy - ry).floor() as i64..=(cy + ry).ceil() as i64 {
            for x in (cx - rx).floor() as i64..=(cx + rx).ceil() as i64 {
                let dx = (x as f64 - cx) / rx;
                let dy = (y as f64 - cy) / ry;
                if dx * dx + dy * dy <= 1.0 {
                    self.set_max(x, y, v);
                }
            }
        }
    }

    /// Filled trapezoid symmetric about `cx`: half-width `w0` at `y0`
    /// linearly widening to `w1` at `y1`.
    fn trapezoid(&mut self, cx: f64, y0: f64, w0: f64, y1: f64, w1: f64, v: f64) {
        for y in y0.floor() as i64..=y1.ceil() as i64 {
            let t = ((y as f64 - y0) / (y1 - y0)).clamp(0.0, 1.0);
            let w = w0 + t * (w1 - w0);
            for x in (cx - w).floor() as i64..=(cx + w).ceil() as i64 {
                self.set_max(x, y, v);
            }
        }
    }

    /// Erases (sets to 0) a rectangle — used for collar notches etc.
    fn erase_rect(&mut self, x0: f64, y0: f64, x1: f64, y1: f64) {
        for y in y0.floor() as i64..=y1.ceil() as i64 {
            for x in x0.floor() as i64..=x1.ceil() as i64 {
                if (0..IMG_SIDE as i64).contains(&x) && (0..IMG_SIDE as i64).contains(&y) {
                    self.px[y as usize * IMG_SIDE + x as usize] = 0.0;
                }
            }
        }
    }
}

/// Per-sample random drawing parameters.
struct Jitter {
    dx: f64,
    dy: f64,
    scale: f64,
    tone: f64,
}

fn draw_class(c: &mut Canvas, class: FashionClass, j: &Jitter) {
    let cx = 14.0 + j.dx;
    let s = j.scale;
    let v = j.tone;
    let top = 4.0 + j.dy;
    match class {
        FashionClass::TShirt => {
            // Boxy torso with short sleeves.
            c.rect(cx - 5.0 * s, top + 2.0, cx + 5.0 * s, top + 18.0 * s, v);
            c.rect(
                cx - 9.0 * s,
                top + 2.0,
                cx + 9.0 * s,
                top + 7.0 * s,
                v * 0.9,
            );
            c.erase_rect(cx - 2.0, top + 1.0, cx + 2.0, top + 3.0); // neckline
        }
        FashionClass::Trouser => {
            // Waistband and two legs.
            c.rect(cx - 6.0 * s, top + 1.0, cx + 6.0 * s, top + 4.0, v);
            c.rect(cx - 6.0 * s, top + 4.0, cx - 1.5, top + 22.0 * s, v);
            c.rect(cx + 1.5, top + 4.0, cx + 6.0 * s, top + 22.0 * s, v);
        }
        FashionClass::Pullover => {
            // Torso with full-length sleeves hugging the sides.
            c.rect(cx - 5.5 * s, top + 2.0, cx + 5.5 * s, top + 17.0 * s, v);
            c.rect(
                cx - 10.0 * s,
                top + 2.0,
                cx - 6.0 * s,
                top + 16.0 * s,
                v * 0.95,
            );
            c.rect(
                cx + 6.0 * s,
                top + 2.0,
                cx + 10.0 * s,
                top + 16.0 * s,
                v * 0.95,
            );
            c.rect(
                cx - 6.5 * s,
                top + 15.0 * s,
                cx + 6.5 * s,
                top + 17.5 * s,
                v,
            ); // ribbed hem
        }
        FashionClass::Dress => {
            // Narrow bodice flaring into a wide skirt.
            c.trapezoid(cx, top + 1.0, 3.5 * s, top + 9.0, 2.5 * s, v);
            c.trapezoid(cx, top + 9.0, 2.5 * s, top + 22.0 * s, 8.5 * s, v);
        }
        FashionClass::Coat => {
            // Long torso + sleeves + front seam; hem reaches low.
            c.rect(cx - 5.5 * s, top + 1.0, cx + 5.5 * s, top + 21.0 * s, v);
            c.rect(
                cx - 9.5 * s,
                top + 1.0,
                cx - 6.0 * s,
                top + 18.0 * s,
                v * 0.9,
            );
            c.rect(
                cx + 6.0 * s,
                top + 1.0,
                cx + 9.5 * s,
                top + 18.0 * s,
                v * 0.9,
            );
            c.erase_rect(cx - 0.5, top + 2.0, cx + 0.5, top + 21.0 * s); // front seam
        }
        FashionClass::Sandal => {
            // Sparse horizontal straps over a sole.
            c.rect(4.0 + j.dx, 18.0 + j.dy, 24.0 + j.dx, 20.0 + j.dy, v);
            c.rect(6.0 + j.dx, 14.0 + j.dy, 22.0 + j.dx, 15.0 + j.dy, v * 0.8);
            c.rect(9.0 + j.dx, 10.0 + j.dy, 19.0 + j.dx, 11.0 + j.dy, v * 0.7);
        }
        FashionClass::Shirt => {
            // Like Coat but shorter hem, collar notch, no front seam —
            // deliberately confusable.
            c.rect(cx - 5.5 * s, top + 1.5, cx + 5.5 * s, top + 17.0 * s, v);
            c.rect(
                cx - 9.0 * s,
                top + 1.5,
                cx - 6.0 * s,
                top + 13.0 * s,
                v * 0.9,
            );
            c.rect(
                cx + 6.0 * s,
                top + 1.5,
                cx + 9.0 * s,
                top + 13.0 * s,
                v * 0.9,
            );
            c.erase_rect(cx - 2.0, top + 0.5, cx + 2.0, top + 3.5); // collar
        }
        FashionClass::Sneaker => {
            // Low profile with a bright sole stripe.
            c.ellipse(14.0 + j.dx, 16.0 + j.dy, 9.0 * s, 4.0 * s, v * 0.9);
            c.rect(4.0 + j.dx, 18.0 + j.dy, 24.0 + j.dx, 21.0 + j.dy, v);
        }
        FashionClass::Bag => {
            // Body + handle arc.
            c.rect(cx - 8.0 * s, 12.0 + j.dy, cx + 8.0 * s, 24.0 + j.dy, v);
            c.ellipse(cx, 10.0 + j.dy, 5.0 * s, 4.0 * s, v * 0.8);
            c.ellipse(cx, 10.0 + j.dy, 3.0 * s, 2.2 * s, 0.0); // hollow handle: punch
            c.erase_rect(cx - 3.0 * s, 8.0 + j.dy, cx + 3.0 * s, 10.5 + j.dy);
            c.rect(cx - 8.0 * s, 12.0 + j.dy, cx + 8.0 * s, 24.0 + j.dy, v); // redraw body
        }
        FashionClass::AnkleBoot => {
            // Vertical shaft + horizontal foot.
            c.rect(8.0 + j.dx, 6.0 + j.dy, 14.0 + j.dx, 20.0 + j.dy, v);
            c.rect(8.0 + j.dx, 16.0 + j.dy, 24.0 + j.dx, 21.0 + j.dy, v);
        }
    }
}

/// Generates one synthetic sample of `class`.
pub fn generate_sample<R: Rng>(class: FashionClass, config: &SynthConfig, rng: &mut R) -> Vec<f64> {
    let jitter = Jitter {
        dx: (rng.random::<f64>() * 2.0 - 1.0) * config.jitter_px,
        dy: (rng.random::<f64>() * 2.0 - 1.0) * config.jitter_px,
        scale: 1.0 + (rng.random::<f64>() * 2.0 - 1.0) * config.scale_jitter,
        tone: 0.7 + rng.random::<f64>() * 0.3,
    };
    let mut canvas = Canvas::new();
    draw_class(&mut canvas, class, &jitter);
    for p in canvas.px.iter_mut() {
        let noise = (rng.random::<f64>() * 2.0 - 1.0) * config.pixel_noise;
        *p = (*p + noise).clamp(0.0, 1.0);
    }
    canvas.px
}

/// Generates a balanced synthetic dataset: `per_class` samples of each of
/// the given classes (full ten when `classes` is empty), deterministic in
/// `seed`.
pub fn fashion_synthetic(
    classes: &[FashionClass],
    per_class: usize,
    seed: u64,
    config: &SynthConfig,
) -> Dataset {
    let classes: Vec<FashionClass> = if classes.is_empty() {
        FashionClass::ALL.to_vec()
    } else {
        classes.to_vec()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::default();
    // Interleave classes so any prefix is roughly balanced.
    for i in 0..per_class {
        for &class in &classes {
            let img = generate_sample(class, config, &mut rng);
            ds.push(img, class.label());
        }
        let _ = i;
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn images_have_correct_shape_and_range() {
        let ds = fashion_synthetic(&[], 2, 1, &SynthConfig::default());
        assert_eq!(ds.len(), 20);
        for img in &ds.images {
            assert_eq!(img.len(), IMG_PIXELS);
            assert!(img.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = fashion_synthetic(&[FashionClass::Coat], 3, 5, &SynthConfig::default());
        let b = fashion_synthetic(&[FashionClass::Coat], 3, 5, &SynthConfig::default());
        assert_eq!(a.images, b.images);
        let c = fashion_synthetic(&[FashionClass::Coat], 3, 6, &SynthConfig::default());
        assert_ne!(a.images, c.images);
    }

    #[test]
    fn classes_are_distinguishable_in_pixel_space() {
        // Mean image distance between Trouser and Bag must far exceed the
        // intra-class spread — a sanity floor for learnability.
        let cfg = SynthConfig::default();
        let trousers = fashion_synthetic(&[FashionClass::Trouser], 10, 2, &cfg);
        let bags = fashion_synthetic(&[FashionClass::Bag], 10, 3, &cfg);
        let mean = |ds: &Dataset| -> Vec<f64> {
            let mut m = vec![0.0; IMG_PIXELS];
            for img in &ds.images {
                for (a, b) in m.iter_mut().zip(img) {
                    *a += b / ds.len() as f64;
                }
            }
            m
        };
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        let mt = mean(&trousers);
        let mb = mean(&bags);
        let between = dist(&mt, &mb);
        let within: f64 = trousers
            .images
            .iter()
            .map(|img| dist(img, &mt))
            .sum::<f64>()
            / 10.0;
        assert!(
            between > 1.2 * within,
            "between={between:.3} within={within:.3}"
        );
    }

    #[test]
    fn coat_and_shirt_are_similar_but_not_identical() {
        let cfg = SynthConfig {
            jitter_px: 0.0,
            scale_jitter: 0.0,
            pixel_noise: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let coat = generate_sample(FashionClass::Coat, &cfg, &mut rng);
        let shirt = generate_sample(FashionClass::Shirt, &cfg, &mut rng);
        let trouser = generate_sample(FashionClass::Trouser, &cfg, &mut rng);
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        let coat_shirt = dist(&coat, &shirt);
        let coat_trouser = dist(&coat, &trouser);
        assert!(coat_shirt > 0.1, "templates must differ");
        assert!(
            coat_shirt < coat_trouser,
            "Coat/Shirt should be the harder pair: {coat_shirt:.2} vs {coat_trouser:.2}"
        );
    }

    #[test]
    fn balanced_prefixes() {
        let ds = fashion_synthetic(
            &[FashionClass::Coat, FashionClass::Shirt],
            5,
            9,
            &SynthConfig::default(),
        );
        // Interleaved: any even prefix has equal counts.
        let prefix = &ds.labels[..6];
        let coats = prefix.iter().filter(|&&l| l == 4).count();
        let shirts = prefix.iter().filter(|&&l| l == 6).count();
        assert_eq!(coats, 3);
        assert_eq!(shirts, 3);
    }
}

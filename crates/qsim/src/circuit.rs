//! Circuit IR: flat gate lists and parameterised circuits.

use crate::gate::Gate;
use std::fmt;

/// A fixed (non-parameterised) quantum circuit on `n` qubits.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Circuit {
    n: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Empty circuit on `n` qubits.
    pub fn new(n: usize) -> Self {
        assert!((1..=pauli::MAX_QUBITS).contains(&n));
        Circuit {
            n,
            gates: Vec::new(),
        }
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The gate list in execution order.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates.
    #[inline]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the circuit has no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Appends a gate (validating qubit indices).
    pub fn push(&mut self, g: Gate) {
        for q in g.qubits() {
            assert!(q < self.n, "gate {g} addresses qubit {q} of {}", self.n);
        }
        if let Gate::Cnot { control, target } = g {
            assert_ne!(control, target, "CNOT control == target");
        }
        if let Gate::Cz(a, b) | Gate::Swap(a, b) = g {
            assert_ne!(a, b, "two-qubit gate with identical qubits");
        }
        self.gates.push(g);
    }

    /// Builder-style append.
    pub fn with(mut self, g: Gate) -> Self {
        self.push(g);
        self
    }

    /// Appends all gates of another circuit.
    pub fn extend(&mut self, other: &Circuit) {
        assert_eq!(self.n, other.n, "qubit-count mismatch");
        self.gates.extend_from_slice(&other.gates);
    }

    /// The adjoint circuit (gates reversed and inverted) — used for fidelity
    /// pruning (§IV.C: overlap via `S†(x)U†(θ+)U(θ−)S(x)|0⟩`).
    pub fn dagger(&self) -> Circuit {
        Circuit {
            n: self.n,
            gates: self.gates.iter().rev().map(|g| g.dagger()).collect(),
        }
    }

    /// Removes gates that are the identity to tolerance `tol` — the
    /// transpile-time optimisation the paper notes for zero-initialised
    /// ansätze (§VIII: "we can remove gates that evaluate to identity").
    pub fn elide_identities(&self, tol: f64) -> Circuit {
        Circuit {
            n: self.n,
            gates: self
                .gates
                .iter()
                .copied()
                .filter(|g| !g.is_identity(tol))
                .collect(),
        }
    }

    /// Circuit depth: the longest chain of gates over any qubit, computed
    /// with the usual per-qubit frontier sweep.
    pub fn depth(&self) -> usize {
        let mut frontier = vec![0usize; self.n];
        for g in &self.gates {
            let qs = g.qubits();
            let level = qs.iter().map(|&q| frontier[q]).max().unwrap_or(0) + 1;
            for q in qs {
                frontier[q] = level;
            }
        }
        frontier.into_iter().max().unwrap_or(0)
    }

    /// Counts of (single-qubit, two-qubit) gates.
    pub fn gate_counts(&self) -> (usize, usize) {
        let single = self.gates.iter().filter(|g| g.is_single_qubit()).count();
        (single, self.gates.len() - single)
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Circuit[{} qubits, {} gates]:", self.n, self.gates.len())?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

/// Rotation axis of a parameterised gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RotAxis {
    /// `Rx`.
    X,
    /// `Ry`.
    Y,
    /// `Rz`.
    Z,
}

/// One element of a parameterised circuit: either a fixed gate or a Pauli
/// rotation reading its angle from a parameter slot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ParamGate {
    /// A gate with no free parameter.
    Fixed(Gate),
    /// A Pauli rotation whose angle is `θ[param]`.
    Rot {
        /// Rotation axis.
        axis: RotAxis,
        /// Target qubit.
        qubit: usize,
        /// Index into the parameter vector.
        param: usize,
    },
}

/// A circuit with free rotation parameters `θ ∈ R^k` — the paper's ansatz
/// `U(θ)` (Eq. (1)). Binding a concrete `θ` yields a fixed [`Circuit`].
///
/// Every parameterised gate is a single-Pauli rotation, which is exactly the
/// decomposition §IV.A assumes so that the simple ±π/2 parameter-shift rule
/// applies to each parameter independently.
#[derive(Clone, Debug, PartialEq)]
pub struct ParamCircuit {
    n: usize,
    gates: Vec<ParamGate>,
    num_params: usize,
}

impl ParamCircuit {
    /// Empty parameterised circuit.
    pub fn new(n: usize) -> Self {
        assert!((1..=pauli::MAX_QUBITS).contains(&n));
        ParamCircuit {
            n,
            gates: Vec::new(),
            num_params: 0,
        }
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Number of parameter slots `k`.
    #[inline]
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    /// The gate list.
    #[inline]
    pub fn gates(&self) -> &[ParamGate] {
        &self.gates
    }

    /// Appends a fixed gate.
    pub fn push_fixed(&mut self, g: Gate) {
        for q in g.qubits() {
            assert!(q < self.n);
        }
        self.gates.push(ParamGate::Fixed(g));
    }

    /// Appends a parameterised rotation on a **new** parameter slot,
    /// returning the slot index.
    pub fn push_rot(&mut self, axis: RotAxis, qubit: usize) -> usize {
        assert!(qubit < self.n);
        let param = self.num_params;
        self.num_params += 1;
        self.gates.push(ParamGate::Rot { axis, qubit, param });
        param
    }

    /// Appends a rotation bound to an **existing** parameter slot
    /// (parameter sharing / correlated parameters).
    pub fn push_shared_rot(&mut self, axis: RotAxis, qubit: usize, param: usize) {
        assert!(qubit < self.n);
        assert!(param < self.num_params, "unknown parameter slot {param}");
        self.gates.push(ParamGate::Rot { axis, qubit, param });
    }

    /// Binds a parameter vector, producing a fixed circuit.
    ///
    /// # Panics
    /// Panics if `theta.len() != self.num_params()`.
    pub fn bind(&self, theta: &[f64]) -> Circuit {
        assert_eq!(
            theta.len(),
            self.num_params,
            "expected {} parameters",
            self.num_params
        );
        let mut c = Circuit::new(self.n);
        for pg in &self.gates {
            match *pg {
                ParamGate::Fixed(g) => c.push(g),
                ParamGate::Rot { axis, qubit, param } => {
                    let th = theta[param];
                    c.push(match axis {
                        RotAxis::X => Gate::Rx(qubit, th),
                        RotAxis::Y => Gate::Ry(qubit, th),
                        RotAxis::Z => Gate::Rz(qubit, th),
                    });
                }
            }
        }
        c
    }

    /// Binds and drops identity gates — the common case for the paper's
    /// zero-initialised shift grids where most rotations vanish.
    pub fn bind_optimized(&self, theta: &[f64]) -> Circuit {
        self.bind(theta).elide_identities(1e-12)
    }

    /// Prepends fixed gates of `prefix` (e.g. the data-encoding circuit
    /// `S(x)`) to a bound copy of this ansatz: returns `self(θ) ∘ prefix`.
    pub fn bind_with_prefix(&self, prefix: &Circuit, theta: &[f64]) -> Circuit {
        assert_eq!(prefix.num_qubits(), self.n);
        let mut c = prefix.clone();
        c.extend(&self.bind_optimized(theta));
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_validates_qubits() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic]
    fn push_rejects_out_of_range() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(2));
    }

    #[test]
    #[should_panic]
    fn cnot_rejects_equal_qubits() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cnot {
            control: 1,
            target: 1,
        });
    }

    #[test]
    fn depth_computation() {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0)); // depth 1 on q0
        c.push(Gate::H(1)); // depth 1 on q1
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        }); // depth 2 on q0,q1
        c.push(Gate::H(2)); // depth 1 on q2
        c.push(Gate::Cnot {
            control: 1,
            target: 2,
        }); // depth 3 on q1,q2
        assert_eq!(c.depth(), 3);
        assert_eq!(c.gate_counts(), (3, 2));
    }

    #[test]
    fn elide_identities_drops_zero_rotations() {
        let mut c = Circuit::new(1);
        c.push(Gate::Rx(0, 0.0));
        c.push(Gate::H(0));
        c.push(Gate::Rz(0, 0.0));
        let e = c.elide_identities(1e-12);
        assert_eq!(e.len(), 1);
        assert_eq!(e.gates()[0], Gate::H(0));
    }

    #[test]
    fn dagger_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.push(Gate::S(0));
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        let d = c.dagger();
        assert_eq!(
            d.gates()[0],
            Gate::Cnot {
                control: 0,
                target: 1
            }
        );
        assert_eq!(d.gates()[1], Gate::Sdg(0));
    }

    #[test]
    fn param_circuit_bind() {
        let mut pc = ParamCircuit::new(2);
        pc.push_fixed(Gate::H(0));
        let p0 = pc.push_rot(RotAxis::Y, 0);
        let p1 = pc.push_rot(RotAxis::Y, 1);
        assert_eq!((p0, p1), (0, 1));
        assert_eq!(pc.num_params(), 2);
        let c = pc.bind(&[0.5, -0.5]);
        assert_eq!(c.gates()[1], Gate::Ry(0, 0.5));
        assert_eq!(c.gates()[2], Gate::Ry(1, -0.5));
    }

    #[test]
    fn shared_params_bind_same_angle() {
        let mut pc = ParamCircuit::new(2);
        let p = pc.push_rot(RotAxis::Z, 0);
        pc.push_shared_rot(RotAxis::Z, 1, p);
        let c = pc.bind(&[1.25]);
        assert_eq!(c.gates()[0], Gate::Rz(0, 1.25));
        assert_eq!(c.gates()[1], Gate::Rz(1, 1.25));
    }

    #[test]
    fn bind_optimized_shrinks_zero_ansatz() {
        let mut pc = ParamCircuit::new(2);
        pc.push_rot(RotAxis::Y, 0);
        pc.push_rot(RotAxis::Y, 1);
        pc.push_fixed(Gate::Cnot {
            control: 0,
            target: 1,
        });
        let c = pc.bind_optimized(&[0.0, 0.0]);
        assert_eq!(c.len(), 1); // only the CNOT survives
    }

    #[test]
    #[should_panic]
    fn bind_wrong_arity_panics() {
        let mut pc = ParamCircuit::new(1);
        pc.push_rot(RotAxis::X, 0);
        let _ = pc.bind(&[0.1, 0.2]);
    }
}

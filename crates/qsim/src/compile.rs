//! One-time circuit compilation: gate fusion into a [`CompiledCircuit`].
//!
//! The post-variational workload simulates the *same* circuit shapes over
//! and over (one encoding per data point, one bound ansatz per shift), so
//! a per-circuit compile pass pays for itself immediately: every fused
//! run of gates is one amplitude sweep instead of many.
//!
//! Three fusion rules, mirroring what production state-vector simulators
//! (qsim and friends) do:
//!
//! * **single-qubit runs** — adjacent single-qubit gates on the same wire
//!   (possibly separated by gates on *other* wires, which commute past
//!   them) multiply into one 2×2 matrix, applied by the dense or diagonal
//!   unary kernel;
//! * **two-qubit runs** — adjacent two-qubit gates on the same wire pair
//!   multiply into one 4×4 matrix, applied by the dense or diagonal
//!   binary kernel;
//! * **lone two-qubit gates** stay in their specialized form
//!   ([`FusedOp::Gate`]): a CNOT is a conditional swap and a CZ a
//!   conditional sign flip — both far cheaper per amplitude than a dense
//!   4×4 sweep, so converting an *unfused* entangler to a matrix would be
//!   a pessimization.
//!
//! Identity-elision happens at both ends: source gates that are the
//! identity to tolerance are skipped (matching
//! [`StateVector::apply_circuit`](crate::StateVector::apply_circuit)),
//! and fused products that collapse back to the identity (e.g. `H·H`,
//! `CNOT·CNOT`) are dropped from the op stream entirely.

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::C64;

/// A 2×2 complex matrix in the computational basis (`m[row][col]`).
pub type Mat2 = [[C64; 2]; 2];

/// A 4×4 complex matrix on a qubit pair `(low, high)` with `low < high`;
/// the local basis index of an amplitude is `bit(low) + 2·bit(high)`.
pub type Mat4 = [[C64; 4]; 4];

/// Tolerance for skipping source gates that are the identity (matches the
/// runtime elision in `StateVector::apply_circuit`).
const SOURCE_IDENTITY_TOL: f64 = 1e-12;

/// Elementwise tolerance below which a *fused* matrix counts as the
/// identity and its op is dropped. Deliberately much tighter than the
/// source tolerance: dropping introduces at most this much per-amplitude
/// error, which must stay far under the 1e-12 equivalence the test suite
/// (and `apply_circuit` parity) demands.
const FUSED_IDENTITY_TOL: f64 = 1e-15;

/// One fused operation of a [`CompiledCircuit`].
#[derive(Clone, Debug)]
pub enum FusedOp {
    /// A fused run of single-qubit gates on one wire.
    Unary {
        /// Target qubit.
        qubit: usize,
        /// The fused 2×2.
        matrix: Mat2,
        /// Whether `matrix` is exactly diagonal (cheaper kernel).
        diagonal: bool,
    },
    /// A fused run of two-qubit gates on one wire pair.
    Binary {
        /// Lower-indexed qubit of the pair.
        low: usize,
        /// Higher-indexed qubit of the pair.
        high: usize,
        /// The fused 4×4 in the `(low, high)` local basis.
        matrix: Mat4,
        /// Whether `matrix` is exactly diagonal (cheaper kernel).
        diagonal: bool,
    },
    /// A lone two-qubit gate kept in its specialized form — cheaper than
    /// a dense 4×4 sweep when nothing fused into it.
    Gate(Gate),
}

impl FusedOp {
    /// The qubits this op touches.
    pub fn qubits(&self) -> Vec<usize> {
        match self {
            FusedOp::Unary { qubit, .. } => vec![*qubit],
            FusedOp::Binary { low, high, .. } => vec![*low, *high],
            FusedOp::Gate(g) => g.qubits(),
        }
    }
}

/// A circuit lowered to fused operations, executable by
/// [`StateVector::apply_compiled`](crate::StateVector::apply_compiled) and
/// [`BatchedStateVector::apply_compiled`](crate::BatchedStateVector::apply_compiled).
#[derive(Clone, Debug)]
pub struct CompiledCircuit {
    n: usize,
    ops: Vec<FusedOp>,
    source_gates: usize,
}

impl CompiledCircuit {
    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The fused op stream, in application order.
    pub fn ops(&self) -> &[FusedOp] {
        &self.ops
    }

    /// Number of fused operations (amplitude sweeps at execution time).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Whether the compiled circuit performs no work (the source was
    /// empty or everything fused away to the identity).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of non-identity gates in the source circuit — the sweeps an
    /// uncompiled `apply_circuit` would have performed.
    pub fn source_gates(&self) -> usize {
        self.source_gates
    }
}

/// The 2×2 identity.
pub fn identity2() -> Mat2 {
    let o = C64::new(0.0, 0.0);
    let l = C64::new(1.0, 0.0);
    [[l, o], [o, l]]
}

/// Matrix product `a · b` (apply `b` first, then `a`).
pub fn matmul2(a: &Mat2, b: &Mat2) -> Mat2 {
    let mut out = [[C64::new(0.0, 0.0); 2]; 2];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            *v = a[i][0] * b[0][j] + a[i][1] * b[1][j];
        }
    }
    out
}

/// Matrix product `a · b` (apply `b` first, then `a`).
pub fn matmul4(a: &Mat4, b: &Mat4) -> Mat4 {
    let mut out = [[C64::new(0.0, 0.0); 4]; 4];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            *v = a[i][0] * b[0][j] + a[i][1] * b[1][j] + a[i][2] * b[2][j] + a[i][3] * b[3][j];
        }
    }
    out
}

/// The 4×4 matrix of a two-qubit gate in the `(low, high)` local basis
/// (index `bit(low) + 2·bit(high)`). All supported entanglers are signed
/// permutations, so entries are 0/±1.
fn two_qubit_matrix(g: &Gate, low: usize, high: usize) -> Mat4 {
    let zero = C64::new(0.0, 0.0);
    let one = C64::new(1.0, 0.0);
    let mut m = [[zero; 4]; 4];
    for from in 0..4usize {
        let bit_low = from & 1;
        let bit_high = (from >> 1) & 1;
        match *g {
            Gate::Cnot { control, target } => {
                debug_assert!(target == low || target == high);
                let cbit = if control == low { bit_low } else { bit_high };
                let tmask = if target == low { 1 } else { 2 };
                let to = if cbit == 1 { from ^ tmask } else { from };
                m[to][from] = one;
            }
            Gate::Cz(..) => {
                m[from][from] = if from == 3 { -one } else { one };
            }
            Gate::Swap(..) => {
                let to = (bit_low << 1) | bit_high;
                m[to][from] = one;
            }
            _ => unreachable!("two_qubit_matrix called on a single-qubit gate"),
        }
    }
    m
}

/// Whether a fused 2×2 collapsed back to the identity.
fn is_identity2(m: &Mat2) -> bool {
    let id = identity2();
    (0..2).all(|i| (0..2).all(|j| (m[i][j] - id[i][j]).norm() <= FUSED_IDENTITY_TOL))
}

/// Whether a fused 4×4 collapsed back to the identity.
fn is_identity4(m: &Mat4) -> bool {
    (0..4).all(|i| {
        (0..4).all(|j| {
            let id = if i == j {
                C64::new(1.0, 0.0)
            } else {
                C64::new(0.0, 0.0)
            };
            (m[i][j] - id).norm() <= FUSED_IDENTITY_TOL
        })
    })
}

/// Whether a 2×2 is exactly diagonal. Fused products of diagonal gates
/// have *exactly* zero off-diagonals (every contribution multiplies a
/// zero), so an exact test keeps the diagonal-kernel decision stable.
fn is_diagonal2(m: &Mat2) -> bool {
    m[0][1].norm_sqr() == 0.0 && m[1][0].norm_sqr() == 0.0
}

/// Whether a 4×4 is exactly diagonal.
fn is_diagonal4(m: &Mat4) -> bool {
    (0..4).all(|i| (0..4).all(|j| i == j || m[i][j].norm_sqr() == 0.0))
}

/// A fused op under construction.
#[allow(clippy::large_enum_variant)] // transient, few per compile; boxing
                                     // the 4×4 would cost an allocation per entangler for no benefit
enum Build {
    One {
        qubit: usize,
        matrix: Mat2,
    },
    Two {
        low: usize,
        high: usize,
        matrix: Mat4,
        /// `Some(g)` while the run is still a single specialized gate;
        /// cleared as soon as a second gate fuses in.
        lone: Option<Gate>,
    },
}

/// Compiles a circuit into fused operations. One-time cost, linear in the
/// gate count; the result is immutable and shareable across threads.
pub fn compile(circuit: &Circuit) -> CompiledCircuit {
    let n = circuit.num_qubits();
    let mut builds: Vec<Build> = Vec::new();
    // Accumulated single-qubit matrix per wire, not yet emitted: gates on
    // other wires commute past it, so a run survives interleavings.
    let mut pending: Vec<Option<Mat2>> = vec![None; n];
    // Index into `builds` of the last emitted op touching each wire —
    // the adjacency test for two-qubit run fusion.
    let mut last: Vec<Option<usize>> = vec![None; n];
    let mut source_gates = 0usize;

    let flush = |q: usize,
                 pending: &mut Vec<Option<Mat2>>,
                 builds: &mut Vec<Build>,
                 last: &mut Vec<Option<usize>>| {
        if let Some(matrix) = pending[q].take() {
            builds.push(Build::One { qubit: q, matrix });
            last[q] = Some(builds.len() - 1);
        }
    };

    for g in circuit.gates() {
        if g.is_identity(SOURCE_IDENTITY_TOL) {
            continue;
        }
        source_gates += 1;
        if let Some(m) = g.matrix1() {
            let q = g.qubits()[0];
            pending[q] = Some(match pending[q].take() {
                Some(acc) => matmul2(&m, &acc),
                None => m,
            });
        } else {
            let qs = g.qubits();
            let (low, high) = if qs[0] < qs[1] {
                (qs[0], qs[1])
            } else {
                (qs[1], qs[0])
            };
            // Single-qubit runs do not absorb into entanglers (a lone
            // CNOT/CZ kernel is cheaper than a dense 4×4); emit them now
            // so order is preserved.
            flush(low, &mut pending, &mut builds, &mut last);
            flush(high, &mut pending, &mut builds, &mut last);
            let adjacent = match (last[low], last[high]) {
                (Some(a), Some(b)) if a == b => matches!(
                    builds[a], Build::Two { low: l, high: h, .. } if l == low && h == high
                ),
                _ => false,
            };
            if adjacent {
                let k = last[low].expect("adjacency implies a previous op");
                if let Build::Two {
                    matrix: acc, lone, ..
                } = &mut builds[k]
                {
                    *acc = matmul4(&two_qubit_matrix(g, low, high), acc);
                    *lone = None;
                }
            } else {
                builds.push(Build::Two {
                    low,
                    high,
                    matrix: two_qubit_matrix(g, low, high),
                    lone: Some(*g),
                });
                let k = builds.len() - 1;
                last[low] = Some(k);
                last[high] = Some(k);
            }
        }
    }
    for q in 0..n {
        flush(q, &mut pending, &mut builds, &mut last);
    }

    let ops = builds
        .into_iter()
        .filter_map(|b| match b {
            Build::One { qubit, matrix } => {
                if is_identity2(&matrix) {
                    None
                } else {
                    let diagonal = is_diagonal2(&matrix);
                    Some(FusedOp::Unary {
                        qubit,
                        matrix,
                        diagonal,
                    })
                }
            }
            Build::Two {
                low,
                high,
                matrix,
                lone,
            } => {
                if let Some(g) = lone {
                    Some(FusedOp::Gate(g))
                } else if is_identity4(&matrix) {
                    None
                } else {
                    let diagonal = is_diagonal4(&matrix);
                    Some(FusedOp::Binary {
                        low,
                        high,
                        matrix,
                        diagonal,
                    })
                }
            }
        })
        .collect();

    CompiledCircuit {
        n,
        ops,
        source_gates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateVector;

    fn states_close(a: &StateVector, b: &StateVector, tol: f64) -> bool {
        a.amplitudes()
            .iter()
            .zip(b.amplitudes())
            .all(|(x, y)| (x - y).norm() < tol)
    }

    fn check_equivalence(c: &Circuit) {
        let cc = compile(c);
        let direct = StateVector::from_circuit(c);
        let mut fused = StateVector::zero_state(c.num_qubits());
        fused.apply_compiled(&cc);
        assert!(
            states_close(&direct, &fused, 1e-12),
            "compiled circuit diverges from direct simulation"
        );
    }

    #[test]
    fn single_qubit_run_fuses_to_one_op() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Ry(0, 0.4));
        c.push(Gate::Rz(0, -0.9));
        // Interleaved gate on the *other* wire must not break the run.
        c.push(Gate::Rx(1, 0.2));
        c.push(Gate::T(0));
        let cc = compile(&c);
        assert_eq!(cc.source_gates(), 5);
        assert_eq!(cc.num_ops(), 2, "one fused op per wire");
        assert!(cc
            .ops()
            .iter()
            .all(|op| matches!(op, FusedOp::Unary { .. })));
        check_equivalence(&c);
    }

    #[test]
    fn diagonal_run_gets_diagonal_flag() {
        let mut c = Circuit::new(1);
        c.push(Gate::Rz(0, 0.3));
        c.push(Gate::S(0));
        c.push(Gate::Phase(0, -1.1));
        let cc = compile(&c);
        assert_eq!(cc.num_ops(), 1);
        assert!(matches!(cc.ops()[0], FusedOp::Unary { diagonal: true, .. }));
        check_equivalence(&c);
    }

    #[test]
    fn lone_entanglers_stay_specialized() {
        let mut c = Circuit::new(3);
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        c.push(Gate::Cz(1, 2));
        let cc = compile(&c);
        assert_eq!(cc.num_ops(), 2);
        assert!(cc.ops().iter().all(|op| matches!(op, FusedOp::Gate(_))));
        check_equivalence(&c);
    }

    #[test]
    fn adjacent_two_qubit_run_fuses_to_one_matrix() {
        let mut c = Circuit::new(3);
        c.push(Gate::Cnot {
            control: 0,
            target: 2,
        });
        c.push(Gate::Cz(0, 2));
        // A gate on wire 1 commutes past; the pair run keeps fusing.
        c.push(Gate::H(1));
        c.push(Gate::Swap(0, 2));
        let cc = compile(&c);
        // One Binary for the {0,2} run, one Unary for wire 1.
        assert_eq!(cc.num_ops(), 2);
        assert!(cc.ops().iter().any(|op| matches!(
            op,
            FusedOp::Binary {
                low: 0,
                high: 2,
                ..
            }
        )));
        check_equivalence(&c);
    }

    #[test]
    fn cancelling_pairs_are_dropped() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::H(0));
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        let cc = compile(&c);
        assert!(cc.is_empty(), "H·H and CNOT·CNOT both collapse to I");
        check_equivalence(&c);
    }

    #[test]
    fn cz_run_is_diagonal_binary() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cz(0, 1));
        c.push(Gate::Cnot {
            control: 1,
            target: 0,
        });
        let cc = compile(&c);
        assert_eq!(cc.num_ops(), 1);
        assert!(matches!(
            cc.ops()[0],
            FusedOp::Binary {
                diagonal: false,
                ..
            }
        ));
        check_equivalence(&c);

        let mut d = Circuit::new(2);
        d.push(Gate::Cz(0, 1));
        d.push(Gate::Rz(0, 0.0)); // identity: skipped, run survives
        d.push(Gate::Cz(1, 0));
        let dd = compile(&d);
        assert!(dd.is_empty(), "CZ·CZ is the identity");

        let mut e = Circuit::new(2);
        e.push(Gate::Cz(0, 1));
        e.push(Gate::Cz(0, 1));
        e.push(Gate::Cz(1, 0));
        let ee = compile(&e);
        assert_eq!(ee.num_ops(), 1);
        assert!(
            matches!(ee.ops()[0], FusedOp::Binary { diagonal: true, .. }),
            "an odd CZ run is a diagonal 4×4"
        );
        check_equivalence(&e);
    }

    #[test]
    fn intervening_gate_on_the_pair_breaks_the_run() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        c.push(Gate::Rx(0, 0.7));
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        let cc = compile(&c);
        // CNOT, Rx, CNOT: the rotation blocks fusion of the two CNOTs.
        assert_eq!(cc.num_ops(), 3);
        check_equivalence(&c);
    }

    #[test]
    fn source_identities_are_skipped() {
        let mut c = Circuit::new(2);
        c.push(Gate::Rx(0, 0.0));
        c.push(Gate::Ry(1, 1e-14));
        c.push(Gate::H(0));
        let cc = compile(&c);
        assert_eq!(cc.source_gates(), 1);
        assert_eq!(cc.num_ops(), 1);
        check_equivalence(&c);
    }

    #[test]
    fn cnot_direction_and_swap_matrices() {
        // Both CNOT orientations and SWAP, against the direct kernels.
        for g in [
            Gate::Cnot {
                control: 0,
                target: 1,
            },
            Gate::Cnot {
                control: 1,
                target: 0,
            },
            Gate::Swap(0, 1),
        ] {
            let mut c = Circuit::new(2);
            c.push(Gate::H(0));
            c.push(Gate::Ry(1, 0.8));
            c.push(g);
            // Force matrix form by fusing with CZ.
            c.push(Gate::Cz(0, 1));
            let cc = compile(&c);
            assert!(
                cc.ops()
                    .iter()
                    .any(|op| matches!(op, FusedOp::Binary { .. })),
                "{g} should have fused with CZ"
            );
            check_equivalence(&c);
        }
    }

    #[test]
    fn deep_mixed_circuit_matches() {
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.push(Gate::H(q));
            c.push(Gate::Rz(q, 0.2 + 0.1 * q as f64));
            c.push(Gate::Rx(q, -0.5 + 0.3 * q as f64));
        }
        for q in 0..3 {
            c.push(Gate::Cnot {
                control: q,
                target: q + 1,
            });
        }
        c.push(Gate::Swap(0, 3));
        c.push(Gate::Cz(0, 3));
        for q in 0..4 {
            c.push(Gate::Ry(q, 0.9 - 0.2 * q as f64));
        }
        let cc = compile(&c);
        assert!(cc.num_ops() < cc.source_gates());
        check_equivalence(&c);
    }

    #[test]
    fn empty_circuit_compiles_empty() {
        let c = Circuit::new(3);
        let cc = compile(&c);
        assert!(cc.is_empty());
        assert_eq!(cc.source_gates(), 0);
        assert_eq!(cc.num_qubits(), 3);
    }
}

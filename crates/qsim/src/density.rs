//! Density-matrix simulation — exact mixed-state evolution.
//!
//! The trajectory sampler in [`crate::noise`] converges to the true channel
//! only in the many-shot limit; this module evolves the density matrix
//! `ρ ∈ C^{2ⁿ×2ⁿ}` directly so noise analyses (e.g. how depolarizing
//! strength degrades post-variational features) can be *exact*. Memory is
//! `4ⁿ` amplitudes, so this is for small registers — the paper's 4-qubit
//! experiments fit comfortably.

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::state::StateVector;
use crate::C64;
use pauli::PauliString;

/// A density matrix on `n` qubits, row-major `2ⁿ × 2ⁿ`.
#[derive(Clone, Debug)]
pub struct DensityMatrix {
    n: usize,
    dim: usize,
    rho: Vec<C64>,
}

impl DensityMatrix {
    /// The pure state `|0…0⟩⟨0…0|`.
    pub fn zero_state(n: usize) -> Self {
        assert!(
            (1..=13).contains(&n),
            "density matrices limited to 13 qubits"
        );
        let dim = 1usize << n;
        let mut rho = vec![C64::new(0.0, 0.0); dim * dim];
        rho[0] = C64::new(1.0, 0.0);
        DensityMatrix { n, dim, rho }
    }

    /// Builds `|ψ⟩⟨ψ|` from a pure state.
    pub fn from_pure(state: &StateVector) -> Self {
        let n = state.num_qubits();
        assert!(n <= 13);
        let dim = 1usize << n;
        let amps = state.amplitudes();
        let mut rho = vec![C64::new(0.0, 0.0); dim * dim];
        for i in 0..dim {
            for j in 0..dim {
                rho[i * dim + j] = amps[i] * amps[j].conj();
            }
        }
        DensityMatrix { n, dim, rho }
    }

    /// The maximally mixed state `I/2ⁿ`.
    pub fn maximally_mixed(n: usize) -> Self {
        let mut dm = Self::zero_state(n);
        let dim = dm.dim;
        dm.rho.iter_mut().for_each(|v| *v = C64::new(0.0, 0.0));
        let p = 1.0 / dim as f64;
        for i in 0..dim {
            dm.rho[i * dim + i] = C64::new(p, 0.0);
        }
        dm
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> C64 {
        self.rho[i * self.dim + j]
    }

    /// Trace (1 for a valid state).
    pub fn trace(&self) -> f64 {
        (0..self.dim).map(|i| self.at(i, i).re).sum()
    }

    /// Purity `tr(ρ²)`: 1 for pure states, `1/2ⁿ` for maximally mixed.
    pub fn purity(&self) -> f64 {
        let mut p = 0.0;
        for i in 0..self.dim {
            for j in 0..self.dim {
                p += (self.at(i, j) * self.at(j, i)).re;
            }
        }
        p
    }

    /// Applies a unitary gate: `ρ → U ρ U†`.
    ///
    /// Implemented by applying the gate's state-vector kernel to every
    /// column of `ρ` (giving `Uρ`), then to every column of the conjugate
    /// transpose (giving `UρU†`) — reuses the tested kernels instead of
    /// bespoke density-matrix index arithmetic.
    pub fn apply_gate(&mut self, g: &Gate) {
        self.map_columns(g);
        self.dagger_in_place();
        self.map_columns(g);
        self.dagger_in_place();
    }

    /// Applies each gate of a circuit.
    pub fn apply_circuit(&mut self, c: &Circuit) {
        assert_eq!(c.num_qubits(), self.n);
        for g in c.gates() {
            self.apply_gate(g);
        }
    }

    /// Applies the gate kernel to every column of ρ (computes `U·ρ`).
    fn map_columns(&mut self, g: &Gate) {
        let dim = self.dim;
        for col in 0..dim {
            // Extract the column as a (non-normalised) vector, run the
            // gate kernel on it via a scratch StateVector, write back.
            let mut column: Vec<C64> = (0..dim).map(|row| self.rho[row * dim + col]).collect();
            apply_gate_to_raw(&mut column, self.n, g);
            for (row, v) in column.into_iter().enumerate() {
                self.rho[row * dim + col] = v;
            }
        }
    }

    fn dagger_in_place(&mut self) {
        let dim = self.dim;
        for i in 0..dim {
            for j in i..dim {
                let a = self.rho[i * dim + j].conj();
                let b = self.rho[j * dim + i].conj();
                self.rho[i * dim + j] = b;
                self.rho[j * dim + i] = a;
            }
        }
    }

    /// Exact single-qubit depolarizing channel with probability `p`:
    /// `ρ → (1−p)ρ + (p/3)(XρX + YρY + ZρZ)`.
    pub fn depolarize(&mut self, qubit: usize, p: f64) {
        assert!((0.0..=1.0).contains(&p));
        assert!(qubit < self.n);
        if p == 0.0 {
            return;
        }
        let original = self.clone();
        let mut acc: Vec<C64> = original.rho.iter().map(|v| v * (1.0 - p)).collect();
        for g in [Gate::X(qubit), Gate::Y(qubit), Gate::Z(qubit)] {
            let mut kicked = original.clone();
            kicked.apply_gate(&g);
            for (a, k) in acc.iter_mut().zip(kicked.rho.iter()) {
                *a += k * (p / 3.0);
            }
        }
        self.rho = acc;
    }

    /// Expectation `tr(P ρ)` of a Pauli string, using the sparse basis
    /// action (`O(4ⁿ)` instead of a dense product).
    pub fn expectation(&self, p: &PauliString) -> f64 {
        assert_eq!(p.num_qubits(), self.n);
        // tr(Pρ) = Σ_b ⟨b|Pρ|b⟩ = Σ_b λ(b') ρ[b, b'] ... precisely:
        // P|b⟩ = λ(b)|b⊕x⟩ ⇒ ⟨b|P = (P†|b⟩)† = (P|b⟩)† (P Hermitian)
        // ⇒ tr(Pρ) = Σ_b λ(b)* ρ[b⊕x, b]... compute via columns:
        // (Pρ)[b,b] = Σ_k P[b,k] ρ[k,b]; P[b,k] ≠ 0 iff k = b⊕x with value
        // λ(k) where P|k⟩ = λ(k)|b⟩. So tr = Σ_k λ(k) ρ[k, k⊕x].
        let mut total = C64::new(0.0, 0.0);
        for k in 0..self.dim as u64 {
            let (phase, row) = p.apply_to_basis(k);
            total += phase.to_c64() * self.at(k as usize, row as usize);
        }
        debug_assert!(total.im.abs() < 1e-9);
        total.re
    }
}

/// Runs the single-gate kernel on a raw (possibly non-normalised) vector.
fn apply_gate_to_raw(amps: &mut [C64], n: usize, g: &Gate) {
    // Route through StateVector's kernels by temporarily normalising; the
    // kernels are linear, so we can scale back afterwards. Zero vectors
    // pass through unchanged.
    let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
    if norm == 0.0 {
        return;
    }
    let scaled: Vec<C64> = amps.iter().map(|a| a / norm).collect();
    let mut sv = StateVector::from_amplitudes(scaled);
    let _ = n;
    sv.apply_gate(g);
    for (dst, src) in amps.iter_mut().zip(sv.amplitudes()) {
        *dst = src * norm;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    fn bell_circuit() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        c
    }

    #[test]
    fn pure_evolution_matches_state_vector() {
        let c = bell_circuit();
        let sv = StateVector::from_circuit(&c);
        let mut dm = DensityMatrix::zero_state(2);
        dm.apply_circuit(&c);
        for txt in ["ZZ", "XX", "YY", "ZI", "IX"] {
            let p = PauliString::parse(txt).unwrap();
            assert!(
                (dm.expectation(&p) - sv.expectation(&p)).abs() < 1e-10,
                "{txt}: dm {} vs sv {}",
                dm.expectation(&p),
                sv.expectation(&p)
            );
        }
        assert!((dm.trace() - 1.0).abs() < 1e-10);
        assert!((dm.purity() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn depolarizing_shrinks_expectations_exactly() {
        // One qubit in |0⟩: ⟨Z⟩ = 1. After depolarizing with p,
        // ⟨Z⟩ = (1−p) + (p/3)(−1 + ... ) : XρX and YρY flip to |1⟩ (⟨Z⟩=−1),
        // ZρZ leaves |0⟩ (⟨Z⟩=+1): (1−p)·1 + p/3·(−1) + p/3·(−1) + p/3·1
        // = 1 − 4p/3.
        let mut dm = DensityMatrix::zero_state(1);
        let p = 0.3;
        dm.depolarize(0, p);
        let z = PauliString::parse("Z").unwrap();
        assert!(
            (dm.expectation(&z) - (1.0 - 4.0 * p / 3.0)).abs() < 1e-10,
            "{}",
            dm.expectation(&z)
        );
        assert!((dm.trace() - 1.0).abs() < 1e-10);
        assert!(dm.purity() < 1.0);
    }

    #[test]
    fn full_depolarizing_gives_maximally_mixed() {
        let mut dm = DensityMatrix::zero_state(1);
        // p = 3/4 is the fixed point mapping any state to I/2.
        dm.depolarize(0, 0.75);
        let mixed = DensityMatrix::maximally_mixed(1);
        assert!((dm.purity() - mixed.purity()).abs() < 1e-10);
        let z = PauliString::parse("Z").unwrap();
        assert!(dm.expectation(&z).abs() < 1e-10);
    }

    #[test]
    fn trajectory_sampler_converges_to_exact_channel() {
        // The Monte-Carlo unravelling in qsim::noise must agree with the
        // exact channel on expectation values.
        use crate::noise::{run_noisy_trajectory, NoiseModel};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mut c = Circuit::new(2);
        c.push(Gate::Ry(0, 0.9));
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        let p_depol = 0.1;

        // Exact: apply gates and depolarize after each, matching the
        // trajectory model (per touched qubit).
        let mut dm = DensityMatrix::zero_state(2);
        dm.apply_gate(&Gate::Ry(0, 0.9));
        dm.depolarize(0, p_depol);
        dm.apply_gate(&Gate::Cnot {
            control: 0,
            target: 1,
        });
        dm.depolarize(0, p_depol);
        dm.depolarize(1, p_depol);

        let model = NoiseModel {
            depol_1q: p_depol,
            depol_2q: p_depol,
            readout_flip: 0.0,
        };
        let zz = PauliString::parse("ZZ").unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 4000;
        let mc: f64 = (0..trials)
            .map(|_| run_noisy_trajectory(&c, &model, &mut rng).expectation(&zz))
            .sum::<f64>()
            / trials as f64;
        let exact = dm.expectation(&zz);
        assert!(
            (mc - exact).abs() < 0.05,
            "trajectory {mc} vs exact {exact}"
        );
    }

    #[test]
    fn from_pure_matches_zero_state_evolution() {
        let c = bell_circuit();
        let sv = StateVector::from_circuit(&c);
        let dm1 = DensityMatrix::from_pure(&sv);
        let mut dm2 = DensityMatrix::zero_state(2);
        dm2.apply_circuit(&c);
        let p = PauliString::parse("XY").unwrap();
        assert!((dm1.expectation(&p) - dm2.expectation(&p)).abs() < 1e-10);
    }

    #[test]
    fn maximally_mixed_has_zero_pauli_expectations() {
        let dm = DensityMatrix::maximally_mixed(3);
        for txt in ["ZII", "XYZ", "IIY"] {
            let p = PauliString::parse(txt).unwrap();
            assert!(dm.expectation(&p).abs() < 1e-12, "{txt}");
        }
        assert!((dm.expectation(&PauliString::identity(3)) - 1.0).abs() < 1e-12);
        assert!((dm.purity() - 0.125).abs() < 1e-12);
    }
}

//! The gate set: common single-qubit gates, rotations, and two-qubit
//! entanglers.

use crate::C64;
use std::fmt;

/// A quantum logic gate acting on named qubits of a register.
///
/// Rotation angles are in radians. `Rx/Ry/Rz(θ) = exp(−iθσ/2)`, the
/// convention under which the parameter-shift rule for Pauli rotations uses
/// shifts of exactly ±π/2 (paper §IV.A, citing Mitarai et al. \[6\]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Gate {
    /// Hadamard.
    H(usize),
    /// Pauli-X.
    X(usize),
    /// Pauli-Y.
    Y(usize),
    /// Pauli-Z.
    Z(usize),
    /// Phase gate `S = diag(1, i)`.
    S(usize),
    /// Inverse phase gate `S† = diag(1, −i)`.
    Sdg(usize),
    /// `T = diag(1, e^{iπ/4})`.
    T(usize),
    /// `T† = diag(1, e^{−iπ/4})`.
    Tdg(usize),
    /// X-rotation `exp(−iθX/2)`.
    Rx(usize, f64),
    /// Y-rotation `exp(−iθY/2)`.
    Ry(usize, f64),
    /// Z-rotation `exp(−iθZ/2)`.
    Rz(usize, f64),
    /// Phase rotation `diag(1, e^{iθ})`.
    Phase(usize, f64),
    /// Controlled-NOT.
    Cnot {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// Controlled-Z (symmetric).
    Cz(usize, usize),
    /// Swap two qubits.
    Swap(usize, usize),
}

impl Gate {
    /// The qubits this gate touches (1 or 2 entries).
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            Gate::H(q)
            | Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::T(q)
            | Gate::Tdg(q)
            | Gate::Rx(q, _)
            | Gate::Ry(q, _)
            | Gate::Rz(q, _)
            | Gate::Phase(q, _) => vec![q],
            Gate::Cnot { control, target } => vec![control, target],
            Gate::Cz(a, b) | Gate::Swap(a, b) => vec![a, b],
        }
    }

    /// Whether the gate acts on a single qubit.
    pub fn is_single_qubit(&self) -> bool {
        !matches!(self, Gate::Cnot { .. } | Gate::Cz(..) | Gate::Swap(..))
    }

    /// The 2×2 matrix of a single-qubit gate (`None` for two-qubit gates).
    pub fn matrix1(&self) -> Option<[[C64; 2]; 2]> {
        let o = C64::new(0.0, 0.0);
        let l = C64::new(1.0, 0.0);
        let i = C64::new(0.0, 1.0);
        let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
        Some(match *self {
            Gate::H(_) => [
                [C64::new(inv_sqrt2, 0.0), C64::new(inv_sqrt2, 0.0)],
                [C64::new(inv_sqrt2, 0.0), C64::new(-inv_sqrt2, 0.0)],
            ],
            Gate::X(_) => [[o, l], [l, o]],
            Gate::Y(_) => [[o, -i], [i, o]],
            Gate::Z(_) => [[l, o], [o, -l]],
            Gate::S(_) => [[l, o], [o, i]],
            Gate::Sdg(_) => [[l, o], [o, -i]],
            Gate::T(_) => [
                [l, o],
                [o, C64::from_polar(1.0, std::f64::consts::FRAC_PI_4)],
            ],
            Gate::Tdg(_) => [
                [l, o],
                [o, C64::from_polar(1.0, -std::f64::consts::FRAC_PI_4)],
            ],
            Gate::Rx(_, th) => {
                let (c, s) = ((th / 2.0).cos(), (th / 2.0).sin());
                [
                    [C64::new(c, 0.0), C64::new(0.0, -s)],
                    [C64::new(0.0, -s), C64::new(c, 0.0)],
                ]
            }
            Gate::Ry(_, th) => {
                let (c, s) = ((th / 2.0).cos(), (th / 2.0).sin());
                [
                    [C64::new(c, 0.0), C64::new(-s, 0.0)],
                    [C64::new(s, 0.0), C64::new(c, 0.0)],
                ]
            }
            Gate::Rz(_, th) => [
                [C64::from_polar(1.0, -th / 2.0), o],
                [o, C64::from_polar(1.0, th / 2.0)],
            ],
            Gate::Phase(_, th) => [[l, o], [o, C64::from_polar(1.0, th)]],
            Gate::Cnot { .. } | Gate::Cz(..) | Gate::Swap(..) => return None,
        })
    }

    /// Whether the single-qubit matrix is diagonal (enables the cheaper
    /// diagonal kernel).
    pub fn is_diagonal(&self) -> bool {
        matches!(
            self,
            Gate::Z(_)
                | Gate::S(_)
                | Gate::Sdg(_)
                | Gate::T(_)
                | Gate::Tdg(_)
                | Gate::Rz(..)
                | Gate::Phase(..)
        )
    }

    /// Whether this gate is the identity up to numerical tolerance (e.g. a
    /// rotation by ~0) — used by the circuit optimizer that elides gates
    /// when the paper sets all ansatz parameters to zero (§IV.A).
    pub fn is_identity(&self, tol: f64) -> bool {
        match *self {
            Gate::Rx(_, th) | Gate::Ry(_, th) | Gate::Rz(_, th) | Gate::Phase(_, th) => {
                // Rotations are 4π-periodic in global-phase-free effect; we
                // only elide the exact-zero neighbourhood, which is the case
                // produced by zero-initialised ansätze.
                th.abs() < tol
            }
            _ => false,
        }
    }

    /// The inverse gate.
    pub fn dagger(&self) -> Gate {
        match *self {
            Gate::S(q) => Gate::Sdg(q),
            Gate::Sdg(q) => Gate::S(q),
            Gate::T(q) => Gate::Tdg(q),
            Gate::Tdg(q) => Gate::T(q),
            Gate::Rx(q, th) => Gate::Rx(q, -th),
            Gate::Ry(q, th) => Gate::Ry(q, -th),
            Gate::Rz(q, th) => Gate::Rz(q, -th),
            Gate::Phase(q, th) => Gate::Phase(q, -th),
            g => g, // H, X, Y, Z, CNOT, CZ, SWAP are involutions
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Gate::H(q) => write!(f, "H(q{q})"),
            Gate::X(q) => write!(f, "X(q{q})"),
            Gate::Y(q) => write!(f, "Y(q{q})"),
            Gate::Z(q) => write!(f, "Z(q{q})"),
            Gate::S(q) => write!(f, "S(q{q})"),
            Gate::Sdg(q) => write!(f, "S†(q{q})"),
            Gate::T(q) => write!(f, "T(q{q})"),
            Gate::Tdg(q) => write!(f, "T†(q{q})"),
            Gate::Rx(q, th) => write!(f, "Rx(q{q}, {th:.4})"),
            Gate::Ry(q, th) => write!(f, "Ry(q{q}, {th:.4})"),
            Gate::Rz(q, th) => write!(f, "Rz(q{q}, {th:.4})"),
            Gate::Phase(q, th) => write!(f, "P(q{q}, {th:.4})"),
            Gate::Cnot { control, target } => write!(f, "CNOT(q{control}→q{target})"),
            Gate::Cz(a, b) => write!(f, "CZ(q{a},q{b})"),
            Gate::Swap(a, b) => write!(f, "SWAP(q{a},q{b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_unitary2(m: [[C64; 2]; 2]) -> bool {
        // m† m == I
        let mut prod = [[C64::new(0.0, 0.0); 2]; 2];
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    prod[i][j] += m[k][i].conj() * m[k][j];
                }
            }
        }
        (prod[0][0] - 1.0).norm() < 1e-12
            && (prod[1][1] - 1.0).norm() < 1e-12
            && prod[0][1].norm() < 1e-12
            && prod[1][0].norm() < 1e-12
    }

    #[test]
    fn all_single_qubit_matrices_unitary() {
        let gates = [
            Gate::H(0),
            Gate::X(0),
            Gate::Y(0),
            Gate::Z(0),
            Gate::S(0),
            Gate::Sdg(0),
            Gate::T(0),
            Gate::Tdg(0),
            Gate::Rx(0, 0.7),
            Gate::Ry(0, -1.3),
            Gate::Rz(0, 2.2),
            Gate::Phase(0, 0.4),
        ];
        for g in gates {
            assert!(is_unitary2(g.matrix1().unwrap()), "{g}");
        }
    }

    #[test]
    fn rotation_at_zero_is_identity_matrix() {
        for g in [Gate::Rx(0, 0.0), Gate::Ry(0, 0.0), Gate::Rz(0, 0.0)] {
            let m = g.matrix1().unwrap();
            assert!((m[0][0] - 1.0).norm() < 1e-15);
            assert!((m[1][1] - 1.0).norm() < 1e-15);
            assert!(m[0][1].norm() < 1e-15 && m[1][0].norm() < 1e-15);
            assert!(g.is_identity(1e-12));
        }
        assert!(!Gate::Rx(0, 0.1).is_identity(1e-12));
        assert!(!Gate::H(0).is_identity(1e-12));
    }

    #[test]
    fn dagger_pairs() {
        assert_eq!(Gate::S(1).dagger(), Gate::Sdg(1));
        assert_eq!(Gate::Rx(2, 0.5).dagger(), Gate::Rx(2, -0.5));
        assert_eq!(Gate::H(0).dagger(), Gate::H(0));
        assert_eq!(
            Gate::Cnot {
                control: 0,
                target: 1
            }
            .dagger(),
            Gate::Cnot {
                control: 0,
                target: 1
            }
        );
    }

    #[test]
    fn diagonal_classification() {
        assert!(Gate::Rz(0, 1.0).is_diagonal());
        assert!(Gate::S(0).is_diagonal());
        assert!(!Gate::Rx(0, 1.0).is_diagonal());
        assert!(!Gate::H(0).is_diagonal());
    }

    #[test]
    fn qubits_listing() {
        assert_eq!(
            Gate::Cnot {
                control: 3,
                target: 1
            }
            .qubits(),
            vec![3, 1]
        );
        assert_eq!(Gate::Ry(2, 0.1).qubits(), vec![2]);
        assert!(Gate::Ry(2, 0.1).is_single_qubit());
        assert!(!Gate::Cz(0, 1).is_single_qubit());
    }
}

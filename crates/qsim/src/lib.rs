//! # qsim — state-vector quantum circuit simulator
//!
//! The execution substrate for the post-variational QNN library: the paper
//! ran its circuits through Qiskit's simulator; this crate replaces that
//! with a from-scratch state-vector engine tuned for the workload the
//! post-variational pipeline generates — **many small-to-medium circuits,
//! each evaluated against many Pauli observables**.
//!
//! * [`Gate`] / [`Circuit`] — the gate set and a flat circuit IR,
//! * [`ParamCircuit`] — circuits with named parameter slots (for ansätze and
//!   parameter-shift grids),
//! * [`StateVector`] — amplitudes plus serial/rayon-parallel gate kernels,
//!   Pauli expectations, inner products, and computational-basis sampling,
//! * [`compile()`] — a one-time gate-fusion pass producing a
//!   [`CompiledCircuit`] that executes in far fewer amplitude sweeps,
//! * [`BatchedStateVector`] — amplitude-major SoA simulation of many
//!   states at once, bit-for-bit equal per lane to the standalone kernels,
//! * [`noise`] — stochastic (trajectory) depolarizing and readout noise for
//!   NISQ realism,
//! * [`render`] — ASCII circuit diagrams (Figs. 7–8 of the paper are
//!   reproduced by `examples/quickstart.rs`).
//!
//! Kernels switch to rayon data-parallel paths above
//! [`state::PARALLEL_THRESHOLD`] amplitudes; below it the serial loop wins
//! (measured in `bench/benches/gates.rs`, per the perf-book's
//! "benchmark, don't guess").

pub mod circuit;
pub mod compile;
pub mod density;
pub mod gate;
pub mod noise;
pub mod render;
pub mod sample;
pub mod state;

pub use circuit::{Circuit, ParamCircuit, ParamGate, RotAxis};
pub use compile::{compile, identity2, matmul2, matmul4, CompiledCircuit, FusedOp, Mat2, Mat4};
pub use density::DensityMatrix;
pub use gate::Gate;
pub use noise::NoiseModel;
pub use sample::{
    estimate_pauli_with_shots, estimate_paulis_batched, measurement_group_count,
    measurement_rotation, sample_counts, CdfSampler,
};
pub use state::{BatchedStateVector, StateVector};

/// Complex amplitude type used throughout the simulator.
pub type C64 = num_complex::Complex64;

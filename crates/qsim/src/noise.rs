//! Stochastic (trajectory) noise models for NISQ realism.
//!
//! The paper targets NISQ hardware; our hybrid HPC-QC system simulates
//! devices whose shot results are corrupted by depolarizing noise after
//! each gate and by readout bit flips. We use the standard Monte-Carlo
//! trajectory unravelling: with probability `p` a uniformly random
//! non-identity Pauli is applied to the touched qubit(s). Averaged over
//! shots this reproduces the depolarizing channel on expectation values.

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::state::StateVector;
use rand::{Rng, RngExt};

/// Gate-level and readout error rates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseModel {
    /// Depolarizing probability after each single-qubit gate.
    pub depol_1q: f64,
    /// Depolarizing probability (per qubit) after each two-qubit gate.
    pub depol_2q: f64,
    /// Probability of flipping each classical readout bit.
    pub readout_flip: f64,
}

impl NoiseModel {
    /// The noiseless model.
    pub fn noiseless() -> Self {
        NoiseModel {
            depol_1q: 0.0,
            depol_2q: 0.0,
            readout_flip: 0.0,
        }
    }

    /// A generic "NISQ-era" profile: 0.1% single-qubit, 1% two-qubit
    /// depolarizing, 2% readout flip — the ballpark of published
    /// superconducting-device calibrations.
    pub fn nisq_default() -> Self {
        NoiseModel {
            depol_1q: 1e-3,
            depol_2q: 1e-2,
            readout_flip: 2e-2,
        }
    }

    /// Whether all rates are zero.
    pub fn is_noiseless(&self) -> bool {
        self.depol_1q == 0.0 && self.depol_2q == 0.0 && self.readout_flip == 0.0
    }

    fn validate(&self) {
        for (name, p) in [
            ("depol_1q", self.depol_1q),
            ("depol_2q", self.depol_2q),
            ("readout_flip", self.readout_flip),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} = {p} out of [0,1]");
        }
    }
}

fn random_pauli_kick<R: Rng>(state: &mut StateVector, qubit: usize, rng: &mut R) {
    match rng.random_range(0..3) {
        0 => state.apply_gate(&Gate::X(qubit)),
        1 => state.apply_gate(&Gate::Y(qubit)),
        _ => state.apply_gate(&Gate::Z(qubit)),
    }
}

/// Runs `circuit` from `|0…0⟩` with stochastic Pauli noise after each gate.
/// Each call is **one trajectory**; expectation values should be averaged
/// over many trajectories (or shots drawn from each trajectory).
pub fn run_noisy_trajectory<R: Rng>(
    circuit: &Circuit,
    model: &NoiseModel,
    rng: &mut R,
) -> StateVector {
    model.validate();
    let mut state = StateVector::zero_state(circuit.num_qubits());
    for g in circuit.gates() {
        state.apply_gate(g);
        let p = if g.is_single_qubit() {
            model.depol_1q
        } else {
            model.depol_2q
        };
        if p > 0.0 {
            for q in g.qubits() {
                if rng.random::<f64>() < p {
                    random_pauli_kick(&mut state, q, rng);
                }
            }
        }
    }
    state
}

/// Applies readout bit-flip noise to a sampled outcome.
pub fn apply_readout_noise<R: Rng>(outcome: u64, n: usize, flip_prob: f64, rng: &mut R) -> u64 {
    if flip_prob == 0.0 {
        return outcome;
    }
    let mut o = outcome;
    for q in 0..n {
        if rng.random::<f64>() < flip_prob {
            o ^= 1 << q;
        }
    }
    o
}

/// Noisy finite-shot estimate of a Pauli expectation: each shot runs a
/// fresh noise trajectory, rotates to the measurement basis, samples one
/// outcome, applies readout noise, and averages eigenvalue signs.
pub fn estimate_pauli_noisy<R: Rng>(
    circuit: &Circuit,
    p: &pauli::PauliString,
    model: &NoiseModel,
    shots: usize,
    rng: &mut R,
) -> f64 {
    assert!(shots > 0);
    if p.is_identity() {
        return 1.0;
    }
    let rotation = crate::sample::measurement_rotation(p);
    let n = circuit.num_qubits();
    let mut acc = 0.0;
    for _ in 0..shots {
        let mut state = run_noisy_trajectory(circuit, model, rng);
        state.apply_circuit(&rotation);
        let outcome = crate::sample::sample_bitstrings(&state, 1, rng)[0];
        let noisy = apply_readout_noise(outcome, n, model.readout_flip, rng);
        acc += p.outcome_sign(noisy);
    }
    acc / shots as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pauli::PauliString;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_trajectory_is_exact() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        let mut rng = StdRng::seed_from_u64(3);
        let s = run_noisy_trajectory(&c, &NoiseModel::noiseless(), &mut rng);
        assert!((s.probability(0) - 0.5).abs() < 1e-12);
        assert!((s.probability(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn depolarizing_shrinks_expectation() {
        // ⟨Z⟩ of |0⟩ after an identity-like circuit with heavy depolarizing
        // noise must be pulled toward 0.
        let mut c = Circuit::new(1);
        for _ in 0..20 {
            c.push(Gate::X(0));
            c.push(Gate::X(0));
        }
        let model = NoiseModel {
            depol_1q: 0.05,
            depol_2q: 0.0,
            readout_flip: 0.0,
        };
        let z = PauliString::parse("Z").unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let est = estimate_pauli_noisy(&c, &z, &model, 4000, &mut rng);
        assert!(est < 0.6, "noise failed to shrink ⟨Z⟩: {est}");
        assert!(est > -0.2, "over-shrunk: {est}");
    }

    #[test]
    fn readout_noise_flips_bits() {
        let mut rng = StdRng::seed_from_u64(1);
        // flip_prob = 1 flips every bit deterministically.
        assert_eq!(apply_readout_noise(0b0000, 4, 1.0, &mut rng), 0b1111);
        assert_eq!(apply_readout_noise(0b1010, 4, 0.0, &mut rng), 0b1010);
    }

    #[test]
    fn readout_noise_biases_estimate() {
        // On |0⟩, ⟨Z⟩ = 1 exactly; with readout flip p the mean outcome is
        // (1−p)·(+1) + p·(−1) = 1 − 2p.
        let c = Circuit::new(1);
        let model = NoiseModel {
            depol_1q: 0.0,
            depol_2q: 0.0,
            readout_flip: 0.1,
        };
        let z = PauliString::parse("Z").unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let est = estimate_pauli_noisy(&c, &z, &model, 20_000, &mut rng);
        assert!((est - 0.8).abs() < 0.02, "est={est}, want ≈ 0.8");
    }

    #[test]
    #[should_panic]
    fn invalid_rates_rejected() {
        let bad = NoiseModel {
            depol_1q: 1.5,
            depol_2q: 0.0,
            readout_flip: 0.0,
        };
        let c = Circuit::new(1);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = run_noisy_trajectory(&c, &bad, &mut rng);
    }

    #[test]
    fn nisq_default_sane() {
        let m = NoiseModel::nisq_default();
        assert!(!m.is_noiseless());
        assert!(NoiseModel::noiseless().is_noiseless());
    }
}

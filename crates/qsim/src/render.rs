//! ASCII circuit rendering — reproduces the paper's circuit figures
//! (Figs. 7–8) as terminal diagrams.
//!
//! ```
//! use qsim::{Circuit, Gate};
//! use qsim::render::render_circuit;
//!
//! let mut c = Circuit::new(2);
//! c.push(Gate::H(0));
//! c.push(Gate::Cnot { control: 0, target: 1 });
//! let art = render_circuit(&c);
//! assert!(art.contains("H"));
//! ```

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Label for a single-qubit gate box.
fn gate_label(g: &Gate) -> String {
    match *g {
        Gate::H(_) => "H".into(),
        Gate::X(_) => "X".into(),
        Gate::Y(_) => "Y".into(),
        Gate::Z(_) => "Z".into(),
        Gate::S(_) => "S".into(),
        Gate::Sdg(_) => "S†".into(),
        Gate::T(_) => "T".into(),
        Gate::Tdg(_) => "T†".into(),
        Gate::Rx(_, th) => format!("Rx({th:.2})"),
        Gate::Ry(_, th) => format!("Ry({th:.2})"),
        Gate::Rz(_, th) => format!("Rz({th:.2})"),
        Gate::Phase(_, th) => format!("P({th:.2})"),
        _ => "?".into(),
    }
}

/// Renders a circuit as ASCII art: one row per qubit (qubit 0 on top),
/// one column per "moment" (gates packed greedily left).
pub fn render_circuit(c: &Circuit) -> String {
    let n = c.num_qubits();
    // Assign each gate to the earliest column where all its qubits are free.
    let mut frontier = vec![0usize; n];
    let mut columns: Vec<Vec<&Gate>> = Vec::new();
    for g in c.gates() {
        let qs = g.qubits();
        let col = qs.iter().map(|&q| frontier[q]).max().unwrap_or(0);
        if col == columns.len() {
            columns.push(Vec::new());
        }
        columns[col].push(g);
        // Two-qubit gates block every wire between their endpoints so the
        // vertical connector doesn't cross later gates in the same column.
        let (lo, hi) = match qs.as_slice() {
            [a] => (*a, *a),
            [a, b] => (*a.min(b), *a.max(b)),
            _ => unreachable!(),
        };
        for q in lo..=hi {
            frontier[q] = col + 1;
        }
    }

    // Cell text per (qubit, column); connector flags for vertical bars.
    let mut cells = vec![vec![String::new(); columns.len()]; n];
    let mut bars = vec![vec![false; columns.len()]; n]; // bar below wire q
    for (col, gates) in columns.iter().enumerate() {
        for g in gates {
            match **g {
                Gate::Cnot { control, target } => {
                    cells[control][col] = "●".into();
                    cells[target][col] = "⊕".into();
                    let (lo, hi) = (control.min(target), control.max(target));
                    for q in lo..hi {
                        bars[q][col] = true;
                    }
                }
                Gate::Cz(a, b) => {
                    cells[a][col] = "●".into();
                    cells[b][col] = "●".into();
                    let (lo, hi) = (a.min(b), a.max(b));
                    for q in lo..hi {
                        bars[q][col] = true;
                    }
                }
                Gate::Swap(a, b) => {
                    cells[a][col] = "✕".into();
                    cells[b][col] = "✕".into();
                    let (lo, hi) = (a.min(b), a.max(b));
                    for q in lo..hi {
                        bars[q][col] = true;
                    }
                }
                ref sg => {
                    let q = sg.qubits()[0];
                    cells[q][col] = format!("[{}]", gate_label(sg));
                }
            }
        }
    }

    // Column widths.
    let widths: Vec<usize> = (0..columns.len())
        .map(|col| {
            (0..n)
                .map(|q| cells[q][col].chars().count())
                .max()
                .unwrap_or(1)
                .max(1)
        })
        .collect();

    let mut out = String::new();
    for q in 0..n {
        // Wire row.
        out.push_str(&format!("q{q}: "));
        for (col, w) in widths.iter().enumerate() {
            let cell = &cells[q][col];
            let clen = cell.chars().count();
            if cell.is_empty() {
                out.push_str(&"─".repeat(w + 2));
            } else {
                let pad = w - clen;
                let left = pad / 2;
                out.push('─');
                out.push_str(&"─".repeat(left));
                out.push_str(cell);
                out.push_str(&"─".repeat(pad - left));
                out.push('─');
            }
        }
        out.push('\n');
        // Connector row (between this wire and the next).
        if q + 1 < n {
            out.push_str("    ");
            for (col, w) in widths.iter().enumerate() {
                let mid = (w + 2) / 2;
                for pos in 0..w + 2 {
                    out.push(if bars[q][col] && pos == mid {
                        '│'
                    } else {
                        ' '
                    });
                }
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_single_gates() {
        let mut c = Circuit::new(1);
        c.push(Gate::H(0));
        c.push(Gate::Rz(0, 1.5));
        let art = render_circuit(&c);
        assert!(art.contains("[H]"));
        assert!(art.contains("Rz(1.50)"));
        assert!(art.starts_with("q0:"));
    }

    #[test]
    fn renders_cnot_connector() {
        let mut c = Circuit::new(3);
        c.push(Gate::Cnot {
            control: 0,
            target: 2,
        });
        let art = render_circuit(&c);
        assert!(art.contains("●"));
        assert!(art.contains("⊕"));
        assert!(art.contains("│"), "missing vertical connector:\n{art}");
    }

    #[test]
    fn gates_pack_into_columns() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::H(1)); // same column as the first H
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        let art = render_circuit(&c);
        let lines: Vec<&str> = art.lines().collect();
        // q0 and q1 rows plus one connector row.
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn empty_circuit_renders_wires() {
        let c = Circuit::new(2);
        let art = render_circuit(&c);
        assert!(art.contains("q0:"));
        assert!(art.contains("q1:"));
    }
}

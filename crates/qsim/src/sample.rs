//! Computational-basis sampling and finite-shot Pauli estimation.
//!
//! The paper's error analysis (§VI, Proposition 1) models each quantum
//! neuron's output as a sample mean of ±1-valued measurements. This module
//! provides exactly that estimator: rotate the state into the observable's
//! eigenbasis, draw shots, average the eigenvalue signs.

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::state::StateVector;
use pauli::{Pauli, PauliString};
use rand::{Rng, RngExt};
use std::collections::HashMap;

/// A reusable inverse-CDF sampler over a state's outcome distribution.
///
/// Building one costs `O(2^n)` (the cumulative table — the alias-table
/// analogue of this codebase); each [`draw`](Self::draw) is then
/// `O(log 2^n)`. Splitting setup from drawing lets one table be amortized
/// over many **independent** shot batches — the batched feature backends
/// draw a separate batch per observable from one rotated state.
pub struct CdfSampler {
    cdf: Vec<f64>,
}

impl CdfSampler {
    /// Builds the cumulative outcome table of `state`.
    pub fn new(state: &StateVector) -> Self {
        let mut cdf = state.probabilities();
        let mut acc = 0.0;
        for p in cdf.iter_mut() {
            acc += *p;
            *p = acc;
        }
        // Guard the tail against rounding: force the last entry to cover 1.0.
        if let Some(last) = cdf.last_mut() {
            *last = f64::max(*last, 1.0);
        }
        CdfSampler { cdf }
    }

    /// Draws one basis-state sample.
    #[inline]
    pub fn draw<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random();
        // partition_point returns the first index with cdf[i] >= u.
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

/// Draws `shots` basis-state samples using inverse-CDF sampling over the
/// cumulative outcome distribution (`O(2^n + shots·n)`).
pub fn sample_bitstrings<R: Rng>(state: &StateVector, shots: usize, rng: &mut R) -> Vec<u64> {
    let sampler = CdfSampler::new(state);
    (0..shots).map(|_| sampler.draw(rng)).collect()
}

/// Histogram of sampled outcomes.
pub fn sample_counts<R: Rng>(
    state: &StateVector,
    shots: usize,
    rng: &mut R,
) -> HashMap<u64, usize> {
    let mut counts = HashMap::new();
    for b in sample_bitstrings(state, shots, rng) {
        *counts.entry(b).or_insert(0) += 1;
    }
    counts
}

/// The basis-change circuit that maps the eigenbasis of Pauli string `p`
/// onto the computational (Z) basis: `H` for `X` letters, `S† H` for `Y`
/// letters, nothing for `Z`/`I`.
pub fn measurement_rotation(p: &PauliString) -> Circuit {
    let n = p.num_qubits();
    let mut c = Circuit::new(n);
    for q in 0..n {
        match p.get(q) {
            Pauli::X => c.push(Gate::H(q)),
            Pauli::Y => {
                c.push(Gate::Sdg(q));
                c.push(Gate::H(q));
            }
            Pauli::I | Pauli::Z => {}
        }
    }
    c
}

/// Finite-shot estimate of `⟨ψ|P|ψ⟩`: the sample mean of ±1 eigenvalue
/// outcomes over `shots` measurements (Hoeffding-style estimator of
/// Proposition 1). The identity string returns exactly 1.
pub fn estimate_pauli_with_shots<R: Rng>(
    state: &StateVector,
    p: &PauliString,
    shots: usize,
    rng: &mut R,
) -> f64 {
    assert!(shots > 0, "need at least one shot");
    if p.is_identity() {
        return 1.0;
    }
    let mut rotated = state.clone();
    rotated.apply_circuit(&measurement_rotation(p));
    let outcomes = sample_bitstrings(&rotated, shots, rng);
    let sum: f64 = outcomes.iter().map(|&b| p.outcome_sign(b)).sum();
    sum / shots as f64
}

/// Greedily groups strings by qubit-wise-commuting measurement basis in
/// the canonical sorted order ([`sorted_basis_order`]) — the grouping
/// both estimation entry points share, so a family costs the same number
/// of distinct rotations whether it is estimated with shared or
/// independent shots, and the grouping is permutation-invariant.
///
/// Group key: per-qubit basis letter (X/Y/Z or wildcard I). Two strings
/// can share a group when on every qubit they agree or one is I. Returns
/// each group's merged basis and the member indices into `paulis`.
fn group_canonical(paulis: &[PauliString]) -> Vec<(Vec<Pauli>, Vec<usize>)> {
    group_by_basis_in(paulis, &sorted_basis_order(paulis))
}

/// Greedy grouping considering the strings in the order given by
/// `order` (a permutation of `0..paulis.len()`); member indices still
/// refer to positions in `paulis`.
fn group_by_basis_in(paulis: &[PauliString], order: &[usize]) -> Vec<(Vec<Pauli>, Vec<usize>)> {
    let Some(first) = paulis.first() else {
        return Vec::new();
    };
    let n = first.num_qubits();
    let mut groups: Vec<(Vec<Pauli>, Vec<usize>)> = Vec::new();
    'outer: for &idx in order {
        let p = &paulis[idx];
        assert_eq!(p.num_qubits(), n);
        for (basis, members) in groups.iter_mut() {
            let mut merged = basis.clone();
            let mut ok = true;
            for q in 0..n {
                let letter = p.get(q);
                if letter == Pauli::I {
                    continue;
                }
                if merged[q] == Pauli::I {
                    merged[q] = letter;
                } else if merged[q] != letter {
                    ok = false;
                    break;
                }
            }
            if ok {
                *basis = merged;
                members.push(idx);
                continue 'outer;
            }
        }
        groups.push((p.letters(), vec![idx]));
    }
    groups
}

/// Collation rank for grouping: concrete letters first (so strings with
/// the same explicit basis become adjacent), the I wildcard last — an
/// early I-heavy string would otherwise merge into whichever group came
/// first and poison it for later concrete strings.
fn basis_rank(letter: Pauli) -> u8 {
    match letter {
        Pauli::X => 0,
        Pauli::Y => 1,
        Pauli::Z => 2,
        Pauli::I => 3,
    }
}

/// The canonical grouping order: indices of `paulis` sorted by per-qubit
/// basis letter ([`basis_rank`], lexicographic). Distinct strings get
/// distinct keys, so the order — and therefore the greedy grouping and
/// every observable's RNG stream in [`estimate_paulis_batched`] — is
/// invariant under permutations of the input family.
fn sorted_basis_order(paulis: &[PauliString]) -> Vec<usize> {
    let n = paulis.first().map_or(0, PauliString::num_qubits);
    let mut order: Vec<usize> = (0..paulis.len()).collect();
    order.sort_by(|&a, &b| {
        for q in 0..n {
            let ord = basis_rank(paulis[a].get(q)).cmp(&basis_rank(paulis[b].get(q)));
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    order
}

/// Number of qubit-wise-commuting measurement groups
/// [`estimate_paulis_batched`] will rotate into for this family — i.e.
/// the number of distinct circuit preparations a finite-shot estimation
/// pass costs. Uses the canonical sorted order, so the count is
/// permutation-invariant.
pub fn measurement_group_count(paulis: &[PauliString]) -> usize {
    group_canonical(paulis).len()
}

/// Finite-shot estimates for several Pauli strings sharing one prepared
/// state. Observables are grouped by their measurement rotation so strings
/// that are diagonal in the same basis share shots — `qubit-wise
/// commuting` grouping, the standard measurement-reduction trick.
///
/// Grouping uses the same canonical basis sort as
/// [`estimate_paulis_batched`] (this estimator shares shots within a
/// group, so it has no per-observable RNG-stream-compat constraint):
/// shuffled mixed families collapse into [`measurement_group_count`]
/// groups instead of whatever fragmentation the input order produces,
/// and the group structure is invariant under family permutations.
pub fn estimate_paulis_grouped<R: Rng>(
    state: &StateVector,
    paulis: &[PauliString],
    shots_per_group: usize,
    rng: &mut R,
) -> Vec<f64> {
    let mut out = vec![0.0; paulis.len()];
    for (basis, members) in group_canonical(paulis) {
        let basis_string = PauliString::from_letters(&basis);
        let mut rotated = state.clone();
        rotated.apply_circuit(&measurement_rotation(&basis_string));
        let outcomes = sample_bitstrings(&rotated, shots_per_group, rng);
        for &idx in &members {
            let p = &paulis[idx];
            if p.is_identity() {
                out[idx] = 1.0;
                continue;
            }
            let sum: f64 = outcomes.iter().map(|&b| p.outcome_sign(b)).sum();
            out[idx] = sum / shots_per_group as f64;
        }
    }
    out
}

/// **Independent** per-observable shot estimates with amortized setup —
/// the batched form of [`estimate_pauli_with_shots`].
///
/// Observables are grouped by qubit-wise-commuting measurement basis —
/// after a canonical sort by basis letters ([`measurement_group_count`]),
/// so large mixed families collapse into fewer groups than greedy
/// input-order assembly would find, and the grouping (hence each
/// observable's RNG stream) is invariant under permutations of the
/// family. The state is rotated and its [`CdfSampler`] built once per
/// *group*, and each member then draws its own independent `shots`
/// outcomes from the shared table. Statistically this is exactly
/// Proposition 1's per-neuron sample-mean estimator (no shot sharing
/// between observables — contrast [`estimate_paulis_grouped`]); only the
/// repeated rotation + CDF setup is eliminated. The identity string
/// returns exactly 1 without spending shots.
pub fn estimate_paulis_batched<R: Rng>(
    state: &StateVector,
    paulis: &[PauliString],
    shots: usize,
    rng: &mut R,
) -> Vec<f64> {
    assert!(shots > 0, "need at least one shot");
    let mut out = vec![0.0; paulis.len()];
    for (basis, members) in group_canonical(paulis) {
        let basis_string = PauliString::from_letters(&basis);
        let mut rotated = state.clone();
        rotated.apply_circuit(&measurement_rotation(&basis_string));
        let sampler = CdfSampler::new(&rotated);
        for &idx in &members {
            let p = &paulis[idx];
            if p.is_identity() {
                out[idx] = 1.0;
                continue;
            }
            let mut sum = 0.0;
            for _ in 0..shots {
                sum += p.outcome_sign(sampler.draw(rng));
            }
            out[idx] = sum / shots as f64;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The pre-canonical-sort behaviour (greedy grouping in input order),
    /// kept here as the baseline the sorted grouping is pinned against.
    fn group_input_order(paulis: &[PauliString]) -> Vec<(Vec<Pauli>, Vec<usize>)> {
        let order: Vec<usize> = (0..paulis.len()).collect();
        group_by_basis_in(paulis, &order)
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut c = Circuit::new(2);
        c.push(Gate::Ry(0, 1.0)); // p(|1⟩ on q0) = sin²(0.5)
        let s = StateVector::from_circuit(&c);
        let mut rng = StdRng::seed_from_u64(7);
        let shots = 200_000;
        let counts = sample_counts(&s, shots, &mut rng);
        let p1 = *counts.get(&1).unwrap_or(&0) as f64 / shots as f64;
        let want = (0.5f64).sin().powi(2);
        assert!((p1 - want).abs() < 5e-3, "p1={p1} want={want}");
    }

    #[test]
    fn rotation_diagonalises_x_and_y() {
        // |+⟩ is the +1 eigenstate of X: after rotation every outcome must
        // be |0⟩ on that qubit.
        let mut c = Circuit::new(1);
        c.push(Gate::H(0));
        let plus = StateVector::from_circuit(&c);
        let x = PauliString::parse("X").unwrap();
        let mut rotated = plus.clone();
        rotated.apply_circuit(&measurement_rotation(&x));
        assert!((rotated.probability(0) - 1.0).abs() < 1e-12);

        // (|0⟩ + i|1⟩)/√2 is the +1 eigenstate of Y.
        let mut c = Circuit::new(1);
        c.push(Gate::H(0));
        c.push(Gate::S(0));
        let yplus = StateVector::from_circuit(&c);
        let y = PauliString::parse("Y").unwrap();
        let mut rotated = yplus.clone();
        rotated.apply_circuit(&measurement_rotation(&y));
        assert!((rotated.probability(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shot_estimates_converge_to_exact() {
        let mut c = Circuit::new(3);
        c.push(Gate::Ry(0, 0.8));
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        c.push(Gate::Rx(2, -0.4));
        let s = StateVector::from_circuit(&c);
        let mut rng = StdRng::seed_from_u64(99);
        for txt in ["ZZI", "IXZ", "YIY", "ZIZ"] {
            let p = PauliString::parse(txt).unwrap();
            let exact = s.expectation(&p);
            let est = estimate_pauli_with_shots(&s, &p, 100_000, &mut rng);
            assert!((exact - est).abs() < 2e-2, "{txt}: exact={exact} est={est}");
        }
    }

    #[test]
    fn identity_estimate_is_exactly_one() {
        let s = StateVector::zero_state(2);
        let mut rng = StdRng::seed_from_u64(1);
        let est = estimate_pauli_with_shots(&s, &PauliString::identity(2), 10, &mut rng);
        assert_eq!(est, 1.0);
    }

    #[test]
    fn grouped_estimation_matches_individual() {
        let mut c = Circuit::new(2);
        c.push(Gate::Ry(0, 0.9));
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        let s = StateVector::from_circuit(&c);
        let paulis: Vec<PauliString> = ["ZI", "IZ", "ZZ", "XX", "XI"]
            .iter()
            .map(|t| PauliString::parse(t).unwrap())
            .collect();
        let mut rng = StdRng::seed_from_u64(5);
        let ests = estimate_paulis_grouped(&s, &paulis, 60_000, &mut rng);
        for (p, est) in paulis.iter().zip(ests.iter()) {
            let exact = s.expectation(p);
            assert!((exact - est).abs() < 3e-2, "{p}: exact={exact} est={est}");
        }
    }

    #[test]
    fn batched_estimation_matches_exact_statistically() {
        let mut c = Circuit::new(3);
        c.push(Gate::Ry(0, 0.8));
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        c.push(Gate::Rx(2, -0.4));
        let s = StateVector::from_circuit(&c);
        let paulis: Vec<PauliString> = ["ZZI", "IZZ", "XXI", "III", "YII"]
            .iter()
            .map(|t| PauliString::parse(t).unwrap())
            .collect();
        let mut rng = StdRng::seed_from_u64(42);
        let ests = estimate_paulis_batched(&s, &paulis, 60_000, &mut rng);
        for (p, est) in paulis.iter().zip(ests.iter()) {
            let exact = s.expectation(p);
            assert!((exact - est).abs() < 3e-2, "{p}: exact={exact} est={est}");
        }
        // Identity spends no shots and is exactly 1.
        assert_eq!(ests[3], 1.0);
    }

    #[test]
    fn batched_estimation_is_deterministic_per_seed() {
        let mut c = Circuit::new(2);
        c.push(Gate::Ry(0, 1.1));
        let s = StateVector::from_circuit(&c);
        let paulis: Vec<PauliString> = ["ZI", "XI"]
            .iter()
            .map(|t| PauliString::parse(t).unwrap())
            .collect();
        let run = || {
            let mut rng = StdRng::seed_from_u64(11);
            estimate_paulis_batched(&s, &paulis, 500, &mut rng)
        };
        assert_eq!(run(), run());
        assert!(estimate_paulis_batched(&s, &[], 10, &mut StdRng::seed_from_u64(0)).is_empty());
    }

    #[test]
    fn cdf_sampler_matches_sample_bitstrings() {
        // Same RNG stream → identical draws: the sampler refactor must not
        // change a single bit of downstream shot noise.
        let mut c = Circuit::new(3);
        c.push(Gate::H(0));
        c.push(Gate::Ry(1, 0.9));
        let s = StateVector::from_circuit(&c);
        let via_fn = sample_bitstrings(&s, 100, &mut StdRng::seed_from_u64(3));
        let sampler = CdfSampler::new(&s);
        let mut rng = StdRng::seed_from_u64(3);
        let via_sampler: Vec<u64> = (0..100).map(|_| sampler.draw(&mut rng)).collect();
        assert_eq!(via_fn, via_sampler);
    }

    #[test]
    fn sorted_grouping_beats_input_order_on_shuffled_family() {
        // Shuffled mixed family: the I-heavy strings come first, so
        // greedy input-order grouping lets IX absorb ZI's basis slot and
        // then needs a third group — the sorted order collates X-basis
        // and Z-basis strings and gets by with two.
        let family: Vec<PauliString> = ["IX", "ZI", "XX", "ZZ"]
            .iter()
            .map(|t| PauliString::parse(t).unwrap())
            .collect();
        let unsorted = group_input_order(&family).len();
        let sorted = measurement_group_count(&family);
        assert_eq!(unsorted, 3, "input-order greedy grouping fragments");
        assert_eq!(sorted, 2, "sorted grouping finds the 2-group cover");
        // Scaled-up shuffle: interleave 1-local X and Z strings on 6
        // qubits front-loaded with identity-heavy members.
        let n = 6;
        let mut big: Vec<PauliString> = Vec::new();
        for q in (0..n).rev() {
            for letter in ["X", "Z"] {
                let mut s: Vec<&str> = vec!["I"; n];
                s[q] = letter;
                big.push(PauliString::parse(&s.concat()).unwrap());
            }
        }
        assert_eq!(
            measurement_group_count(&big),
            2,
            "all 1-local X (resp. Z) strings share one rotated basis"
        );
    }

    #[test]
    fn batched_estimates_invariant_under_family_permutation() {
        // The canonical sort makes the grouping — and therefore each
        // observable's draw stream — independent of input order: the
        // same seed must give the *same* estimate per string, however
        // the family is arranged.
        let mut c = Circuit::new(3);
        c.push(Gate::Ry(0, 0.8));
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        c.push(Gate::Rx(2, -0.4));
        let s = StateVector::from_circuit(&c);
        let texts = ["ZZI", "IZZ", "XXI", "YII", "IIX", "ZIZ"];
        let family: Vec<PauliString> = texts
            .iter()
            .map(|t| PauliString::parse(t).unwrap())
            .collect();
        let shuffled_idx = [3usize, 0, 5, 2, 4, 1];
        let shuffled: Vec<PauliString> = shuffled_idx.iter().map(|&i| family[i]).collect();
        let a = estimate_paulis_batched(&s, &family, 400, &mut StdRng::seed_from_u64(21));
        let b = estimate_paulis_batched(&s, &shuffled, 400, &mut StdRng::seed_from_u64(21));
        for (pos, &orig) in shuffled_idx.iter().enumerate() {
            assert_eq!(
                a[orig], b[pos],
                "estimate for {} must not depend on family order",
                texts[orig]
            );
        }
    }

    #[test]
    fn grouped_uses_fewer_groups_than_input_order_on_shuffled_family() {
        // The shuffled mixed family where greedy input-order grouping
        // fragments (IX first poisons the X-basis slot for ZI): the
        // estimator now rotates into the canonical 2-group cover, one
        // fewer circuit preparation per estimation pass.
        let family: Vec<PauliString> = ["IX", "ZI", "XX", "ZZ"]
            .iter()
            .map(|t| PauliString::parse(t).unwrap())
            .collect();
        assert_eq!(group_input_order(&family).len(), 3);
        assert_eq!(group_canonical(&family).len(), 2);
        assert_eq!(
            group_canonical(&family).len(),
            measurement_group_count(&family),
            "estimate_paulis_grouped and estimate_paulis_batched share one grouping"
        );
    }

    #[test]
    fn grouped_estimates_invariant_under_family_permutation() {
        // With input-order grouping a permutation could change which
        // strings share a rotation (hence which shots they share); the
        // canonical sort makes grouped estimates permutation-invariant
        // per seed, matching the batched estimator's guarantee.
        let mut c = Circuit::new(2);
        c.push(Gate::Ry(0, 0.9));
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        let s = StateVector::from_circuit(&c);
        let texts = ["IX", "ZI", "XX", "ZZ"];
        let family: Vec<PauliString> = texts
            .iter()
            .map(|t| PauliString::parse(t).unwrap())
            .collect();
        let shuffled_idx = [2usize, 0, 3, 1];
        let shuffled: Vec<PauliString> = shuffled_idx.iter().map(|&i| family[i]).collect();
        let a = estimate_paulis_grouped(&s, &family, 400, &mut StdRng::seed_from_u64(17));
        let b = estimate_paulis_grouped(&s, &shuffled, 400, &mut StdRng::seed_from_u64(17));
        for (pos, &orig) in shuffled_idx.iter().enumerate() {
            assert_eq!(
                a[orig], b[pos],
                "estimate for {} must not depend on family order",
                texts[orig]
            );
        }
    }

    #[test]
    fn grouping_is_compatible() {
        // ZI, IZ, ZZ all share the Z⊗Z basis; XX needs its own group.
        let s = StateVector::zero_state(2);
        let paulis: Vec<PauliString> = ["ZI", "IZ", "ZZ"]
            .iter()
            .map(|t| PauliString::parse(t).unwrap())
            .collect();
        let mut rng = StdRng::seed_from_u64(5);
        let ests = estimate_paulis_grouped(&s, &paulis, 100, &mut rng);
        // On |00⟩ all three are exactly +1 regardless of shots.
        for e in ests {
            assert_eq!(e, 1.0);
        }
    }
}

//! State vectors and gate-application kernels.
//!
//! Layout: amplitude `amps[b]` is the coefficient of basis ket `|b⟩` where
//! bit `k` of `b` is the state of qubit `k` (qubit 0 is the least
//! significant bit).
//!
//! ## Parallelism
//!
//! Three kernel shapes, all switching to rayon above
//! [`PARALLEL_THRESHOLD`] amplitudes:
//!
//! * **diagonal** gates touch each amplitude once → `par_iter_mut`;
//! * **dense single-qubit** gates pair amplitudes `(i, i + 2^q)`. We walk
//!   blocks of `2^{q+1}` contiguous amplitudes; for low `q` there are many
//!   blocks (parallelise over blocks), for high `q` few blocks but long
//!   halves (split each block at its midpoint and zip the halves in
//!   parallel) — both shapes stay safe-Rust;
//! * **controlled** gates reuse the block walk with a per-index control-bit
//!   test.

use crate::circuit::Circuit;
use crate::compile::{CompiledCircuit, FusedOp, Mat2, Mat4};
use crate::gate::Gate;
use crate::C64;
use pauli::{PauliString, PauliSum};
use rayon::prelude::*;

/// Tolerance below which a rotation angle counts as the identity and its
/// gate is skipped by [`StateVector::apply_circuit`]; matches the
/// transpile-time `Circuit::elide_identities` default.
const IDENTITY_TOL: f64 = 1e-12;

/// Amplitude count above which kernels use rayon. The vendored rayon runs
/// a **persistent** work-stealing pool, so dispatching a parallel call is
/// a handful of queue pushes plus a condvar wake (~1–3 µs total) instead
/// of the ~10–25 µs/worker scoped-spawn cost that used to force this up
/// to 2^16. A dense 2^13-amp kernel runs in ~15 µs single-thread
/// (~1.8 ns/amp), so fan-out starts paying for itself right around 2^13
/// amplitudes (128 KiB of doubles). Re-validated with
/// `bench/benches/gates.rs` (`thread_scaling` + `threshold_sweep` groups)
/// and recorded in `BENCH_scaling.json`.
pub const PARALLEL_THRESHOLD: usize = 1 << 13;

/// Fixed amplitude-chunk size for the fused multi-observable kernel: 2^11
/// doubles ≈ 32 KiB keeps a chunk L1-resident while every observable's
/// tight loop re-reads it. Chunk boundaries must not depend on the thread
/// count so partial sums combine in a deterministic order (bit-for-bit
/// reproducible results for any thread count).
const EXPECTATION_CHUNK: usize = 1 << 11;

/// A pure `n`-qubit state.
#[derive(Clone, Debug)]
pub struct StateVector {
    n: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// The all-zeros ket `|0…0⟩`.
    pub fn zero_state(n: usize) -> Self {
        assert!((1..=30).contains(&n), "state vector limited to 30 qubits");
        let mut amps = vec![C64::new(0.0, 0.0); 1usize << n];
        amps[0] = C64::new(1.0, 0.0);
        StateVector { n, amps }
    }

    /// Builds a state from raw amplitudes (must have power-of-two length and
    /// unit norm to `1e-8`).
    pub fn from_amplitudes(amps: Vec<C64>) -> Self {
        let len = amps.len();
        assert!(len.is_power_of_two() && len >= 2, "length must be 2^n");
        let n = len.trailing_zeros() as usize;
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!(
            (norm - 1.0).abs() < 1e-8,
            "state not normalised: ‖ψ‖² = {norm}"
        );
        StateVector { n, amps }
    }

    /// Runs `circuit` on `|0…0⟩`.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut s = Self::zero_state(circuit.num_qubits());
        s.apply_circuit(circuit);
        s
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The raw amplitudes.
    #[inline]
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// `‖ψ‖²` (should stay 1 under unitary evolution; drift is a bug).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Probability of observing basis state `b`.
    #[inline]
    pub fn probability(&self, b: u64) -> f64 {
        self.amps[b as usize].norm_sqr()
    }

    /// All `2^n` outcome probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Inner product `⟨self|other⟩`.
    pub fn inner(&self, other: &StateVector) -> C64 {
        assert_eq!(self.n, other.n, "qubit-count mismatch");
        if self.amps.len() >= PARALLEL_THRESHOLD {
            self.amps
                .par_iter()
                .zip(other.amps.par_iter())
                .map(|(a, b)| a.conj() * b)
                .sum()
        } else {
            self.amps
                .iter()
                .zip(other.amps.iter())
                .map(|(a, b)| a.conj() * b)
                .sum()
        }
    }

    /// Fidelity `|⟨self|other⟩|²` between two pure states — the quantity
    /// the hybrid strategy's pruning test measures (§IV.C, Eq. (25)).
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// Applies a single gate in place.
    pub fn apply_gate(&mut self, g: &Gate) {
        match *g {
            Gate::Cnot { control, target } => self.apply_cnot(control, target),
            Gate::Cz(a, b) => self.apply_cz(a, b),
            Gate::Swap(a, b) => self.apply_swap(a, b),
            _ => {
                let q = g.qubits()[0];
                let m = g.matrix1().expect("single-qubit gate");
                if g.is_diagonal() {
                    self.apply_diagonal(q, m[0][0], m[1][1]);
                } else {
                    self.apply_single(q, m);
                }
            }
        }
    }

    /// Applies every gate of a circuit in order, skipping gates that are
    /// the identity to tolerance (zero-angle rotations from the paper's
    /// zero-initialised shift grids) — a full state pass saved per elided
    /// gate, even for circuits that never went through
    /// `Circuit::elide_identities`.
    pub fn apply_circuit(&mut self, c: &Circuit) {
        assert_eq!(c.num_qubits(), self.n, "qubit-count mismatch");
        for g in c.gates() {
            if g.is_identity(IDENTITY_TOL) {
                continue;
            }
            self.apply_gate(g);
        }
    }

    /// Executes a [`CompiledCircuit`]: the same state the source circuit
    /// produces, in far fewer amplitude sweeps (each fused run is one
    /// kernel pass). Produced by [`crate::compile::compile`].
    pub fn apply_compiled(&mut self, cc: &CompiledCircuit) {
        assert_eq!(cc.num_qubits(), self.n, "qubit-count mismatch");
        for op in cc.ops() {
            match op {
                FusedOp::Unary {
                    qubit,
                    matrix,
                    diagonal,
                } => {
                    if *diagonal {
                        self.apply_diagonal(*qubit, matrix[0][0], matrix[1][1]);
                    } else {
                        self.apply_single(*qubit, *matrix);
                    }
                }
                FusedOp::Binary {
                    low,
                    high,
                    matrix,
                    diagonal,
                } => {
                    if *diagonal {
                        self.apply_two_diagonal(
                            *low,
                            *high,
                            [matrix[0][0], matrix[1][1], matrix[2][2], matrix[3][3]],
                        );
                    } else {
                        self.apply_two(*low, *high, matrix);
                    }
                }
                FusedOp::Gate(g) => self.apply_gate(g),
            }
        }
    }

    /// Runs a compiled circuit on `|0…0⟩`.
    pub fn from_compiled(cc: &CompiledCircuit) -> Self {
        let mut s = Self::zero_state(cc.num_qubits());
        s.apply_compiled(cc);
        s
    }

    /// Applies an arbitrary dense 2×2 to qubit `q` — the entry point for
    /// externally fused single-qubit runs (e.g. `pvqnn`'s encoding plan).
    /// Bit-for-bit identical to the kernel `apply_compiled` uses for
    /// dense unary ops.
    pub fn apply_unary(&mut self, q: usize, m: &Mat2) {
        self.apply_single(q, *m);
    }

    /// Dense 2×2 kernel on qubit `q`.
    fn apply_single(&mut self, q: usize, m: [[C64; 2]; 2]) {
        assert!(q < self.n);
        let half = 1usize << q;
        let block = half << 1;
        let len = self.amps.len();
        let [[a, b], [c, d]] = m;

        let pair = move |lo: &mut C64, hi: &mut C64| {
            let (x, y) = (*lo, *hi);
            *lo = a * x + b * y;
            *hi = c * x + d * y;
        };

        if len < PARALLEL_THRESHOLD {
            for chunk in self.amps.chunks_mut(block) {
                let (lo, hi) = chunk.split_at_mut(half);
                for i in 0..half {
                    pair(&mut lo[i], &mut hi[i]);
                }
            }
        } else if len / block >= 2 * rayon::current_num_threads() {
            // Many blocks: parallelise across blocks.
            self.amps.par_chunks_mut(block).for_each(|chunk| {
                let (lo, hi) = chunk.split_at_mut(half);
                for i in 0..half {
                    pair(&mut lo[i], &mut hi[i]);
                }
            });
        } else {
            // Few long blocks (high q): parallelise inside each block.
            for chunk in self.amps.chunks_mut(block) {
                let (lo, hi) = chunk.split_at_mut(half);
                lo.par_iter_mut()
                    .zip(hi.par_iter_mut())
                    .for_each(|(l, h)| pair(l, h));
            }
        }
    }

    /// Diagonal kernel: multiplies amplitudes by `d0`/`d1` according to the
    /// bit of qubit `q`.
    fn apply_diagonal(&mut self, q: usize, d0: C64, d1: C64) {
        assert!(q < self.n);
        let bit = 1usize << q;
        let f = move |i: usize, amp: &mut C64| {
            *amp *= if i & bit == 0 { d0 } else { d1 };
        };
        if self.amps.len() < PARALLEL_THRESHOLD {
            for (i, amp) in self.amps.iter_mut().enumerate() {
                f(i, amp);
            }
        } else {
            self.amps
                .par_iter_mut()
                .enumerate()
                .for_each(|(i, amp)| f(i, amp));
        }
    }

    /// Dense 4×4 kernel on the qubit pair `low < high`. An amplitude's
    /// local basis index is `bit(low) + 2·bit(high)`; every quad of
    /// amplitudes sharing their other bits is mixed by `m` in one load.
    fn apply_two(&mut self, low: usize, high: usize, m: &Mat4) {
        assert!(low < high && high < self.n);
        let ma = 1usize << low;
        let mb = 1usize << high;
        let block = mb << 1;
        let len = self.amps.len();
        let mm = *m;
        // One pass over paired half-slices: `lo` holds a block's
        // high-bit-0 amplitudes, `hi` its high-bit-1 ones; within each,
        // indices with the low bit clear are the quad representatives.
        // Requires both slices to be equal-length, aligned multiples of
        // 2^{low+1}, so quads never straddle a slice boundary.
        let quads = move |lo: &mut [C64], hi: &mut [C64]| {
            let count = lo.len() >> 1;
            for k in 0..count {
                let j = ((k >> low) << (low + 1)) | (k & (ma - 1));
                let v0 = lo[j];
                let v1 = lo[j + ma];
                let v2 = hi[j];
                let v3 = hi[j + ma];
                lo[j] = mm[0][0] * v0 + mm[0][1] * v1 + mm[0][2] * v2 + mm[0][3] * v3;
                lo[j + ma] = mm[1][0] * v0 + mm[1][1] * v1 + mm[1][2] * v2 + mm[1][3] * v3;
                hi[j] = mm[2][0] * v0 + mm[2][1] * v1 + mm[2][2] * v2 + mm[2][3] * v3;
                hi[j + ma] = mm[3][0] * v0 + mm[3][1] * v1 + mm[3][2] * v2 + mm[3][3] * v3;
            }
        };
        if len < PARALLEL_THRESHOLD {
            for chunk in self.amps.chunks_mut(block) {
                let (lo, hi) = chunk.split_at_mut(mb);
                quads(lo, hi);
            }
        } else if len / block >= 2 * rayon::current_num_threads() {
            // Many blocks: parallelise across blocks.
            self.amps.par_chunks_mut(block).for_each(|chunk| {
                let (lo, hi) = chunk.split_at_mut(mb);
                quads(lo, hi);
            });
        } else {
            // Few long blocks (high `high`): split the halves into
            // aligned power-of-two sub-slices (multiples of 2^{low+1})
            // and zip them in parallel.
            let threads = rayon::current_num_threads().max(1);
            let sub = (mb / (4 * threads)).next_power_of_two().clamp(ma << 1, mb);
            for chunk in self.amps.chunks_mut(block) {
                let (lo, hi) = chunk.split_at_mut(mb);
                lo.par_chunks_mut(sub)
                    .zip(hi.par_chunks_mut(sub))
                    .for_each(|(l, h)| quads(l, h));
            }
        }
    }

    /// Diagonal 4×4 kernel: multiplies each amplitude by the entry its
    /// `(low, high)` bits select — one multiply per amplitude, the cheap
    /// path for fused runs of CZ/Rz-like pairs.
    fn apply_two_diagonal(&mut self, low: usize, high: usize, d: [C64; 4]) {
        assert!(low < high && high < self.n);
        let f = move |i: usize, amp: &mut C64| {
            let l = ((i >> low) & 1) | (((i >> high) & 1) << 1);
            *amp *= d[l];
        };
        if self.amps.len() < PARALLEL_THRESHOLD {
            for (i, amp) in self.amps.iter_mut().enumerate() {
                f(i, amp);
            }
        } else {
            self.amps
                .par_iter_mut()
                .enumerate()
                .for_each(|(i, amp)| f(i, amp));
        }
    }

    /// CNOT kernel: swaps `|…c=1…t=0…⟩ ↔ |…c=1…t=1…⟩`.
    fn apply_cnot(&mut self, control: usize, target: usize) {
        assert!(control < self.n && target < self.n && control != target);
        let cbit = 1usize << control;
        let half = 1usize << target;
        let block = half << 1;
        let work = |base: usize, chunk: &mut [C64]| {
            let (lo, hi) = chunk.split_at_mut(half);
            for i in 0..half {
                if (base + i) & cbit != 0 {
                    std::mem::swap(&mut lo[i], &mut hi[i]);
                }
            }
        };
        if self.amps.len() < PARALLEL_THRESHOLD {
            for (bi, chunk) in self.amps.chunks_mut(block).enumerate() {
                work(bi * block, chunk);
            }
        } else {
            self.amps
                .par_chunks_mut(block)
                .enumerate()
                .for_each(|(bi, chunk)| work(bi * block, chunk));
        }
    }

    /// CZ kernel: flips the sign of amplitudes where both bits are 1.
    fn apply_cz(&mut self, a: usize, b: usize) {
        assert!(a < self.n && b < self.n && a != b);
        let mask = (1usize << a) | (1usize << b);
        let f = move |i: usize, amp: &mut C64| {
            if i & mask == mask {
                *amp = -*amp;
            }
        };
        if self.amps.len() < PARALLEL_THRESHOLD {
            for (i, amp) in self.amps.iter_mut().enumerate() {
                f(i, amp);
            }
        } else {
            self.amps
                .par_iter_mut()
                .enumerate()
                .for_each(|(i, amp)| f(i, amp));
        }
    }

    /// SWAP kernel: exchanges amplitudes whose bits at `a` and `b` differ.
    fn apply_swap(&mut self, a: usize, b: usize) {
        assert!(a < self.n && b < self.n && a != b);
        let (lo_q, hi_q) = if a < b { (a, b) } else { (b, a) };
        let lo_bit = 1usize << lo_q;
        let hi_bit = 1usize << hi_q;
        // Pairs: i with (lo=1, hi=0) ↔ i ^ lo ^ hi. Walk blocks of the high
        // qubit so each pair lives in one block.
        let half = hi_bit;
        let block = half << 1;
        let work = |base: usize, chunk: &mut [C64]| {
            let (lo_half, hi_half) = chunk.split_at_mut(half);
            for i in 0..half {
                // Global index base+i has hi bit 0; partner flips both bits.
                if (base + i) & lo_bit != 0 {
                    std::mem::swap(&mut lo_half[i], &mut hi_half[i ^ lo_bit]);
                }
            }
        };
        if self.amps.len() < PARALLEL_THRESHOLD {
            for (bi, chunk) in self.amps.chunks_mut(block).enumerate() {
                work(bi * block, chunk);
            }
        } else {
            self.amps
                .par_chunks_mut(block)
                .enumerate()
                .for_each(|(bi, chunk)| work(bi * block, chunk));
        }
    }

    /// Exact expectation value `⟨ψ|P|ψ⟩` of a Pauli string.
    ///
    /// Uses the basis action `P|b⟩ = λ(b)|b ⊕ x⟩`:
    /// `⟨ψ|P|ψ⟩ = Σ_b conj(ψ[b⊕x]) λ(b) ψ[b]`, which is real for Hermitian
    /// `P`; the imaginary residue is asserted small in debug builds.
    pub fn expectation(&self, p: &PauliString) -> f64 {
        assert_eq!(p.num_qubits(), self.n, "qubit-count mismatch");
        let x = p.x_mask();
        let z = p.z_mask();
        let y_phase = pauli::PhaseI::from_power(p.y_count() as u32).to_c64();
        let term = move |b: usize, amps: &[C64]| -> C64 {
            let sign = if ((b as u64) & z).count_ones().is_multiple_of(2) {
                1.0
            } else {
                -1.0
            };
            amps[b ^ (x as usize)].conj() * amps[b] * sign
        };
        let total: C64 = if self.amps.len() >= PARALLEL_THRESHOLD {
            (0..self.amps.len())
                .into_par_iter()
                .map(|b| term(b, &self.amps))
                .sum()
        } else {
            (0..self.amps.len()).map(|b| term(b, &self.amps)).sum()
        };
        let val = y_phase * total;
        debug_assert!(
            val.im.abs() < 1e-9,
            "expectation of Hermitian observable has imaginary part {}",
            val.im
        );
        val.re
    }

    /// Exact expectations of **many** Pauli strings in one cache-friendly
    /// sweep over the amplitudes — the fused kernel behind Algorithm 1's
    /// per-state observable batches.
    ///
    /// Per string the basis action is precomputed once
    /// ([`pauli::BasisKernel`]); the sweep walks the amplitudes in
    /// cache-resident chunks and, within each chunk, runs one tight
    /// branch-free loop per string (loop-invariant masks in registers), so
    /// every string reads the chunk while it is still hot instead of
    /// streaming the whole state once per observable. Two structural facts
    /// cut the arithmetic further:
    ///
    /// * **diagonal** strings (`x = 0`) need only `±|ψ[b]|²` — pure real
    ///   arithmetic, no second amplitude load;
    /// * **off-diagonal** strings pair `b ↔ b ⊕ x` into complex-conjugate
    ///   contributions, so only the representative with the highest `x`
    ///   bit clear is visited (half the work) and only the real component
    ///   `2·Re(i^{#Y} · conj(ψ[b⊕x]) ψ[b] (−1)^{|b∧z|})` is accumulated.
    ///
    /// Amplitude chunking is fixed-size and combined in chunk order, so
    /// results are bit-for-bit identical for any thread count.
    pub fn expectation_many(&self, paulis: &[PauliString]) -> Vec<f64> {
        if paulis.is_empty() {
            return Vec::new();
        }
        struct Diag {
            z: usize,
            out: usize,
        }
        struct OffDiag {
            x: usize,
            z: usize,
            /// Highest set bit of `x`: `b` is the pair representative iff
            /// this bit is clear.
            high: usize,
            /// Which component of `t = conj(ψ[b⊕x])·ψ[b]` carries
            /// `Re(i^{#Y}·t)`: `Im(t)` when the `Y` count is odd, `Re(t)`
            /// when even.
            use_im: bool,
            /// Its sign (`Re, −Im, −Re, +Im` for `#Y ≡ 0, 1, 2, 3`).
            coef: f64,
            out: usize,
        }
        let m = paulis.len();
        let mut diags: Vec<Diag> = Vec::new();
        let mut offs: Vec<OffDiag> = Vec::new();
        for (k, p) in paulis.iter().enumerate() {
            assert_eq!(p.num_qubits(), self.n, "qubit-count mismatch");
            let kern = p.basis_kernel();
            if kern.x == 0 {
                diags.push(Diag {
                    z: kern.z as usize,
                    out: k,
                });
            } else {
                // Re(i^{#Y}·t) = Re, −Im, −Re, +Im of t for #Y ≡ 0..3.
                let (use_im, coef) = match kern.phase.power() {
                    0 => (false, 1.0),
                    1 => (true, -1.0),
                    2 => (false, -1.0),
                    _ => (true, 1.0),
                };
                offs.push(OffDiag {
                    x: kern.x as usize,
                    z: kern.z as usize,
                    high: 1usize << (63 - kern.x.leading_zeros()),
                    use_im,
                    coef,
                    out: k,
                });
            }
        }
        let amps = &self.amps;
        // ±1 from the Z-mask parity, branch-free.
        #[inline(always)]
        fn parity_sign(b: usize, z: usize) -> f64 {
            1.0 - 2.0 * ((b & z).count_ones() & 1) as f64
        }
        // Partial sums over amplitudes [lo, hi). `lo` is aligned to the
        // power-of-two length `hi - lo`, which the run decomposition below
        // relies on: over a run of indices sharing their upper bits the
        // Z-parity sign only depends on those upper bits, so it is hoisted
        // out and computed once per run — the inner loops are pure
        // floating-point (for 1-local strings, entirely popcount-free).
        let scan = |lo: usize, hi: usize| -> Vec<f64> {
            let clen = hi - lo;
            let mut acc = vec![0.0f64; m];
            // Norm sum of a contiguous slice (bounds-check-free), reduced
            // over four independent f64 lanes so the FP adds vectorize /
            // pipeline instead of serializing on one accumulator chain.
            // The lane tree is fixed (lanes combined in one order, then
            // the remainder), so the result does not depend on thread
            // count.
            let norms = |base: usize, len: usize| -> f64 {
                let mut l = [0.0f64; 4];
                let mut quads = amps[base..base + len].chunks_exact(4);
                for q in &mut quads {
                    l[0] += q[0].norm_sqr();
                    l[1] += q[1].norm_sqr();
                    l[2] += q[2].norm_sqr();
                    l[3] += q[3].norm_sqr();
                }
                let mut s = (l[0] + l[1]) + (l[2] + l[3]);
                for a in quads.remainder() {
                    s += a.norm_sqr();
                }
                s
            };
            for d in &diags {
                let mut s = 0.0;
                if d.z == 0 {
                    // Identity: plain norm sum.
                    s = norms(lo, clen);
                } else {
                    // Sign is constant over runs below the lowest Z bit and
                    // alternates between adjacent runs; parity over the
                    // remaining Z bits only changes with the run base.
                    let zl = d.z & d.z.wrapping_neg();
                    if zl >= clen {
                        s = parity_sign(lo, d.z) * norms(lo, clen);
                    } else {
                        let z_base = d.z & !(2 * zl - 1);
                        let mut base = lo;
                        while base < hi {
                            let sign = if z_base == 0 {
                                1.0
                            } else {
                                parity_sign(base, z_base)
                            };
                            s += sign * (norms(base, zl) - norms(base + zl, zl));
                            base += 2 * zl;
                        }
                    }
                }
                acc[d.out] = s;
            }
            for o in &offs {
                // Sum of the pair component (Re(t) or Im(t) of
                // t = conj(ψ[b⊕x])·ψ[b]) over one representative run:
                // `cur` holds the representatives, `par` their partners
                // (same run permuted by the low X bits `x_in`), and `z_in`
                // is the Z parity that still varies inside the run.
                let run_sum = |cur_base: usize, par_base: usize, len: usize| -> f64 {
                    let x_in = o.x & (len - 1);
                    let z_in = o.z & (len - 1);
                    let cur = &amps[cur_base..cur_base + len];
                    let par = &amps[par_base..par_base + len];
                    let mut run = 0.0;
                    if x_in == 0 && z_in == 0 {
                        // Common fast path (every ≤2-local string lands
                        // here): two parallel streams, no index math, and
                        // four independent f64 accumulator lanes so the
                        // FP reduction vectorizes (256-bit = 4×f64) and
                        // hides add latency. The lane tree is fixed —
                        // still deterministic for any thread count.
                        let mut l = [0.0f64; 4];
                        let mut cur4 = cur.chunks_exact(4);
                        let mut par4 = par.chunks_exact(4);
                        if o.use_im {
                            for (c, a) in (&mut cur4).zip(&mut par4) {
                                l[0] += a[0].re * c[0].im - a[0].im * c[0].re;
                                l[1] += a[1].re * c[1].im - a[1].im * c[1].re;
                                l[2] += a[2].re * c[2].im - a[2].im * c[2].re;
                                l[3] += a[3].re * c[3].im - a[3].im * c[3].re;
                            }
                            run = (l[0] + l[1]) + (l[2] + l[3]);
                            for (c, a) in cur4.remainder().iter().zip(par4.remainder()) {
                                run += a.re * c.im - a.im * c.re;
                            }
                        } else {
                            for (c, a) in (&mut cur4).zip(&mut par4) {
                                l[0] += a[0].re * c[0].re + a[0].im * c[0].im;
                                l[1] += a[1].re * c[1].re + a[1].im * c[1].im;
                                l[2] += a[2].re * c[2].re + a[2].im * c[2].im;
                                l[3] += a[3].re * c[3].re + a[3].im * c[3].im;
                            }
                            run = (l[0] + l[1]) + (l[2] + l[3]);
                            for (c, a) in cur4.remainder().iter().zip(par4.remainder()) {
                                run += a.re * c.re + a.im * c.im;
                            }
                        }
                    } else {
                        for (t, c) in cur.iter().enumerate() {
                            let a = par[t ^ x_in];
                            let v = if o.use_im {
                                a.re * c.im - a.im * c.re
                            } else {
                                a.re * c.re + a.im * c.im
                            };
                            run += if z_in == 0 {
                                v
                            } else {
                                parity_sign(t, z_in) * v
                            };
                        }
                    }
                    run
                };
                let mut s = 0.0;
                if o.high >= clen {
                    // The `high` bit is constant across this aligned chunk:
                    // either every index is a representative or none is.
                    // Partners live in the mirror chunk at `lo ^ x_out`.
                    if lo & o.high == 0 {
                        let x_out = o.x & !(clen - 1);
                        s = parity_sign(lo, o.z) * run_sum(lo, lo ^ x_out, clen);
                    }
                } else {
                    // Representatives come in runs of `high` (stride
                    // 2·high); the run's upper-bit sign is hoisted. Bits of
                    // Z at or below `high` never contribute to it.
                    let z_base = o.z & !(2 * o.high - 1);
                    let mut base = lo;
                    while base < hi {
                        let sign = if z_base == 0 {
                            1.0
                        } else {
                            parity_sign(base, z_base)
                        };
                        s += sign * run_sum(base, base + o.high, o.high);
                        base += 2 * o.high;
                    }
                }
                acc[o.out] = o.coef * s;
            }
            acc
        };
        let len = amps.len();
        let mut total: Vec<f64> = if len >= PARALLEL_THRESHOLD {
            let chunks = len / EXPECTATION_CHUNK;
            let partials: Vec<Vec<f64>> = (0..chunks)
                .into_par_iter()
                .map(|ci| scan(ci * EXPECTATION_CHUNK, (ci + 1) * EXPECTATION_CHUNK))
                .collect();
            let mut total = vec![0.0f64; m];
            for part in partials {
                for (t, v) in total.iter_mut().zip(part) {
                    *t += v;
                }
            }
            total
        } else {
            scan(0, len)
        };
        for o in &offs {
            total[o.out] *= 2.0;
        }
        total
    }

    /// Expectation of a weighted Pauli sum; all terms are evaluated by one
    /// fused [`Self::expectation_many`] pass over the amplitudes.
    pub fn expectation_sum(&self, o: &PauliSum) -> f64 {
        let paulis: Vec<PauliString> = o.terms().iter().map(|(_, p)| *p).collect();
        let values = self.expectation_many(&paulis);
        o.terms().iter().zip(values).map(|((c, _), v)| c * v).sum()
    }
}

/// A batch of `n`-qubit states in amplitude-major structure-of-arrays
/// layout: `amps[b * batch + l]` is amplitude `b` of lane `l`, so all
/// lanes' copies of one basis amplitude sit contiguously.
///
/// Gate kernels pay the per-basis index math **once** and then sweep the
/// lane dimension in tight contiguous loops — the same 4×f64-lane shape
/// that makes `expectation_many` fast. Per lane, every kernel evaluates
/// the *textually identical* arithmetic expression the [`StateVector`]
/// kernels use, so `batched.lane(l)` is bit-for-bit equal to running the
/// same ops on a standalone state — the invariant the serving layer's
/// "micro-batching never changes a prediction" guarantee rests on.
#[derive(Clone, Debug)]
pub struct BatchedStateVector {
    n: usize,
    batch: usize,
    amps: Vec<C64>,
}

impl BatchedStateVector {
    /// `batch` copies of the all-zeros ket `|0…0⟩`.
    pub fn zero_states(n: usize, batch: usize) -> Self {
        assert!((1..=30).contains(&n), "state vector limited to 30 qubits");
        assert!(batch >= 1, "batch must be non-empty");
        let mut amps = vec![C64::new(0.0, 0.0); (1usize << n) * batch];
        for a in amps.iter_mut().take(batch) {
            *a = C64::new(1.0, 0.0);
        }
        BatchedStateVector { n, batch, amps }
    }

    /// Number of qubits per lane.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Number of lanes.
    #[inline]
    pub fn batch_size(&self) -> usize {
        self.batch
    }

    /// Gathers lane `l` into a standalone [`StateVector`].
    pub fn lane(&self, l: usize) -> StateVector {
        assert!(l < self.batch, "lane out of range");
        let w = self.batch;
        let amps: Vec<C64> = (0..1usize << self.n)
            .map(|b| self.amps[b * w + l])
            .collect();
        StateVector { n: self.n, amps }
    }

    /// Applies one gate to every lane.
    pub fn apply_gate(&mut self, g: &Gate) {
        match *g {
            Gate::Cnot { control, target } => self.apply_cnot(control, target),
            Gate::Cz(a, b) => self.apply_cz(a, b),
            Gate::Swap(a, b) => self.apply_swap(a, b),
            _ => {
                let q = g.qubits()[0];
                let m = g.matrix1().expect("single-qubit gate");
                if g.is_diagonal() {
                    self.apply_diagonal(q, m[0][0], m[1][1]);
                } else {
                    self.apply_single(q, m);
                }
            }
        }
    }

    /// Applies a circuit to every lane, skipping identity gates exactly
    /// like [`StateVector::apply_circuit`].
    pub fn apply_circuit(&mut self, c: &Circuit) {
        assert_eq!(c.num_qubits(), self.n, "qubit-count mismatch");
        for g in c.gates() {
            if g.is_identity(IDENTITY_TOL) {
                continue;
            }
            self.apply_gate(g);
        }
    }

    /// Executes a [`CompiledCircuit`] on every lane; each lane ends up
    /// bit-for-bit equal to [`StateVector::apply_compiled`] on that lane.
    pub fn apply_compiled(&mut self, cc: &CompiledCircuit) {
        assert_eq!(cc.num_qubits(), self.n, "qubit-count mismatch");
        for op in cc.ops() {
            match op {
                FusedOp::Unary {
                    qubit,
                    matrix,
                    diagonal,
                } => {
                    if *diagonal {
                        self.apply_diagonal(*qubit, matrix[0][0], matrix[1][1]);
                    } else {
                        self.apply_single(*qubit, *matrix);
                    }
                }
                FusedOp::Binary {
                    low,
                    high,
                    matrix,
                    diagonal,
                } => {
                    if *diagonal {
                        self.apply_two_diagonal(
                            *low,
                            *high,
                            [matrix[0][0], matrix[1][1], matrix[2][2], matrix[3][3]],
                        );
                    } else {
                        self.apply_two(*low, *high, matrix);
                    }
                }
                FusedOp::Gate(g) => self.apply_gate(g),
            }
        }
    }

    /// Applies a dense 2×2 to qubit `q` of every lane — the shared-matrix
    /// batch entry point mirroring [`StateVector::apply_unary`].
    pub fn apply_unary(&mut self, q: usize, m: &Mat2) {
        self.apply_single(q, *m);
    }

    /// Applies a **different** dense 2×2 to qubit `q` of each lane
    /// (`mats[l]` to lane `l`) — the kernel batched data encoding needs,
    /// since every data point rotates by its own angles. Per lane this is
    /// the same pair expression as [`StateVector::apply_unary`], so lanes
    /// stay bit-for-bit equal to standalone encodes.
    pub fn apply_unary_per_lane(&mut self, q: usize, mats: &[Mat2]) {
        assert!(q < self.n);
        assert_eq!(mats.len(), self.batch, "one matrix per lane");
        let w = self.batch;
        let half = 1usize << q;
        let block = half << 1;
        let work = |lo: &mut [C64], hi: &mut [C64]| {
            for i in 0..half {
                let lo_row = &mut lo[i * w..(i + 1) * w];
                let hi_start = i * w;
                for l in 0..w {
                    let [[a, b], [c, d]] = mats[l];
                    let lo_amp = &mut lo_row[l];
                    let hi_amp = &mut hi[hi_start + l];
                    let (x, y) = (*lo_amp, *hi_amp);
                    *lo_amp = a * x + b * y;
                    *hi_amp = c * x + d * y;
                }
            }
        };
        if self.amps.len() < PARALLEL_THRESHOLD
            || self.amps.len() / (block * w) < 2 * rayon::current_num_threads()
        {
            for chunk in self.amps.chunks_mut(block * w) {
                let (lo, hi) = chunk.split_at_mut(half * w);
                work(lo, hi);
            }
        } else {
            self.amps.par_chunks_mut(block * w).for_each(|chunk| {
                let (lo, hi) = chunk.split_at_mut(half * w);
                work(lo, hi);
            });
        }
    }

    /// Batched dense 2×2 kernel: same shape as [`StateVector`]'s, with the
    /// lane sweep as the innermost contiguous loop.
    fn apply_single(&mut self, q: usize, m: [[C64; 2]; 2]) {
        assert!(q < self.n);
        let w = self.batch;
        let half = 1usize << q;
        let block = half << 1;
        let len = self.amps.len();
        let [[a, b], [c, d]] = m;
        let pair = move |lo: &mut C64, hi: &mut C64| {
            let (x, y) = (*lo, *hi);
            *lo = a * x + b * y;
            *hi = c * x + d * y;
        };
        let rows = move |lo: &mut [C64], hi: &mut [C64]| {
            for (l, h) in lo.iter_mut().zip(hi.iter_mut()) {
                pair(l, h);
            }
        };
        if len < PARALLEL_THRESHOLD {
            for chunk in self.amps.chunks_mut(block * w) {
                let (lo, hi) = chunk.split_at_mut(half * w);
                rows(lo, hi);
            }
        } else if len / (block * w) >= 2 * rayon::current_num_threads() {
            // Many blocks: parallelise across blocks.
            self.amps.par_chunks_mut(block * w).for_each(|chunk| {
                let (lo, hi) = chunk.split_at_mut(half * w);
                rows(lo, hi);
            });
        } else {
            // Few long blocks (high q): parallelise across rows inside
            // each block — row slices are disjoint, so writes never race.
            for chunk in self.amps.chunks_mut(block * w) {
                let (lo, hi) = chunk.split_at_mut(half * w);
                lo.par_chunks_mut(w)
                    .zip(hi.par_chunks_mut(w))
                    .for_each(|(l, h)| rows(l, h));
            }
        }
    }

    /// Batched diagonal 2×2 kernel.
    fn apply_diagonal(&mut self, q: usize, d0: C64, d1: C64) {
        assert!(q < self.n);
        let w = self.batch;
        let bit = 1usize << q;
        let row = move |i: usize, amps: &mut [C64]| {
            for amp in amps {
                *amp *= if i & bit == 0 { d0 } else { d1 };
            }
        };
        if self.amps.len() < PARALLEL_THRESHOLD {
            for (i, amps) in self.amps.chunks_mut(w).enumerate() {
                row(i, amps);
            }
        } else {
            self.amps
                .par_chunks_mut(w)
                .enumerate()
                .for_each(|(i, amps)| row(i, amps));
        }
    }

    /// Batched dense 4×4 kernel on qubit pair `low < high`; per lane the
    /// quad mix is the same left-associated 4-term sums as
    /// [`StateVector`]'s `apply_two`.
    fn apply_two(&mut self, low: usize, high: usize, m: &Mat4) {
        assert!(low < high && high < self.n);
        let w = self.batch;
        let ma = 1usize << low;
        let mb = 1usize << high;
        let block = mb << 1;
        let len = self.amps.len();
        let mm = *m;
        // `lo`/`hi` are paired half-slices measured in rows of `w` lanes;
        // alignment to 2^{low+1} rows keeps quads inside one slice.
        let quads = move |lo: &mut [C64], hi: &mut [C64]| {
            let count = (lo.len() / w) >> 1;
            for k in 0..count {
                let j = ((k >> low) << (low + 1)) | (k & (ma - 1));
                let r0 = j * w;
                let r1 = (j + ma) * w;
                for l in 0..w {
                    let v0 = lo[r0 + l];
                    let v1 = lo[r1 + l];
                    let v2 = hi[r0 + l];
                    let v3 = hi[r1 + l];
                    lo[r0 + l] = mm[0][0] * v0 + mm[0][1] * v1 + mm[0][2] * v2 + mm[0][3] * v3;
                    lo[r1 + l] = mm[1][0] * v0 + mm[1][1] * v1 + mm[1][2] * v2 + mm[1][3] * v3;
                    hi[r0 + l] = mm[2][0] * v0 + mm[2][1] * v1 + mm[2][2] * v2 + mm[2][3] * v3;
                    hi[r1 + l] = mm[3][0] * v0 + mm[3][1] * v1 + mm[3][2] * v2 + mm[3][3] * v3;
                }
            }
        };
        if len < PARALLEL_THRESHOLD {
            for chunk in self.amps.chunks_mut(block * w) {
                let (lo, hi) = chunk.split_at_mut(mb * w);
                quads(lo, hi);
            }
        } else if len / (block * w) >= 2 * rayon::current_num_threads() {
            self.amps.par_chunks_mut(block * w).for_each(|chunk| {
                let (lo, hi) = chunk.split_at_mut(mb * w);
                quads(lo, hi);
            });
        } else {
            // Few long blocks: split the halves into aligned sub-slices
            // of `sub` rows (power of two ≥ 2^{low+1}) and zip them.
            let threads = rayon::current_num_threads().max(1);
            let sub = (mb / (4 * threads)).next_power_of_two().clamp(ma << 1, mb);
            for chunk in self.amps.chunks_mut(block * w) {
                let (lo, hi) = chunk.split_at_mut(mb * w);
                lo.par_chunks_mut(sub * w)
                    .zip(hi.par_chunks_mut(sub * w))
                    .for_each(|(l, h)| quads(l, h));
            }
        }
    }

    /// Batched diagonal 4×4 kernel.
    fn apply_two_diagonal(&mut self, low: usize, high: usize, d: [C64; 4]) {
        assert!(low < high && high < self.n);
        let w = self.batch;
        let row = move |i: usize, amps: &mut [C64]| {
            let l = ((i >> low) & 1) | (((i >> high) & 1) << 1);
            for amp in amps {
                *amp *= d[l];
            }
        };
        if self.amps.len() < PARALLEL_THRESHOLD {
            for (i, amps) in self.amps.chunks_mut(w).enumerate() {
                row(i, amps);
            }
        } else {
            self.amps
                .par_chunks_mut(w)
                .enumerate()
                .for_each(|(i, amps)| row(i, amps));
        }
    }

    /// Batched CNOT kernel: whole-row swaps (exact value moves, so lanes
    /// stay bit-identical to the standalone kernel).
    fn apply_cnot(&mut self, control: usize, target: usize) {
        assert!(control < self.n && target < self.n && control != target);
        let w = self.batch;
        let cbit = 1usize << control;
        let half = 1usize << target;
        let block = half << 1;
        let work = |base: usize, chunk: &mut [C64]| {
            let (lo, hi) = chunk.split_at_mut(half * w);
            for i in 0..half {
                if (base + i) & cbit != 0 {
                    lo[i * w..(i + 1) * w].swap_with_slice(&mut hi[i * w..(i + 1) * w]);
                }
            }
        };
        if self.amps.len() < PARALLEL_THRESHOLD {
            for (bi, chunk) in self.amps.chunks_mut(block * w).enumerate() {
                work(bi * block, chunk);
            }
        } else {
            self.amps
                .par_chunks_mut(block * w)
                .enumerate()
                .for_each(|(bi, chunk)| work(bi * block, chunk));
        }
    }

    /// Batched CZ kernel.
    fn apply_cz(&mut self, a: usize, b: usize) {
        assert!(a < self.n && b < self.n && a != b);
        let w = self.batch;
        let mask = (1usize << a) | (1usize << b);
        let row = move |i: usize, amps: &mut [C64]| {
            if i & mask == mask {
                for amp in amps {
                    *amp = -*amp;
                }
            }
        };
        if self.amps.len() < PARALLEL_THRESHOLD {
            for (i, amps) in self.amps.chunks_mut(w).enumerate() {
                row(i, amps);
            }
        } else {
            self.amps
                .par_chunks_mut(w)
                .enumerate()
                .for_each(|(i, amps)| row(i, amps));
        }
    }

    /// Batched SWAP kernel, mirroring [`StateVector`]'s block walk.
    fn apply_swap(&mut self, a: usize, b: usize) {
        assert!(a < self.n && b < self.n && a != b);
        let w = self.batch;
        let (lo_q, hi_q) = if a < b { (a, b) } else { (b, a) };
        let lo_bit = 1usize << lo_q;
        let half = 1usize << hi_q;
        let block = half << 1;
        let work = |base: usize, chunk: &mut [C64]| {
            let (lo_half, hi_half) = chunk.split_at_mut(half * w);
            for i in 0..half {
                if (base + i) & lo_bit != 0 {
                    let j = i ^ lo_bit;
                    lo_half[i * w..(i + 1) * w].swap_with_slice(&mut hi_half[j * w..(j + 1) * w]);
                }
            }
        };
        if self.amps.len() < PARALLEL_THRESHOLD {
            for (bi, chunk) in self.amps.chunks_mut(block * w).enumerate() {
                work(bi * block, chunk);
            }
        } else {
            self.amps
                .par_chunks_mut(block * w)
                .enumerate()
                .for_each(|(bi, chunk)| work(bi * block, chunk));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pauli::Pauli;

    const EPS: f64 = 1e-12;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn zero_state_probabilities() {
        let s = StateVector::zero_state(3);
        assert!(approx(s.probability(0), 1.0));
        assert!(approx(s.norm_sqr(), 1.0));
        assert_eq!(s.amplitudes().len(), 8);
    }

    #[test]
    fn hadamard_creates_uniform_superposition() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::H(1));
        let s = StateVector::from_circuit(&c);
        for b in 0..4 {
            assert!(approx(s.probability(b), 0.25), "b={b}");
        }
    }

    #[test]
    fn x_flips_basis_state() {
        let mut c = Circuit::new(2);
        c.push(Gate::X(1));
        let s = StateVector::from_circuit(&c);
        assert!(approx(s.probability(0b10), 1.0));
    }

    #[test]
    fn bell_state() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        let s = StateVector::from_circuit(&c);
        assert!(approx(s.probability(0b00), 0.5));
        assert!(approx(s.probability(0b11), 0.5));
        assert!(s.probability(0b01) < EPS && s.probability(0b10) < EPS);
        // ZZ expectation of a Bell state is +1, XX is +1, single Z is 0.
        assert!(approx(
            s.expectation(&PauliString::parse("ZZ").unwrap()),
            1.0
        ));
        assert!(approx(
            s.expectation(&PauliString::parse("XX").unwrap()),
            1.0
        ));
        assert!(approx(
            s.expectation(&PauliString::parse("ZI").unwrap()),
            0.0
        ));
        // YY of Φ+ is −1.
        assert!(approx(
            s.expectation(&PauliString::parse("YY").unwrap()),
            -1.0
        ));
    }

    #[test]
    fn rotation_expectations_analytic() {
        // Ry(θ)|0⟩: ⟨Z⟩ = cos θ, ⟨X⟩ = sin θ.
        for &th in &[0.0, 0.3, 1.2, -2.5, std::f64::consts::PI] {
            let mut c = Circuit::new(1);
            c.push(Gate::Ry(0, th));
            let s = StateVector::from_circuit(&c);
            assert!(
                approx(
                    s.expectation(&PauliString::single(1, 0, Pauli::Z)),
                    th.cos()
                ),
                "Z at θ={th}"
            );
            assert!(
                approx(
                    s.expectation(&PauliString::single(1, 0, Pauli::X)),
                    th.sin()
                ),
                "X at θ={th}"
            );
        }
        // Rx(θ)|0⟩: ⟨Z⟩ = cos θ, ⟨Y⟩ = −sin θ.
        for &th in &[0.4, -0.9] {
            let mut c = Circuit::new(1);
            c.push(Gate::Rx(0, th));
            let s = StateVector::from_circuit(&c);
            assert!(approx(
                s.expectation(&PauliString::single(1, 0, Pauli::Z)),
                th.cos()
            ));
            assert!(approx(
                s.expectation(&PauliString::single(1, 0, Pauli::Y)),
                -th.sin()
            ));
        }
    }

    #[test]
    fn cz_and_swap() {
        // CZ on |11⟩ flips sign.
        let mut c = Circuit::new(2);
        c.push(Gate::X(0));
        c.push(Gate::X(1));
        c.push(Gate::Cz(0, 1));
        let s = StateVector::from_circuit(&c);
        assert!((s.amplitudes()[3] + C64::new(1.0, 0.0)).norm() < 1e-10);
        // SWAP moves |01⟩ to |10⟩.
        let mut c = Circuit::new(2);
        c.push(Gate::X(0));
        c.push(Gate::Swap(0, 1));
        let s = StateVector::from_circuit(&c);
        assert!(approx(s.probability(0b10), 1.0));
    }

    #[test]
    fn swap_matches_three_cnots() {
        let mut prep = Circuit::new(3);
        prep.push(Gate::H(0));
        prep.push(Gate::Ry(1, 0.7));
        prep.push(Gate::Cnot {
            control: 0,
            target: 2,
        });

        let mut direct = prep.clone();
        direct.push(Gate::Swap(0, 2));
        let mut viacnot = prep.clone();
        for g in [
            Gate::Cnot {
                control: 0,
                target: 2,
            },
            Gate::Cnot {
                control: 2,
                target: 0,
            },
            Gate::Cnot {
                control: 0,
                target: 2,
            },
        ] {
            viacnot.push(g);
        }
        let a = StateVector::from_circuit(&direct);
        let b = StateVector::from_circuit(&viacnot);
        assert!(approx(a.fidelity(&b), 1.0));
    }

    #[test]
    fn unitarity_preserves_norm() {
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.push(Gate::H(q));
            c.push(Gate::Rz(q, 0.3 * (q as f64 + 1.0)));
            c.push(Gate::Rx(q, -0.8 + 0.2 * q as f64));
        }
        for q in 0..3 {
            c.push(Gate::Cnot {
                control: q,
                target: q + 1,
            });
        }
        let s = StateVector::from_circuit(&c);
        assert!(approx(s.norm_sqr(), 1.0));
    }

    #[test]
    fn dagger_inverts_circuit() {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0));
        c.push(Gate::Ry(1, 0.9));
        c.push(Gate::Cnot {
            control: 0,
            target: 2,
        });
        c.push(Gate::S(2));
        let mut full = c.clone();
        full.extend(&c.dagger());
        let s = StateVector::from_circuit(&full);
        assert!(approx(s.probability(0), 1.0));
    }

    #[test]
    fn expectation_identity_is_one() {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0));
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        let s = StateVector::from_circuit(&c);
        assert!(approx(s.expectation(&PauliString::identity(3)), 1.0));
    }

    #[test]
    fn expectation_sum_linear() {
        let mut c = Circuit::new(2);
        c.push(Gate::Ry(0, 0.6));
        let s = StateVector::from_circuit(&c);
        let z0 = PauliString::single(2, 0, Pauli::Z);
        let x0 = PauliString::single(2, 0, Pauli::X);
        let sum = PauliSum::from_terms(vec![(2.0, z0), (-1.0, x0)]);
        let want = 2.0 * s.expectation(&z0) - s.expectation(&x0);
        assert!(approx(s.expectation_sum(&sum), want));
    }

    #[test]
    fn parallel_kernels_match_serial_on_large_state() {
        // 17 qubits crosses PARALLEL_THRESHOLD (2^16 amplitudes); apply a
        // layered circuit on a large register and verify norm, then undo it
        // and verify return to |0⟩.
        let n = 17;
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.push(Gate::H(q));
        }
        c.push(Gate::Ry(7, 1.1));
        for q in 0..n - 1 {
            c.push(Gate::Cnot {
                control: q,
                target: q + 1,
            });
        }
        c.push(Gate::Cz(0, n - 1));
        c.push(Gate::Swap(2, n - 2));
        let s = StateVector::from_circuit(&c);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
        // Undo everything: fidelity with |0⟩ must return to 1.
        let mut full = c.clone();
        full.extend(&c.dagger());
        let s2 = StateVector::from_circuit(&full);
        assert!((s2.probability(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn expectation_many_matches_per_term() {
        // Entangled 5-qubit state; a family mixing diagonal (I/Z-only),
        // X-type, and Y-bearing strings.
        let mut c = Circuit::new(5);
        for q in 0..5 {
            c.push(Gate::H(q));
            c.push(Gate::Rz(q, 0.31 * (q as f64 + 1.0)));
            c.push(Gate::Ry(q, -0.47 + 0.2 * q as f64));
        }
        for q in 0..4 {
            c.push(Gate::Cnot {
                control: q,
                target: q + 1,
            });
        }
        let s = StateVector::from_circuit(&c);
        let fam: Vec<PauliString> = [
            "IIIII", "ZIIII", "IIZIZ", "ZZZZZ", "XIIII", "IXXII", "YIIII", "IYZIX", "YYIIZ",
            "XYZXY",
        ]
        .iter()
        .map(|t| PauliString::parse(t).unwrap())
        .collect();
        let fused = s.expectation_many(&fam);
        assert_eq!(fused.len(), fam.len());
        for (p, &v) in fam.iter().zip(fused.iter()) {
            assert!(
                (v - s.expectation(p)).abs() < 1e-12,
                "{p}: fused {v} vs per-term {}",
                s.expectation(p)
            );
        }
    }

    #[test]
    fn expectation_many_above_parallel_threshold() {
        // 17 qubits exercises the chunked parallel path of the fused kernel.
        let n = 17;
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.push(Gate::Ry(q, 0.1 + 0.05 * q as f64));
        }
        for q in 0..n - 1 {
            c.push(Gate::Cnot {
                control: q,
                target: q + 1,
            });
        }
        let s = StateVector::from_circuit(&c);
        let fam = vec![
            PauliString::single(n, 0, Pauli::Z),
            PauliString::single(n, n - 1, Pauli::X),
            PauliString::single(n, 7, Pauli::Y),
            PauliString::identity(n),
        ];
        let fused = s.expectation_many(&fam);
        for (p, &v) in fam.iter().zip(fused.iter()) {
            assert!((v - s.expectation(p)).abs() < 1e-10, "{p}");
        }
    }

    #[test]
    fn expectation_many_empty_is_empty() {
        let s = StateVector::zero_state(2);
        assert!(s.expectation_many(&[]).is_empty());
    }

    #[test]
    fn apply_circuit_skips_identity_gates() {
        // A circuit containing exact-zero rotations must act exactly like
        // its elided counterpart.
        let mut c = Circuit::new(3);
        c.push(Gate::H(0));
        c.push(Gate::Rx(1, 0.0));
        c.push(Gate::Ry(2, 0.8));
        c.push(Gate::Rz(0, 0.0));
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        let full = StateVector::from_circuit(&c);
        let elided = StateVector::from_circuit(&c.elide_identities(1e-12));
        for (a, b) in full.amplitudes().iter().zip(elided.amplitudes()) {
            assert!((a - b).norm() < 1e-15);
        }
    }

    #[test]
    fn from_amplitudes_validates() {
        let amps = vec![
            C64::new(std::f64::consts::FRAC_1_SQRT_2, 0.0),
            C64::new(0.0, std::f64::consts::FRAC_1_SQRT_2),
        ];
        let s = StateVector::from_amplitudes(amps);
        assert_eq!(s.num_qubits(), 1);
    }

    #[test]
    #[should_panic]
    fn from_amplitudes_rejects_unnormalised() {
        let _ = StateVector::from_amplitudes(vec![C64::new(1.0, 0.0), C64::new(1.0, 0.0)]);
    }

    #[test]
    fn inner_product_orthogonal_states() {
        let zero = StateVector::zero_state(2);
        let mut c = Circuit::new(2);
        c.push(Gate::X(0));
        let one = StateVector::from_circuit(&c);
        assert!(zero.inner(&one).norm() < EPS);
        assert!(approx(zero.fidelity(&zero), 1.0));
    }

    /// A circuit exercising every gate kind the kernels dispatch on:
    /// dense/diagonal 1q runs, CNOT both ways, CZ, SWAP, interleaving.
    fn kitchen_sink_circuit(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.push(Gate::H(q));
            c.push(Gate::Rz(q, 0.21 * (q as f64 + 1.0)));
            c.push(Gate::Ry(q, -0.45 + 0.17 * q as f64));
        }
        for q in 0..n - 1 {
            c.push(Gate::Cnot {
                control: q,
                target: q + 1,
            });
        }
        c.push(Gate::Cnot {
            control: n - 1,
            target: 0,
        });
        c.push(Gate::Cz(0, n - 1));
        c.push(Gate::Swap(1, n - 1));
        c.push(Gate::S(0));
        c.push(Gate::T(1));
        c.push(Gate::Rx(2 % n, 0.83));
        c.push(Gate::Phase(0, 0.37));
        c
    }

    #[test]
    fn apply_compiled_matches_apply_circuit() {
        let c = kitchen_sink_circuit(5);
        let direct = StateVector::from_circuit(&c);
        let compiled = StateVector::from_compiled(&crate::compile::compile(&c));
        for (a, b) in direct.amplitudes().iter().zip(compiled.amplitudes()) {
            assert!((a - b).norm() < 1e-12);
        }
    }

    #[test]
    fn apply_two_matches_gate_sequence_on_every_pair() {
        // Force dense 4×4 ops by fusing CNOT·CZ on each pair and compare
        // against the unfused sequence, for every (low, high) placement.
        let n = 4;
        for low in 0..n {
            for high in (low + 1)..n {
                let mut c = Circuit::new(n);
                for q in 0..n {
                    c.push(Gate::Ry(q, 0.3 + 0.2 * q as f64));
                }
                c.push(Gate::Cnot {
                    control: low,
                    target: high,
                });
                c.push(Gate::Cz(low, high));
                let direct = StateVector::from_circuit(&c);
                let cc = crate::compile::compile(&c);
                assert!(
                    cc.ops().iter().any(|op| matches!(
                        op,
                        FusedOp::Binary {
                            diagonal: false,
                            ..
                        }
                    )),
                    "({low},{high}): expected a dense fused pair op"
                );
                let compiled = StateVector::from_compiled(&cc);
                for (a, b) in direct.amplitudes().iter().zip(compiled.amplitudes()) {
                    assert!((a - b).norm() < 1e-12, "pair ({low},{high})");
                }
            }
        }
    }

    #[test]
    fn apply_two_parallel_paths_bit_identical() {
        // 17 qubits crosses PARALLEL_THRESHOLD. Pairs (0,1) take the
        // many-blocks branch; (15,16) takes the inner-split branch.
        let n = 17;
        for &(low, high) in &[(0usize, 1usize), (0, 16), (15, 16)] {
            let mut c = Circuit::new(n);
            for q in 0..n {
                c.push(Gate::H(q));
            }
            c.push(Gate::Cnot {
                control: low,
                target: high,
            });
            c.push(Gate::Cz(low, high));
            let cc = crate::compile::compile(&c);
            let s1 = rayon::with_num_threads(1, || StateVector::from_compiled(&cc));
            let s4 = rayon::with_num_threads(4, || StateVector::from_compiled(&cc));
            for (a, b) in s1.amplitudes().iter().zip(s4.amplitudes()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "pair ({low},{high})");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "pair ({low},{high})");
            }
            let direct = StateVector::from_circuit(&c);
            for (a, b) in direct.amplitudes().iter().zip(s1.amplitudes()) {
                assert!((a - b).norm() < 1e-12, "pair ({low},{high})");
            }
        }
    }

    #[test]
    fn batched_lanes_bit_identical_to_standalone() {
        // Apply the kitchen-sink circuit (covering every kernel kind) to a
        // 3-lane batch and to three standalone states; lanes must agree
        // bit-for-bit, both via apply_circuit and via apply_compiled.
        let n = 5;
        let c = kitchen_sink_circuit(n);
        let cc = crate::compile::compile(&c);
        let mut batch = BatchedStateVector::zero_states(n, 3);
        batch.apply_circuit(&c);
        let solo = StateVector::from_circuit(&c);
        for l in 0..3 {
            let lane = batch.lane(l);
            for (a, b) in lane.amplitudes().iter().zip(solo.amplitudes()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "lane {l}");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "lane {l}");
            }
        }
        let mut batch_cc = BatchedStateVector::zero_states(n, 3);
        batch_cc.apply_compiled(&cc);
        let solo_cc = StateVector::from_compiled(&cc);
        for l in 0..3 {
            let lane = batch_cc.lane(l);
            for (a, b) in lane.amplitudes().iter().zip(solo_cc.amplitudes()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "lane {l}");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "lane {l}");
            }
        }
    }

    #[test]
    fn batched_per_lane_unary_matches_standalone() {
        // Each lane gets its own rotation angles; lanes must equal the
        // standalone states built with the same per-qubit matrices.
        let n = 3;
        let batch = 4;
        let angles: Vec<f64> = (0..batch).map(|l| 0.1 + 0.7 * l as f64).collect();
        let mut b = BatchedStateVector::zero_states(n, batch);
        for q in 0..n {
            let mats: Vec<Mat2> = angles
                .iter()
                .map(|&th| {
                    Gate::Ry(q, th + q as f64 * 0.05)
                        .matrix1()
                        .expect("1q gate")
                })
                .collect();
            b.apply_unary_per_lane(q, &mats);
        }
        for (l, &th) in angles.iter().enumerate() {
            let mut s = StateVector::zero_state(n);
            for q in 0..n {
                let m = Gate::Ry(q, th + q as f64 * 0.05).matrix1().unwrap();
                s.apply_unary(q, &m);
            }
            let lane = b.lane(l);
            for (a, x) in lane.amplitudes().iter().zip(s.amplitudes()) {
                assert_eq!(a.re.to_bits(), x.re.to_bits(), "lane {l}");
                assert_eq!(a.im.to_bits(), x.im.to_bits(), "lane {l}");
            }
        }
    }

    #[test]
    fn batched_parallel_paths_bit_identical_across_thread_counts() {
        // 13 qubits × 16 lanes = 2^17 amplitudes — well past the parallel
        // threshold; every kernel branch must agree across thread counts.
        let n = 13;
        let c = kitchen_sink_circuit(n);
        let cc = crate::compile::compile(&c);
        let b1 = rayon::with_num_threads(1, || {
            let mut b = BatchedStateVector::zero_states(n, 16);
            b.apply_compiled(&cc);
            b
        });
        let b4 = rayon::with_num_threads(4, || {
            let mut b = BatchedStateVector::zero_states(n, 16);
            b.apply_compiled(&cc);
            b
        });
        for l in (0..16).step_by(5) {
            let x = b1.lane(l);
            let y = b4.lane(l);
            for (a, b) in x.amplitudes().iter().zip(y.amplitudes()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
        // And lanes still equal the standalone compiled state.
        let solo = StateVector::from_compiled(&cc);
        let lane = b1.lane(7);
        for (a, b) in lane.amplitudes().iter().zip(solo.amplitudes()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn batched_single_lane_matches_standalone() {
        let c = kitchen_sink_circuit(4);
        let mut b = BatchedStateVector::zero_states(4, 1);
        b.apply_circuit(&c);
        let s = StateVector::from_circuit(&c);
        let lane = b.lane(0);
        for (a, x) in lane.amplitudes().iter().zip(s.amplitudes()) {
            assert_eq!(a.re.to_bits(), x.re.to_bits());
            assert_eq!(a.im.to_bits(), x.im.to_bits());
        }
    }
}

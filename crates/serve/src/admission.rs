//! Admission control: bounded queueing with hysteretic load shedding.
//!
//! An online service protects its latency by refusing work it cannot
//! serve in time, and it must refuse *cheaply* — at the queue door,
//! before any quantum simulation is spent. Two mechanisms layer here:
//!
//! * a **hard bound** (`queue_capacity`): the queue never exceeds it,
//!   full stop — the memory-safety backstop ([`Rejected::QueueFull`]);
//! * a **high-water mark** with hysteresis: crossing `high_water` trips
//!   shedding mode ([`Rejected::Overloaded`]), which holds until depth
//!   drains below `low_water`. The gap keeps the controller from
//!   flapping at the threshold — a burst is shed as a burst, then
//!   admission reopens with real headroom.
//!
//! Deadlines are the third, later line of defence: an admitted request
//! whose budget expires while queued is dropped at dispatch
//! ([`Rejected::DeadlineExceeded`]) rather than served uselessly late.

use std::error::Error;
use std::fmt;

/// Why the server refused a request. Every variant is a *normal*
/// operating condition the client is expected to handle (back off,
/// retry, or fail over) — none indicates a server fault.
#[derive(Clone, Debug, PartialEq)]
pub enum Rejected {
    /// The queue is at its hard capacity bound.
    QueueFull {
        /// Queue depth observed at rejection.
        depth: usize,
    },
    /// The shedding controller is active (depth crossed the high-water
    /// mark and has not yet drained below the low-water mark).
    Overloaded {
        /// Queue depth observed at rejection.
        depth: usize,
        /// The high-water mark that tripped shedding.
        high_water: usize,
    },
    /// The request's deadline budget expired before dispatch.
    DeadlineExceeded {
        /// The simulated-time deadline the request carried (ns).
        deadline_ns: u64,
        /// Simulated time at dispatch (ns).
        now_ns: u64,
    },
    /// No model is deployed.
    NoActiveModel,
    /// The input length is not a positive multiple of the serving
    /// model's qubit count (checked at submit against the active model
    /// and re-checked at dispatch, since a hot-swap can change it).
    InvalidInput {
        /// Offered input length.
        len: usize,
        /// Qubit count of the serving model's encoding.
        qubits: usize,
    },
    /// An input coordinate is non-finite (NaN/∞) or outside the
    /// servable magnitude range — such values would alias in the
    /// feature cache's saturating key quantization and poison entries
    /// for legitimate inputs.
    InvalidValue {
        /// Index of the offending coordinate.
        index: usize,
    },
    /// The quantum backend could not produce this request's feature row
    /// — every retry, failover, and hedge avenue in the pool was
    /// exhausted — and degraded-mode local fallback is disabled, so the
    /// request is shed rather than served from a partial batch. The
    /// bottom rung of the server's degradation ladder.
    BackendUnavailable {
        /// Jobs that terminally failed in the backend pool.
        failed_jobs: u64,
    },
    /// The server is shutting down and no longer admits requests (the
    /// queue drains; already-admitted requests are still answered).
    ShuttingDown,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull { depth } => write!(f, "queue full (depth {depth})"),
            Rejected::Overloaded { depth, high_water } => {
                write!(f, "shedding load (depth {depth} ≥ high water {high_water})")
            }
            Rejected::DeadlineExceeded {
                deadline_ns,
                now_ns,
            } => write!(
                f,
                "deadline exceeded ({deadline_ns} ns < dispatch at {now_ns} ns)"
            ),
            Rejected::NoActiveModel => write!(f, "no model deployed"),
            Rejected::InvalidInput { len, qubits } => write!(
                f,
                "input length {len} is not a positive multiple of {qubits} qubits"
            ),
            Rejected::InvalidValue { index } => {
                write!(f, "input coordinate {index} is non-finite or out of range")
            }
            Rejected::BackendUnavailable { failed_jobs } => {
                write!(
                    f,
                    "quantum backend unavailable ({failed_jobs} jobs failed, local fallback disabled)"
                )
            }
            Rejected::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl Error for Rejected {}

/// The queue-door controller. Lives inside the server's queue mutex, so
/// its decisions are serialized with enqueue/dequeue.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionController {
    capacity: usize,
    high_water: usize,
    low_water: usize,
    shedding: bool,
}

impl AdmissionController {
    /// A controller over a queue of `capacity`, shedding above
    /// `high_water` until depth drains to `low_water` (= half the
    /// high-water mark). `high_water ≥ capacity` disables soft shedding,
    /// leaving only the hard bound.
    pub fn new(capacity: usize, high_water: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        assert!(high_water > 0, "high-water mark must be positive");
        AdmissionController {
            capacity,
            high_water,
            low_water: high_water / 2,
            shedding: false,
        }
    }

    /// Decides admission for one request given the current queue depth.
    pub fn admit(&mut self, depth: usize) -> Result<(), Rejected> {
        if depth >= self.capacity {
            return Err(Rejected::QueueFull { depth });
        }
        if self.shedding {
            if depth > self.low_water {
                return Err(Rejected::Overloaded {
                    depth,
                    high_water: self.high_water,
                });
            }
            self.shedding = false;
        } else if depth >= self.high_water {
            self.shedding = true;
            return Err(Rejected::Overloaded {
                depth,
                high_water: self.high_water,
            });
        }
        Ok(())
    }

    /// Whether the controller is currently shedding.
    pub fn is_shedding(&self) -> bool {
        self.shedding
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_below_high_water() {
        let mut a = AdmissionController::new(16, 8);
        for depth in 0..8 {
            assert!(a.admit(depth).is_ok(), "depth {depth}");
        }
    }

    #[test]
    fn sheds_at_high_water_with_hysteresis() {
        let mut a = AdmissionController::new(16, 8);
        assert!(matches!(a.admit(8), Err(Rejected::Overloaded { .. })));
        assert!(a.is_shedding());
        // Still shedding just above low water (4).
        assert!(matches!(a.admit(5), Err(Rejected::Overloaded { .. })));
        // Draining to the low-water mark reopens admission.
        assert!(a.admit(4).is_ok());
        assert!(!a.is_shedding());
        assert!(a.admit(7).is_ok(), "headroom restored after drain");
    }

    #[test]
    fn hard_bound_applies_even_when_shedding_disabled() {
        // high_water ≥ capacity: only the hard bound remains.
        let mut a = AdmissionController::new(4, 4);
        assert!(a.admit(3).is_ok());
        assert_eq!(a.admit(4), Err(Rejected::QueueFull { depth: 4 }));
    }
}

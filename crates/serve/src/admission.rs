//! Admission control: bounded queueing with weighted-fair, hysteretic
//! brownout shedding across tenants.
//!
//! An online service protects its latency by refusing work it cannot
//! serve in time, and it must refuse *cheaply* — at the queue door,
//! before any quantum simulation is spent. It must also refuse
//! *fairly*: the serve layer multiplexes many tenants onto one quantum
//! backend, and a single flooding tenant must not be able to starve the
//! well-behaved ones. The controller therefore owns per-tenant queue
//! occupancy (callers never pass a depth reading in — see the TOCTOU
//! note on [`AdmissionController::admit`]) and layers four mechanisms:
//!
//! * a **hard bound** (`queue_capacity`): the total queue never exceeds
//!   it, full stop — the memory-safety backstop
//!   ([`Rejected::QueueFull`]);
//! * a **brownout ladder** over total depth with per-level hysteresis
//!   ([`BrownoutLevel`]): crossing the high-water mark trips
//!   [`BrownoutLevel::ShedOverShare`] — only tenants above their
//!   weighted fair share are shed ([`Rejected::TenantOverShare`]), so a
//!   flood is absorbed by rejecting the flooder, not the victims;
//! * if depth keeps climbing, [`BrownoutLevel::DeferSlack`]
//!   additionally defers traffic that carries no deadline
//!   ([`Rejected::Deferred`]) — latency-insensitive work can wait out
//!   the storm;
//! * only as a last resort, near the hard bound,
//!   [`BrownoutLevel::GlobalShed`] rejects everyone
//!   ([`Rejected::Overloaded`]) until the queue drains.
//!
//! Each rung releases with hysteresis (its release threshold sits below
//! its trip threshold), so a burst is shed as a burst and admission
//! reopens with real headroom instead of flapping at the boundary.
//! During a brownout a tenant's share is computed against the *drain
//! target* (the low-water mark), which is what makes the ladder
//! converge: admissions during shedding are bounded by the depth the
//! controller is trying to drain to.
//!
//! Deadlines are the last, later line of defence: an admitted request
//! whose budget expires while queued is dropped at dispatch
//! ([`Rejected::DeadlineExceeded`]) rather than served uselessly late.
//!
//! The ladder's threshold geometry and hysteretic state machine are
//! factored out as [`BrownoutLadder`] so the sharded [`crate::Router`]
//! can run the *same* ladder over an aggregated fleet-wide depth.
//!
//! ```
//! use serve::admission::{AdmissionController, Rejected, TenantId};
//!
//! // Queue of 16, brownout past depth 8 (drain target = 4).
//! let mut door = AdmissionController::new(16, 8);
//! let flooder = TenantId(1);
//! for _ in 0..8 {
//!     door.admit(flooder, true).unwrap();
//! }
//! // At the high-water mark the flooding tenant is over its fair
//! // share and is the one shed...
//! assert!(matches!(
//!     door.admit(flooder, true),
//!     Err(Rejected::TenantOverShare { .. })
//! ));
//! // ...while a well-behaved tenant is still admitted.
//! assert!(door.admit(TenantId(2), true).is_ok());
//! ```

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A client tenant of the serving endpoint. Tenants are the unit of
/// fairness: admission shares, queue scheduling weight, and the
/// per-tenant slice of [`crate::ServerStats`] are all keyed by this id.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The tenant that un-attributed traffic (plain
    /// [`crate::Server::submit`]) is accounted to.
    pub const DEFAULT: TenantId = TenantId(0);
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// Where the controller currently sits on the brownout ladder. Ordered:
/// higher levels shed strictly more traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum BrownoutLevel {
    /// Below the high-water mark: everyone is admitted.
    #[default]
    Normal,
    /// Total depth crossed the high-water mark: tenants above their
    /// weighted fair share are shed; everyone else is still admitted.
    ShedOverShare,
    /// Depth kept climbing: additionally, requests without a deadline
    /// are deferred — only deadline-bearing, under-share traffic gets in.
    DeferSlack,
    /// Near the hard bound: every request is shed until the queue
    /// drains. The last rung before `QueueFull`.
    GlobalShed,
}

impl fmt::Display for BrownoutLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrownoutLevel::Normal => write!(f, "normal"),
            BrownoutLevel::ShedOverShare => write!(f, "shed-over-share"),
            BrownoutLevel::DeferSlack => write!(f, "defer-slack"),
            BrownoutLevel::GlobalShed => write!(f, "global-shed"),
        }
    }
}

/// Why the server refused a request. Every variant is a *normal*
/// operating condition the client is expected to handle (back off,
/// retry, or fail over) — none indicates a server fault.
#[derive(Clone, Debug, PartialEq)]
pub enum Rejected {
    /// The queue is at its hard capacity bound.
    QueueFull {
        /// Total queue depth observed at rejection.
        depth: usize,
    },
    /// The brownout ladder reached [`BrownoutLevel::GlobalShed`]: the
    /// queue is nearly at its hard bound and *every* tenant is shed
    /// until it drains.
    Overloaded {
        /// Total queue depth observed at rejection.
        depth: usize,
        /// The high-water mark that started the brownout.
        high_water: usize,
    },
    /// A brownout is in progress and this tenant is queued above its
    /// weighted fair share — the first rung of the ladder: the flooding
    /// tenant is isolated while under-share tenants keep being served.
    TenantOverShare {
        /// The tenant that was shed.
        tenant: TenantId,
        /// The tenant's queued requests at rejection.
        depth: usize,
        /// The tenant's brownout fair share (its weighted slice of the
        /// drain target).
        share: usize,
    },
    /// A deep brownout is in progress ([`BrownoutLevel::DeferSlack`])
    /// and this request carries no deadline: latency-insensitive
    /// traffic is deferred so deadline-bearing requests can use the
    /// remaining headroom. Retry after the storm.
    Deferred {
        /// Total queue depth observed at rejection.
        depth: usize,
    },
    /// The request's deadline budget expired before dispatch.
    DeadlineExceeded {
        /// The simulated-time deadline the request carried (ns).
        deadline_ns: u64,
        /// Simulated time at dispatch (ns).
        now_ns: u64,
    },
    /// No model is deployed.
    NoActiveModel,
    /// The input length is not a positive multiple of the serving
    /// model's qubit count (checked at submit against the active model
    /// and re-checked at dispatch, since a hot-swap can change it).
    InvalidInput {
        /// Offered input length.
        len: usize,
        /// Qubit count of the serving model's encoding.
        qubits: usize,
    },
    /// An input coordinate is non-finite (NaN/∞) or outside the
    /// servable magnitude range — such values would alias in the
    /// feature cache's saturating key quantization and poison entries
    /// for legitimate inputs.
    InvalidValue {
        /// Index of the offending coordinate.
        index: usize,
    },
    /// The quantum backend could not produce this request's feature row
    /// — every retry, failover, and hedge avenue in the pool was
    /// exhausted — and degraded-mode local fallback is disabled, so the
    /// request is shed rather than served from a partial batch. The
    /// bottom rung of the server's degradation ladder.
    BackendUnavailable {
        /// Jobs that terminally failed in the backend pool.
        failed_jobs: u64,
    },
    /// The server is shutting down and no longer admits requests (the
    /// queue drains; already-admitted requests are still answered).
    ShuttingDown,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull { depth } => write!(f, "queue full (depth {depth})"),
            Rejected::Overloaded { depth, high_water } => {
                write!(
                    f,
                    "shedding all load (depth {depth}, brownout past high water {high_water})"
                )
            }
            Rejected::TenantOverShare {
                tenant,
                depth,
                share,
            } => write!(
                f,
                "{tenant} over fair share during brownout ({depth} queued ≥ share {share})"
            ),
            Rejected::Deferred { depth } => write!(
                f,
                "deadline-free request deferred during brownout (depth {depth})"
            ),
            Rejected::DeadlineExceeded {
                deadline_ns,
                now_ns,
            } => write!(
                f,
                "deadline exceeded ({deadline_ns} ns < dispatch at {now_ns} ns)"
            ),
            Rejected::NoActiveModel => write!(f, "no model deployed"),
            Rejected::InvalidInput { len, qubits } => write!(
                f,
                "input length {len} is not a positive multiple of {qubits} qubits"
            ),
            Rejected::InvalidValue { index } => {
                write!(f, "input coordinate {index} is non-finite or out of range")
            }
            Rejected::BackendUnavailable { failed_jobs } => {
                write!(
                    f,
                    "quantum backend unavailable ({failed_jobs} jobs failed, local fallback disabled)"
                )
            }
            Rejected::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl Error for Rejected {}

/// The brownout ladder's threshold geometry plus its hysteretic rung
/// state machine, factored out of [`AdmissionController`] so other
/// components can run the identical ladder over a depth they observe
/// rather than own — the sharded [`crate::Router`] walks one of these
/// over the *summed* queue depth of its whole shard fleet.
#[derive(Clone, Debug)]
pub struct BrownoutLadder {
    capacity: usize,
    high_water: usize,
    low_water: usize,
    defer_water: usize,
    shed_water: usize,
    level: BrownoutLevel,
}

impl BrownoutLadder {
    /// A ladder over a queue of `capacity`, tripping above `high_water`
    /// and holding until depth drains to the low-water mark (= half the
    /// high-water mark). The deeper rungs are derived from the
    /// remaining headroom: slack traffic is deferred halfway between
    /// the high-water mark and capacity, and the global shed trips just
    /// under the hard bound. `high_water ≥ capacity` disables the whole
    /// ladder, leaving only the hard bound.
    pub fn new(capacity: usize, high_water: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        assert!(high_water > 0, "high-water mark must be positive");
        // `high_water ≥ capacity` means "no brownout": every trip point
        // becomes unreachable and only the hard bound remains.
        let (trip_water, defer_water, shed_water) = if high_water >= capacity {
            (usize::MAX, usize::MAX, usize::MAX)
        } else {
            let span = capacity - high_water;
            (
                high_water,
                high_water + span / 2,
                capacity - (span / 8).max(1),
            )
        };
        BrownoutLadder {
            capacity,
            high_water: trip_water,
            low_water: high_water / 2,
            defer_water,
            shed_water,
            level: BrownoutLevel::Normal,
        }
    }

    /// Walks the ladder to where `depth` puts it: escalate through
    /// every trip point depth has reached, then de-escalate through
    /// every release point it has drained past. Each level's release
    /// sits below its trip, so the ladder cannot flap at a boundary.
    /// Returns the rung it settled on.
    pub fn observe(&mut self, depth: usize) -> BrownoutLevel {
        use BrownoutLevel::*;
        while let Some(next) = match self.level {
            Normal if depth >= self.high_water => Some(ShedOverShare),
            ShedOverShare if depth >= self.defer_water => Some(DeferSlack),
            DeferSlack if depth >= self.shed_water => Some(GlobalShed),
            _ => None,
        } {
            self.level = next;
        }
        while let Some(prev) = match self.level {
            GlobalShed if depth < self.defer_water => Some(DeferSlack),
            DeferSlack if depth < self.high_water => Some(ShedOverShare),
            ShedOverShare if depth <= self.low_water => Some(Normal),
            _ => None,
        } {
            self.level = prev;
        }
        self.level
    }

    /// The rung the ladder currently sits on.
    pub fn level(&self) -> BrownoutLevel {
        self.level
    }

    /// The hard queue bound the ladder was built over.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The first trip point (`usize::MAX` when the ladder is disabled).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// The drain target that releases the first rung; brownout fair
    /// shares are computed as weighted slices of this.
    pub fn low_water(&self) -> usize {
        self.low_water
    }
}

/// Per-tenant admission state: the configured weight and the tenant's
/// current queued-request count.
#[derive(Clone, Copy, Debug)]
struct TenantEntry {
    weight: u32,
    depth: usize,
}

/// The queue-door controller. Lives inside the server's queue mutex, so
/// its decisions are serialized with enqueue/dequeue — and it **owns**
/// the occupancy counters: callers admit and release through it rather
/// than passing a depth reading in, so a decision can never be made
/// against a stale depth observed outside the lock.
#[derive(Clone, Debug)]
pub struct AdmissionController {
    ladder: BrownoutLadder,
    depth: usize,
    tenants: BTreeMap<TenantId, TenantEntry>,
    weight_sum: u64,
}

impl AdmissionController {
    /// A controller over a queue of `capacity`, starting a brownout
    /// above `high_water` that holds until depth drains to `low_water`
    /// (= half the high-water mark). The deeper rungs are derived from
    /// the remaining headroom: slack traffic is deferred halfway between
    /// the high-water mark and capacity, and the global shed trips just
    /// under the hard bound. `high_water ≥ capacity` disables the whole
    /// ladder, leaving only the hard bound (see [`BrownoutLadder`]).
    pub fn new(capacity: usize, high_water: usize) -> Self {
        AdmissionController {
            ladder: BrownoutLadder::new(capacity, high_water),
            depth: 0,
            tenants: BTreeMap::new(),
            weight_sum: 0,
        }
    }

    /// Sets (or updates) a tenant's fairness weight. Unregistered
    /// tenants are auto-registered with weight 1 on their first
    /// admission attempt; weights only matter relative to each other.
    pub fn set_tenant_weight(&mut self, tenant: TenantId, weight: u32) {
        assert!(weight > 0, "tenant weight must be positive");
        let entry = self.tenants.entry(tenant).or_insert(TenantEntry {
            weight: 0,
            depth: 0,
        });
        self.weight_sum = self.weight_sum - u64::from(entry.weight) + u64::from(weight);
        entry.weight = weight;
    }

    /// A tenant's fairness weight (1 for tenants never explicitly
    /// registered).
    pub fn weight_of(&self, tenant: TenantId) -> u32 {
        self.tenants.get(&tenant).map_or(1, |e| e.weight)
    }

    /// A tenant's currently queued request count.
    pub fn depth_of(&self, tenant: TenantId) -> usize {
        self.tenants.get(&tenant).map_or(0, |e| e.depth)
    }

    /// Total queued requests across all tenants.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// A tenant's fair share during a brownout: its weighted slice of
    /// the *drain target* (the low-water mark), never below one slot.
    /// Computing shares against the drain target rather than the trip
    /// point is what makes shedding converge — admissions during a
    /// brownout are bounded by the depth the controller is draining to.
    pub fn brownout_share(&self, tenant: TenantId) -> usize {
        let w = u64::from(self.weight_of(tenant));
        let sum = self.weight_sum.max(w).max(1);
        ((self.ladder.low_water() as u64 * w) / sum).max(1) as usize
    }

    /// Settles the ladder on the rung the current depth puts it on.
    fn recompute_level(&mut self) {
        self.ladder.observe(self.depth);
    }

    /// Decides admission for one request from `tenant`; `has_deadline`
    /// says whether the request carries a deadline budget (slack traffic
    /// is deferred first in a deep brownout). On `Ok` the request is
    /// **counted as queued** — the caller must enqueue it and later
    /// [`Self::release`] it when it leaves the queue. Owning the
    /// occupancy here (rather than accepting a caller-observed depth)
    /// closes the TOCTOU window between the batcher thread draining the
    /// queue and submitters reading its depth.
    pub fn admit(&mut self, tenant: TenantId, has_deadline: bool) -> Result<(), Rejected> {
        if self.depth >= self.ladder.capacity() {
            return Err(Rejected::QueueFull { depth: self.depth });
        }
        self.recompute_level();
        if !self.tenants.contains_key(&tenant) {
            self.set_tenant_weight(tenant, 1);
        }
        let level = self.ladder.level();
        if level >= BrownoutLevel::ShedOverShare {
            if level == BrownoutLevel::GlobalShed {
                return Err(Rejected::Overloaded {
                    depth: self.depth,
                    high_water: self.ladder.high_water(),
                });
            }
            let share = self.brownout_share(tenant);
            let tenant_depth = self.depth_of(tenant);
            if tenant_depth >= share {
                return Err(Rejected::TenantOverShare {
                    tenant,
                    depth: tenant_depth,
                    share,
                });
            }
            if level == BrownoutLevel::DeferSlack && !has_deadline {
                return Err(Rejected::Deferred { depth: self.depth });
            }
        }
        self.tenants
            .get_mut(&tenant)
            .expect("tenant registered above")
            .depth += 1;
        self.depth += 1;
        self.recompute_level();
        Ok(())
    }

    /// Records that one of `tenant`'s queued requests left the queue
    /// (dispatched into a batch). Must pair 1:1 with successful
    /// [`Self::admit`] calls.
    pub fn release(&mut self, tenant: TenantId) {
        let entry = self
            .tenants
            .get_mut(&tenant)
            .expect("release without admit");
        debug_assert!(entry.depth > 0, "release without admit for {tenant}");
        entry.depth = entry.depth.saturating_sub(1);
        self.depth = self.depth.saturating_sub(1);
        self.recompute_level();
    }

    /// The ladder rung the controller currently sits on.
    pub fn level(&self) -> BrownoutLevel {
        self.ladder.level()
    }

    /// Whether any brownout rung is active.
    pub fn is_shedding(&self) -> bool {
        self.ladder.level() > BrownoutLevel::Normal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: TenantId = TenantId(0);
    const T1: TenantId = TenantId(1);

    #[test]
    fn admits_below_high_water() {
        let mut a = AdmissionController::new(16, 8);
        for depth in 0..8 {
            assert!(a.admit(T0, true).is_ok(), "depth {depth}");
        }
        assert_eq!(a.depth(), 8);
        assert_eq!(a.depth_of(T0), 8);
    }

    #[test]
    fn sheds_at_high_water_with_hysteresis() {
        let mut a = AdmissionController::new(16, 8);
        for _ in 0..8 {
            a.admit(T0, true).unwrap();
        }
        // Depth 8 = high water: the single tenant is over its brownout
        // share (low water = 4), so it is shed as the flooder.
        assert!(matches!(
            a.admit(T0, true),
            Err(Rejected::TenantOverShare { share: 4, .. })
        ));
        assert!(a.is_shedding());
        // Still shedding just above the low-water drain target.
        for _ in 0..3 {
            a.release(T0);
        }
        assert_eq!(a.depth(), 5);
        assert!(matches!(
            a.admit(T0, true),
            Err(Rejected::TenantOverShare { .. })
        ));
        // Draining to the low-water mark reopens admission.
        a.release(T0);
        assert!(a.admit(T0, true).is_ok());
        assert!(!a.is_shedding());
    }

    #[test]
    fn hard_bound_applies_even_when_shedding_disabled() {
        // high_water ≥ capacity: only the hard bound remains.
        let mut a = AdmissionController::new(4, 4);
        for _ in 0..4 {
            assert!(a.admit(T0, false).is_ok());
        }
        assert_eq!(a.admit(T0, false), Err(Rejected::QueueFull { depth: 4 }));
        assert!(!a.is_shedding(), "ladder disabled at high_water = capacity");
    }

    #[test]
    fn flooding_tenant_is_isolated_from_well_behaved_one() {
        // Capacity 32, high 16, low 8; two equal-weight tenants → share 4
        // each during brownout.
        let mut a = AdmissionController::new(32, 16);
        a.set_tenant_weight(T0, 1);
        a.set_tenant_weight(T1, 1);
        // T1 floods past the high-water mark on its own.
        for _ in 0..16 {
            a.admit(T1, true).unwrap();
        }
        assert!(matches!(
            a.admit(T1, true),
            Err(Rejected::TenantOverShare { tenant: T1, .. })
        ));
        // T0 is under its share and keeps being admitted.
        for k in 0..4 {
            assert!(a.admit(T0, true).is_ok(), "well-behaved admission {k}");
        }
        // ... until it reaches its own share.
        assert!(matches!(
            a.admit(T0, true),
            Err(Rejected::TenantOverShare { tenant: T0, .. })
        ));
    }

    #[test]
    fn ladder_escalates_and_releases_in_order() {
        // Capacity 64, high 16 → low 8, defer 16+24 = 40, shed 64-6 = 58.
        let mut a = AdmissionController::new(64, 16);
        // 24 tenants, weight 1 each: brownout share = max(1, 8/24) = 1.
        for t in 0..24u32 {
            a.set_tenant_weight(TenantId(t), 1);
        }
        let admit_round = |a: &mut AdmissionController, deadline: bool| {
            let mut admitted = 0;
            for t in 0..24u32 {
                if a.admit(TenantId(t), deadline).is_ok() {
                    admitted += 1;
                }
            }
            admitted
        };
        // Round 1: 24 admissions crosses high water (16) → ShedOverShare.
        assert_eq!(admit_round(&mut a, true), 24);
        assert_eq!(a.level(), BrownoutLevel::ShedOverShare);
        // Every tenant now sits at its share (1), so nothing more enters
        // until a rung is... released. Force depth up via fresh tenants.
        for t in 24..48u32 {
            a.admit(TenantId(t), true).unwrap();
        }
        assert_eq!(a.depth(), 48);
        assert_eq!(a.level(), BrownoutLevel::DeferSlack);
        // Deadline-free traffic from a fresh (under-share) tenant defers.
        assert!(matches!(
            a.admit(TenantId(90), false),
            Err(Rejected::Deferred { .. })
        ));
        // Deadline-bearing under-share traffic still gets in.
        for t in 48..58u32 {
            a.admit(TenantId(t), true).unwrap();
        }
        assert_eq!(a.depth(), 58);
        assert_eq!(a.level(), BrownoutLevel::GlobalShed);
        assert!(matches!(
            a.admit(TenantId(91), true),
            Err(Rejected::Overloaded { .. })
        ));
        // Drain: the ladder releases rung by rung, with hysteresis.
        while a.depth() >= 40 {
            a.release(TenantId((a.depth() - 1) as u32 % 58));
        }
        assert_eq!(a.level(), BrownoutLevel::DeferSlack, "released one rung");
        while a.depth() >= 16 {
            a.release(TenantId((a.depth() - 1) as u32 % 58));
        }
        assert_eq!(a.level(), BrownoutLevel::ShedOverShare);
        while a.depth() > 8 {
            a.release(TenantId((a.depth() - 1) as u32 % 58));
        }
        assert_eq!(a.level(), BrownoutLevel::Normal, "fully drained");
        assert!(a.admit(TenantId(92), false).is_ok());
    }

    #[test]
    fn weights_scale_brownout_shares() {
        // low water 16; weights 3:1 → shares 12 and 4.
        let mut a = AdmissionController::new(128, 32);
        a.set_tenant_weight(T0, 3);
        a.set_tenant_weight(T1, 1);
        assert_eq!(a.brownout_share(T0), 12);
        assert_eq!(a.brownout_share(T1), 4);
        // Unregistered tenants default to weight 1 of the current sum.
        assert_eq!(a.weight_of(TenantId(9)), 1);
    }
}

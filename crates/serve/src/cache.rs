//! LRU feature cache keyed on quantized inputs, segmented per generator.
//!
//! A feature row is a pure function of (feature generator, data point)
//! (rows are generated with
//! [`pvqnn::FeatureGenerator::generate_rows_standalone`] semantics, so
//! not even the stochastic backends depend on batch position), which
//! makes the quantum stage — by far the expensive part of serving — a
//! perfect caching target: one `S(x)|0⟩` simulation per *unique*
//! (generator, data point) pair, ever, until the entry ages out.
//!
//! Entries are **segmented by the generator fingerprint** that produced
//! them: lookups and inserts carry the fingerprint, and rows from
//! different generators coexist in one shared LRU arena. Deploying a new
//! model therefore never flushes the previous model's warm rows — a
//! rollback (or a canary serving two versions) returns to a warm cache,
//! and a hot-swap can never serve another generator's rows because keys
//! from different segments never collide. Capacity pressure is global:
//! the least-recently-used row of *any* segment is the eviction victim,
//! so dead segments age out naturally without explicit invalidation.
//!
//! Keys quantize each input coordinate to a fixed grid
//! (`round(x · quant_scale)`), so float jitter below half a grid step
//! maps to the same entry. The grid step is therefore a *serving
//! resolution* knob: requests closer than `0.5 / quant_scale` per
//! coordinate are deliberately served the same features. The default
//! scale (1e8) is far below any physically meaningful angle difference.
//!
//! The LRU list is intrusive (index links into a slot arena), so `get`
//! and `insert` are O(1) plus hashing, with no per-operation allocation
//! beyond the key.

use std::collections::HashMap;

/// Sentinel for "no neighbour" in the intrusive list.
const NIL: usize = usize::MAX;

/// Quantizes a raw input onto the cache-key grid: each coordinate maps
/// to `round(v · quant_scale) as i64`. This is the *canonical* identity
/// of a data point throughout the serve layer — the cache keys on it,
/// and the sharded [`crate::Router`] consistent-hashes it, so the rows
/// for one point always live on exactly one shard.
pub fn quantize_key(x: &[f64], quant_scale: f64) -> Vec<i64> {
    x.iter()
        .map(|&v| (v * quant_scale).round() as i64)
        .collect()
}

/// A cache slot: segment tag + key + feature row + recency links.
#[derive(Debug)]
struct Slot {
    tag: u64,
    key: Vec<i64>,
    row: Vec<f64>,
    prev: usize,
    next: usize,
}

/// Hit/miss/eviction counters, snapshot via [`FeatureCache::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required a fresh simulation.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Current entry count (all segments).
    pub len: usize,
}

impl CacheStats {
    /// Hits over lookups (0 when the cache was never consulted).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// An LRU map from (generator fingerprint, quantized input) to feature
/// rows. All segments share one slot arena and one global recency list.
#[derive(Debug)]
pub struct FeatureCache {
    capacity: usize,
    quant_scale: f64,
    /// Segment tag → (quantized key → slot index). The nested map keeps
    /// lookups allocation-free: the borrowed key probes only its own
    /// segment.
    map: HashMap<u64, HashMap<Vec<i64>, usize>>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Most recently used slot (NIL when empty).
    head: usize,
    /// Least recently used slot (NIL when empty) — the eviction victim.
    tail: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl FeatureCache {
    /// A cache holding at most `capacity` rows across all segments (0
    /// disables caching: every lookup misses and inserts are dropped),
    /// quantizing inputs at `quant_scale` buckets per unit.
    pub fn new(capacity: usize, quant_scale: f64) -> Self {
        assert!(quant_scale > 0.0, "quantization scale must be positive");
        FeatureCache {
            capacity,
            quant_scale,
            map: HashMap::new(),
            slots: Vec::with_capacity(capacity.min(1024)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Drops every entry of every segment, keeping capacity,
    /// quantization, and counters.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Maximum entry count (shared across segments).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current entry count across all segments.
    pub fn len(&self) -> usize {
        self.map.values().map(HashMap::len).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entry count of one segment.
    pub fn segment_len(&self, tag: u64) -> usize {
        self.map.get(&tag).map_or(0, HashMap::len)
    }

    /// The cache key for a raw input (see [`quantize_key`]).
    pub fn quantize(&self, x: &[f64]) -> Vec<i64> {
        quantize_key(x, self.quant_scale)
    }

    /// Looks up a quantized key in the `tag` segment, promoting it to
    /// most-recently-used on a hit. Counts the lookup either way.
    pub fn get(&mut self, tag: u64, key: &[i64]) -> Option<&[f64]> {
        match self.map.get(&tag).and_then(|seg| seg.get(key)).copied() {
            Some(slot) => {
                self.hits += 1;
                self.detach(slot);
                self.attach_front(slot);
                Some(&self.slots[slot].row)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly computed row into the `tag` segment, evicting
    /// the globally least-recently-used entry (of whatever segment) if at
    /// capacity. Re-inserting an existing key refreshes its row and
    /// recency.
    pub fn insert(&mut self, tag: u64, key: Vec<i64>, row: Vec<f64>) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&slot) = self.map.get(&tag).and_then(|seg| seg.get(&key)) {
            self.slots[slot].row = row;
            self.detach(slot);
            self.attach_front(slot);
            return;
        }
        if self.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.detach(victim);
            let vtag = self.slots[victim].tag;
            if let Some(seg) = self.map.get_mut(&vtag) {
                seg.remove(&self.slots[victim].key);
                if seg.is_empty() {
                    self.map.remove(&vtag);
                }
            }
            self.free.push(victim);
            self.evictions += 1;
        }
        let slot = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Slot {
                    tag,
                    key: key.clone(),
                    row,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slots.push(Slot {
                    tag,
                    key: key.clone(),
                    row,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.entry(tag).or_default().insert(key, slot);
        self.attach_front(slot);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            len: self.len(),
        }
    }

    /// Unlinks `slot` from the recency list (no-op if not linked).
    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    /// Links `slot` in as most-recently-used.
    fn attach_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All single-segment behaviour below runs in segment `TAG`.
    const TAG: u64 = 7;

    fn key(v: i64) -> Vec<i64> {
        vec![v, v + 1]
    }

    #[test]
    fn hit_miss_and_promotion() {
        let mut c = FeatureCache::new(2, 1e8);
        assert!(c.get(TAG, &key(1)).is_none());
        c.insert(TAG, key(1), vec![1.0]);
        c.insert(TAG, key(2), vec![2.0]);
        assert_eq!(c.get(TAG, &key(1)).unwrap(), &[1.0]);
        // 1 was just promoted; inserting 3 must evict 2, not 1.
        c.insert(TAG, key(3), vec![3.0]);
        assert!(c.get(TAG, &key(2)).is_none());
        assert_eq!(c.get(TAG, &key(1)).unwrap(), &[1.0]);
        assert_eq!(c.get(TAG, &key(3)).unwrap(), &[3.0]);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.len), (3, 2, 1, 2));
    }

    #[test]
    fn lru_order_under_churn() {
        let mut c = FeatureCache::new(3, 1e8);
        for i in 0..10 {
            c.insert(TAG, key(i), vec![i as f64]);
        }
        // Only the 3 most recent survive.
        for i in 0..7 {
            assert!(c.get(TAG, &key(i)).is_none(), "key {i} should be evicted");
        }
        for i in 7..10 {
            assert_eq!(c.get(TAG, &key(i)).unwrap(), &[i as f64]);
        }
        assert_eq!(c.stats().evictions, 7);
    }

    #[test]
    fn reinsert_refreshes_row_without_growth() {
        let mut c = FeatureCache::new(2, 1e8);
        c.insert(TAG, key(1), vec![1.0]);
        c.insert(TAG, key(1), vec![1.5]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(TAG, &key(1)).unwrap(), &[1.5]);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = FeatureCache::new(0, 1e8);
        c.insert(TAG, key(1), vec![1.0]);
        assert!(c.get(TAG, &key(1)).is_none());
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn quantization_merges_only_near_identical_inputs() {
        let c = FeatureCache::new(4, 100.0); // grid step 0.01
        assert_eq!(c.quantize(&[0.1234]), c.quantize(&[0.1236]));
        assert_ne!(c.quantize(&[0.12]), c.quantize(&[0.13]));
    }

    #[test]
    fn segments_isolate_generators_without_flushing() {
        // The same quantized key under two fingerprints is two distinct
        // entries; switching segments (a deploy) keeps both warm.
        let mut c = FeatureCache::new(4, 1.0);
        c.insert(7, vec![1], vec![1.0]);
        assert_eq!(c.get(7, &[1]).unwrap(), &[1.0]);
        // A different generator must not see segment 7's row…
        assert!(c.get(8, &[1]).is_none());
        c.insert(8, vec![1], vec![8.0]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.segment_len(7), 1);
        assert_eq!(c.segment_len(8), 1);
        // …and rolling back to segment 7 finds it still warm.
        assert_eq!(c.get(7, &[1]).unwrap(), &[1.0]);
        assert_eq!(c.get(8, &[1]).unwrap(), &[8.0]);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (3, 1));
    }

    #[test]
    fn eviction_is_global_across_segments() {
        // Capacity pressure evicts the globally least-recent entry, so a
        // dead segment ages out without explicit invalidation.
        let mut c = FeatureCache::new(2, 1.0);
        c.insert(1, vec![10], vec![1.0]);
        c.insert(2, vec![20], vec![2.0]);
        // Touch segment 1 so segment 2 holds the LRU entry.
        assert!(c.get(1, &[10]).is_some());
        c.insert(3, vec![30], vec![3.0]);
        assert_eq!(c.segment_len(2), 0, "dead segment entry evicted");
        assert!(c.get(1, &[10]).is_some());
        assert!(c.get(3, &[30]).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn hit_rate() {
        let mut c = FeatureCache::new(2, 1.0);
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.insert(TAG, vec![0], vec![0.0]);
        let _ = c.get(TAG, &[0]);
        let _ = c.get(TAG, &[9]);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }
}

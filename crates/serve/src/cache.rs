//! LRU feature cache keyed on quantized inputs.
//!
//! A feature row is a pure function of the data point (rows are generated
//! with [`pvqnn::FeatureGenerator::generate_rows_standalone`] semantics,
//! so not even the stochastic backends depend on batch position), which
//! makes the quantum stage — by far the expensive part of serving — a
//! perfect caching target: one `S(x)|0⟩` simulation per *unique* data
//! point, ever, until the entry ages out.
//!
//! Keys quantize each input coordinate to a fixed grid
//! (`round(x · quant_scale)`), so float jitter below half a grid step
//! maps to the same entry. The grid step is therefore a *serving
//! resolution* knob: requests closer than `0.5 / quant_scale` per
//! coordinate are deliberately served the same features. The default
//! scale (1e8) is far below any physically meaningful angle difference.
//!
//! The LRU list is intrusive (index links into a slot arena), so `get`
//! and `insert` are O(1) plus hashing, with no per-operation allocation
//! beyond the key.

use std::collections::HashMap;

/// Sentinel for "no neighbour" in the intrusive list.
const NIL: usize = usize::MAX;

/// A cache slot: key + feature row + recency links.
#[derive(Debug)]
struct Slot {
    key: Vec<i64>,
    row: Vec<f64>,
    prev: usize,
    next: usize,
}

/// Hit/miss/eviction counters, snapshot via [`FeatureCache::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required a fresh simulation.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Current entry count.
    pub len: usize,
}

impl CacheStats {
    /// Hits over lookups (0 when the cache was never consulted).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// An LRU map from quantized inputs to feature rows.
#[derive(Debug)]
pub struct FeatureCache {
    capacity: usize,
    quant_scale: f64,
    map: HashMap<Vec<i64>, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Most recently used slot (NIL when empty).
    head: usize,
    /// Least recently used slot (NIL when empty) — the eviction victim.
    tail: usize,
    /// Fingerprint of the feature generator whose rows live here (see
    /// [`Self::ensure_tag`]); 0 until first tagged.
    tag: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl FeatureCache {
    /// A cache holding at most `capacity` rows (0 disables caching: every
    /// lookup misses and inserts are dropped), quantizing inputs at
    /// `quant_scale` buckets per unit.
    pub fn new(capacity: usize, quant_scale: f64) -> Self {
        assert!(quant_scale > 0.0, "quantization scale must be positive");
        FeatureCache {
            capacity,
            quant_scale,
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity.min(1024)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            tag: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Ensures the cache holds rows for the generator identified by
    /// `tag`, dropping every entry when the tag changes. Cached rows
    /// are valid only for the feature generator that produced them; a
    /// hot-swap to a model with a *different* generator (strategy,
    /// backend, or seeds) must not serve the old generator's rows, so
    /// the server tags the cache with a generator fingerprint at every
    /// batch. Counters survive the flush (the flush itself is part of
    /// the serving history).
    pub fn ensure_tag(&mut self, tag: u64) {
        if self.tag != tag {
            self.clear();
            self.tag = tag;
        }
    }

    /// The generator tag the current entries belong to (0 = untagged).
    /// Writers that computed rows outside the cache lock must re-check
    /// this before inserting: a concurrent [`Self::ensure_tag`] flush
    /// means their rows belong to a generator the cache no longer
    /// serves.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Drops every entry, keeping capacity, quantization, and counters.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Maximum entry count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The cache key for a raw input.
    pub fn quantize(&self, x: &[f64]) -> Vec<i64> {
        x.iter()
            .map(|&v| (v * self.quant_scale).round() as i64)
            .collect()
    }

    /// Looks up a quantized key, promoting it to most-recently-used on a
    /// hit. Counts the lookup either way.
    pub fn get(&mut self, key: &[i64]) -> Option<&[f64]> {
        match self.map.get(key).copied() {
            Some(slot) => {
                self.hits += 1;
                self.detach(slot);
                self.attach_front(slot);
                Some(&self.slots[slot].row)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly computed row, evicting the least-recently-used
    /// entry if at capacity. Re-inserting an existing key refreshes its
    /// row and recency.
    pub fn insert(&mut self, key: Vec<i64>, row: Vec<f64>) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.slots[slot].row = row;
            self.detach(slot);
            self.attach_front(slot);
            return;
        }
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.detach(victim);
            self.map.remove(&self.slots[victim].key);
            self.free.push(victim);
            self.evictions += 1;
        }
        let slot = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Slot {
                    key: key.clone(),
                    row,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    row,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.attach_front(slot);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            len: self.map.len(),
        }
    }

    /// Unlinks `slot` from the recency list (no-op if not linked).
    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    /// Links `slot` in as most-recently-used.
    fn attach_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(v: i64) -> Vec<i64> {
        vec![v, v + 1]
    }

    #[test]
    fn hit_miss_and_promotion() {
        let mut c = FeatureCache::new(2, 1e8);
        assert!(c.get(&key(1)).is_none());
        c.insert(key(1), vec![1.0]);
        c.insert(key(2), vec![2.0]);
        assert_eq!(c.get(&key(1)).unwrap(), &[1.0]);
        // 1 was just promoted; inserting 3 must evict 2, not 1.
        c.insert(key(3), vec![3.0]);
        assert!(c.get(&key(2)).is_none());
        assert_eq!(c.get(&key(1)).unwrap(), &[1.0]);
        assert_eq!(c.get(&key(3)).unwrap(), &[3.0]);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.len), (3, 2, 1, 2));
    }

    #[test]
    fn lru_order_under_churn() {
        let mut c = FeatureCache::new(3, 1e8);
        for i in 0..10 {
            c.insert(key(i), vec![i as f64]);
        }
        // Only the 3 most recent survive.
        for i in 0..7 {
            assert!(c.get(&key(i)).is_none(), "key {i} should be evicted");
        }
        for i in 7..10 {
            assert_eq!(c.get(&key(i)).unwrap(), &[i as f64]);
        }
        assert_eq!(c.stats().evictions, 7);
    }

    #[test]
    fn reinsert_refreshes_row_without_growth() {
        let mut c = FeatureCache::new(2, 1e8);
        c.insert(key(1), vec![1.0]);
        c.insert(key(1), vec![1.5]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&key(1)).unwrap(), &[1.5]);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = FeatureCache::new(0, 1e8);
        c.insert(key(1), vec![1.0]);
        assert!(c.get(&key(1)).is_none());
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn quantization_merges_only_near_identical_inputs() {
        let c = FeatureCache::new(4, 100.0); // grid step 0.01
        assert_eq!(c.quantize(&[0.1234]), c.quantize(&[0.1236]));
        assert_ne!(c.quantize(&[0.12]), c.quantize(&[0.13]));
    }

    #[test]
    fn tag_change_flushes_entries_but_keeps_counters() {
        let mut c = FeatureCache::new(4, 1.0);
        c.ensure_tag(7);
        c.insert(vec![1], vec![1.0]);
        assert!(c.get(&[1]).is_some());
        c.ensure_tag(7);
        assert_eq!(c.len(), 1, "same tag keeps entries");
        c.ensure_tag(8);
        assert_eq!(c.len(), 0, "new tag flushes");
        assert!(c.get(&[1]).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1), "counters survive the flush");
    }

    #[test]
    fn hit_rate() {
        let mut c = FeatureCache::new(2, 1.0);
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.insert(vec![0], vec![0.0]);
        let _ = c.get(&[0]);
        let _ = c.get(&[9]);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }
}

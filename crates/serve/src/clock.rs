//! Deterministic simulated time for the serving layer.
//!
//! Latency statistics measured against the wall clock are hostage to the
//! host: CI runners, thread counts and cache state all move the numbers,
//! so a p99 regression gate on wall time either flakes or is tuned so
//! loose it never fires. The server therefore timestamps requests against
//! a [`SimClock`] that only moves when work is accounted for — each
//! micro-batch advances it by the [`CostModel`]'s deterministic cost —
//! exactly the discipline `hpcq`'s device pool already uses for makespan
//! and utilization. Given the same request stream, the latency histogram
//! is reproduced bit-for-bit on any machine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shareable monotonic simulated clock (nanoseconds).
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    ns: Arc<AtomicU64>,
}

impl SimClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::SeqCst)
    }

    /// Advances the clock by `delta_ns`, returning the new time.
    pub fn advance_ns(&self, delta_ns: u64) -> u64 {
        self.ns.fetch_add(delta_ns, Ordering::SeqCst) + delta_ns
    }

    /// Advances the clock to `t_ns` if it is ahead of the current time;
    /// a no-op otherwise (the clock never moves backwards). Returns the
    /// time after the update. Trace replay uses this to jump to the
    /// next arrival when the server is idle.
    pub fn advance_to_ns(&self, t_ns: u64) -> u64 {
        self.ns.fetch_max(t_ns, Ordering::SeqCst).max(t_ns)
    }
}

/// The simulated cost of dispatching one micro-batch.
///
/// Three terms mirror where real time goes in the hybrid pipeline: a
/// fixed per-dispatch overhead (queue handoff, one submission to the
/// quantum resource — the term micro-batching amortizes), a per-unique-
/// miss term (one `S(x)|0⟩` simulation plus the fused observable sweep —
/// the term the feature cache removes), and a small per-row term (cache
/// lookups and the classical head). Defaults are loosely calibrated to
/// the measured single-thread kernel numbers; the *ratios* are what the
/// load-generator experiments exercise, not the absolute scale.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Fixed cost per micro-batch dispatch (ns).
    pub batch_overhead_ns: u64,
    /// Cost per unique cache miss: circuit simulation + fused sweep (ns).
    pub miss_ns: u64,
    /// Cost per served row: cache lookup + head evaluation (ns).
    pub row_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            batch_overhead_ns: 50_000, // 50 µs dispatch + submission
            miss_ns: 200_000,          // 200 µs per state prepared
            row_ns: 2_000,             // 2 µs per row served
        }
    }
}

impl CostModel {
    /// Simulated cost of a batch serving `rows` requests of which
    /// `misses` needed a fresh simulation.
    pub fn batch_cost_ns(&self, rows: usize, misses: usize) -> u64 {
        debug_assert!(misses <= rows);
        self.batch_overhead_ns + self.miss_ns * misses as u64 + self.row_ns * rows as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_and_shared() {
        let c = SimClock::new();
        let c2 = c.clone();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.advance_ns(5), 5);
        assert_eq!(c2.now_ns(), 5, "clones share the underlying clock");
        c2.advance_ns(7);
        assert_eq!(c.now_ns(), 12);
    }

    #[test]
    fn advance_to_never_rewinds() {
        let c = SimClock::new();
        assert_eq!(c.advance_to_ns(100), 100);
        assert_eq!(c.advance_to_ns(40), 100, "no rewind");
        assert_eq!(c.advance_to_ns(250), 250);
        assert_eq!(c.now_ns(), 250);
    }

    #[test]
    fn batching_and_caching_amortize_cost() {
        let m = CostModel::default();
        // 16 singleton batches, all misses, vs one batch of 16 with 4
        // misses: the whole point of the serving layer in one inequality.
        let singles = 16 * m.batch_cost_ns(1, 1);
        let batched = m.batch_cost_ns(16, 4);
        assert!(batched < singles / 3);
    }
}

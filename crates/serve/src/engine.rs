//! How a micro-batch's cache misses get their feature rows computed.
//!
//! The serving layer deliberately separates *what* to compute (one row
//! per unique data point, standalone-seeded) from *where*: the local
//! path encodes the whole miss set in amplitude-major SoA blocks
//! (`pvqnn`'s batched `generate_rows_standalone`) and replays the
//! generator's cached compiled circuits — bit-for-bit what each lone
//! request would have computed — while the pool path packages the same
//! work as [`hpcq::CircuitJob`]s and scatters it across a simulated QPU
//! pool, the deployment shape the paper's hybrid HPC-QC system targets
//! for the finite-shot backends.

use hpcq::{CircuitJob, QpuConfig, QpuPool, SchedulePolicy};
use pvqnn::features::FeatureBackend;
use pvqnn::FeatureGenerator;
use std::sync::Mutex;

/// The compute backend for cache misses.
pub enum FeatureEngine {
    /// In-process: rows fan out on the shared rayon executor. This is
    /// the default and the path with the bit-for-bit guarantee against
    /// one-at-a-time `predict`.
    Local,
    /// Through a simulated QPU pool: one job per `(data point, shift)`,
    /// scheduled by the pool's policy. For the `Shots` backend each job
    /// carries the backend's shot budget; `Shadows` is approximated with
    /// per-observable shots equal to the snapshot budget (the pool's
    /// devices measure observables directly, not shadow snapshots);
    /// `Exact` jobs run noiseless. Shot noise here follows the *device*
    /// seeds, so pool-routed stochastic predictions are deterministic
    /// but not bitwise equal to the local path.
    Pool(Mutex<QpuPool>),
}

impl FeatureEngine {
    /// The in-process engine.
    pub fn local() -> Self {
        FeatureEngine::Local
    }

    /// A pool engine over `devices` homogeneous simulated QPUs.
    pub fn pool(devices: usize, config: QpuConfig, policy: SchedulePolicy) -> Self {
        FeatureEngine::Pool(Mutex::new(QpuPool::homogeneous(devices, config, policy)))
    }

    /// One standalone-seeded feature row per unique data point.
    pub fn compute_rows(&self, generator: &FeatureGenerator, xs: &[&[f64]]) -> Vec<Vec<f64>> {
        match self {
            FeatureEngine::Local => generator.generate_rows_standalone(xs),
            FeatureEngine::Pool(pool) => {
                if xs.is_empty() {
                    return Vec::new();
                }
                let strategy = generator.strategy();
                let p = strategy.num_ansatze();
                let q = strategy.num_observables();
                let observables = strategy.observables().to_vec();
                let shots = match generator.backend() {
                    FeatureBackend::Exact => None,
                    FeatureBackend::Shots { shots, .. } => Some(shots),
                    FeatureBackend::Shadows { snapshots, .. } => Some(snapshots),
                };
                let mut jobs = Vec::with_capacity(xs.len() * p);
                for (i, x) in xs.iter().enumerate() {
                    for a in 0..p {
                        jobs.push(CircuitJob::new(
                            (i * p + a) as u64,
                            generator.circuit_for(x, a),
                            observables.clone(),
                            shots,
                        ));
                    }
                }
                let (results, _) = pool.lock().expect("pool lock poisoned").execute_batch(jobs);
                let mut rows = vec![vec![0.0; p * q]; xs.len()];
                for r in results {
                    let i = r.id as usize / p;
                    let a = r.id as usize % p;
                    rows[i][a * q..(a + 1) * q].copy_from_slice(&r.values);
                }
                rows
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvqnn::Strategy;

    fn points(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..16)
                    .map(|j| 0.25 + 0.13 * ((i * 7 + j) % 11) as f64)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn pool_engine_matches_local_for_exact_backend() {
        // Exact jobs on noiseless devices compute the same expectations
        // the fused local sweep does (to rounding; summation orders
        // differ between the kernels).
        let generator = FeatureGenerator::new(
            Strategy::observable_construction(4, 1),
            FeatureBackend::Exact,
        );
        let data = points(3);
        let refs: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        let local = FeatureEngine::local().compute_rows(&generator, &refs);
        let pool = FeatureEngine::pool(2, QpuConfig::default(), SchedulePolicy::WorkStealing);
        let pooled = pool.compute_rows(&generator, &refs);
        assert_eq!(local.len(), pooled.len());
        for (lr, pr) in local.iter().zip(pooled.iter()) {
            assert_eq!(lr.len(), pr.len());
            for (l, p) in lr.iter().zip(pr.iter()) {
                assert!((l - p).abs() < 1e-10, "local {l} vs pool {p}");
            }
        }
    }

    #[test]
    fn pool_engine_is_deterministic_for_shots_backend() {
        let generator = FeatureGenerator::new(
            Strategy::observable_construction(4, 1),
            FeatureBackend::Shots { shots: 64, seed: 3 },
        );
        let data = points(2);
        let refs: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        let run = || {
            FeatureEngine::pool(2, QpuConfig::default(), SchedulePolicy::RoundRobin)
                .compute_rows(&generator, &refs)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_miss_set_is_free() {
        let generator = FeatureGenerator::new(
            Strategy::observable_construction(4, 1),
            FeatureBackend::Exact,
        );
        let pool = FeatureEngine::pool(1, QpuConfig::default(), SchedulePolicy::RoundRobin);
        assert!(pool.compute_rows(&generator, &[]).is_empty());
        assert!(FeatureEngine::local()
            .compute_rows(&generator, &[])
            .is_empty());
    }
}

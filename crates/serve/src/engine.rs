//! How a micro-batch's cache misses get their feature rows computed.
//!
//! The serving layer deliberately separates *what* to compute (one row
//! per unique data point, standalone-seeded) from *where*: the local
//! path encodes the whole miss set in amplitude-major SoA blocks
//! (`pvqnn`'s batched `generate_rows_standalone`) and replays the
//! generator's cached compiled circuits — bit-for-bit what each lone
//! request would have computed — while the pool path packages the same
//! work as [`hpcq::CircuitJob`]s and scatters it across a simulated QPU
//! pool, the deployment shape the paper's hybrid HPC-QC system targets
//! for the finite-shot backends.

use hpcq::{CircuitJob, FaultStats, JobError, QpuConfig, QpuPool, SchedulePolicy};
use pvqnn::features::FeatureBackend;
use pvqnn::FeatureGenerator;
use std::fmt;
use std::sync::{Mutex, PoisonError};

/// The quantum backend failed part of a feature batch terminally:
/// retries, failover, and hedging were all exhausted (or deadlines
/// expired) for `failed_jobs` of the batch's jobs. The server's
/// degradation ladder decides what happens next — local fallback or a
/// typed shed — instead of panicking on the batcher thread.
#[derive(Clone, Debug)]
pub struct EngineError {
    /// Jobs that resolved to typed errors.
    pub failed_jobs: usize,
    /// Total jobs in the batch.
    pub total_jobs: usize,
    /// The first failure, in job-id order.
    pub first: JobError,
    /// Failure/recovery counters the pool observed for this batch.
    pub faults: FaultStats,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "backend failed {} of {} feature jobs (first: {})",
            self.failed_jobs, self.total_jobs, self.first
        )
    }
}

impl std::error::Error for EngineError {}

/// A successfully computed miss batch.
#[derive(Clone, Debug)]
pub struct ComputedRows {
    /// One standalone-seeded feature row per requested point.
    pub rows: Vec<Vec<f64>>,
    /// Failure/recovery counters the backend observed while computing
    /// (all zero for the local engine and the healthy pool path).
    pub faults: FaultStats,
}

/// The compute backend for cache misses.
pub enum FeatureEngine {
    /// In-process: rows fan out on the shared rayon executor. This is
    /// the default and the path with the bit-for-bit guarantee against
    /// one-at-a-time `predict`.
    Local,
    /// Through a simulated QPU pool: one job per `(data point, shift)`,
    /// scheduled by the pool's policy. For the `Shots` backend each job
    /// carries the backend's shot budget; `Shadows` is approximated with
    /// per-observable shots equal to the snapshot budget (the pool's
    /// devices measure observables directly, not shadow snapshots);
    /// `Exact` jobs run noiseless. Shot noise here follows the *device*
    /// seeds, so pool-routed stochastic predictions are deterministic
    /// but not bitwise equal to the local path.
    Pool(Mutex<QpuPool>),
}

impl FeatureEngine {
    /// The in-process engine.
    pub fn local() -> Self {
        FeatureEngine::Local
    }

    /// A pool engine over `devices` homogeneous simulated QPUs.
    pub fn pool(devices: usize, config: QpuConfig, policy: SchedulePolicy) -> Self {
        FeatureEngine::Pool(Mutex::new(QpuPool::homogeneous(devices, config, policy)))
    }

    /// One standalone-seeded feature row per unique data point.
    /// `budget_ns` is the batch's remaining deadline budget in simulated
    /// ns — the pool path attaches it to every job so retries never
    /// chase an already-dead request (the local path is host-side
    /// compute and ignores it). Pool jobs that terminally fail (retry
    /// budget exhausted, deadline expired on every device) surface as a
    /// typed [`EngineError`] instead of panicking on the batcher thread;
    /// a previously poisoned pool lock is recovered, not propagated —
    /// the pool holds no invariants a panicked batch could have broken
    /// (placement is recomputed per batch).
    pub fn compute_rows(
        &self,
        generator: &FeatureGenerator,
        xs: &[&[f64]],
        budget_ns: Option<u64>,
    ) -> Result<ComputedRows, EngineError> {
        match self {
            FeatureEngine::Local => Ok(ComputedRows {
                rows: generator.generate_rows_standalone(xs),
                faults: FaultStats::default(),
            }),
            FeatureEngine::Pool(pool) => {
                if xs.is_empty() {
                    return Ok(ComputedRows {
                        rows: Vec::new(),
                        faults: FaultStats::default(),
                    });
                }
                let strategy = generator.strategy();
                let p = strategy.num_ansatze();
                let q = strategy.num_observables();
                let observables = strategy.observables().to_vec();
                let shots = match generator.backend() {
                    FeatureBackend::Exact => None,
                    FeatureBackend::Shots { shots, .. } => Some(shots),
                    FeatureBackend::Shadows { snapshots, .. } => Some(snapshots),
                };
                let mut jobs = Vec::with_capacity(xs.len() * p);
                for (i, x) in xs.iter().enumerate() {
                    for a in 0..p {
                        let mut job = CircuitJob::new(
                            (i * p + a) as u64,
                            generator.circuit_for(x, a),
                            observables.clone(),
                            shots,
                        );
                        job.sim_budget_ns = budget_ns;
                        jobs.push(job);
                    }
                }
                let total_jobs = jobs.len();
                let (outcomes, report) = pool
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .execute_batch(jobs);
                let mut rows = vec![vec![0.0; p * q]; xs.len()];
                let mut first_err: Option<JobError> = None;
                let mut failed_jobs = 0usize;
                for outcome in outcomes {
                    match outcome {
                        Ok(r) => {
                            let i = r.id as usize / p;
                            let a = r.id as usize % p;
                            rows[i][a * q..(a + 1) * q].copy_from_slice(&r.values);
                        }
                        Err(e) => {
                            failed_jobs += 1;
                            first_err.get_or_insert(e);
                        }
                    }
                }
                match first_err {
                    None => Ok(ComputedRows {
                        rows,
                        faults: report.faults,
                    }),
                    Some(first) => Err(EngineError {
                        failed_jobs,
                        total_jobs,
                        first,
                        faults: report.faults,
                    }),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvqnn::Strategy;

    fn points(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..16)
                    .map(|j| 0.25 + 0.13 * ((i * 7 + j) % 11) as f64)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn pool_engine_matches_local_for_exact_backend() {
        // Exact jobs on noiseless devices compute the same expectations
        // the fused local sweep does (to rounding; summation orders
        // differ between the kernels).
        let generator = FeatureGenerator::new(
            Strategy::observable_construction(4, 1),
            FeatureBackend::Exact,
        );
        let data = points(3);
        let refs: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        let local = FeatureEngine::local()
            .compute_rows(&generator, &refs, None)
            .unwrap()
            .rows;
        let pool = FeatureEngine::pool(2, QpuConfig::default(), SchedulePolicy::WorkStealing);
        let out = pool.compute_rows(&generator, &refs, None).unwrap();
        assert_eq!(out.faults, hpcq::FaultStats::default(), "healthy path");
        let pooled = out.rows;
        assert_eq!(local.len(), pooled.len());
        for (lr, pr) in local.iter().zip(pooled.iter()) {
            assert_eq!(lr.len(), pr.len());
            for (l, p) in lr.iter().zip(pr.iter()) {
                assert!((l - p).abs() < 1e-10, "local {l} vs pool {p}");
            }
        }
    }

    #[test]
    fn pool_engine_is_deterministic_for_shots_backend() {
        let generator = FeatureGenerator::new(
            Strategy::observable_construction(4, 1),
            FeatureBackend::Shots { shots: 64, seed: 3 },
        );
        let data = points(2);
        let refs: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        let run = || {
            FeatureEngine::pool(2, QpuConfig::default(), SchedulePolicy::RoundRobin)
                .compute_rows(&generator, &refs, None)
                .unwrap()
                .rows
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_miss_set_is_free() {
        let generator = FeatureGenerator::new(
            Strategy::observable_construction(4, 1),
            FeatureBackend::Exact,
        );
        let pool = FeatureEngine::pool(1, QpuConfig::default(), SchedulePolicy::RoundRobin);
        assert!(pool
            .compute_rows(&generator, &[], None)
            .unwrap()
            .rows
            .is_empty());
        assert!(FeatureEngine::local()
            .compute_rows(&generator, &[], None)
            .unwrap()
            .rows
            .is_empty());
    }

    #[test]
    fn dead_pool_surfaces_typed_engine_error() {
        use hpcq::{FaultPolicy, RetryPolicy};
        let generator = FeatureGenerator::new(
            Strategy::observable_construction(4, 1),
            FeatureBackend::Exact,
        );
        let data = points(2);
        let refs: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        let broken = QpuConfig {
            fail_prob: 1.0,
            ..Default::default()
        };
        let pool = QpuPool::homogeneous(2, broken, SchedulePolicy::WorkStealing).with_fault_policy(
            FaultPolicy {
                retry: RetryPolicy {
                    max_attempts_total: 3,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let engine = FeatureEngine::Pool(Mutex::new(pool));
        let err = engine
            .compute_rows(&generator, &refs, None)
            .expect_err("dead pool must error, not panic");
        assert_eq!(err.failed_jobs, err.total_jobs);
        assert!(err.faults.jobs_failed > 0);
        assert!(err.to_string().contains("backend failed"));
    }

    #[test]
    fn expired_budget_surfaces_typed_engine_error() {
        let generator = FeatureGenerator::new(
            Strategy::observable_construction(4, 1),
            FeatureBackend::Exact,
        );
        let data = points(2);
        let refs: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        // One device, a budget shorter than a single job: the first job
        // squeaks in at t=0, every later dispatch is past the deadline.
        let engine = FeatureEngine::pool(1, QpuConfig::default(), SchedulePolicy::WorkStealing);
        let err = engine
            .compute_rows(&generator, &refs, Some(1))
            .expect_err("sub-job budget cannot complete the batch");
        assert!(matches!(
            err.first.kind,
            hpcq::JobErrorKind::DeadlineExpired { .. }
        ));
    }
}

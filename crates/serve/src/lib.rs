//! # serve — online inference for post-variational models
//!
//! The paper's hybrid HPC-QC pipeline ends at offline training and
//! evaluation; this crate is the missing online half: a micro-batching
//! inference server that turns a trained [`pvqnn`] model into a request
//! endpoint designed around the two facts that dominate quantum-stage
//! serving cost:
//!
//! 1. **State preparation is the expensive part** — so requests are
//!    coalesced into micro-batches and a per-input LRU [`FeatureCache`]
//!    guarantees one `S(x)|0⟩` simulation per *unique* data point, with
//!    misses fanned out on the shared work-stealing executor (or
//!    scattered across an [`hpcq`] QPU pool).
//! 2. **Predictions must not depend on batching** — feature rows are
//!    standalone-seeded, so a served prediction is bit-for-bit what a
//!    lone `predict` call would return, for any batch composition,
//!    cache state, or thread count. Batching and caching are pure
//!    latency/throughput optimizations.
//!
//! Around that core sit the operational pieces an online service needs:
//! a versioned [`ModelRegistry`] with atomic hot-swap (deploy v2 while
//! v1 drains, instant rollback), an [`AdmissionController`] with a hard
//! queue bound and hysteretic load shedding, per-request deadline
//! budgets, and a [`ServerStats`] snapshot with throughput and
//! p50/p95/p99 latency quantiles measured on a deterministic simulated
//! clock ([`SimClock`]) — reproducible to the bit across hosts, which is
//! what lets CI gate on them.
//!
//! ```
//! use pvqnn::features::FeatureBackend;
//! use pvqnn::model::RegressorMode;
//! use pvqnn::{FeatureGenerator, PostVarRegressor, Strategy};
//! use serve::{Server, ServerConfig};
//!
//! // Train a tiny model.
//! let data: Vec<Vec<f64>> = (0..12)
//!     .map(|i| (0..16).map(|j| 0.1 + 0.2 * ((i + j) % 5) as f64).collect())
//!     .collect();
//! let y: Vec<f64> = (0..12).map(|i| i as f64 * 0.1).collect();
//! let generator = FeatureGenerator::new(
//!     Strategy::observable_construction(4, 1),
//!     FeatureBackend::Exact,
//! );
//! let model = PostVarRegressor::fit(generator, &data, &y, RegressorMode::Ridge(1e-6));
//!
//! // Serve it.
//! let server = Server::new(ServerConfig::default());
//! server.deploy(model.clone());
//! let handle = server.submit(data[3].clone()).unwrap();
//! server.drain();
//! let response = handle.wait().unwrap();
//! assert_eq!(response.prediction.as_f64(), model.predict(&data[3..4])[0]);
//! ```

pub mod admission;
pub mod cache;
pub mod clock;
pub mod engine;
pub mod loadgen;
pub mod model;
pub mod registry;
pub mod server;
pub mod stats;

pub use admission::{AdmissionController, Rejected};
pub use cache::{CacheStats, FeatureCache};
pub use clock::{CostModel, SimClock};
pub use engine::{ComputedRows, EngineError, FeatureEngine};
pub use loadgen::{demo_catalogue, run_closed_loop, LoadGenConfig, LoadReport, ZipfStream};
pub use model::{Prediction, ServedModel};
pub use registry::{ModelRegistry, ModelVersion};
pub use server::{
    spawn_worker, Response, ResponseHandle, ServeResult, Server, ServerConfig, MAX_COORDINATE,
};
pub use stats::{LatencyHistogram, ServerStats};

//! # serve — online inference for post-variational models
//!
//! The paper's hybrid HPC-QC pipeline ends at offline training and
//! evaluation; this crate is the missing online half: a micro-batching
//! inference server that turns a trained [`pvqnn`] model into a request
//! endpoint designed around the two facts that dominate quantum-stage
//! serving cost:
//!
//! 1. **State preparation is the expensive part** — so requests are
//!    coalesced into micro-batches and a per-input LRU [`FeatureCache`]
//!    guarantees one `S(x)|0⟩` simulation per *unique* data point, with
//!    misses fanned out on the shared work-stealing executor (or
//!    scattered across an [`hpcq`] QPU pool).
//! 2. **Predictions must not depend on batching** — feature rows are
//!    standalone-seeded, so a served prediction is bit-for-bit what a
//!    lone `predict` call would return, for any batch composition,
//!    cache state, or thread count. Batching and caching are pure
//!    latency/throughput optimizations.
//!
//! Around that core sit the operational pieces an online service needs:
//! a versioned [`ModelRegistry`] with atomic hot-swap (deploy v2 while
//! v1 drains, instant rollback), per-request deadline budgets with
//! earliest-deadline-first batch formation, and a [`ServerStats`]
//! snapshot with throughput and p50/p95/p99 latency quantiles measured
//! on a deterministic simulated clock ([`SimClock`]) — reproducible to
//! the bit across hosts, which is what lets CI gate on them.
//!
//! The service is **multi-tenant**: requests carry a [`TenantId`], the
//! [`AdmissionController`] enforces weighted-fair admission behind a
//! hard queue bound — overload walks a hysteretic brownout ladder
//! ([`BrownoutLevel`]: shed over-share tenants first, then defer slack
//! traffic, global shed only as a last resort) — and batch slots are
//! dealt weighted round-robin across per-tenant EDF sub-queues, so one
//! flooding tenant cannot starve the rest. [`loadgen`] drives all of it
//! with deterministic traffic: a closed-loop Zipf harness, and
//! open-loop [`ArrivalTrace`] replay (JSONL/CSV files or synthetic
//! burst / diurnal / flash-crowd [`RateProfile`]s) with windowed
//! [`Monitor`] time series.
//!
//! When one server is not enough, a [`Router`] fronts N shard servers
//! behind a consistent hash of the quantized feature key — each data
//! point's cached rows live on exactly one shard — with the brownout
//! ladder re-run fleet-wide over aggregated shard depth, a simulated
//! network cost model charged on the shared clock (so benchmarks can
//! measure where coordination starts to dominate), and staged
//! shard-by-shard rollout with automatic rollback (see [`router`]).
//!
//! ```
//! use pvqnn::features::FeatureBackend;
//! use pvqnn::model::RegressorMode;
//! use pvqnn::{FeatureGenerator, PostVarRegressor, Strategy};
//! use serve::{Server, ServerConfig};
//!
//! // Train a tiny model.
//! let data: Vec<Vec<f64>> = (0..12)
//!     .map(|i| (0..16).map(|j| 0.1 + 0.2 * ((i + j) % 5) as f64).collect())
//!     .collect();
//! let y: Vec<f64> = (0..12).map(|i| i as f64 * 0.1).collect();
//! let generator = FeatureGenerator::new(
//!     Strategy::observable_construction(4, 1),
//!     FeatureBackend::Exact,
//! );
//! let model = PostVarRegressor::fit(generator, &data, &y, RegressorMode::Ridge(1e-6));
//!
//! // Serve it.
//! let server = Server::new(ServerConfig::default());
//! server.deploy(model.clone());
//! let handle = server.submit(data[3].clone()).unwrap();
//! server.drain();
//! let response = handle.wait().unwrap();
//! assert_eq!(response.prediction.as_f64(), model.predict(&data[3..4])[0]);
//! ```

pub mod admission;
pub mod cache;
pub mod clock;
pub mod engine;
pub mod loadgen;
pub mod model;
pub mod monitor;
pub mod registry;
pub mod router;
pub mod server;
pub mod stats;

pub use admission::{AdmissionController, BrownoutLadder, BrownoutLevel, Rejected, TenantId};
pub use cache::{quantize_key, CacheStats, FeatureCache};
pub use clock::{CostModel, SimClock};
pub use engine::{ComputedRows, EngineError, FeatureEngine};
pub use loadgen::{
    demo_catalogue, replay_trace, run_closed_loop, synthesize_trace, ArrivalTrace, LoadGenConfig,
    LoadReport, RateProfile, ReplayReport, TenantLoad, TraceEvent, TraceParseError, ZipfStream,
};
pub use model::{Prediction, ServedModel};
pub use monitor::{Monitor, MonitorSample};
pub use registry::{ModelRegistry, ModelVersion};
pub use router::{
    NetworkCostModel, RolloutCriteria, RolloutReport, Router, RouterConfig, RouterStats, ShardSwap,
};
pub use server::{
    spawn_worker, Response, ResponseHandle, ServeResult, Server, ServerConfig, MAX_COORDINATE,
};
pub use stats::{LatencyHistogram, ServerStats, TenantSnapshot};

//! Deterministic closed-loop load generation.
//!
//! The serving benchmarks need traffic that is (a) *skewed* — real
//! request streams concentrate on popular inputs, which is what makes a
//! feature cache pay — and (b) *reproducible* — the CI gate diffs
//! throughput and p99 against a committed baseline, so the stream must
//! be a pure function of its seed. This module provides both: a seeded
//! Zipf sampler over a fixed catalogue of data points, and a closed-loop
//! harness (`clients` outstanding requests, each replaced on
//! completion) that drives a [`Server`] single-threadedly with
//! [`Server::step`], so batch formation — and therefore every simulated
//! timestamp — is deterministic.

use crate::server::{ResponseHandle, Server};
use crate::stats::ServerStats;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A seeded Zipf(s) sampler over a catalogue of data points: rank `k`
/// (0-based popularity order) has probability ∝ `1/(k+1)^s`.
pub struct ZipfStream<'a> {
    points: &'a [Vec<f64>],
    cdf: Vec<f64>,
    rng: StdRng,
}

impl<'a> ZipfStream<'a> {
    /// A stream over `points` with exponent `s` (0 = uniform) and seed.
    pub fn new(points: &'a [Vec<f64>], s: f64, seed: u64) -> Self {
        assert!(!points.is_empty(), "need at least one data point");
        let mut cdf: Vec<f64> = Vec::with_capacity(points.len());
        let mut acc = 0.0;
        for k in 0..points.len() {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let norm = acc;
        for c in cdf.iter_mut() {
            *c /= norm;
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        ZipfStream {
            points,
            cdf,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The next sampled data point.
    pub fn next_point(&mut self) -> &'a Vec<f64> {
        let u: f64 = self.rng.random();
        let idx = self.cdf.partition_point(|&c| c < u);
        &self.points[idx.min(self.points.len() - 1)]
    }
}

/// A deterministic catalogue of `n ≤ 257` pairwise-distinct
/// 16-coordinate (4-qubit) demo data points in `[0.2, 5.7)`, spaced ≥
/// ~0.02 apart per coordinate so the default cache quantization can
/// never merge two — the shared workload for the serving tests,
/// example, and load-generation experiment (one definition, so they
/// can never silently diverge in the traffic they exercise).
pub fn demo_catalogue(n: usize) -> Vec<Vec<f64>> {
    // 31 and 257 are coprime, so for any fixed j the first coordinate
    // walks all 257 residues before repeating: points are distinct for
    // every n up to the modulus.
    assert!(n <= 257, "demo catalogue holds at most 257 distinct points");
    (0..n)
        .map(|i| {
            (0..16)
                .map(|j| 0.2 + 5.5 * (((i * 31 + j * 57) % 257) as f64 / 257.0))
                .collect()
        })
        .collect()
}

/// Closed-loop harness parameters.
#[derive(Clone, Copy, Debug)]
pub struct LoadGenConfig {
    /// Concurrent clients (outstanding requests).
    pub clients: usize,
    /// Total requests to issue across all clients.
    pub total_requests: usize,
    /// Zipf exponent of the request stream (0 = uniform).
    pub zipf_s: f64,
    /// Stream seed.
    pub seed: u64,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            clients: 8,
            total_requests: 2000,
            zipf_s: 1.1,
            seed: 42,
        }
    }
}

/// What a load-generation run measured (all times simulated).
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Requests answered with a prediction.
    pub completed: u64,
    /// Requests rejected at admission or on deadline.
    pub rejected: u64,
    /// Completed rows per simulated second over the run window.
    pub rows_per_s: f64,
    /// Cache hit rate over the run (from server counters).
    pub cache_hit_rate: f64,
    /// Full server stats snapshot at the end of the run.
    pub stats: ServerStats,
}

/// Drives `server` with a closed loop of `cfg.clients` clients sampling
/// `points` Zipf-skewed. Single-threaded and deterministic: each round
/// tops every idle client up with a submission, serves one micro-batch,
/// and collects completions. The server must have a model deployed.
pub fn run_closed_loop(server: &Server, points: &[Vec<f64>], cfg: &LoadGenConfig) -> LoadReport {
    assert!(cfg.clients > 0, "need at least one client");
    let mut stream = ZipfStream::new(points, cfg.zipf_s, cfg.seed);
    let mut outstanding: Vec<Option<ResponseHandle>> = (0..cfg.clients).map(|_| None).collect();
    let start_completed = server.stats().completed;
    let start_ns = server.clock().now_ns();
    let mut issued = 0usize;
    let mut completed = 0u64;
    let mut rejected = 0u64;
    loop {
        let mut any_outstanding = false;
        for slot in outstanding.iter_mut() {
            if slot.is_none() && issued < cfg.total_requests {
                issued += 1;
                match server.submit(stream.next_point().clone()) {
                    Ok(handle) => *slot = Some(handle),
                    Err(_) => rejected += 1,
                }
            }
            any_outstanding |= slot.is_some();
        }
        if !any_outstanding && issued >= cfg.total_requests {
            break;
        }
        server.step();
        for slot in outstanding.iter_mut() {
            if let Some(handle) = slot {
                if let Some(result) = handle.try_take() {
                    *slot = None;
                    match result {
                        Ok(_) => completed += 1,
                        Err(_) => rejected += 1,
                    }
                }
            }
        }
    }
    let stats = server.stats();
    let elapsed_s = server.clock().now_ns().saturating_sub(start_ns) as f64 / 1e9;
    let window_completed = stats.completed - start_completed;
    debug_assert_eq!(window_completed, completed);
    LoadReport {
        completed,
        rejected,
        rows_per_s: if elapsed_s > 0.0 {
            completed as f64 / elapsed_s
        } else {
            0.0
        },
        cache_hit_rate: stats.cache.hit_rate(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_deterministic_and_skewed() {
        let points = demo_catalogue(16);
        let draw = |seed| {
            let mut s = ZipfStream::new(&points, 1.2, seed);
            (0..500)
                .map(|_| s.next_point()[0].to_bits())
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7), "same seed, same stream");
        assert_ne!(draw(7), draw(8), "different seed, different stream");
        // Skew: the most popular point dominates a uniform share.
        let mut s = ZipfStream::new(&points, 1.2, 3);
        let head = points[0][0].to_bits();
        let hits = (0..2000)
            .filter(|_| s.next_point()[0].to_bits() == head)
            .count();
        assert!(hits > 2000 / 16 * 2, "rank-0 hits {hits} not skewed");
    }

    #[test]
    fn uniform_exponent_covers_catalogue() {
        let points = demo_catalogue(8);
        let mut s = ZipfStream::new(&points, 0.0, 11);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..400 {
            seen.insert(s.next_point()[0].to_bits());
        }
        assert_eq!(seen.len(), 8, "uniform stream should touch every point");
    }
}

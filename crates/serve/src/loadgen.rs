//! Deterministic load generation: closed-loop clients and open-loop
//! trace replay.
//!
//! The serving benchmarks need traffic that is (a) *skewed* — real
//! request streams concentrate on popular inputs, which is what makes a
//! feature cache pay — and (b) *reproducible* — the CI gate diffs
//! throughput and p99 against a committed baseline, so the stream must
//! be a pure function of its seed. This module provides both: a seeded
//! Zipf sampler over a fixed catalogue of data points, and a closed-loop
//! harness (`clients` outstanding requests, each replaced on
//! completion) that drives a [`Server`] single-threadedly with
//! [`Server::step`], so batch formation — and therefore every simulated
//! timestamp — is deterministic.
//!
//! Overload, however, is an *open-loop* phenomenon — a closed loop
//! self-throttles exactly when the interesting behavior starts. The
//! trace half of this module replays an [`ArrivalTrace`] (loaded from
//! JSONL/CSV or synthesized from [`RateProfile`]s: constant, burst,
//! diurnal, flash-crowd) against the server on [`SimClock`] time:
//! arrivals happen at their trace timestamps whether or not the server
//! is keeping up, which is what drives the admission ladder through its
//! rungs reproducibly.
//!
//! ```
//! use pvqnn::features::FeatureBackend;
//! use pvqnn::model::RegressorMode;
//! use pvqnn::{FeatureGenerator, PostVarRegressor, Strategy};
//! use serve::{demo_catalogue, replay_trace, ArrivalTrace, Server, ServerConfig};
//!
//! // A two-arrival trace, as it would sit in a .jsonl file on disk.
//! let trace = ArrivalTrace::from_jsonl(
//!     r#"{"at_us": 100, "tenant": 0, "point": 2, "deadline_us": 50000}
//! {"at_us": 250, "tenant": 1, "point": 5}"#,
//! )
//! .unwrap();
//! assert_eq!(trace.len(), 2);
//!
//! // Replay it open-loop against a served model on simulated time.
//! let points = demo_catalogue(8);
//! let y: Vec<f64> = (0..8).map(|i| i as f64).collect();
//! let generator = FeatureGenerator::new(
//!     Strategy::observable_construction(4, 1),
//!     FeatureBackend::Exact,
//! );
//! let model = PostVarRegressor::fit(generator, &points, &y, RegressorMode::Ridge(1e-6));
//! let server = Server::new(ServerConfig::default());
//! server.deploy(model);
//! let report = replay_trace(&server, &points, &trace, 1_000_000, None);
//! assert_eq!(report.completed, 2);
//! ```
//!
//! [`SimClock`]: crate::clock::SimClock

use crate::admission::TenantId;
use crate::model::Prediction;
use crate::monitor::{Monitor, MonitorSample};
use crate::server::{ResponseHandle, Server};
use crate::stats::ServerStats;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A seeded Zipf(s) sampler over a catalogue of data points: rank `k`
/// (0-based popularity order) has probability ∝ `1/(k+1)^s`.
pub struct ZipfStream<'a> {
    points: &'a [Vec<f64>],
    cdf: Vec<f64>,
    rng: StdRng,
}

impl<'a> ZipfStream<'a> {
    /// A stream over `points` with exponent `s` (0 = uniform) and seed.
    pub fn new(points: &'a [Vec<f64>], s: f64, seed: u64) -> Self {
        assert!(!points.is_empty(), "need at least one data point");
        let mut cdf: Vec<f64> = Vec::with_capacity(points.len());
        let mut acc = 0.0;
        for k in 0..points.len() {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let norm = acc;
        for c in cdf.iter_mut() {
            *c /= norm;
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        ZipfStream {
            points,
            cdf,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The next sampled data point.
    pub fn next_point(&mut self) -> &'a Vec<f64> {
        let u: f64 = self.rng.random();
        let idx = self.cdf.partition_point(|&c| c < u);
        &self.points[idx.min(self.points.len() - 1)]
    }
}

/// A deterministic catalogue of `n ≤ 257` pairwise-distinct
/// 16-coordinate (4-qubit) demo data points in `[0.2, 5.7)`, spaced ≥
/// ~0.02 apart per coordinate so the default cache quantization can
/// never merge two — the shared workload for the serving tests,
/// example, and load-generation experiment (one definition, so they
/// can never silently diverge in the traffic they exercise).
pub fn demo_catalogue(n: usize) -> Vec<Vec<f64>> {
    // 31 and 257 are coprime, so for any fixed j the first coordinate
    // walks all 257 residues before repeating: points are distinct for
    // every n up to the modulus.
    assert!(n <= 257, "demo catalogue holds at most 257 distinct points");
    (0..n)
        .map(|i| {
            (0..16)
                .map(|j| 0.2 + 5.5 * (((i * 31 + j * 57) % 257) as f64 / 257.0))
                .collect()
        })
        .collect()
}

/// Closed-loop harness parameters.
#[derive(Clone, Copy, Debug)]
pub struct LoadGenConfig {
    /// Concurrent clients (outstanding requests).
    pub clients: usize,
    /// Total requests to issue across all clients.
    pub total_requests: usize,
    /// Zipf exponent of the request stream (0 = uniform).
    pub zipf_s: f64,
    /// Stream seed.
    pub seed: u64,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            clients: 8,
            total_requests: 2000,
            zipf_s: 1.1,
            seed: 42,
        }
    }
}

/// What a load-generation run measured (all times simulated).
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Requests answered with a prediction.
    pub completed: u64,
    /// Requests rejected at admission or on deadline.
    pub rejected: u64,
    /// Completed rows per simulated second over the run window.
    pub rows_per_s: f64,
    /// Cache hit rate over the run (from server counters).
    pub cache_hit_rate: f64,
    /// Full server stats snapshot at the end of the run.
    pub stats: ServerStats,
}

/// Drives `server` with a closed loop of `cfg.clients` clients sampling
/// `points` Zipf-skewed. Single-threaded and deterministic: each round
/// tops every idle client up with a submission, serves one micro-batch,
/// and collects completions. The server must have a model deployed.
pub fn run_closed_loop(server: &Server, points: &[Vec<f64>], cfg: &LoadGenConfig) -> LoadReport {
    assert!(cfg.clients > 0, "need at least one client");
    let mut stream = ZipfStream::new(points, cfg.zipf_s, cfg.seed);
    let mut outstanding: Vec<Option<ResponseHandle>> = (0..cfg.clients).map(|_| None).collect();
    let start_completed = server.stats().completed;
    let start_ns = server.clock().now_ns();
    let mut issued = 0usize;
    let mut completed = 0u64;
    let mut rejected = 0u64;
    loop {
        let mut any_outstanding = false;
        for slot in outstanding.iter_mut() {
            if slot.is_none() && issued < cfg.total_requests {
                issued += 1;
                match server.submit(stream.next_point().clone()) {
                    Ok(handle) => *slot = Some(handle),
                    Err(_) => rejected += 1,
                }
            }
            any_outstanding |= slot.is_some();
        }
        if !any_outstanding && issued >= cfg.total_requests {
            break;
        }
        server.step();
        for slot in outstanding.iter_mut() {
            if let Some(handle) = slot {
                if let Some(result) = handle.try_take() {
                    *slot = None;
                    match result {
                        Ok(_) => completed += 1,
                        Err(_) => rejected += 1,
                    }
                }
            }
        }
    }
    let stats = server.stats();
    let elapsed_s = server.clock().now_ns().saturating_sub(start_ns) as f64 / 1e9;
    let window_completed = stats.completed - start_completed;
    debug_assert_eq!(window_completed, completed);
    LoadReport {
        completed,
        rejected,
        rows_per_s: if elapsed_s > 0.0 {
            completed as f64 / elapsed_s
        } else {
            0.0
        },
        cache_hit_rate: stats.cache.hit_rate(),
        stats,
    }
}

/// One arrival in a workload trace. `point` indexes the catalogue the
/// trace is replayed against; times are simulated ns relative to the
/// start of the replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Arrival time, simulated ns from replay start.
    pub at_ns: u64,
    /// Which tenant submits it.
    pub tenant: TenantId,
    /// Catalogue index of the data point.
    pub point: usize,
    /// Deadline budget in simulated ns (`None` = slack traffic, the
    /// first deferred in a deep brownout).
    pub deadline_ns: Option<u64>,
}

/// A malformed trace file line.
#[derive(Clone, Debug)]
pub struct TraceParseError {
    /// 1-based line number in the input.
    pub line: usize,
    /// What was wrong with it.
    pub msg: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TraceParseError {}

/// A time-ordered multi-tenant arrival trace.
///
/// ## On-disk schema
///
/// One event per line with times in **microseconds** (traces are
/// human-edited; ns timestamps are unreadable). Fields:
///
/// | field         | meaning                                             |
/// |---------------|-----------------------------------------------------|
/// | `at_us`       | arrival time, simulated µs from replay start        |
/// | `tenant`      | [`TenantId`] the request is attributed to           |
/// | `point`       | index into the replay's data-point catalogue        |
/// | `deadline_us` | optional deadline budget in simulated µs (omitted / empty = slack traffic, the first deferred in a deep brownout) |
///
/// JSONL (one object per line; blank lines and `#` comments skipped):
///
/// ```text
/// {"at_us": 1500, "tenant": 1, "point": 7, "deadline_us": 10000}
/// {"at_us": 1600, "tenant": 2, "point": 3}
/// ```
///
/// CSV: header `at_us,tenant,point,deadline_us`, empty last field for
/// no deadline. Both parsers are hand-rolled (the workspace's `serde`
/// is a vendored marker stub) and reject rather than guess: unknown
/// keys, missing fields, and non-integer values are
/// [`TraceParseError`]s with line numbers.
#[derive(Clone, Debug, Default)]
pub struct ArrivalTrace {
    events: Vec<TraceEvent>,
}

impl ArrivalTrace {
    /// A trace from unordered events; sorts by `(at_ns, tenant, point)`
    /// so replay order is deterministic regardless of input order.
    pub fn from_events(mut events: Vec<TraceEvent>) -> Self {
        events.sort_by_key(|e| (e.at_ns, e.tenant, e.point));
        ArrivalTrace { events }
    }

    /// The events in replay order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The distinct tenants appearing in the trace, ascending.
    pub fn tenants(&self) -> Vec<TenantId> {
        let mut ids: Vec<TenantId> = self.events.iter().map(|e| e.tenant).collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Parses a JSONL trace (see the type docs for the format). Blank
    /// lines and `#` comment lines are skipped.
    pub fn from_jsonl(text: &str) -> Result<Self, TraceParseError> {
        let mut events = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            events.push(parse_jsonl_event(line, i + 1)?);
        }
        Ok(Self::from_events(events))
    }

    /// Parses a CSV trace (see the type docs for the format). Blank
    /// lines and `#` comment lines are skipped.
    pub fn from_csv(text: &str) -> Result<Self, TraceParseError> {
        let mut events = Vec::new();
        let mut saw_header = false;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if !saw_header {
                let header: Vec<&str> = line.split(',').map(str::trim).collect();
                if header != ["at_us", "tenant", "point", "deadline_us"] {
                    return Err(TraceParseError {
                        line: i + 1,
                        msg: format!(
                            "expected header at_us,tenant,point,deadline_us, got {line:?}"
                        ),
                    });
                }
                saw_header = true;
                continue;
            }
            events.push(parse_csv_event(line, i + 1)?);
        }
        Ok(Self::from_events(events))
    }

    /// Serializes the trace as JSONL, the inverse of [`Self::from_jsonl`].
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!(
                "{{\"at_us\": {}, \"tenant\": {}, \"point\": {}",
                e.at_ns / 1_000,
                e.tenant.0,
                e.point
            ));
            if let Some(d) = e.deadline_ns {
                out.push_str(&format!(", \"deadline_us\": {}", d / 1_000));
            }
            out.push_str("}\n");
        }
        out
    }
}

fn parse_u64(s: &str, line: usize, what: &str) -> Result<u64, TraceParseError> {
    s.parse::<u64>().map_err(|_| TraceParseError {
        line,
        msg: format!("{what} must be a non-negative integer, got {s:?}"),
    })
}

fn parse_jsonl_event(line: &str, lineno: usize) -> Result<TraceEvent, TraceParseError> {
    let body = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| TraceParseError {
            line: lineno,
            msg: "expected a {...} object".to_string(),
        })?;
    let mut at_us = None;
    let mut tenant = None;
    let mut point = None;
    let mut deadline_us = None;
    // Flat objects with integer values only — commas never nest.
    for pair in body.split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (key, value) = pair.split_once(':').ok_or_else(|| TraceParseError {
            line: lineno,
            msg: format!("expected \"key\": value, got {pair:?}"),
        })?;
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match key {
            "at_us" => at_us = Some(parse_u64(value, lineno, "at_us")?),
            "tenant" => tenant = Some(parse_u64(value, lineno, "tenant")?),
            "point" => point = Some(parse_u64(value, lineno, "point")?),
            "deadline_us" => {
                if value != "null" {
                    deadline_us = Some(parse_u64(value, lineno, "deadline_us")?);
                }
            }
            other => {
                return Err(TraceParseError {
                    line: lineno,
                    msg: format!("unknown key {other:?}"),
                })
            }
        }
    }
    build_event(at_us, tenant, point, deadline_us, lineno)
}

fn parse_csv_event(line: &str, lineno: usize) -> Result<TraceEvent, TraceParseError> {
    let fields: Vec<&str> = line.split(',').map(str::trim).collect();
    if fields.len() != 4 {
        return Err(TraceParseError {
            line: lineno,
            msg: format!("expected 4 fields, got {}", fields.len()),
        });
    }
    let at_us = parse_u64(fields[0], lineno, "at_us")?;
    let tenant = parse_u64(fields[1], lineno, "tenant")?;
    let point = parse_u64(fields[2], lineno, "point")?;
    let deadline_us = if fields[3].is_empty() {
        None
    } else {
        Some(parse_u64(fields[3], lineno, "deadline_us")?)
    };
    build_event(Some(at_us), Some(tenant), Some(point), deadline_us, lineno)
}

fn build_event(
    at_us: Option<u64>,
    tenant: Option<u64>,
    point: Option<u64>,
    deadline_us: Option<u64>,
    lineno: usize,
) -> Result<TraceEvent, TraceParseError> {
    let missing = |what: &str| TraceParseError {
        line: lineno,
        msg: format!("missing required field {what}"),
    };
    let tenant = tenant.ok_or_else(|| missing("tenant"))?;
    if tenant > u32::MAX as u64 {
        return Err(TraceParseError {
            line: lineno,
            msg: format!("tenant {tenant} out of range"),
        });
    }
    Ok(TraceEvent {
        at_ns: at_us.ok_or_else(|| missing("at_us"))?.saturating_mul(1_000),
        tenant: TenantId(tenant as u32),
        point: point.ok_or_else(|| missing("point"))? as usize,
        deadline_ns: deadline_us.map(|d| d.saturating_mul(1_000)),
    })
}

/// A time-varying arrival-rate shape for synthetic trace generation.
/// All rates in requests per simulated second; all shapes are pure
/// functions of time, so a seeded generator over them is deterministic.
#[derive(Clone, Copy, Debug)]
pub enum RateProfile {
    /// Steady load.
    Constant {
        /// Arrival rate.
        rate_per_s: f64,
    },
    /// Square-wave bursts: `burst_per_s` for the first `burst_len_ns`
    /// of every `period_ns`, `base_per_s` otherwise.
    Burst {
        /// Rate between bursts.
        base_per_s: f64,
        /// Rate during bursts.
        burst_per_s: f64,
        /// Burst repetition period.
        period_ns: u64,
        /// Burst duration (≤ period).
        burst_len_ns: u64,
    },
    /// Smooth sinusoidal swing: `mean · (1 + swing·sin(2πt/period))`,
    /// clamped at 0 — the day/night cycle of a shared service.
    Diurnal {
        /// Mean arrival rate.
        mean_per_s: f64,
        /// Relative swing amplitude (0 = flat, 1 = full off-peak).
        swing: f64,
        /// Cycle period.
        period_ns: u64,
    },
    /// A step to `peak_per_s` at `at_ns` decaying exponentially back to
    /// `base_per_s` with time constant `decay_ns` — the thundering herd.
    FlashCrowd {
        /// Rate before (and long after) the flash.
        base_per_s: f64,
        /// Instantaneous rate at the flash.
        peak_per_s: f64,
        /// When the flash hits.
        at_ns: u64,
        /// Exponential decay time constant.
        decay_ns: u64,
    },
}

impl RateProfile {
    /// The instantaneous arrival rate at simulated time `t_ns`.
    pub fn rate_at(&self, t_ns: u64) -> f64 {
        match *self {
            RateProfile::Constant { rate_per_s } => rate_per_s,
            RateProfile::Burst {
                base_per_s,
                burst_per_s,
                period_ns,
                burst_len_ns,
            } => {
                if period_ns > 0 && t_ns % period_ns < burst_len_ns {
                    burst_per_s
                } else {
                    base_per_s
                }
            }
            RateProfile::Diurnal {
                mean_per_s,
                swing,
                period_ns,
            } => {
                let phase = if period_ns > 0 {
                    (t_ns % period_ns) as f64 / period_ns as f64
                } else {
                    0.0
                };
                (mean_per_s * (1.0 + swing * (2.0 * std::f64::consts::PI * phase).sin())).max(0.0)
            }
            RateProfile::FlashCrowd {
                base_per_s,
                peak_per_s,
                at_ns,
                decay_ns,
            } => {
                if t_ns < at_ns || decay_ns == 0 {
                    base_per_s
                } else {
                    let dt = (t_ns - at_ns) as f64 / decay_ns as f64;
                    base_per_s + (peak_per_s - base_per_s) * (-dt).exp()
                }
            }
        }
    }

    /// An upper bound on the rate over all time (the thinning envelope).
    fn peak_per_s(&self) -> f64 {
        match *self {
            RateProfile::Constant { rate_per_s } => rate_per_s,
            RateProfile::Burst {
                base_per_s,
                burst_per_s,
                ..
            } => base_per_s.max(burst_per_s),
            RateProfile::Diurnal {
                mean_per_s, swing, ..
            } => mean_per_s * (1.0 + swing.abs()),
            RateProfile::FlashCrowd {
                base_per_s,
                peak_per_s,
                ..
            } => base_per_s.max(peak_per_s),
        }
    }
}

/// One tenant's contribution to a synthetic trace.
#[derive(Clone, Copy, Debug)]
pub struct TenantLoad {
    /// Which tenant.
    pub tenant: TenantId,
    /// Its arrival-rate shape.
    pub profile: RateProfile,
    /// Zipf exponent of its point popularity (0 = uniform).
    pub zipf_s: f64,
    /// Deadline budget attached to every request (`None` = slack).
    pub deadline_ns: Option<u64>,
}

/// Synthesizes a deterministic multi-tenant [`ArrivalTrace`] over
/// `horizon_ns` of simulated time. Each tenant's arrivals are a
/// non-homogeneous Poisson process realized by thinning a homogeneous
/// process at the profile's peak rate; points are Zipf-sampled indices
/// into a catalogue of `catalogue_len` entries. Everything is a pure
/// function of `(loads, horizon_ns, catalogue_len, seed)`.
pub fn synthesize_trace(
    loads: &[TenantLoad],
    horizon_ns: u64,
    catalogue_len: usize,
    seed: u64,
) -> ArrivalTrace {
    assert!(catalogue_len > 0, "need a non-empty catalogue");
    let mut events = Vec::new();
    for load in loads {
        // Independent per-tenant stream: adding or re-weighting one
        // tenant never perturbs another tenant's arrivals.
        let mut rng = StdRng::seed_from_u64(
            seed ^ (load.tenant.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        // Zipf CDF over catalogue indices.
        let mut cdf: Vec<f64> = Vec::with_capacity(catalogue_len);
        let mut acc = 0.0;
        for k in 0..catalogue_len {
            acc += 1.0 / ((k + 1) as f64).powf(load.zipf_s);
            cdf.push(acc);
        }
        for c in cdf.iter_mut() {
            *c /= acc;
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        let peak = load.profile.peak_per_s();
        if peak <= 0.0 {
            continue;
        }
        let mut t_ns = 0u64;
        loop {
            // Exponential inter-arrival at the envelope rate...
            let u: f64 = rng.random();
            let gap_s = -(1.0 - u).ln() / peak;
            let gap_ns = (gap_s * 1e9).ceil().max(1.0) as u64;
            t_ns = t_ns.saturating_add(gap_ns);
            if t_ns >= horizon_ns {
                break;
            }
            // ...thinned down to the instantaneous profile rate. The
            // point draw burns an rng value either way so accepted
            // arrivals don't depend on the rejection history shape.
            let keep: f64 = rng.random();
            let up: f64 = rng.random();
            let idx = cdf.partition_point(|&c| c < up).min(catalogue_len - 1);
            if keep * peak <= load.profile.rate_at(t_ns) {
                events.push(TraceEvent {
                    at_ns: t_ns,
                    tenant: load.tenant,
                    point: idx,
                    deadline_ns: load.deadline_ns,
                });
            }
        }
    }
    ArrivalTrace::from_events(events)
}

/// What an open-loop trace replay measured (all times simulated).
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Arrivals offered to the server.
    pub offered: u64,
    /// Requests answered with a prediction.
    pub completed: u64,
    /// Requests refused at the door (admission or validation).
    pub shed: u64,
    /// Admitted requests that died at dispatch (deadline, backend).
    pub dropped: u64,
    /// Completed rows per simulated second over the replay window.
    pub goodput_rows_per_s: f64,
    /// Served predictions that were not bit-for-bit identical to the
    /// expected per-point reference (0 unless batching broke the
    /// invisibility contract).
    pub mismatches: u64,
    /// The windowed monitoring time series.
    pub samples: Vec<MonitorSample>,
    /// Full server stats snapshot at the end of the replay.
    pub stats: ServerStats,
}

fn prediction_bits(p: &Prediction) -> (u8, u64) {
    match p {
        Prediction::Value(v) => (0, v.to_bits()),
        Prediction::Probability(v) => (1, v.to_bits()),
    }
}

/// Replays `trace` against `server` open-loop on simulated time,
/// sampling a [`Monitor`] every `window_ns`. Arrivals are submitted at
/// their trace timestamps: between arrivals the server either serves
/// queued batches (which advances the clock by their cost) or, when
/// idle, jumps the clock to the next arrival — so overload pressure is
/// exactly what the trace encodes, independent of host speed.
///
/// `expected`, when given, holds the reference prediction for each
/// catalogue index (from standalone model `predict` calls); every
/// served response is compared bit-for-bit against it and divergences
/// are counted in [`ReplayReport::mismatches`].
///
/// Single-threaded and deterministic; the server must have a model
/// deployed and must not be driven by a concurrent worker thread.
pub fn replay_trace(
    server: &Server,
    points: &[Vec<f64>],
    trace: &ArrivalTrace,
    window_ns: u64,
    expected: Option<&[Prediction]>,
) -> ReplayReport {
    let start_ns = server.clock().now_ns();
    let start_completed = server.stats().completed;
    let mut monitor = Monitor::new(server, window_ns);
    let mut inflight: Vec<(usize, ResponseHandle)> = Vec::new();
    let mut offered = 0u64;
    let mut completed = 0u64;
    let mut shed = 0u64;
    let mut dropped = 0u64;
    let mut mismatches = 0u64;
    let mut sweep = |inflight: &mut Vec<(usize, ResponseHandle)>| {
        inflight.retain(|(point, handle)| match handle.try_take() {
            None => true,
            Some(Ok(response)) => {
                completed += 1;
                if let Some(reference) = expected {
                    if prediction_bits(&response.prediction) != prediction_bits(&reference[*point])
                    {
                        mismatches += 1;
                    }
                }
                false
            }
            Some(Err(_)) => {
                dropped += 1;
                false
            }
        });
    };
    for event in trace.events() {
        let target = start_ns.saturating_add(event.at_ns);
        while server.clock().now_ns() < target {
            if server.queue_depth() > 0 {
                server.step();
                sweep(&mut inflight);
            } else {
                server.clock().advance_to_ns(target);
            }
            monitor.poll(server);
        }
        offered += 1;
        match server.submit_as(event.tenant, points[event.point].clone(), event.deadline_ns) {
            Ok(handle) => inflight.push((event.point, handle)),
            Err(_) => shed += 1,
        }
    }
    while server.step() > 0 {
        sweep(&mut inflight);
        monitor.poll(server);
    }
    // Everything admitted has been dispatched; the remaining handles
    // hold their results already.
    sweep(&mut inflight);
    assert!(
        inflight.is_empty(),
        "drained server left unresolved requests"
    );
    let stats = server.stats();
    debug_assert_eq!(stats.completed - start_completed, completed);
    let elapsed_s = server.clock().now_ns().saturating_sub(start_ns) as f64 / 1e9;
    ReplayReport {
        offered,
        completed,
        shed,
        dropped,
        goodput_rows_per_s: if elapsed_s > 0.0 {
            completed as f64 / elapsed_s
        } else {
            0.0
        },
        mismatches,
        samples: monitor.into_samples(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_deterministic_and_skewed() {
        let points = demo_catalogue(16);
        let draw = |seed| {
            let mut s = ZipfStream::new(&points, 1.2, seed);
            (0..500)
                .map(|_| s.next_point()[0].to_bits())
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7), "same seed, same stream");
        assert_ne!(draw(7), draw(8), "different seed, different stream");
        // Skew: the most popular point dominates a uniform share.
        let mut s = ZipfStream::new(&points, 1.2, 3);
        let head = points[0][0].to_bits();
        let hits = (0..2000)
            .filter(|_| s.next_point()[0].to_bits() == head)
            .count();
        assert!(hits > 2000 / 16 * 2, "rank-0 hits {hits} not skewed");
    }

    #[test]
    fn uniform_exponent_covers_catalogue() {
        let points = demo_catalogue(8);
        let mut s = ZipfStream::new(&points, 0.0, 11);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..400 {
            seen.insert(s.next_point()[0].to_bits());
        }
        assert_eq!(seen.len(), 8, "uniform stream should touch every point");
    }

    #[test]
    fn jsonl_round_trips_and_sorts() {
        let text = "\
# demo trace
{\"at_us\": 1600, \"tenant\": 2, \"point\": 3}

{\"at_us\": 1500, \"tenant\": 1, \"point\": 7, \"deadline_us\": 10000}
";
        let trace = ArrivalTrace::from_jsonl(text).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(
            trace.events()[0],
            TraceEvent {
                at_ns: 1_500_000,
                tenant: TenantId(1),
                point: 7,
                deadline_ns: Some(10_000_000),
            },
            "events sort by arrival time"
        );
        assert_eq!(trace.events()[1].deadline_ns, None);
        assert_eq!(trace.tenants(), vec![TenantId(1), TenantId(2)]);
        let reparsed = ArrivalTrace::from_jsonl(&trace.to_jsonl()).unwrap();
        assert_eq!(reparsed.events(), trace.events(), "JSONL round-trips");
    }

    #[test]
    fn csv_parses_and_matches_jsonl() {
        let csv = "\
at_us,tenant,point,deadline_us
1500,1,7,10000
1600,2,3,
";
        let from_csv = ArrivalTrace::from_csv(csv).unwrap();
        let jsonl = "\
{\"at_us\": 1500, \"tenant\": 1, \"point\": 7, \"deadline_us\": 10000}
{\"at_us\": 1600, \"tenant\": 2, \"point\": 3}
";
        let from_jsonl = ArrivalTrace::from_jsonl(jsonl).unwrap();
        assert_eq!(from_csv.events(), from_jsonl.events());
    }

    #[test]
    fn malformed_lines_are_typed_errors_with_line_numbers() {
        let err = ArrivalTrace::from_jsonl("{\"at_us\": 5, \"tenant\": 0}").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.msg.contains("point"), "{}", err.msg);
        let err = ArrivalTrace::from_jsonl("not json").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let err =
            ArrivalTrace::from_jsonl("{\"at_us\": 5, \"tenant\": 0, \"point\": 1, \"zz\": 3}")
                .unwrap_err();
        assert!(err.msg.contains("unknown key"), "{}", err.msg);
        let err = ArrivalTrace::from_csv("wrong,header,entirely,x\n1,2,3,4").unwrap_err();
        assert!(err.msg.contains("header"), "{}", err.msg);
        let err = ArrivalTrace::from_csv("at_us,tenant,point,deadline_us\n1,2\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn synthesis_is_deterministic_and_rate_faithful() {
        let loads = [
            TenantLoad {
                tenant: TenantId(1),
                profile: RateProfile::Constant {
                    rate_per_s: 5_000.0,
                },
                zipf_s: 1.0,
                deadline_ns: Some(10_000_000),
            },
            TenantLoad {
                tenant: TenantId(2),
                profile: RateProfile::Burst {
                    base_per_s: 1_000.0,
                    burst_per_s: 20_000.0,
                    period_ns: 20_000_000,
                    burst_len_ns: 5_000_000,
                },
                zipf_s: 0.0,
                deadline_ns: None,
            },
        ];
        let horizon = 100_000_000; // 100 ms
        let a = synthesize_trace(&loads, horizon, 32, 7);
        let b = synthesize_trace(&loads, horizon, 32, 7);
        assert_eq!(a.events(), b.events(), "same seed, same trace");
        let c = synthesize_trace(&loads, horizon, 32, 8);
        assert_ne!(a.events(), c.events(), "different seed, different trace");
        // Expected counts: tenant 1 ≈ 5e3 · 0.1 s = 500; tenant 2 ≈
        // (0.25·2e4 + 0.75·1e3) · 0.1 s = 575. Poisson σ ≈ √n, allow 5σ.
        let n1 = a
            .events()
            .iter()
            .filter(|e| e.tenant == TenantId(1))
            .count() as f64;
        let n2 = a
            .events()
            .iter()
            .filter(|e| e.tenant == TenantId(2))
            .count() as f64;
        assert!((n1 - 500.0).abs() < 5.0 * 500f64.sqrt(), "tenant 1: {n1}");
        assert!((n2 - 575.0).abs() < 5.0 * 575f64.sqrt(), "tenant 2: {n2}");
        // Burst faithfulness: most of tenant 2 lands inside burst windows.
        let in_burst = a
            .events()
            .iter()
            .filter(|e| e.tenant == TenantId(2) && e.at_ns % 20_000_000 < 5_000_000)
            .count() as f64;
        assert!(in_burst / n2 > 0.7, "burst fraction {}", in_burst / n2);
        // Ordering invariant.
        assert!(a.events().windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
    }

    #[test]
    fn rate_profiles_shape_as_documented() {
        let flash = RateProfile::FlashCrowd {
            base_per_s: 100.0,
            peak_per_s: 10_000.0,
            at_ns: 1_000_000,
            decay_ns: 2_000_000,
        };
        assert_eq!(flash.rate_at(0), 100.0);
        assert_eq!(flash.rate_at(1_000_000), 10_000.0);
        let later = flash.rate_at(3_000_000);
        assert!(later < 10_000.0 && later > 100.0, "decaying: {later}");
        let diurnal = RateProfile::Diurnal {
            mean_per_s: 1_000.0,
            swing: 1.0,
            period_ns: 1_000_000,
        };
        assert!((diurnal.rate_at(250_000) - 2_000.0).abs() < 1e-6, "peak");
        assert!(diurnal.rate_at(750_000).abs() < 1e-6, "trough");
    }
}

//! The model types the server knows how to serve.
//!
//! A served model is a trained post-variational network split into the
//! two halves the serving pipeline handles separately: the *feature
//! generator* (the quantum stage — cacheable, batchable) and the
//! *classical head* (a cheap dense sweep). Both wrapped variants expose
//! exactly the batch-friendly entry points `pvqnn` guarantees are
//! bit-for-bit identical to their one-at-a-time counterparts, which is
//! what lets the server promise that micro-batching is a pure latency
//! optimization — it never changes a prediction.

use linalg::Mat;
use pvqnn::{FeatureGenerator, PostVarClassifier, PostVarRegressor};

/// One model output.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Prediction {
    /// A regression value `q·α`.
    Value(f64),
    /// A binary-classification probability `p(y=1|x)`.
    Probability(f64),
}

impl Prediction {
    /// The underlying scalar, whichever kind it is.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Prediction::Value(v) | Prediction::Probability(v) => v,
        }
    }
}

/// A deployable trained model.
#[derive(Clone, Debug)]
pub enum ServedModel {
    /// Post-variational linear regression.
    Regressor(PostVarRegressor),
    /// Post-variational binary classifier.
    Classifier(PostVarClassifier),
}

impl From<PostVarRegressor> for ServedModel {
    fn from(m: PostVarRegressor) -> Self {
        ServedModel::Regressor(m)
    }
}

impl From<PostVarClassifier> for ServedModel {
    fn from(m: PostVarClassifier) -> Self {
        ServedModel::Classifier(m)
    }
}

impl ServedModel {
    /// The quantum feature stage.
    pub fn generator(&self) -> &FeatureGenerator {
        match self {
            ServedModel::Regressor(m) => m.generator(),
            ServedModel::Classifier(m) => m.generator(),
        }
    }

    /// Number of qubits the encoding uses — raw inputs must have a
    /// positive multiple of this many coordinates.
    pub fn num_qubits(&self) -> usize {
        self.generator().strategy().num_qubits()
    }

    /// A fingerprint of the quantum feature stage: equal generators
    /// (same strategy, shifts, observables, backend — including shot
    /// counts and seeds) hash equal. Cached feature rows are valid only
    /// for the generator that produced them, so the server segments its
    /// feature cache by this value — every deployed generator keeps its
    /// own warm rows. Delegates to [`FeatureGenerator::fingerprint`],
    /// which caches the hash alongside the generator's compiled circuits.
    pub fn generator_fingerprint(&self) -> u64 {
        self.generator().fingerprint()
    }

    /// Head predictions for a batch of precomputed feature rows — one
    /// fused sweep over the whole micro-batch.
    pub fn predict_batch(&self, q: &Mat) -> Vec<Prediction> {
        match self {
            ServedModel::Regressor(m) => m
                .predict_features(q)
                .into_iter()
                .map(Prediction::Value)
                .collect(),
            ServedModel::Classifier(m) => m
                .predict_proba_features(q)
                .into_iter()
                .map(Prediction::Probability)
                .collect(),
        }
    }

    /// Head prediction for one precomputed feature row; bit-for-bit
    /// identical to the corresponding [`Self::predict_batch`] entry.
    pub fn predict_row(&self, row: &[f64]) -> Prediction {
        match self {
            ServedModel::Regressor(m) => Prediction::Value(m.predict_row(row)),
            ServedModel::Classifier(m) => Prediction::Probability(m.predict_proba_row(row)),
        }
    }
}

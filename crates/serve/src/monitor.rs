//! Windowed time-series monitoring of a running server.
//!
//! Overload behavior is a *trajectory* — a final stats snapshot shows
//! that a brownout happened, not when it tripped, how deep the queue
//! got, or how fast it recovered. The [`Monitor`] samples a server on a
//! fixed simulated-time grid and emits one [`MonitorSample`] per
//! elapsed window: queue depth and brownout rung at the sample instant,
//! plus window-delta completion/shed counts and per-tenant p99s. All on
//! [`crate::SimClock`] time, so the series is bit-for-bit reproducible.
//!
//! ```
//! use pvqnn::features::FeatureBackend;
//! use pvqnn::model::RegressorMode;
//! use pvqnn::{FeatureGenerator, PostVarRegressor, Strategy};
//! use serve::{demo_catalogue, Monitor, Server, ServerConfig};
//!
//! let points = demo_catalogue(8);
//! let y: Vec<f64> = (0..8).map(|i| i as f64).collect();
//! let generator = FeatureGenerator::new(
//!     Strategy::observable_construction(4, 1),
//!     FeatureBackend::Exact,
//! );
//! let model = PostVarRegressor::fit(generator, &points, &y, RegressorMode::Ridge(1e-6));
//! let server = Server::new(ServerConfig::default());
//! server.deploy(model);
//!
//! // One sample per simulated millisecond, polled from the drive loop.
//! let mut monitor = Monitor::new(&server, 1_000_000);
//! let handle = server.submit(points[0].clone()).unwrap();
//! server.drain();
//! handle.wait().unwrap();
//! server.clock().advance_to_ns(2_500_000);
//! assert_eq!(monitor.poll(&server), 2, "boundaries at 1 ms and 2 ms passed");
//! assert_eq!(monitor.samples()[0].completed, 1);
//! ```

use crate::admission::{BrownoutLevel, TenantId};
use crate::server::Server;

/// One monitoring window's worth of observations.
#[derive(Clone, Debug)]
pub struct MonitorSample {
    /// Window end, simulated ns since the monitor started.
    pub t_ns: u64,
    /// Requests queued at the sample instant.
    pub queue_depth: usize,
    /// Brownout-ladder rung at the sample instant.
    pub level: BrownoutLevel,
    /// Requests completed during this window.
    pub completed: u64,
    /// Requests shed or dropped during this window (all causes).
    pub shed: u64,
    /// Cumulative feature-cache hit rate at the sample instant.
    pub cache_hit_rate: f64,
    /// Cumulative per-tenant p99 (simulated ms), ordered by tenant id.
    pub tenant_p99_ms: Vec<(TenantId, f64)>,
}

/// Samples a [`Server`] once per simulated-time window.
///
/// Call [`Monitor::poll`] from the drive loop as often as convenient;
/// it emits samples only when window boundaries pass (several at once
/// if a big batch jumped the clock across multiple windows), so the
/// series has one row per window regardless of poll cadence.
#[derive(Debug)]
pub struct Monitor {
    window_ns: u64,
    next_ns: u64,
    last_completed: u64,
    last_shed: u64,
    samples: Vec<MonitorSample>,
}

impl Monitor {
    /// A monitor emitting one sample per `window_ns` of simulated time,
    /// starting from the server clock's current position.
    pub fn new(server: &Server, window_ns: u64) -> Self {
        assert!(window_ns > 0, "window must be positive");
        Monitor {
            window_ns,
            next_ns: server.clock().now_ns() + window_ns,
            last_completed: 0,
            last_shed: 0,
            samples: Vec::new(),
        }
    }

    /// Emits samples for every window boundary the server clock has
    /// passed since the last poll; returns how many were emitted.
    pub fn poll(&mut self, server: &Server) -> usize {
        let now = server.clock().now_ns();
        if now < self.next_ns {
            return 0;
        }
        let stats = server.stats();
        let shed_total = stats.rejected_total();
        let mut emitted = 0;
        while self.next_ns <= now {
            // Counter deltas land in the first window that observes
            // them; later boundaries crossed in the same poll are flat.
            let (completed, shed) = if emitted == 0 {
                (
                    stats.completed - self.last_completed,
                    shed_total - self.last_shed,
                )
            } else {
                (0, 0)
            };
            self.samples.push(MonitorSample {
                t_ns: self.next_ns,
                queue_depth: server.queue_depth(),
                level: server.brownout_level(),
                completed,
                shed,
                cache_hit_rate: stats.cache.hit_rate(),
                tenant_p99_ms: stats
                    .per_tenant
                    .iter()
                    .map(|t| (t.tenant, t.p99_ms))
                    .collect(),
            });
            self.next_ns += self.window_ns;
            emitted += 1;
        }
        self.last_completed = stats.completed;
        self.last_shed = shed_total;
        emitted
    }

    /// The samples collected so far.
    pub fn samples(&self) -> &[MonitorSample] {
        &self.samples
    }

    /// Consumes the monitor, returning the collected series.
    pub fn into_samples(self) -> Vec<MonitorSample> {
        self.samples
    }

    /// The highest brownout rung observed across all samples.
    pub fn peak_level(&self) -> BrownoutLevel {
        self.samples
            .iter()
            .map(|s| s.level)
            .max()
            .unwrap_or_default()
    }

    /// The deepest queue observed across all samples.
    pub fn peak_queue_depth(&self) -> usize {
        self.samples
            .iter()
            .map(|s| s.queue_depth)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServerConfig;
    use pvqnn::features::FeatureBackend;
    use pvqnn::model::RegressorMode;
    use pvqnn::{FeatureGenerator, PostVarRegressor, Strategy};

    fn model() -> PostVarRegressor {
        let data: Vec<Vec<f64>> = (0..8)
            .map(|i| (0..16).map(|j| 0.2 + 0.1 * ((i + j) % 7) as f64).collect())
            .collect();
        let y: Vec<f64> = (0..8).map(|i| i as f64 * 0.1).collect();
        let generator = FeatureGenerator::new(
            Strategy::observable_construction(4, 1),
            FeatureBackend::Exact,
        );
        PostVarRegressor::fit(generator, &data, &y, RegressorMode::Ridge(1e-6))
    }

    #[test]
    fn emits_one_sample_per_window() {
        let server = Server::new(ServerConfig::default());
        server.deploy(model());
        let mut mon = Monitor::new(&server, 1_000_000); // 1 ms windows
        assert_eq!(mon.poll(&server), 0, "no window elapsed yet");
        let x: Vec<f64> = (0..16).map(|j| 0.2 + 0.1 * (j % 7) as f64).collect();
        let h = server.submit(x).unwrap();
        server.drain();
        h.wait().unwrap();
        // One batch of 1 row / 1 miss ≈ 252 µs: not a window yet.
        assert_eq!(mon.poll(&server), 0);
        server.clock().advance_to_ns(3_500_000);
        let emitted = mon.poll(&server);
        assert_eq!(emitted, 3, "boundaries at 1, 2, 3 ms all passed");
        let s = mon.samples();
        assert_eq!(s[0].t_ns, 1_000_000);
        assert_eq!(s[0].completed, 1, "delta lands in the first window");
        assert_eq!(s[1].completed, 0);
        assert_eq!(s[2].t_ns, 3_000_000);
        assert_eq!(mon.peak_level(), BrownoutLevel::Normal);
    }
}

//! Versioned model registry with atomic hot-swap.
//!
//! Deploying a retrained model must not pause traffic: the registry
//! keeps every deployed version alive behind an `Arc`, and "which
//! version is active" is a single atomic. A micro-batch resolves the
//! active model once at dispatch and holds its `Arc` for the duration,
//! so a deploy during a running batch lets that batch *drain* on the old
//! version while every batch formed afterwards serves the new one — no
//! torn reads, no half-swapped predictions, and instant rollback by
//! re-activating an older version.

use crate::model::ServedModel;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// A deployed model version (1-based, in deployment order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModelVersion(pub u32);

impl fmt::Display for ModelVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// All deployed versions plus the active pointer.
/// One deployed version: the model plus its generator fingerprint,
/// computed once at deploy so the serving hot path never re-hashes the
/// generator's full debug representation per batch.
#[derive(Debug)]
struct Deployed {
    model: Arc<ServedModel>,
    fingerprint: u64,
}

#[derive(Debug, Default)]
pub struct ModelRegistry {
    /// Version `v` lives at index `v − 1`. Write-locked only by deploys.
    models: RwLock<Vec<Deployed>>,
    /// Active version number; 0 means nothing is deployed yet.
    active: AtomicUsize,
}

impl ModelRegistry {
    /// An empty registry (no active model — the server rejects traffic
    /// until the first deploy).
    pub fn new() -> Self {
        Self::default()
    }

    /// Deploys a model and makes it the active version; returns its
    /// version tag. In-flight batches keep serving the version they
    /// resolved at dispatch.
    pub fn deploy(&self, model: impl Into<ServedModel>) -> ModelVersion {
        let model = Arc::new(model.into());
        let fingerprint = model.generator_fingerprint();
        let mut models = self.models.write().expect("registry lock poisoned");
        models.push(Deployed { model, fingerprint });
        let version = models.len();
        // Publish only after the slot is in place (still under the write
        // lock, so `get` can never see an active version it cannot find).
        self.active.store(version, Ordering::SeqCst);
        ModelVersion(version as u32)
    }

    /// The active `(version, model)` pair, if anything is deployed.
    pub fn active(&self) -> Option<(ModelVersion, Arc<ServedModel>)> {
        let v = self.active.load(Ordering::SeqCst);
        if v == 0 {
            return None;
        }
        let models = self.models.read().expect("registry lock poisoned");
        Some((ModelVersion(v as u32), Arc::clone(&models[v - 1].model)))
    }

    /// A specific deployed version (`None` for the reserved version 0
    /// and anything not yet deployed).
    pub fn get(&self, version: ModelVersion) -> Option<Arc<ServedModel>> {
        let models = self.models.read().expect("registry lock poisoned");
        models
            .get((version.0 as usize).checked_sub(1)?)
            .map(|d| Arc::clone(&d.model))
    }

    /// The deploy-time generator fingerprint of a version (`None` if
    /// never deployed). Equal generators hash equal; the server tags
    /// its feature cache with this.
    pub fn fingerprint(&self, version: ModelVersion) -> Option<u64> {
        let models = self.models.read().expect("registry lock poisoned");
        models
            .get((version.0 as usize).checked_sub(1)?)
            .map(|d| d.fingerprint)
    }

    /// Re-activates an already-deployed version (rollback). Returns
    /// `false` if the version was never deployed.
    pub fn activate(&self, version: ModelVersion) -> bool {
        let models = self.models.read().expect("registry lock poisoned");
        if version.0 == 0 || version.0 as usize > models.len() {
            return false;
        }
        self.active.store(version.0 as usize, Ordering::SeqCst);
        true
    }

    /// Number of versions ever deployed.
    pub fn num_versions(&self) -> usize {
        self.models.read().expect("registry lock poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvqnn::features::FeatureBackend;
    use pvqnn::model::RegressorMode;
    use pvqnn::{FeatureGenerator, PostVarRegressor, Strategy};

    fn tiny_model(scale: f64) -> PostVarRegressor {
        let data: Vec<Vec<f64>> = (0..14)
            .map(|i| {
                (0..16)
                    .map(|j| 0.2 + 0.11 * ((i * 5 + j) % 13) as f64)
                    .collect()
            })
            .collect();
        let generator = FeatureGenerator::new(
            Strategy::observable_construction(4, 1),
            FeatureBackend::Exact,
        );
        let y: Vec<f64> = (0..14).map(|i| scale * i as f64).collect();
        PostVarRegressor::fit(generator, &data, &y, RegressorMode::Ridge(1e-6))
    }

    #[test]
    fn empty_registry_has_no_active_model() {
        let r = ModelRegistry::new();
        assert!(r.active().is_none());
        assert_eq!(r.num_versions(), 0);
        assert!(!r.activate(ModelVersion(1)));
        assert!(r.get(ModelVersion(0)).is_none(), "version 0 is reserved");
        assert!(r.get(ModelVersion(3)).is_none());
    }

    #[test]
    fn deploy_activates_and_old_versions_stay_reachable() {
        let r = ModelRegistry::new();
        let v1 = r.deploy(tiny_model(1.0));
        assert_eq!(v1, ModelVersion(1));
        let (av, m1) = r.active().unwrap();
        assert_eq!(av, v1);
        let v2 = r.deploy(tiny_model(2.0));
        let (av, m2) = r.active().unwrap();
        assert_eq!(av, v2);
        // The drained version is still addressable and distinct.
        let got1 = r.get(v1).unwrap();
        assert!(Arc::ptr_eq(&got1, &m1));
        assert!(!Arc::ptr_eq(&got1, &m2));
        assert_eq!(r.num_versions(), 2);
    }

    #[test]
    fn rollback_reactivates_old_version() {
        let r = ModelRegistry::new();
        let v1 = r.deploy(tiny_model(1.0));
        let _v2 = r.deploy(tiny_model(2.0));
        assert!(r.activate(v1));
        assert_eq!(r.active().unwrap().0, v1);
        assert!(!r.activate(ModelVersion(9)));
        assert_eq!(
            r.active().unwrap().0,
            v1,
            "failed rollback must not move the pointer"
        );
    }

    #[test]
    fn in_flight_arc_survives_deploys() {
        // A batch that resolved v1 keeps it alive through any number of
        // later deploys — the "drain" half of hot-swap.
        let r = ModelRegistry::new();
        r.deploy(tiny_model(1.0));
        let (_, held) = r.active().unwrap();
        for k in 0..5 {
            r.deploy(tiny_model(k as f64));
        }
        // Still usable.
        let x: Vec<f64> = (0..16).map(|j| 0.1 * j as f64).collect();
        let row = held.generator().generate_one(&x);
        let _ = held.predict_row(&row);
        assert_eq!(r.num_versions(), 6);
    }
}

//! Scale-out sharding: a consistent-hash router fronting N servers.
//!
//! One [`Server`] bounds throughput no matter how fast the kernels get —
//! its queue lock, cache lock, and batch loop are a single station. The
//! [`Router`] turns the serving layer into a fleet: N shard servers,
//! each with its own queues, cache, engine, and model registry, behind
//! a **consistent-hash ring keyed on the quantized feature key** (the
//! same `round(x · quant_scale)` identity the [`crate::FeatureCache`]
//! keys on). Routing on the cache key is what preserves the cache
//! economics of the single-server design: every distinct data point
//! lives on exactly one shard, so the fleet-wide unique-simulation
//! guarantee ("one `S(x)|0⟩` per unique point, ever") survives scale-out
//! and shards never duplicate each other's warm rows.
//!
//! The ring hashes with FNV-1a (not the std hasher) so shard placement
//! is a stable, documented function of the key — reproducible across
//! processes, hosts, and compiler versions. Each shard owns many
//! virtual nodes; adding or removing a shard only reassigns the keys
//! adjacent to that shard's vnodes, keeping **≥ (N−1)/N of keys in
//! place** (expected moved fraction 1/(N+1) on an add).
//!
//! **Simulated time.** All shards share one [`SimClock`]. Shards are
//! independent machines, so their batch costs must not serialize on the
//! clock: a router round steps every shard once with a *deferred*
//! charge ([`Server::step_deferred`]), then advances the shared clock
//! by the **maximum** shard cost plus a [`NetworkCostModel`] overhead —
//! two router↔shard hops per request and a coordination term that grows
//! with the fleet (per-shard scatter/gather plus the per-request cost
//! of polling every shard's depth for fleet-wide admission). That last
//! term is what eventually caps scale-out: rows/s rises with N until
//! the O(N) per-request coordination dominates the per-shard batch
//! cost, and `exp_serving`'s shard sweep measures exactly where.
//!
//! **Aggregated admission.** Tenants are fleet-level citizens: the
//! router runs the same hysteretic [`BrownoutLadder`] as a single
//! server, but over the *summed* depth of all shards, with per-tenant
//! fair shares checked against the tenant's fleet-wide queued total.
//! A tenant flooding one hot shard is shed at the router door before
//! the hot shard's local ladder even trips; each shard still runs its
//! own ladder as the second line of defence.
//!
//! **Staged rollout.** [`Router::staged_rollout`] hot-swaps a new model
//! shard by shard, probing each shard before and after its swap; if a
//! shard's post-swap probe error or latency regresses past the
//! [`RolloutCriteria`], every already-swapped shard is rolled back to
//! its previous version and the rollout reports failure — the fleet is
//! never left half-upgraded.
//!
//! Predictions are bit-for-bit identical to an unsharded server's:
//! feature rows are standalone-seeded, so sharding (like batching and
//! caching) only changes *where* and *when* a row is computed, never
//! its bits.
//!
//! ```
//! use pvqnn::features::FeatureBackend;
//! use pvqnn::model::RegressorMode;
//! use pvqnn::{FeatureGenerator, PostVarRegressor, Strategy};
//! use serve::{Router, RouterConfig};
//!
//! let data: Vec<Vec<f64>> = (0..8)
//!     .map(|i| (0..16).map(|j| 0.25 + 0.1 * ((i + j) % 5) as f64).collect())
//!     .collect();
//! let y: Vec<f64> = (0..8).map(|i| i as f64).collect();
//! let generator = FeatureGenerator::new(
//!     Strategy::observable_construction(4, 1),
//!     FeatureBackend::Exact,
//! );
//! let model = PostVarRegressor::fit(generator, &data, &y, RegressorMode::Ridge(1e-6));
//!
//! let router = Router::new(RouterConfig {
//!     shards: 2,
//!     ..RouterConfig::default()
//! });
//! router.deploy(model.clone());
//! let handle = router.submit(data[3].clone()).unwrap();
//! router.drain();
//! // Sharding is invisible in outputs: bit-for-bit the lone prediction.
//! let response = handle.wait().unwrap();
//! assert_eq!(response.prediction.as_f64(), model.predict(&data[3..4])[0]);
//! ```

use crate::admission::{BrownoutLadder, BrownoutLevel, Rejected, TenantId};
use crate::cache::quantize_key;
use crate::clock::SimClock;
use crate::engine::FeatureEngine;
use crate::model::ServedModel;
use crate::registry::ModelVersion;
use crate::server::{ResponseHandle, Server, ServerConfig};
use crate::stats::ServerStats;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte stream: a stable, documented hash — shard
/// placement must not depend on std's randomized/unspecified hasher.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = FNV_OFFSET;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Ring position of a quantized feature key.
fn hash_key(key: &[i64]) -> u64 {
    fnv1a(key.iter().flat_map(|k| k.to_le_bytes()))
}

/// Ring position of one of a shard's virtual nodes.
fn vnode_position(shard: u32, replica: u32) -> u64 {
    fnv1a(
        shard
            .to_le_bytes()
            .into_iter()
            .chain(replica.to_le_bytes())
            .chain(*b"vnode"),
    )
}

/// A consistent-hash ring: each shard owns `replicas` virtual nodes;
/// a key belongs to the shard owning the first vnode at or after the
/// key's hash (wrapping). Ties (astronomically unlikely with 64-bit
/// positions) break deterministically toward the lower shard id.
#[derive(Clone, Debug)]
struct HashRing {
    /// (position, shard id), sorted.
    vnodes: Vec<(u64, u32)>,
    replicas: u32,
}

impl HashRing {
    fn new(replicas: u32) -> Self {
        assert!(replicas > 0, "need at least one vnode per shard");
        HashRing {
            vnodes: Vec::new(),
            replicas,
        }
    }

    fn add(&mut self, shard: u32) {
        for r in 0..self.replicas {
            let entry = (vnode_position(shard, r), shard);
            let at = self.vnodes.partition_point(|&v| v < entry);
            self.vnodes.insert(at, entry);
        }
    }

    fn remove(&mut self, shard: u32) {
        self.vnodes.retain(|&(_, s)| s != shard);
    }

    fn shard_for_hash(&self, h: u64) -> u32 {
        assert!(!self.vnodes.is_empty(), "ring has no shards");
        let at = self.vnodes.partition_point(|&(p, _)| p < h);
        let (_, shard) = self.vnodes[at % self.vnodes.len()];
        shard
    }
}

/// Simulated cost of the network and coordination the router adds.
///
/// Every term is charged on the shared [`SimClock`] by the round driver
/// ([`Router::step_round`]), so sharded benchmarks answer "how many
/// shards until coordination dominates?" deterministically:
///
/// * `hop_ns` — one-way router↔shard link latency; each served request
///   takes two hops (forward + response), visible in request latency.
/// * `coord_ns_per_shard` — per-round scatter/gather bookkeeping,
///   charged once per live shard per round: O(N) per round.
/// * `admission_ns_per_shard` — the price of fleet-wide admission:
///   the router polls every shard's queue depth to run its aggregated
///   brownout ladder, so each routed request costs O(N). Charged per
///   dispatched row per shard; this is the term that grows as
///   rows·N² per round and eventually beats the parallelism win.
#[derive(Clone, Copy, Debug)]
pub struct NetworkCostModel {
    /// One-way router↔shard hop latency (simulated ns).
    pub hop_ns: u64,
    /// Per-shard, per-round scatter/gather coordination (ns).
    pub coord_ns_per_shard: u64,
    /// Per-request, per-shard aggregated-admission polling cost (ns).
    pub admission_ns_per_shard: u64,
}

impl Default for NetworkCostModel {
    fn default() -> Self {
        NetworkCostModel {
            hop_ns: 20_000,            // 20 µs per hop
            coord_ns_per_shard: 2_000, // 2 µs gather bookkeeping per shard
            admission_ns_per_shard: 150,
        }
    }
}

impl NetworkCostModel {
    /// Simulated overhead of one router round that dispatched
    /// `dispatched` rows across `shards` live shards (excluding the
    /// shard batch costs themselves): the response hops plus the O(N)
    /// round coordination plus the O(rows·N) admission aggregation.
    pub fn round_overhead_ns(&self, shards: usize, dispatched: usize) -> u64 {
        let n = shards as u64;
        2 * self.hop_ns
            + self.coord_ns_per_shard * n
            + self.admission_ns_per_shard * n * dispatched as u64
    }
}

/// Router tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct RouterConfig {
    /// Initial shard count.
    pub shards: usize,
    /// Virtual nodes per shard on the consistent-hash ring. More vnodes
    /// → smoother key balance and smaller migration granularity.
    pub vnodes_per_shard: u32,
    /// Configuration every shard server is built with.
    pub shard: ServerConfig,
    /// Simulated network/coordination cost model.
    pub net: NetworkCostModel,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            shards: 4,
            vnodes_per_shard: 128,
            shard: ServerConfig::default(),
            net: NetworkCostModel::default(),
        }
    }
}

/// One shard: a stable id (survives add/remove churn) plus its server.
struct ShardSlot {
    id: u32,
    server: Arc<Server>,
}

/// The mutable fleet topology: slots, the hash ring over their ids, and
/// the id allocator.
struct Topology {
    slots: Vec<ShardSlot>,
    ring: HashRing,
    next_id: u32,
}

/// Router-level admission state and counters.
struct Control {
    /// The fleet-wide brownout ladder, walked over summed shard depth.
    ladder: BrownoutLadder,
    /// Fleet-level tenant weights (mirrored to every shard).
    weights: BTreeMap<TenantId, u32>,
    weight_sum: u64,
    rejected_overloaded: u64,
    rejected_over_share: u64,
    rejected_deferred: u64,
    /// Requests forwarded per shard id (routing balance, not completions).
    routed: BTreeMap<u32, u64>,
    rounds: u64,
}

impl Control {
    fn weight_of(&self, tenant: TenantId) -> u32 {
        self.weights.get(&tenant).copied().unwrap_or(1)
    }

    /// A tenant's fleet-wide brownout share: its weighted slice of the
    /// fleet drain target, never below one slot per shard — mirroring
    /// [`crate::AdmissionController::brownout_share`] at fleet scale.
    fn fleet_share(&self, tenant: TenantId) -> usize {
        let w = u64::from(self.weight_of(tenant));
        let sum = self
            .weights
            .values()
            .map(|&v| u64::from(v))
            .sum::<u64>()
            .max(w)
            .max(1);
        ((self.ladder.low_water() as u64 * w) / sum).max(1) as usize
    }
}

/// The consistent-hash shard router. Share it via [`Arc`]: `submit` and
/// `step_round` both take `&self`.
pub struct Router {
    config: RouterConfig,
    clock: SimClock,
    start_ns: u64,
    topo: Mutex<Topology>,
    control: Mutex<Control>,
}

impl Router {
    /// A router fronting `config.shards` freshly built shard servers,
    /// each computing on its own in-process [`FeatureEngine::local`]
    /// engine, all on one shared [`SimClock`].
    pub fn new(config: RouterConfig) -> Self {
        assert!(config.shards > 0, "need at least one shard");
        let clock = SimClock::new();
        let start_ns = clock.now_ns();
        let mut ring = HashRing::new(config.vnodes_per_shard);
        let mut slots = Vec::with_capacity(config.shards);
        for id in 0..config.shards as u32 {
            ring.add(id);
            slots.push(ShardSlot {
                id,
                server: Arc::new(Server::with_engine_and_clock(
                    config.shard,
                    FeatureEngine::local(),
                    clock.clone(),
                )),
            });
        }
        let ladder = Self::fleet_ladder(&config.shard, config.shards);
        Router {
            clock,
            start_ns,
            topo: Mutex::new(Topology {
                slots,
                ring,
                next_id: config.shards as u32,
            }),
            control: Mutex::new(Control {
                ladder,
                weights: BTreeMap::new(),
                weight_sum: 0,
                rejected_overloaded: 0,
                rejected_over_share: 0,
                rejected_deferred: 0,
                routed: BTreeMap::new(),
                rounds: 0,
            }),
            config,
        }
    }

    /// The fleet ladder has the single-shard geometry scaled by N: the
    /// fleet trips when the *sum* of shard queues crosses the summed
    /// high water.
    fn fleet_ladder(shard: &ServerConfig, shards: usize) -> BrownoutLadder {
        BrownoutLadder::new(shard.queue_capacity * shards, shard.high_water * shards)
    }

    /// The configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Current number of shards.
    pub fn num_shards(&self) -> usize {
        self.topo.lock().expect("router lock poisoned").slots.len()
    }

    /// The stable ids of the current shards, in slot order.
    pub fn shard_ids(&self) -> Vec<u32> {
        self.topo
            .lock()
            .expect("router lock poisoned")
            .slots
            .iter()
            .map(|s| s.id)
            .collect()
    }

    /// The shard server with the given stable id, if present. Exposed
    /// for tests and rollout tooling; production traffic goes through
    /// [`Router::submit_as`].
    pub fn shard(&self, id: u32) -> Option<Arc<Server>> {
        self.topo
            .lock()
            .expect("router lock poisoned")
            .slots
            .iter()
            .find(|s| s.id == id)
            .map(|s| Arc::clone(&s.server))
    }

    /// A snapshot of the live shard servers (id, server).
    fn live_shards(&self) -> Vec<(u32, Arc<Server>)> {
        self.topo
            .lock()
            .expect("router lock poisoned")
            .slots
            .iter()
            .map(|s| (s.id, Arc::clone(&s.server)))
            .collect()
    }

    /// Deploys a model to **every** shard at once (unstaged) and returns
    /// the per-shard version it landed as. Shards deployed only through
    /// the router stay version-aligned; use [`Router::staged_rollout`]
    /// for a guarded upgrade.
    pub fn deploy(&self, model: impl Into<ServedModel>) -> ModelVersion {
        let model: ServedModel = model.into();
        let shards = self.live_shards();
        let mut version = None;
        for (_, server) in &shards {
            let v = server.deploy(model.clone());
            let prev = version.get_or_insert(v);
            debug_assert_eq!(*prev, v, "shard registries out of alignment");
        }
        version.expect("router has at least one shard")
    }

    /// Sets a tenant's fleet-wide fairness weight, mirrored to every
    /// shard's local admission controller.
    pub fn set_tenant_weight(&self, tenant: TenantId, weight: u32) {
        assert!(weight > 0, "tenant weight must be positive");
        for (_, server) in self.live_shards() {
            server.set_tenant_weight(tenant, weight);
        }
        let mut ctl = self.control.lock().expect("router lock poisoned");
        let prev = ctl.weights.insert(tenant, weight).unwrap_or(0);
        ctl.weight_sum = ctl.weight_sum - u64::from(prev) + u64::from(weight);
    }

    /// The shard id a data point routes to: FNV-1a over the quantized
    /// feature key, looked up on the ring. Stable across processes and
    /// across add/remove of *other* shards.
    pub fn shard_for_point(&self, x: &[f64]) -> u32 {
        let key = quantize_key(x, self.config.shard.quant_scale);
        let h = hash_key(&key);
        self.topo
            .lock()
            .expect("router lock poisoned")
            .ring
            .shard_for_hash(h)
    }

    /// Total queued requests across the fleet.
    pub fn queue_depth(&self) -> usize {
        self.live_shards()
            .iter()
            .map(|(_, s)| s.queue_depth())
            .sum()
    }

    /// The fleet-wide brownout rung the router's aggregated ladder
    /// currently sits on (distinct from each shard's local rung).
    pub fn brownout_level(&self) -> BrownoutLevel {
        self.control
            .lock()
            .expect("router lock poisoned")
            .ladder
            .level()
    }

    /// Submits one data point for the default tenant.
    pub fn submit(&self, x: Vec<f64>) -> Result<ResponseHandle, Rejected> {
        self.submit_as(TenantId::DEFAULT, x, self.default_budget())
    }

    /// Submits one data point on behalf of `tenant` with the shard
    /// config's default deadline budget.
    pub fn submit_for(&self, tenant: TenantId, x: Vec<f64>) -> Result<ResponseHandle, Rejected> {
        self.submit_as(tenant, x, self.default_budget())
    }

    fn default_budget(&self) -> Option<u64> {
        let budget = self.config.shard.default_deadline_ns;
        if budget == 0 {
            None
        } else {
            Some(budget)
        }
    }

    /// The full submission form. Routing is by consistent hash of the
    /// quantized feature key; fleet-wide admission (the aggregated
    /// brownout ladder over summed shard depth, with fleet-level
    /// per-tenant fair shares) runs at the router door, then the owning
    /// shard's own admission runs as the second line of defence.
    pub fn submit_as(
        &self,
        tenant: TenantId,
        x: Vec<f64>,
        budget_ns: Option<u64>,
    ) -> Result<ResponseHandle, Rejected> {
        let (shard_id, server, fleet_depth, tenant_depth) = {
            let topo = self.topo.lock().expect("router lock poisoned");
            let key = quantize_key(&x, self.config.shard.quant_scale);
            let shard_id = topo.ring.shard_for_hash(hash_key(&key));
            let server = topo
                .slots
                .iter()
                .find(|s| s.id == shard_id)
                .map(|s| Arc::clone(&s.server))
                .expect("ring points at a live shard");
            // Aggregated admission inputs: fleet-wide total and
            // per-tenant depth, summed across every shard while the
            // topology is pinned.
            let mut fleet_depth = 0;
            let mut tenant_depth = 0;
            for s in &topo.slots {
                fleet_depth += s.server.queue_depth();
                tenant_depth += s.server.tenant_depth(tenant);
            }
            (shard_id, server, fleet_depth, tenant_depth)
        };
        {
            let mut ctl = self.control.lock().expect("router lock poisoned");
            let level = ctl.ladder.observe(fleet_depth);
            if level >= BrownoutLevel::ShedOverShare {
                if level == BrownoutLevel::GlobalShed {
                    ctl.rejected_overloaded += 1;
                    return Err(Rejected::Overloaded {
                        depth: fleet_depth,
                        high_water: ctl.ladder.high_water(),
                    });
                }
                let share = ctl.fleet_share(tenant);
                if tenant_depth >= share {
                    ctl.rejected_over_share += 1;
                    return Err(Rejected::TenantOverShare {
                        tenant,
                        depth: tenant_depth,
                        share,
                    });
                }
                if level == BrownoutLevel::DeferSlack && budget_ns.is_none() {
                    ctl.rejected_deferred += 1;
                    return Err(Rejected::Deferred { depth: fleet_depth });
                }
            }
            *ctl.routed.entry(shard_id).or_insert(0) += 1;
        }
        server.submit_as(tenant, x, budget_ns)
    }

    /// One scatter/gather round: every shard serves one micro-batch
    /// with a deferred charge, then the shared clock advances by the
    /// *maximum* shard cost plus the network round overhead — shards
    /// run in parallel in simulated time. Returns requests dispatched.
    pub fn step_round(&self) -> usize {
        let shards = self.live_shards();
        let mut dispatched = 0;
        let mut max_cost_ns = 0u64;
        let extra = 2 * self.config.net.hop_ns;
        for (_, server) in &shards {
            let (d, cost_ns) = server.step_deferred(extra);
            dispatched += d;
            max_cost_ns = max_cost_ns.max(cost_ns);
        }
        if dispatched > 0 {
            let overhead = self.config.net.round_overhead_ns(shards.len(), dispatched);
            self.clock.advance_ns(max_cost_ns + overhead);
            self.control.lock().expect("router lock poisoned").rounds += 1;
        }
        dispatched
    }

    /// Runs rounds until every shard queue is empty; returns the total
    /// number of requests dispatched.
    pub fn drain(&self) -> usize {
        let mut total = 0;
        loop {
            let dispatched = self.step_round();
            if dispatched == 0 {
                return total;
            }
            total += dispatched;
        }
    }

    /// Adds a fresh shard: a new server joins the clock and the ring,
    /// and its registry is replicated (every version, same order, same
    /// active pointer) from an existing shard. Only the keys adjacent
    /// to the new shard's vnodes move to it — ≥ N/(N+1) of keys keep
    /// their shard, so the fleet's caches stay overwhelmingly warm.
    /// Returns the new shard's stable id.
    pub fn add_shard(&self) -> u32 {
        let server = Arc::new(Server::with_engine_and_clock(
            self.config.shard,
            FeatureEngine::local(),
            self.clock.clone(),
        ));
        let mut topo = self.topo.lock().expect("router lock poisoned");
        // Replicate the model catalogue so the new shard serves the
        // same versions as its peers from its first request.
        let donor = Arc::clone(&topo.slots[0].server);
        let registry = donor.registry();
        for v in 1..=registry.num_versions() as u32 {
            let model = registry
                .get(ModelVersion(v))
                .expect("registry versions are dense");
            server.deploy((*model).clone());
        }
        if let Some((active, _)) = registry.active() {
            server.registry().activate(active);
        }
        let mut ctl = self.control.lock().expect("router lock poisoned");
        for (&tenant, &weight) in &ctl.weights {
            server.set_tenant_weight(tenant, weight);
        }
        let id = topo.next_id;
        topo.next_id += 1;
        topo.ring.add(id);
        topo.slots.push(ShardSlot { id, server });
        // Re-derive the fleet ladder over the grown capacity and settle
        // it on the rung the current depth calls for.
        let shards = topo.slots.len();
        let depth: usize = topo.slots.iter().map(|s| s.server.queue_depth()).sum();
        ctl.ladder = Self::fleet_ladder(&self.config.shard, shards);
        ctl.ladder.observe(depth);
        id
    }

    /// Removes a shard by id: its queued requests are drained (answered)
    /// first, then its vnodes leave the ring — keys it owned reassign to
    /// their ring successors and recompute on first touch; every other
    /// key keeps its shard. Returns `false` for an unknown id or when it
    /// is the last shard.
    pub fn remove_shard(&self, id: u32) -> bool {
        let server = {
            let topo = self.topo.lock().expect("router lock poisoned");
            if topo.slots.len() <= 1 {
                return false;
            }
            match topo.slots.iter().find(|s| s.id == id) {
                Some(s) => Arc::clone(&s.server),
                None => return false,
            }
        };
        // Drain outside the topology lock: queued work is answered on
        // the normal (clock-charging) path before the shard leaves.
        server.drain();
        let mut topo = self.topo.lock().expect("router lock poisoned");
        // Re-check: a concurrent remove may have emptied the fleet.
        if topo.slots.len() <= 1 {
            return false;
        }
        let Some(at) = topo.slots.iter().position(|s| s.id == id) else {
            return false;
        };
        topo.slots.remove(at);
        topo.ring.remove(id);
        let shards = topo.slots.len();
        let depth: usize = topo.slots.iter().map(|s| s.server.queue_depth()).sum();
        let mut ctl = self.control.lock().expect("router lock poisoned");
        ctl.ladder = Self::fleet_ladder(&self.config.shard, shards);
        ctl.ladder.observe(depth);
        true
    }

    /// A consistent fleet-wide stats snapshot.
    pub fn stats(&self) -> RouterStats {
        let shards = self.live_shards();
        let per_shard: Vec<(u32, ServerStats)> =
            shards.iter().map(|(id, s)| (*id, s.stats())).collect();
        let ctl = self.control.lock().expect("router lock poisoned");
        let completed: u64 = per_shard.iter().map(|(_, s)| s.completed).sum();
        let submitted: u64 = per_shard.iter().map(|(_, s)| s.submitted).sum();
        let sim_elapsed_ns = self.clock.now_ns().saturating_sub(self.start_ns);
        let sim_elapsed_s = sim_elapsed_ns as f64 / 1e9;
        RouterStats {
            shards: per_shard.len(),
            rounds: ctl.rounds,
            completed,
            submitted,
            rejected_router_overloaded: ctl.rejected_overloaded,
            rejected_router_over_share: ctl.rejected_over_share,
            rejected_router_deferred: ctl.rejected_deferred,
            routed_per_shard: per_shard
                .iter()
                .map(|(id, _)| (*id, ctl.routed.get(id).copied().unwrap_or(0)))
                .collect(),
            sim_elapsed_ns,
            throughput_rows_per_s: if sim_elapsed_s > 0.0 {
                completed as f64 / sim_elapsed_s
            } else {
                0.0
            },
            p99_ms: per_shard.iter().map(|(_, s)| s.p99_ms).fold(0.0, f64::max),
            per_shard,
        }
    }

    /// Hot-swaps `model` across the fleet one shard at a time, guarded
    /// by probe measurements: each shard is probed before and after its
    /// swap, and if its post-swap probe error or latency regresses past
    /// `criteria`, the rollout stops and **every already-swapped shard
    /// rolls back** to the version it served before — the fleet is
    /// never left mixed. Probes are submitted directly to the shard
    /// under test (bypassing the ring) and drained on the normal
    /// clock-charging path, so a rollout costs simulated time like any
    /// other traffic.
    pub fn staged_rollout(
        &self,
        model: impl Into<ServedModel>,
        criteria: &RolloutCriteria,
    ) -> RolloutReport {
        assert_eq!(
            criteria.probes.len(),
            criteria.targets.len(),
            "one target per probe"
        );
        assert!(!criteria.probes.is_empty(), "rollout needs probes");
        let model: ServedModel = model.into();
        let shards = self.live_shards();
        let mut swapped: Vec<(Arc<Server>, ModelVersion)> = Vec::new();
        let mut report = RolloutReport {
            succeeded: true,
            rolled_back: false,
            shards: Vec::with_capacity(shards.len()),
        };
        for (id, server) in &shards {
            let prev = server
                .registry()
                .active()
                .map(|(v, _)| v)
                .expect("rollout over an undeployed fleet");
            let (pre_error, pre_latency_ns) = self.probe(server, criteria);
            let version = server.deploy(model.clone());
            let (post_error, post_latency_ns) = self.probe(server, criteria);
            let error_regressed =
                post_error > pre_error * (1.0 + criteria.max_error_regression) + 1e-12;
            let latency_regressed =
                post_latency_ns > pre_latency_ns * (1.0 + criteria.max_latency_regression) + 1e-9;
            let ok = !error_regressed && !latency_regressed;
            report.shards.push(ShardSwap {
                shard: *id,
                version,
                pre_error,
                post_error,
                pre_latency_ns,
                post_latency_ns,
                swapped: ok,
            });
            if ok {
                swapped.push((Arc::clone(server), prev));
            } else {
                // Automatic rollback: this shard and every shard already
                // swapped return to their pre-rollout versions.
                server.registry().activate(prev);
                for (s, v) in &swapped {
                    s.registry().activate(*v);
                }
                report.succeeded = false;
                report.rolled_back = true;
                report.shards.last_mut().expect("just pushed").swapped = false;
                return report;
            }
        }
        report
    }

    /// Runs the criteria's probe set against one shard, returning
    /// (mean |prediction − target|, mean latency in ns).
    fn probe(&self, server: &Arc<Server>, criteria: &RolloutCriteria) -> (f64, f64) {
        let mut handles = Vec::with_capacity(criteria.probes.len());
        for probe in &criteria.probes {
            handles.push(
                server
                    .submit_as(TenantId::DEFAULT, probe.clone(), None)
                    .expect("probe admission"),
            );
        }
        server.drain();
        let mut err_sum = 0.0;
        let mut lat_sum = 0.0;
        let n = handles.len() as f64;
        for (handle, target) in handles.into_iter().zip(&criteria.targets) {
            let response = handle.wait().expect("probe served");
            err_sum += (response.prediction.as_f64() - target).abs();
            lat_sum += response.latency_ns as f64;
        }
        (err_sum / n, lat_sum / n)
    }
}

/// Probe set and regression tolerances guarding a staged rollout.
#[derive(Clone, Debug)]
pub struct RolloutCriteria {
    /// Probe inputs submitted to each shard before and after its swap.
    pub probes: Vec<Vec<f64>>,
    /// Reference outputs the probes are scored against (mean absolute
    /// error, pre vs post).
    pub targets: Vec<f64>,
    /// Allowed relative increase in probe error after the swap (0.10 =
    /// 10% worse tolerated).
    pub max_error_regression: f64,
    /// Allowed relative increase in mean probe latency after the swap.
    pub max_latency_regression: f64,
}

/// One shard's before/after measurements in a [`RolloutReport`].
#[derive(Clone, Debug)]
pub struct ShardSwap {
    /// The shard's stable id.
    pub shard: u32,
    /// The version the new model deployed as on this shard.
    pub version: ModelVersion,
    /// Mean |prediction − target| over the probes before the swap.
    pub pre_error: f64,
    /// Mean probe error after the swap.
    pub post_error: f64,
    /// Mean probe latency before the swap (simulated ns).
    pub pre_latency_ns: f64,
    /// Mean probe latency after the swap (simulated ns).
    pub post_latency_ns: f64,
    /// Whether the shard ended the rollout on the new version.
    pub swapped: bool,
}

/// What a [`Router::staged_rollout`] did.
#[derive(Clone, Debug)]
pub struct RolloutReport {
    /// Every shard swapped and stayed swapped.
    pub succeeded: bool,
    /// A regression tripped and the fleet was rolled back.
    pub rolled_back: bool,
    /// Per-shard measurements, in rollout order (stops at the failing
    /// shard).
    pub shards: Vec<ShardSwap>,
}

/// A fleet-wide stats snapshot (see [`Router::stats`]).
#[derive(Clone, Debug)]
pub struct RouterStats {
    /// Live shard count.
    pub shards: usize,
    /// Scatter/gather rounds that dispatched at least one request.
    pub rounds: u64,
    /// Requests answered with a prediction, fleet-wide.
    pub completed: u64,
    /// Requests admitted past shard queue doors, fleet-wide.
    pub submitted: u64,
    /// Requests shed by the router's aggregated global-shed rung.
    pub rejected_router_overloaded: u64,
    /// Requests shed by the router's fleet-wide fair-share check.
    pub rejected_router_over_share: u64,
    /// Slack requests deferred by the router's aggregated ladder.
    pub rejected_router_deferred: u64,
    /// Requests forwarded per shard id (routing balance).
    pub routed_per_shard: Vec<(u32, u64)>,
    /// Simulated time elapsed since router construction (ns).
    pub sim_elapsed_ns: u64,
    /// Completed rows per simulated second, fleet-wide.
    pub throughput_rows_per_s: f64,
    /// Conservative fleet p99 (the worst shard's p99, simulated ms).
    pub p99_ms: f64,
    /// Per-shard (id, stats) snapshots.
    pub per_shard: Vec<(u32, ServerStats)>,
}

impl RouterStats {
    /// Routing imbalance: the hottest shard's forwarded-request count
    /// over the fleet mean (1.0 = perfectly balanced). A consistent-hash
    /// ring with enough vnodes keeps this near 1 under uniform keys.
    pub fn shard_imbalance(&self) -> f64 {
        let n = self.routed_per_shard.len();
        if n == 0 {
            return 1.0;
        }
        let total: u64 = self.routed_per_shard.iter().map(|(_, c)| c).sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / n as f64;
        let max = self
            .routed_per_shard
            .iter()
            .map(|&(_, c)| c as f64)
            .fold(0.0, f64::max);
        max / mean
    }

    /// Total router-door rejections (before any shard was consulted).
    pub fn rejected_router_total(&self) -> u64 {
        self.rejected_router_overloaded
            + self.rejected_router_over_share
            + self.rejected_router_deferred
    }
}

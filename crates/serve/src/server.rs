//! The micro-batching inference server.
//!
//! A synchronous core driven by threads: clients [`Server::submit`]
//! single data points and block (or poll) on a per-request channel;
//! whoever drives the server — a dedicated worker thread
//! ([`spawn_worker`]), a deterministic test harness, or a load
//! generator — repeatedly calls [`Server::step`], which forms and
//! serves one micro-batch of up to `max_batch` requests:
//!
//! ```text
//! submit ──► fair admission ──► per-tenant EDF queues ──► batcher ──► feature cache
//!              │ shed                 │                      │            │ miss
//!              ▼              weighted round robin           │            ▼
//!           Rejected           across tenants,               │      engine (executor
//!                              earliest deadline             │        or QPU pool)
//!                              first within each             ▼            │
//!                                          fused head sweep ◄─ rows ◄─────┘
//!                                                            │
//!                                     responses + per-tenant latency histograms
//! ```
//!
//! Requests carry a [`TenantId`]; admission is weighted-fair across
//! tenants (see [`crate::admission`]) and batch slots are handed out by
//! weighted round-robin over the per-tenant sub-queues, each of which
//! is ordered earliest-deadline-first — so neither queue *entry* nor
//! queue *position* lets one flooding tenant starve the others, and a
//! tight-deadline request admitted behind a burst is pulled into the
//! next batch instead of waiting out the backlog.
//!
//! The contract that makes this safe to batch and cache aggressively:
//! **batching is invisible in the outputs**. Feature rows are
//! standalone-seeded ([`pvqnn::FeatureGenerator::generate_rows_standalone`]),
//! so a prediction is bit-for-bit what a lone `predict` call on the same
//! model would return, for any batch composition, tenant mix, cache
//! state, or thread count. Only *when* a response arrives depends on
//! load — and that is measured on the deterministic [`SimClock`].
//!
//! ```
//! use pvqnn::features::FeatureBackend;
//! use pvqnn::model::RegressorMode;
//! use pvqnn::{FeatureGenerator, PostVarRegressor, Strategy};
//! use serve::{Server, ServerConfig};
//!
//! let data: Vec<Vec<f64>> = (0..8)
//!     .map(|i| (0..16).map(|j| 0.3 + 0.1 * ((i + j) % 5) as f64).collect())
//!     .collect();
//! let y: Vec<f64> = (0..8).map(|i| i as f64).collect();
//! let generator = FeatureGenerator::new(
//!     Strategy::observable_construction(4, 1),
//!     FeatureBackend::Exact,
//! );
//! let model = PostVarRegressor::fit(generator, &data, &y, RegressorMode::Ridge(1e-6));
//!
//! let server = Server::new(ServerConfig::default());
//! server.deploy(model.clone());
//! // Submit, drive one batch, and the prediction is bit-for-bit what a
//! // lone `predict` call returns — batching is invisible in outputs.
//! let handle = server.submit(data[5].clone()).unwrap();
//! assert_eq!(server.step(), 1);
//! let response = handle.wait().unwrap();
//! assert_eq!(response.prediction.as_f64(), model.predict(&data[5..6])[0]);
//! assert!(response.latency_ns > 0, "latency measured on the sim clock");
//! ```

use crate::admission::{AdmissionController, BrownoutLevel, Rejected, TenantId};
use crate::cache::FeatureCache;
use crate::clock::SimClock;
use crate::engine::FeatureEngine;
use crate::model::{Prediction, ServedModel};
use crate::registry::{ModelRegistry, ModelVersion};
use crate::stats::{LatencyHistogram, ServerStats, TenantSnapshot};
use crate::CostModel;
use linalg::Mat;
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Largest accepted input-coordinate magnitude. Encoding angles are
/// 2π-periodic, so legitimate inputs are tiny; the bound's real job is
/// keeping every admitted coordinate far inside the range where the
/// cache's key quantization (`round(v · quant_scale) as i64`) is exact —
/// the saturating cast would alias everything beyond ±2^63/scale onto
/// one key (as NaN aliases onto 0), poisoning entries for legitimate
/// inputs.
pub const MAX_COORDINATE: f64 = 1e6;

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Maximum rows per micro-batch.
    pub max_batch: usize,
    /// Hard queue bound ([`Rejected::QueueFull`] above it).
    pub queue_capacity: usize,
    /// Brownout trip point with hysteresis (the ladder's first rung,
    /// [`Rejected::TenantOverShare`]); set `≥ queue_capacity` to
    /// disable brownout shedding entirely.
    pub high_water: usize,
    /// Feature-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Cache-key quantization: buckets per unit of input angle.
    pub quant_scale: f64,
    /// Default per-request deadline budget in simulated ns (0 = none).
    pub default_deadline_ns: u64,
    /// Degradation ladder: when the pool engine fails a miss batch
    /// terminally, recompute the rows on the in-process local engine
    /// (`true`, the default — rows are bit-for-bit what
    /// [`FeatureEngine::Local`] would have served) instead of shedding
    /// the affected requests with [`Rejected::BackendUnavailable`]
    /// (`false`). Cache hits are served either way.
    pub degraded_local_fallback: bool,
    /// Simulated batch cost model.
    pub cost: CostModel,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_batch: 16,
            queue_capacity: 256,
            high_water: 192,
            cache_capacity: 1024,
            quant_scale: 1e8,
            default_deadline_ns: 50_000_000, // 50 simulated ms
            degraded_local_fallback: true,
            cost: CostModel::default(),
        }
    }
}

/// A served prediction.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Server-assigned request id.
    pub id: u64,
    /// The tenant the request was submitted for.
    pub tenant: TenantId,
    /// The model output.
    pub prediction: Prediction,
    /// Which model version served it.
    pub model: ModelVersion,
    /// Queue-to-response latency in simulated ns.
    pub latency_ns: u64,
    /// Whether the feature row came from the cache.
    pub cache_hit: bool,
}

/// What a request ultimately resolves to.
pub type ServeResult = Result<Response, Rejected>;

/// The client's end of one submitted request.
#[derive(Debug)]
pub struct ResponseHandle {
    id: u64,
    rx: Receiver<ServeResult>,
}

impl ResponseHandle {
    /// The server-assigned request id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the response arrives.
    pub fn wait(self) -> ServeResult {
        self.rx.recv().expect("server dropped without responding")
    }

    /// Non-blocking poll; `None` while the request is still queued or
    /// in flight.
    pub fn try_take(&self) -> Option<ServeResult> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => panic!("server dropped without responding"),
        }
    }
}

/// One queued request.
struct Pending {
    id: u64,
    tenant: TenantId,
    x: Vec<f64>,
    arrival_ns: u64,
    /// Simulated-time deadline; `u64::MAX` when none.
    deadline_ns: u64,
    /// Admission order, the EDF tie-break (FIFO among equal deadlines).
    seq: u64,
    tx: Sender<ServeResult>,
}

/// Min-heap adapter: a tenant's sub-queue pops its earliest-deadline
/// request first, FIFO among ties — so a tight-deadline request
/// admitted during a burst of slack ones jumps to the next batch.
struct EdfEntry(Pending);

impl PartialEq for EdfEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == CmpOrdering::Equal
    }
}
impl Eq for EdfEntry {}
impl PartialOrd for EdfEntry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for EdfEntry {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Reversed: BinaryHeap is a max-heap, we want the minimum
        // (deadline, seq) on top.
        (other.0.deadline_ns, other.0.seq).cmp(&(self.0.deadline_ns, self.0.seq))
    }
}

/// Queues + admission under one lock, so decisions serialize with
/// enqueue/dequeue. The admission controller owns all depth accounting
/// (total and per tenant) — nothing here re-derives a depth to pass in.
struct QueueState {
    /// Per-tenant EDF sub-queues. Emptied entries are pruned so batch
    /// formation only cycles tenants that actually have work.
    queues: BTreeMap<TenantId, BinaryHeap<EdfEntry>>,
    /// Total queued requests (= sum of sub-queue lengths).
    len: usize,
    admission: AdmissionController,
    /// Last tenant granted batch slots; the next batch starts with the
    /// tenant after it (cyclic, by id), so slot handout is fair even
    /// when batches are smaller than the active tenant set.
    cursor: Option<TenantId>,
    /// Monotonic admission counter feeding [`Pending::seq`].
    seq: u64,
}

/// Per-tenant stat counters behind the stats mutex.
#[derive(Default)]
struct TenantCounters {
    submitted: u64,
    admitted: u64,
    completed: u64,
    shed: u64,
    dropped: u64,
    cache_hits: u64,
    hist: LatencyHistogram,
}

/// Counters behind the stats mutex.
#[derive(Default)]
struct Counters {
    submitted: u64,
    completed: u64,
    rejected_queue_full: u64,
    rejected_overloaded: u64,
    rejected_over_share: u64,
    rejected_deferred: u64,
    rejected_deadline: u64,
    rejected_invalid: u64,
    rejected_backend: u64,
    batches: u64,
    batch_rows: u64,
    unique_simulations: u64,
    degraded_batches: u64,
    /// Pool failure/recovery counters accumulated across batches.
    faults: hpcq::FaultStats,
    hist: LatencyHistogram,
    tenants: BTreeMap<TenantId, TenantCounters>,
}

impl Counters {
    fn tenant(&mut self, tenant: TenantId) -> &mut TenantCounters {
        self.tenants.entry(tenant).or_default()
    }
}

/// The inference server. Share it via [`Arc`]: `submit` and `step` both
/// take `&self`.
pub struct Server {
    config: ServerConfig,
    registry: ModelRegistry,
    engine: FeatureEngine,
    clock: SimClock,
    start_ns: u64,
    state: Mutex<QueueState>,
    work: Condvar,
    cache: Mutex<FeatureCache>,
    stats: Mutex<Counters>,
    next_id: AtomicU64,
    stopping: AtomicBool,
}

impl Server {
    /// A server with the in-process [`FeatureEngine::Local`] engine.
    pub fn new(config: ServerConfig) -> Self {
        Self::with_engine(config, FeatureEngine::local())
    }

    /// A server computing cache misses on the given engine.
    pub fn with_engine(config: ServerConfig, engine: FeatureEngine) -> Self {
        Self::with_engine_and_clock(config, engine, SimClock::new())
    }

    /// A server sharing an externally owned [`SimClock`] — how the
    /// sharded [`crate::Router`] keeps its whole fleet on one simulated
    /// timeline. Handles into `clock` remain valid: `SimClock` clones
    /// share state.
    pub fn with_engine_and_clock(
        config: ServerConfig,
        engine: FeatureEngine,
        clock: SimClock,
    ) -> Self {
        assert!(config.max_batch > 0, "max_batch must be positive");
        let start_ns = clock.now_ns();
        Server {
            registry: ModelRegistry::new(),
            engine,
            start_ns,
            state: Mutex::new(QueueState {
                queues: BTreeMap::new(),
                len: 0,
                admission: AdmissionController::new(config.queue_capacity, config.high_water),
                cursor: None,
                seq: 0,
            }),
            work: Condvar::new(),
            cache: Mutex::new(FeatureCache::new(config.cache_capacity, config.quant_scale)),
            stats: Mutex::new(Counters::default()),
            next_id: AtomicU64::new(0),
            stopping: AtomicBool::new(false),
            clock,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The model registry (deploy/rollback through this).
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Convenience: deploy a model as the new active version.
    pub fn deploy(&self, model: impl Into<ServedModel>) -> ModelVersion {
        self.registry.deploy(model)
    }

    /// The simulated clock (tests and load generators advance it).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Sets (or updates) a tenant's fairness weight: its relative slice
    /// of brownout admission shares and of batch slots. Unregistered
    /// tenants default to weight 1.
    pub fn set_tenant_weight(&self, tenant: TenantId, weight: u32) {
        self.state
            .lock()
            .expect("server lock poisoned")
            .admission
            .set_tenant_weight(tenant, weight);
    }

    /// Total requests currently queued (all tenants).
    pub fn queue_depth(&self) -> usize {
        self.state.lock().expect("server lock poisoned").len
    }

    /// One tenant's currently queued request count. The sharded router
    /// sums this across its fleet to run fleet-wide fair-share checks.
    pub fn tenant_depth(&self, tenant: TenantId) -> usize {
        self.state
            .lock()
            .expect("server lock poisoned")
            .admission
            .depth_of(tenant)
    }

    /// The brownout-ladder rung admission currently sits on.
    pub fn brownout_level(&self) -> BrownoutLevel {
        self.state
            .lock()
            .expect("server lock poisoned")
            .admission
            .level()
    }

    /// Submits one data point for the default tenant with the default
    /// deadline budget.
    pub fn submit(&self, x: Vec<f64>) -> Result<ResponseHandle, Rejected> {
        self.submit_as(TenantId::DEFAULT, x, self.default_budget())
    }

    /// Submits one data point for the default tenant with an explicit
    /// deadline budget in simulated ns (`None` = no deadline).
    pub fn submit_with_budget(
        &self,
        x: Vec<f64>,
        budget_ns: Option<u64>,
    ) -> Result<ResponseHandle, Rejected> {
        self.submit_as(TenantId::DEFAULT, x, budget_ns)
    }

    /// Submits one data point on behalf of `tenant` with the default
    /// deadline budget.
    pub fn submit_for(&self, tenant: TenantId, x: Vec<f64>) -> Result<ResponseHandle, Rejected> {
        self.submit_as(tenant, x, self.default_budget())
    }

    fn default_budget(&self) -> Option<u64> {
        let budget = self.config.default_deadline_ns;
        if budget == 0 {
            None
        } else {
            Some(budget)
        }
    }

    /// The full submission form: one data point for `tenant` with an
    /// explicit deadline budget in simulated ns (`None` = no deadline —
    /// such slack traffic is the first deferred in a deep brownout).
    /// Admission control runs here, synchronously — a rejected request
    /// never enters a queue.
    pub fn submit_as(
        &self,
        tenant: TenantId,
        x: Vec<f64>,
        budget_ns: Option<u64>,
    ) -> Result<ResponseHandle, Rejected> {
        let Some((_, model)) = self.registry.active() else {
            return Err(Rejected::NoActiveModel);
        };
        let qubits = model.num_qubits();
        if x.is_empty() || !x.len().is_multiple_of(qubits) {
            return Err(self.count_rejection(
                tenant,
                Rejected::InvalidInput {
                    len: x.len(),
                    qubits,
                },
            ));
        }
        if let Some(index) = x
            .iter()
            .position(|v| !v.is_finite() || v.abs() > MAX_COORDINATE)
        {
            return Err(self.count_rejection(tenant, Rejected::InvalidValue { index }));
        }
        let verdict = {
            let mut state = self.state.lock().expect("server lock poisoned");
            // Checked under the queue lock so a submit can never slip a
            // request in after the worker's final drained-and-stopping
            // check — admitted implies answered.
            if self.stopping.load(Ordering::SeqCst) {
                return Err(Rejected::ShuttingDown);
            }
            match state.admission.admit(tenant, budget_ns.is_some()) {
                Err(e) => Err(e),
                Ok(()) => {
                    let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                    let arrival_ns = self.clock.now_ns();
                    let deadline_ns = match budget_ns {
                        Some(b) => arrival_ns.saturating_add(b),
                        None => u64::MAX,
                    };
                    let seq = state.seq;
                    state.seq += 1;
                    let (tx, rx) = channel();
                    state
                        .queues
                        .entry(tenant)
                        .or_default()
                        .push(EdfEntry(Pending {
                            id,
                            tenant,
                            x,
                            arrival_ns,
                            deadline_ns,
                            seq,
                            tx,
                        }));
                    state.len += 1;
                    // Counted while the queue lock is still held, so no
                    // worker can complete (count) this request before it
                    // is counted as submitted — the books always balance.
                    let mut stats = self.stats.lock().expect("server lock poisoned");
                    stats.submitted += 1;
                    let t = stats.tenant(tenant);
                    t.submitted += 1;
                    t.admitted += 1;
                    Ok(ResponseHandle { id, rx })
                }
            }
        };
        match verdict {
            Ok(handle) => {
                self.work.notify_one();
                Ok(handle)
            }
            Err(rejection) => Err(self.count_rejection(tenant, rejection)),
        }
    }

    /// Records a client-visible rejection in the stats counters and
    /// hands it back. `NoActiveModel`/`ShuttingDown` are lifecycle
    /// conditions (nothing is deployed / the endpoint is going away),
    /// not request-accounting events, and stay uncounted.
    fn count_rejection(&self, tenant: TenantId, rejection: Rejected) -> Rejected {
        let mut stats = self.stats.lock().expect("server lock poisoned");
        let counted = match &rejection {
            Rejected::QueueFull { .. } => {
                stats.rejected_queue_full += 1;
                true
            }
            Rejected::Overloaded { .. } => {
                stats.rejected_overloaded += 1;
                true
            }
            Rejected::TenantOverShare { .. } => {
                stats.rejected_over_share += 1;
                true
            }
            Rejected::Deferred { .. } => {
                stats.rejected_deferred += 1;
                true
            }
            Rejected::InvalidInput { .. } | Rejected::InvalidValue { .. } => {
                stats.rejected_invalid += 1;
                true
            }
            Rejected::BackendUnavailable { .. } => {
                stats.rejected_backend += 1;
                true
            }
            Rejected::DeadlineExceeded { .. }
            | Rejected::NoActiveModel
            | Rejected::ShuttingDown => false,
        };
        if counted {
            let t = stats.tenant(tenant);
            t.submitted += 1;
            t.shed += 1;
        }
        rejection
    }

    /// Forms one micro-batch under the queue lock: batch slots are
    /// handed out weighted round-robin across the tenants that have
    /// queued work (each tenant takes up to `weight` slots per cycle,
    /// starting after the tenant the previous batch ended on), and each
    /// tenant contributes its earliest-deadline requests first. A
    /// flooding tenant therefore gets at most its weighted slice of
    /// every batch while others have work — queue *position* cannot be
    /// monopolized any more than queue *entry* can.
    fn form_batch(&self, state: &mut QueueState) -> Vec<Pending> {
        let take = state.len.min(self.config.max_batch);
        let mut batch: Vec<Pending> = Vec::with_capacity(take);
        while batch.len() < take {
            // Active tenants in cyclic id order, starting after the
            // cursor. Collected fresh each cycle because emptied
            // sub-queues are pruned as we go.
            let mut order: Vec<TenantId> = state.queues.keys().copied().collect();
            if let Some(cur) = state.cursor {
                let at = order.partition_point(|&t| t <= cur).min(order.len());
                order.rotate_left(at);
            }
            for tenant in order {
                if batch.len() >= take {
                    break;
                }
                let quota = state.admission.weight_of(tenant).max(1) as usize;
                let queue = state
                    .queues
                    .get_mut(&tenant)
                    .expect("active tenant has a queue");
                for _ in 0..quota {
                    if batch.len() >= take {
                        break;
                    }
                    match queue.pop() {
                        Some(EdfEntry(p)) => {
                            state.len -= 1;
                            state.admission.release(tenant);
                            state.cursor = Some(tenant);
                            batch.push(p);
                        }
                        None => break,
                    }
                }
                if queue.is_empty() {
                    state.queues.remove(&tenant);
                }
            }
        }
        batch
    }

    /// Pops and serves one micro-batch; returns the number of requests
    /// *dispatched* (answered with a prediction or a typed rejection) —
    /// 0 exactly when the queue was empty, so [`Self::drain`]
    /// terminates precisely when no work is left even if a whole batch
    /// expired on its deadlines.
    pub fn step(&self) -> usize {
        self.step_with(None).0
    }

    /// Like [`Self::step`], but *defers* the simulated-time charge: the
    /// batch cost is computed and completion timestamps are stamped at
    /// `now + cost + extra_latency_ns` **without advancing the shared
    /// clock**, and the cost is returned alongside the dispatch count.
    ///
    /// This is the sharded drive primitive: the [`crate::Router`] steps
    /// every shard once per round and then advances the shared clock by
    /// the *maximum* shard cost (plus network/coordination overhead) —
    /// shards run in parallel in simulated time, so their batch costs
    /// must not serialize on the clock. `extra_latency_ns` is the
    /// network detour each response takes (router→shard→router hops),
    /// visible in request latency but not in shard compute cost.
    pub fn step_deferred(&self, extra_latency_ns: u64) -> (usize, u64) {
        self.step_with(Some(extra_latency_ns))
    }

    fn step_with(&self, defer_extra_ns: Option<u64>) -> (usize, u64) {
        let batch: Vec<Pending> = {
            let mut state = self.state.lock().expect("server lock poisoned");
            self.form_batch(&mut state)
        };
        if batch.is_empty() {
            return (0, 0);
        }
        let dispatched = batch.len();
        let cost_ns = self.run_batch(batch, defer_extra_ns);
        (dispatched, cost_ns)
    }

    /// Serves micro-batches until the queue is empty; returns the total
    /// number of requests dispatched.
    pub fn drain(&self) -> usize {
        let mut total = 0;
        loop {
            let dispatched = self.step();
            if dispatched == 0 {
                return total;
            }
            total += dispatched;
        }
    }

    /// Executes one formed micro-batch end to end and returns its
    /// simulated cost in ns. The active model is resolved exactly once,
    /// here — a concurrent deploy affects only batches formed later
    /// (hot-swap: the old version drains). With `defer_extra_ns: None`
    /// the cost is charged on the clock; with `Some(extra)` the clock is
    /// left alone and completions are stamped `now + cost + extra` (see
    /// [`Self::step_deferred`]).
    fn run_batch(&self, batch: Vec<Pending>, defer_extra_ns: Option<u64>) -> u64 {
        let Some((version, model)) = self.registry.active() else {
            for p in batch {
                let _ = p.tx.send(Err(Rejected::NoActiveModel));
            }
            return 0;
        };
        let now = self.clock.now_ns();
        // Requests were validated against the model active at *submit*
        // time; a hot-swap in between may have changed the qubit count,
        // so re-validate against the model this batch actually serves —
        // a typed rejection, never a panic on the batcher thread.
        let qubits = model.num_qubits();
        let mut live: Vec<Pending> = Vec::with_capacity(batch.len());
        let mut expired: Vec<TenantId> = Vec::new();
        let mut invalid: Vec<TenantId> = Vec::new();
        for p in batch {
            if now > p.deadline_ns {
                expired.push(p.tenant);
                let _ = p.tx.send(Err(Rejected::DeadlineExceeded {
                    deadline_ns: p.deadline_ns,
                    now_ns: now,
                }));
            } else if p.x.is_empty() || !p.x.len().is_multiple_of(qubits) {
                invalid.push(p.tenant);
                let _ = p.tx.send(Err(Rejected::InvalidInput {
                    len: p.x.len(),
                    qubits,
                }));
            } else {
                live.push(p);
            }
        }
        if !expired.is_empty() || !invalid.is_empty() {
            let mut stats = self.stats.lock().expect("server lock poisoned");
            stats.rejected_deadline += expired.len() as u64;
            stats.rejected_invalid += invalid.len() as u64;
            for t in expired.into_iter().chain(invalid) {
                stats.tenant(t).dropped += 1;
            }
        }
        if live.is_empty() {
            return 0;
        }

        // Cache phase: resolve hits, dedupe misses within the batch so
        // each unique point is simulated once.
        let mut rows: Vec<Option<Vec<f64>>> = (0..live.len()).map(|_| None).collect();
        let mut hit: Vec<bool> = vec![false; live.len()];
        let mut miss_of: HashMap<Vec<i64>, usize> = HashMap::new();
        let mut miss_keys: Vec<Vec<i64>> = Vec::new();
        let mut miss_requesters: Vec<Vec<usize>> = Vec::new();
        // Deploy-time fingerprint of this batch's generator (computed
        // once per deploy, not per batch).
        let fp = self
            .registry
            .fingerprint(version)
            .unwrap_or_else(|| model.generator_fingerprint());
        {
            let mut cache = self.cache.lock().expect("server lock poisoned");
            // Cached rows belong to one feature generator; the cache is
            // segmented by fingerprint, so lookups only ever see rows the
            // same generator produced — a hot-swap or rollback keeps
            // every version's rows warm without any flushing.
            for (i, p) in live.iter().enumerate() {
                let key = cache.quantize(&p.x);
                if let Some(row) = cache.get(fp, &key) {
                    rows[i] = Some(row.to_vec());
                    hit[i] = true;
                } else {
                    match miss_of.get(&key) {
                        Some(&mi) => miss_requesters[mi].push(i),
                        None => {
                            let mi = miss_keys.len();
                            miss_of.insert(key.clone(), mi);
                            miss_keys.push(key);
                            miss_requesters.push(vec![i]);
                        }
                    }
                }
            }
        }

        // Compute phase (no server lock held): one standalone-seeded row
        // per unique miss, on the engine. The batch's deadline budget is
        // the tightest remaining budget across its live requests — pool
        // retries never chase an already-dead request.
        let miss_xs: Vec<&[f64]> = miss_requesters
            .iter()
            .map(|reqs| live[reqs[0]].x.as_slice())
            .collect();
        let budget_ns = live
            .iter()
            .map(|p| p.deadline_ns)
            .min()
            .filter(|&d| d != u64::MAX)
            .map(|d| d.saturating_sub(now));
        let mut backend_failed_jobs = 0u64;
        if !miss_xs.is_empty() {
            // Degradation ladder: the pool already failed over / hedged
            // internally; if it still could not complete the batch, fall
            // back to the in-process local engine, or — with fallback
            // disabled — shed exactly the requests whose rows are missing
            // (cache hits are served regardless).
            let computed = match self
                .engine
                .compute_rows(model.generator(), &miss_xs, budget_ns)
            {
                Ok(out) => {
                    let mut stats = self.stats.lock().expect("server lock poisoned");
                    stats.faults.absorb(&out.faults);
                    Some(out.rows)
                }
                Err(err) => {
                    let mut stats = self.stats.lock().expect("server lock poisoned");
                    stats.faults.absorb(&err.faults);
                    backend_failed_jobs = err.failed_jobs as u64;
                    if self.config.degraded_local_fallback {
                        stats.degraded_batches += 1;
                        drop(stats);
                        Some(model.generator().generate_rows_standalone(&miss_xs))
                    } else {
                        None
                    }
                }
            };
            if let Some(computed) = computed {
                debug_assert_eq!(computed.len(), miss_keys.len());
                {
                    // Rows tagged with their generator's fingerprint stay
                    // valid forever — no tag re-check needed even if a
                    // concurrent batch hot-swapped the active model while
                    // we computed.
                    let mut cache = self.cache.lock().expect("server lock poisoned");
                    for (key, row) in miss_keys.into_iter().zip(computed.iter()) {
                        cache.insert(fp, key, row.clone());
                    }
                }
                for (mi, requesters) in miss_requesters.iter().enumerate() {
                    for &i in requesters {
                        rows[i] = Some(computed[mi].clone());
                    }
                }
            }
        }

        // Bottom rung: requests whose rows never materialized are shed
        // with a typed error; everything else proceeds to the head sweep.
        let misses = miss_xs.len();
        drop(miss_xs);
        let mut survivors: Vec<(Pending, Vec<f64>, bool)> = Vec::with_capacity(live.len());
        let mut shed_backend: Vec<TenantId> = Vec::new();
        for ((p, row), h) in live.into_iter().zip(rows).zip(hit) {
            match row {
                Some(r) => survivors.push((p, r, h)),
                None => {
                    shed_backend.push(p.tenant);
                    let _ = p.tx.send(Err(Rejected::BackendUnavailable {
                        failed_jobs: backend_failed_jobs,
                    }));
                }
            }
        }
        if !shed_backend.is_empty() {
            let mut stats = self.stats.lock().expect("server lock poisoned");
            stats.rejected_backend += shed_backend.len() as u64;
            for t in shed_backend {
                stats.tenant(t).dropped += 1;
            }
        }
        if survivors.is_empty() {
            return 0;
        }

        // Head phase: one fused sweep over the whole micro-batch.
        let dense: Vec<Vec<f64>> = survivors.iter().map(|(_, r, _)| r.clone()).collect();
        let mat = Mat::from_rows(&dense);
        let predictions = model.predict_batch(&mat);

        // Account simulated time once per batch, then respond. A
        // deferred charge leaves the clock to the round driver and only
        // stamps when this batch *would* finish.
        let cost_ns = self.config.cost.batch_cost_ns(survivors.len(), misses);
        let done = match defer_extra_ns {
            None => self.clock.advance_ns(cost_ns),
            Some(extra) => now.saturating_add(cost_ns).saturating_add(extra),
        };
        let served = survivors.len();
        let mut stats = self.stats.lock().expect("server lock poisoned");
        stats.batches += 1;
        stats.batch_rows += served as u64;
        stats.completed += served as u64;
        stats.unique_simulations += misses as u64;
        for ((p, _, cache_hit), prediction) in survivors.into_iter().zip(predictions) {
            let latency_ns = done.saturating_sub(p.arrival_ns);
            stats.hist.record(latency_ns);
            let t = stats.tenant(p.tenant);
            t.completed += 1;
            t.hist.record(latency_ns);
            if cache_hit {
                t.cache_hits += 1;
            }
            let _ = p.tx.send(Ok(Response {
                id: p.id,
                tenant: p.tenant,
                prediction,
                model: version,
                latency_ns,
                cache_hit,
            }));
        }
        cost_ns
    }

    /// A consistent stats snapshot.
    pub fn stats(&self) -> ServerStats {
        let cache = self.cache.lock().expect("server lock poisoned").stats();
        let stats = self.stats.lock().expect("server lock poisoned");
        let sim_elapsed_ns = self.clock.now_ns().saturating_sub(self.start_ns);
        let sim_elapsed_s = sim_elapsed_ns as f64 / 1e9;
        let per_tenant = stats
            .tenants
            .iter()
            .map(|(&tenant, t)| TenantSnapshot {
                tenant,
                submitted: t.submitted,
                admitted: t.admitted,
                completed: t.completed,
                shed: t.shed,
                dropped: t.dropped,
                cache_hits: t.cache_hits,
                mean_latency_ms: t.hist.mean_ns() / 1e6,
                p50_ms: t.hist.quantile_ns(0.50) / 1e6,
                p99_ms: t.hist.quantile_ns(0.99) / 1e6,
            })
            .collect();
        ServerStats {
            submitted: stats.submitted,
            completed: stats.completed,
            rejected_queue_full: stats.rejected_queue_full,
            rejected_overloaded: stats.rejected_overloaded,
            rejected_over_share: stats.rejected_over_share,
            rejected_deferred: stats.rejected_deferred,
            rejected_deadline: stats.rejected_deadline,
            rejected_invalid: stats.rejected_invalid,
            rejected_backend: stats.rejected_backend,
            batches: stats.batches,
            batch_rows: stats.batch_rows,
            unique_simulations: stats.unique_simulations,
            degraded_batches: stats.degraded_batches,
            pool_retries: stats.faults.retries,
            pool_failovers: stats.faults.failovers,
            hedges_launched: stats.faults.hedges_launched,
            hedges_won: stats.faults.hedges_won,
            breaker_trips: stats.faults.breaker_trips,
            cache,
            per_tenant,
            sim_elapsed_ns,
            throughput_rows_per_s: if sim_elapsed_s > 0.0 {
                stats.completed as f64 / sim_elapsed_s
            } else {
                0.0
            },
            mean_latency_ms: stats.hist.mean_ns() / 1e6,
            p50_ms: stats.hist.quantile_ns(0.50) / 1e6,
            p95_ms: stats.hist.quantile_ns(0.95) / 1e6,
            p99_ms: stats.hist.quantile_ns(0.99) / 1e6,
        }
    }

    /// Signals the worker loop to exit once the queue is drained.
    pub fn stop(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        self.work.notify_all();
    }

    /// The dedicated-thread drive loop: serve batches as they form,
    /// park when idle, drain fully on [`Server::stop`].
    fn worker_loop(&self) {
        loop {
            {
                let mut state = self.state.lock().expect("server lock poisoned");
                while state.len == 0 && !self.stopping.load(Ordering::SeqCst) {
                    state = self.work.wait(state).expect("server lock poisoned");
                }
                if state.len == 0 {
                    return; // stopping and drained
                }
            }
            self.step();
        }
    }
}

/// Spawns the batcher thread driving `server`. Join it after
/// [`Server::stop`]; every admitted request is answered before exit.
pub fn spawn_worker(server: Arc<Server>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("postvar-serve-batcher".to_string())
        .spawn(move || server.worker_loop())
        .expect("failed to spawn server worker")
}

//! The micro-batching inference server.
//!
//! A synchronous core driven by threads: clients [`Server::submit`]
//! single data points and block (or poll) on a per-request channel;
//! whoever drives the server — a dedicated worker thread
//! ([`spawn_worker`]), a deterministic test harness, or the closed-loop
//! load generator — repeatedly calls [`Server::step`], which pops up to
//! `max_batch` queued requests and serves them as one micro-batch:
//!
//! ```text
//! submit ──► admission ──► bounded queue ──► batcher ──► feature cache
//!              │ shed                          │            │ miss
//!              ▼                               │            ▼
//!           Rejected                           │      engine (executor
//!                                              │        or QPU pool)
//!                                              ▼            │
//!                           fused head sweep ◄─ rows ◄──────┘
//!                                              │
//!                              responses + latency histogram
//! ```
//!
//! The contract that makes this safe to batch and cache aggressively:
//! **batching is invisible in the outputs**. Feature rows are
//! standalone-seeded ([`pvqnn::FeatureGenerator::generate_rows_standalone`]),
//! so a prediction is bit-for-bit what a lone `predict` call on the same
//! model would return, for any batch composition, cache state, or
//! thread count. Only *when* a response arrives depends on load — and
//! that is measured on the deterministic [`SimClock`].

use crate::admission::{AdmissionController, Rejected};
use crate::cache::FeatureCache;
use crate::clock::SimClock;
use crate::engine::FeatureEngine;
use crate::model::{Prediction, ServedModel};
use crate::registry::{ModelRegistry, ModelVersion};
use crate::stats::{LatencyHistogram, ServerStats};
use crate::CostModel;
use linalg::Mat;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Largest accepted input-coordinate magnitude. Encoding angles are
/// 2π-periodic, so legitimate inputs are tiny; the bound's real job is
/// keeping every admitted coordinate far inside the range where the
/// cache's key quantization (`round(v · quant_scale) as i64`) is exact —
/// the saturating cast would alias everything beyond ±2^63/scale onto
/// one key (as NaN aliases onto 0), poisoning entries for legitimate
/// inputs.
pub const MAX_COORDINATE: f64 = 1e6;

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Maximum rows per micro-batch.
    pub max_batch: usize,
    /// Hard queue bound ([`Rejected::QueueFull`] above it).
    pub queue_capacity: usize,
    /// Shedding threshold with hysteresis ([`Rejected::Overloaded`]);
    /// set `≥ queue_capacity` to disable soft shedding.
    pub high_water: usize,
    /// Feature-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Cache-key quantization: buckets per unit of input angle.
    pub quant_scale: f64,
    /// Default per-request deadline budget in simulated ns (0 = none).
    pub default_deadline_ns: u64,
    /// Degradation ladder: when the pool engine fails a miss batch
    /// terminally, recompute the rows on the in-process local engine
    /// (`true`, the default — rows are bit-for-bit what
    /// [`FeatureEngine::Local`] would have served) instead of shedding
    /// the affected requests with [`Rejected::BackendUnavailable`]
    /// (`false`). Cache hits are served either way.
    pub degraded_local_fallback: bool,
    /// Simulated batch cost model.
    pub cost: CostModel,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_batch: 16,
            queue_capacity: 256,
            high_water: 192,
            cache_capacity: 1024,
            quant_scale: 1e8,
            default_deadline_ns: 50_000_000, // 50 simulated ms
            degraded_local_fallback: true,
            cost: CostModel::default(),
        }
    }
}

/// A served prediction.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Server-assigned request id.
    pub id: u64,
    /// The model output.
    pub prediction: Prediction,
    /// Which model version served it.
    pub model: ModelVersion,
    /// Queue-to-response latency in simulated ns.
    pub latency_ns: u64,
    /// Whether the feature row came from the cache.
    pub cache_hit: bool,
}

/// What a request ultimately resolves to.
pub type ServeResult = Result<Response, Rejected>;

/// The client's end of one submitted request.
#[derive(Debug)]
pub struct ResponseHandle {
    id: u64,
    rx: Receiver<ServeResult>,
}

impl ResponseHandle {
    /// The server-assigned request id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the response arrives.
    pub fn wait(self) -> ServeResult {
        self.rx.recv().expect("server dropped without responding")
    }

    /// Non-blocking poll; `None` while the request is still queued or
    /// in flight.
    pub fn try_take(&self) -> Option<ServeResult> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => panic!("server dropped without responding"),
        }
    }
}

/// One queued request.
struct Pending {
    id: u64,
    x: Vec<f64>,
    arrival_ns: u64,
    /// Simulated-time deadline; `u64::MAX` when none.
    deadline_ns: u64,
    tx: Sender<ServeResult>,
}

/// Queue + admission under one lock, so decisions serialize with
/// enqueue/dequeue.
struct QueueState {
    queue: VecDeque<Pending>,
    admission: AdmissionController,
}

/// Counters behind the stats mutex.
#[derive(Default)]
struct Counters {
    submitted: u64,
    completed: u64,
    rejected_queue_full: u64,
    rejected_overloaded: u64,
    rejected_deadline: u64,
    rejected_invalid: u64,
    rejected_backend: u64,
    batches: u64,
    batch_rows: u64,
    unique_simulations: u64,
    degraded_batches: u64,
    /// Pool failure/recovery counters accumulated across batches.
    faults: hpcq::FaultStats,
    hist: LatencyHistogram,
}

/// The inference server. Share it via [`Arc`]: `submit` and `step` both
/// take `&self`.
pub struct Server {
    config: ServerConfig,
    registry: ModelRegistry,
    engine: FeatureEngine,
    clock: SimClock,
    start_ns: u64,
    state: Mutex<QueueState>,
    work: Condvar,
    cache: Mutex<FeatureCache>,
    stats: Mutex<Counters>,
    next_id: AtomicU64,
    stopping: AtomicBool,
}

impl Server {
    /// A server with the in-process [`FeatureEngine::Local`] engine.
    pub fn new(config: ServerConfig) -> Self {
        Self::with_engine(config, FeatureEngine::local())
    }

    /// A server computing cache misses on the given engine.
    pub fn with_engine(config: ServerConfig, engine: FeatureEngine) -> Self {
        assert!(config.max_batch > 0, "max_batch must be positive");
        let clock = SimClock::new();
        let start_ns = clock.now_ns();
        Server {
            registry: ModelRegistry::new(),
            engine,
            start_ns,
            state: Mutex::new(QueueState {
                queue: VecDeque::with_capacity(config.queue_capacity),
                admission: AdmissionController::new(config.queue_capacity, config.high_water),
            }),
            work: Condvar::new(),
            cache: Mutex::new(FeatureCache::new(config.cache_capacity, config.quant_scale)),
            stats: Mutex::new(Counters::default()),
            next_id: AtomicU64::new(0),
            stopping: AtomicBool::new(false),
            clock,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The model registry (deploy/rollback through this).
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Convenience: deploy a model as the new active version.
    pub fn deploy(&self, model: impl Into<ServedModel>) -> ModelVersion {
        self.registry.deploy(model)
    }

    /// The simulated clock (tests and load generators advance it).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Submits one data point with the default deadline budget.
    pub fn submit(&self, x: Vec<f64>) -> Result<ResponseHandle, Rejected> {
        let budget = self.config.default_deadline_ns;
        self.submit_with_budget(x, if budget == 0 { None } else { Some(budget) })
    }

    /// Submits one data point with an explicit deadline budget in
    /// simulated ns (`None` = no deadline). Admission control runs here,
    /// synchronously — a rejected request never enters the queue.
    pub fn submit_with_budget(
        &self,
        x: Vec<f64>,
        budget_ns: Option<u64>,
    ) -> Result<ResponseHandle, Rejected> {
        let Some((_, model)) = self.registry.active() else {
            return Err(Rejected::NoActiveModel);
        };
        let qubits = model.num_qubits();
        if x.is_empty() || !x.len().is_multiple_of(qubits) {
            return Err(self.count_rejection(Rejected::InvalidInput {
                len: x.len(),
                qubits,
            }));
        }
        if let Some(index) = x
            .iter()
            .position(|v| !v.is_finite() || v.abs() > MAX_COORDINATE)
        {
            return Err(self.count_rejection(Rejected::InvalidValue { index }));
        }
        let verdict = {
            let mut state = self.state.lock().expect("server lock poisoned");
            // Checked under the queue lock so a submit can never slip a
            // request in after the worker's final drained-and-stopping
            // check — admitted implies answered.
            if self.stopping.load(Ordering::SeqCst) {
                return Err(Rejected::ShuttingDown);
            }
            let depth = state.queue.len();
            match state.admission.admit(depth) {
                Err(e) => Err(e),
                Ok(()) => {
                    let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                    let arrival_ns = self.clock.now_ns();
                    let deadline_ns = match budget_ns {
                        Some(b) => arrival_ns.saturating_add(b),
                        None => u64::MAX,
                    };
                    let (tx, rx) = channel();
                    state.queue.push_back(Pending {
                        id,
                        x,
                        arrival_ns,
                        deadline_ns,
                        tx,
                    });
                    // Counted while the queue lock is still held, so no
                    // worker can complete (count) this request before it
                    // is counted as submitted — the books always balance.
                    self.stats.lock().expect("server lock poisoned").submitted += 1;
                    Ok(ResponseHandle { id, rx })
                }
            }
        };
        match verdict {
            Ok(handle) => {
                self.work.notify_one();
                Ok(handle)
            }
            Err(rejection) => Err(self.count_rejection(rejection)),
        }
    }

    /// Records a client-visible rejection in the stats counters and
    /// hands it back. `NoActiveModel`/`ShuttingDown` are lifecycle
    /// conditions (nothing is deployed / the endpoint is going away),
    /// not request-accounting events, and stay uncounted.
    fn count_rejection(&self, rejection: Rejected) -> Rejected {
        let mut stats = self.stats.lock().expect("server lock poisoned");
        match &rejection {
            Rejected::QueueFull { .. } => stats.rejected_queue_full += 1,
            Rejected::Overloaded { .. } => stats.rejected_overloaded += 1,
            Rejected::InvalidInput { .. } | Rejected::InvalidValue { .. } => {
                stats.rejected_invalid += 1
            }
            Rejected::BackendUnavailable { .. } => stats.rejected_backend += 1,
            Rejected::DeadlineExceeded { .. }
            | Rejected::NoActiveModel
            | Rejected::ShuttingDown => {}
        }
        rejection
    }

    /// Pops and serves one micro-batch; returns the number of requests
    /// *dispatched* (answered with a prediction or a typed rejection) —
    /// 0 exactly when the queue was empty, so [`Self::drain`]
    /// terminates precisely when no work is left even if a whole batch
    /// expired on its deadlines.
    pub fn step(&self) -> usize {
        let batch: Vec<Pending> = {
            let mut state = self.state.lock().expect("server lock poisoned");
            let take = state.queue.len().min(self.config.max_batch);
            state.queue.drain(..take).collect()
        };
        if batch.is_empty() {
            return 0;
        }
        let dispatched = batch.len();
        self.run_batch(batch);
        dispatched
    }

    /// Serves micro-batches until the queue is empty; returns the total
    /// number of requests dispatched.
    pub fn drain(&self) -> usize {
        let mut total = 0;
        loop {
            let dispatched = self.step();
            if dispatched == 0 {
                return total;
            }
            total += dispatched;
        }
    }

    /// Executes one formed micro-batch end to end. The active model is
    /// resolved exactly once, here — a concurrent deploy affects only
    /// batches formed later (hot-swap: the old version drains).
    fn run_batch(&self, batch: Vec<Pending>) {
        let Some((version, model)) = self.registry.active() else {
            for p in batch {
                let _ = p.tx.send(Err(Rejected::NoActiveModel));
            }
            return;
        };
        let now = self.clock.now_ns();
        // Requests were validated against the model active at *submit*
        // time; a hot-swap in between may have changed the qubit count,
        // so re-validate against the model this batch actually serves —
        // a typed rejection, never a panic on the batcher thread.
        let qubits = model.num_qubits();
        let mut live: Vec<Pending> = Vec::with_capacity(batch.len());
        let mut expired = 0u64;
        let mut invalid = 0u64;
        for p in batch {
            if now > p.deadline_ns {
                expired += 1;
                let _ = p.tx.send(Err(Rejected::DeadlineExceeded {
                    deadline_ns: p.deadline_ns,
                    now_ns: now,
                }));
            } else if p.x.is_empty() || !p.x.len().is_multiple_of(qubits) {
                invalid += 1;
                let _ = p.tx.send(Err(Rejected::InvalidInput {
                    len: p.x.len(),
                    qubits,
                }));
            } else {
                live.push(p);
            }
        }
        if expired > 0 || invalid > 0 {
            let mut stats = self.stats.lock().expect("server lock poisoned");
            stats.rejected_deadline += expired;
            stats.rejected_invalid += invalid;
        }
        if live.is_empty() {
            return;
        }

        // Cache phase: resolve hits, dedupe misses within the batch so
        // each unique point is simulated once.
        let mut rows: Vec<Option<Vec<f64>>> = (0..live.len()).map(|_| None).collect();
        let mut hit: Vec<bool> = vec![false; live.len()];
        let mut miss_of: HashMap<Vec<i64>, usize> = HashMap::new();
        let mut miss_keys: Vec<Vec<i64>> = Vec::new();
        let mut miss_requesters: Vec<Vec<usize>> = Vec::new();
        // Deploy-time fingerprint of this batch's generator (computed
        // once per deploy, not per batch).
        let fp = self
            .registry
            .fingerprint(version)
            .unwrap_or_else(|| model.generator_fingerprint());
        {
            let mut cache = self.cache.lock().expect("server lock poisoned");
            // Cached rows belong to one feature generator; the cache is
            // segmented by fingerprint, so lookups only ever see rows the
            // same generator produced — a hot-swap or rollback keeps
            // every version's rows warm without any flushing.
            for (i, p) in live.iter().enumerate() {
                let key = cache.quantize(&p.x);
                if let Some(row) = cache.get(fp, &key) {
                    rows[i] = Some(row.to_vec());
                    hit[i] = true;
                } else {
                    match miss_of.get(&key) {
                        Some(&mi) => miss_requesters[mi].push(i),
                        None => {
                            let mi = miss_keys.len();
                            miss_of.insert(key.clone(), mi);
                            miss_keys.push(key);
                            miss_requesters.push(vec![i]);
                        }
                    }
                }
            }
        }

        // Compute phase (no server lock held): one standalone-seeded row
        // per unique miss, on the engine. The batch's deadline budget is
        // the tightest remaining budget across its live requests — pool
        // retries never chase an already-dead request.
        let miss_xs: Vec<&[f64]> = miss_requesters
            .iter()
            .map(|reqs| live[reqs[0]].x.as_slice())
            .collect();
        let budget_ns = live
            .iter()
            .map(|p| p.deadline_ns)
            .min()
            .filter(|&d| d != u64::MAX)
            .map(|d| d.saturating_sub(now));
        let mut backend_failed_jobs = 0u64;
        if !miss_xs.is_empty() {
            // Degradation ladder: the pool already failed over / hedged
            // internally; if it still could not complete the batch, fall
            // back to the in-process local engine, or — with fallback
            // disabled — shed exactly the requests whose rows are missing
            // (cache hits are served regardless).
            let computed = match self
                .engine
                .compute_rows(model.generator(), &miss_xs, budget_ns)
            {
                Ok(out) => {
                    let mut stats = self.stats.lock().expect("server lock poisoned");
                    stats.faults.absorb(&out.faults);
                    Some(out.rows)
                }
                Err(err) => {
                    let mut stats = self.stats.lock().expect("server lock poisoned");
                    stats.faults.absorb(&err.faults);
                    backend_failed_jobs = err.failed_jobs as u64;
                    if self.config.degraded_local_fallback {
                        stats.degraded_batches += 1;
                        drop(stats);
                        Some(model.generator().generate_rows_standalone(&miss_xs))
                    } else {
                        None
                    }
                }
            };
            if let Some(computed) = computed {
                debug_assert_eq!(computed.len(), miss_keys.len());
                {
                    // Rows tagged with their generator's fingerprint stay
                    // valid forever — no tag re-check needed even if a
                    // concurrent batch hot-swapped the active model while
                    // we computed.
                    let mut cache = self.cache.lock().expect("server lock poisoned");
                    for (key, row) in miss_keys.into_iter().zip(computed.iter()) {
                        cache.insert(fp, key, row.clone());
                    }
                }
                for (mi, requesters) in miss_requesters.iter().enumerate() {
                    for &i in requesters {
                        rows[i] = Some(computed[mi].clone());
                    }
                }
            }
        }

        // Bottom rung: requests whose rows never materialized are shed
        // with a typed error; everything else proceeds to the head sweep.
        let misses = miss_xs.len();
        drop(miss_xs);
        let mut survivors: Vec<(Pending, Vec<f64>, bool)> = Vec::with_capacity(live.len());
        let mut shed_backend = 0u64;
        for ((p, row), h) in live.into_iter().zip(rows).zip(hit) {
            match row {
                Some(r) => survivors.push((p, r, h)),
                None => {
                    shed_backend += 1;
                    let _ = p.tx.send(Err(Rejected::BackendUnavailable {
                        failed_jobs: backend_failed_jobs,
                    }));
                }
            }
        }
        if shed_backend > 0 {
            self.stats
                .lock()
                .expect("server lock poisoned")
                .rejected_backend += shed_backend;
        }
        if survivors.is_empty() {
            return;
        }

        // Head phase: one fused sweep over the whole micro-batch.
        let dense: Vec<Vec<f64>> = survivors.iter().map(|(_, r, _)| r.clone()).collect();
        let mat = Mat::from_rows(&dense);
        let predictions = model.predict_batch(&mat);

        // Account simulated time once per batch, then respond.
        let done = self
            .clock
            .advance_ns(self.config.cost.batch_cost_ns(survivors.len(), misses));
        let served = survivors.len();
        let mut stats = self.stats.lock().expect("server lock poisoned");
        stats.batches += 1;
        stats.batch_rows += served as u64;
        stats.completed += served as u64;
        stats.unique_simulations += misses as u64;
        for ((p, _, cache_hit), prediction) in survivors.into_iter().zip(predictions) {
            let latency_ns = done.saturating_sub(p.arrival_ns);
            stats.hist.record(latency_ns);
            let _ = p.tx.send(Ok(Response {
                id: p.id,
                prediction,
                model: version,
                latency_ns,
                cache_hit,
            }));
        }
    }

    /// A consistent stats snapshot.
    pub fn stats(&self) -> ServerStats {
        let cache = self.cache.lock().expect("server lock poisoned").stats();
        let stats = self.stats.lock().expect("server lock poisoned");
        let sim_elapsed_ns = self.clock.now_ns().saturating_sub(self.start_ns);
        let sim_elapsed_s = sim_elapsed_ns as f64 / 1e9;
        ServerStats {
            submitted: stats.submitted,
            completed: stats.completed,
            rejected_queue_full: stats.rejected_queue_full,
            rejected_overloaded: stats.rejected_overloaded,
            rejected_deadline: stats.rejected_deadline,
            rejected_invalid: stats.rejected_invalid,
            rejected_backend: stats.rejected_backend,
            batches: stats.batches,
            batch_rows: stats.batch_rows,
            unique_simulations: stats.unique_simulations,
            degraded_batches: stats.degraded_batches,
            pool_retries: stats.faults.retries,
            pool_failovers: stats.faults.failovers,
            hedges_launched: stats.faults.hedges_launched,
            hedges_won: stats.faults.hedges_won,
            breaker_trips: stats.faults.breaker_trips,
            cache,
            sim_elapsed_ns,
            throughput_rows_per_s: if sim_elapsed_s > 0.0 {
                stats.completed as f64 / sim_elapsed_s
            } else {
                0.0
            },
            mean_latency_ms: stats.hist.mean_ns() / 1e6,
            p50_ms: stats.hist.quantile_ns(0.50) / 1e6,
            p95_ms: stats.hist.quantile_ns(0.95) / 1e6,
            p99_ms: stats.hist.quantile_ns(0.99) / 1e6,
        }
    }

    /// Signals the worker loop to exit once the queue is drained.
    pub fn stop(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        self.work.notify_all();
    }

    /// The dedicated-thread drive loop: serve batches as they form,
    /// park when idle, drain fully on [`Server::stop`].
    fn worker_loop(&self) {
        loop {
            {
                let mut state = self.state.lock().expect("server lock poisoned");
                while state.queue.is_empty() && !self.stopping.load(Ordering::SeqCst) {
                    state = self.work.wait(state).expect("server lock poisoned");
                }
                if state.queue.is_empty() {
                    return; // stopping and drained
                }
            }
            self.step();
        }
    }
}

/// Spawns the batcher thread driving `server`. Join it after
/// [`Server::stop`]; every admitted request is answered before exit.
pub fn spawn_worker(server: Arc<Server>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("postvar-serve-batcher".to_string())
        .spawn(move || server.worker_loop())
        .expect("failed to spawn server worker")
}
